// cluster_node: one node of a multi-process conditional-messaging cluster
// (DESIGN.md §10). Each process hosts one queue manager plus a TCP
// transport server, and connects outbound transport channels to its
// peers; the conditional messaging layer on top is exactly the code that
// runs in-process — the evaluation manager lives inside the sender node,
// per the paper's Figure 9.
//
// Roles:
//   sender    fans conditional messages out to remote destinations and
//             waits for the evaluation outcomes (acks arrive over TCP).
//   receiver  reads conditional messages from a local queue through the
//             ConditionalReceiver, whose implicit acks ride the transport
//             back to the sender's DS.ACK.Q.
//
// A 1-sender / 2-receiver round (see scripts/cluster_smoke.sh):
//
//   $ ./cluster_node --role receiver --name RCV1 --listen 0 \
//       --port-file /tmp/rcv1.port --peer SND=@/tmp/snd.port \
//       --queue ORDERS --recipient u1 --expect 5 &
//   $ ./cluster_node --role receiver --name RCV2 ... &
//   $ ./cluster_node --role sender --name SND --listen 0 \
//       --port-file /tmp/snd.port --peer RCV1=@/tmp/rcv1.port \
//       --peer RCV2=@/tmp/rcv2.port \
//       --dest RCV1/ORDERS=u1 --dest RCV2/ORDERS=u2 --messages 5
//
// Peers are NAME=HOST:PORT, NAME=PORT (localhost), or NAME=@FILE where
// FILE is a port file another node writes after binding (solves the
// ephemeral-port rendezvous without fixed ports).
//
// --store SPEC selects the node's storage engine by registry spec
// (DESIGN.md §11), e.g. --store segmented:/tmp/snd.store — the node
// recovers from it at startup, so a restarted process resumes its queues.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "mq/queue_manager.hpp"
#include "mq/store/registry.hpp"
#include "mq/transport/transport_server.hpp"

using namespace cmx;

namespace {

struct Peer {
  std::string name;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string port_file;  // when set, host:port comes from this file
};

struct Dest {
  std::string qmgr;
  std::string queue;
  std::string recipient;
};

struct Args {
  std::string role;
  std::string name;
  std::uint16_t listen = 0;
  std::string port_file;
  std::vector<Peer> peers;
  std::vector<Dest> dests;
  int messages = 5;
  std::string queue = "ORDERS";
  std::string recipient;
  int expect = 5;
  util::TimeMs pickup_ms = 20 * 1000;
  util::TimeMs timeout_ms = 60 * 1000;
  // Store engine spec (mq/store/registry.hpp), e.g. "segmented:/var/mq/n1"
  // or "file:/var/mq/n1.log?sync=every_batch". Empty = no durability.
  std::string store;
};

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "cluster_node: %s\n", why.c_str());
  std::exit(2);
}

Peer parse_peer(const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) die("bad --peer (want NAME=HOST:PORT): " + spec);
  Peer peer;
  peer.name = spec.substr(0, eq);
  std::string addr = spec.substr(eq + 1);
  if (!addr.empty() && addr[0] == '@') {
    peer.port_file = addr.substr(1);
    return peer;
  }
  const auto colon = addr.rfind(':');
  if (colon != std::string::npos) {
    peer.host = addr.substr(0, colon);
    addr = addr.substr(colon + 1);
  }
  peer.port = static_cast<std::uint16_t>(std::atoi(addr.c_str()));
  return peer;
}

Dest parse_dest(const std::string& spec) {
  // NAME/QUEUE=RECIPIENT (recipient optional).
  Dest dest;
  std::string addr = spec;
  const auto eq = spec.find('=');
  if (eq != std::string::npos) {
    dest.recipient = spec.substr(eq + 1);
    addr = spec.substr(0, eq);
  }
  const auto slash = addr.find('/');
  if (slash == std::string::npos) die("bad --dest (want QMGR/QUEUE): " + spec);
  dest.qmgr = addr.substr(0, slash);
  dest.queue = addr.substr(slash + 1);
  return dest;
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) die(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--role") args.role = need(i);
    else if (arg == "--name") args.name = need(i);
    else if (arg == "--listen") args.listen = static_cast<std::uint16_t>(std::atoi(need(i).c_str()));
    else if (arg == "--port-file") args.port_file = need(i);
    else if (arg == "--peer") args.peers.push_back(parse_peer(need(i)));
    else if (arg == "--dest") args.dests.push_back(parse_dest(need(i)));
    else if (arg == "--messages") args.messages = std::atoi(need(i).c_str());
    else if (arg == "--queue") args.queue = need(i);
    else if (arg == "--recipient") args.recipient = need(i);
    else if (arg == "--expect") args.expect = std::atoi(need(i).c_str());
    else if (arg == "--pickup-ms") args.pickup_ms = std::atoll(need(i).c_str());
    else if (arg == "--timeout-ms") args.timeout_ms = std::atoll(need(i).c_str());
    else if (arg == "--store") args.store = need(i);
    else die("unknown flag " + arg);
  }
  if (args.role != "sender" && args.role != "receiver") {
    die("--role must be sender or receiver");
  }
  if (args.name.empty()) args.name = args.role == "sender" ? "SND" : "RCV";
  return args;
}

// Resolves NAME=@FILE peers by polling the port file until the owning
// node has written it (it writes the file only after its bind succeeds).
void resolve_peer(Peer& peer, util::TimeMs timeout_ms) {
  if (peer.port_file.empty()) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(peer.port_file);
    std::string text;
    if (in && std::getline(in, text) && !text.empty()) {
      const auto colon = text.rfind(':');
      if (colon != std::string::npos) {
        peer.host = text.substr(0, colon);
        text = text.substr(colon + 1);
      }
      peer.port = static_cast<std::uint16_t>(std::atoi(text.c_str()));
      if (peer.port != 0) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  die("timed out waiting for port file " + peer.port_file);
}

int run_sender(const Args& args, mq::QueueManager& qm, mq::Network& net) {
  if (args.dests.empty()) die("sender needs at least one --dest");
  cm::ConditionalMessagingService service(qm);
  std::vector<std::string> cm_ids;
  for (int i = 0; i < args.messages; ++i) {
    cm::SetBuilder builder;
    builder.pick_up_within(args.pickup_ms);
    for (const auto& dest : args.dests) {
      builder.add(cm::DestBuilder(mq::QueueAddress(dest.qmgr, dest.queue),
                                  dest.recipient)
                      .build());
    }
    auto condition = builder.build();
    auto cm_id = service.send_message("order #" + std::to_string(i),
                                      *condition);
    cm_id.status().expect_ok("send_message");
    cm_ids.push_back(cm_id.value());
  }
  std::printf("[%s] sent %zu conditional messages to %zu destinations\n",
              args.name.c_str(), cm_ids.size(), args.dests.size());

  int successes = 0;
  for (const auto& cm_id : cm_ids) {
    auto outcome = service.await_outcome(cm_id, args.timeout_ms);
    if (outcome.is_ok() && outcome.value().outcome == cm::Outcome::kSuccess) {
      ++successes;
    } else {
      std::fprintf(stderr, "[%s] %s did not succeed (%s)\n",
                   args.name.c_str(), cm_id.c_str(),
                   outcome.is_ok()
                       ? cm::outcome_name(outcome.value().outcome)
                       : outcome.status().message().c_str());
    }
  }
  std::printf("[%s] outcomes: %d/%d SUCCESS\n", args.name.c_str(), successes,
              args.messages);
  return successes == args.messages ? 0 : 1;
}

int run_receiver(const Args& args, mq::QueueManager& qm, mq::Network& net) {
  cm::ConditionalReceiver receiver(qm, args.recipient);
  int got = 0;
  for (int i = 0; i < args.expect; ++i) {
    auto msg = receiver.read_message(args.queue, args.timeout_ms);
    if (!msg.is_ok()) {
      std::fprintf(stderr, "[%s] read_message failed: %s\n",
                   args.name.c_str(), msg.status().message().c_str());
      break;
    }
    ++got;
  }
  std::printf("[%s] read %d/%d conditional messages (acks sent: %llu)\n",
              args.name.c_str(), got, args.expect,
              static_cast<unsigned long long>(receiver.stats().read_acks));
  // Before exiting, make sure every implicit ack actually crossed the
  // wire back to the sender — the process going away must not strand
  // acks on the transmission queue.
  if (!args.peers.empty()) {
    auto* back = net.transport_channel(args.name, args.peers.front().name);
    if (back != nullptr &&
        !back->wait_for_acked(static_cast<std::uint64_t>(got),
                              args.timeout_ms)) {
      std::fprintf(stderr, "[%s] acks not flushed to sender\n",
                   args.name.c_str());
      return 1;
    }
  }
  return got == args.expect ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  util::SystemClock clock;
  mq::QueueManagerOptions qm_options;
  qm_options.store = args.store;
  // Build the store up front so a bad --store spec (unknown backend,
  // unusable path, malformed parameter) is a clean diagnostic and exit,
  // not an abort from inside QueueManager.
  std::unique_ptr<mq::MessageStore> store;
  if (!args.store.empty()) {
    auto built = mq::make_store(args.store);
    if (!built) {
      std::fprintf(stderr, "[%s] bad --store spec %s: %s\n", args.name.c_str(),
                   args.store.c_str(), built.status().message().c_str());
      return 1;
    }
    store = std::move(built).value();
  }
  mq::QueueManager qm(args.name, clock, std::move(store), qm_options);
  if (!args.store.empty()) {
    // Recover from whatever the spec'd store holds — a restarted node
    // resumes with its queues (and the sender/receiver system queues)
    // already populated.
    qm.recover().expect_ok("recover");
    std::printf("[%s] store %s (backend=%s durable=%d)\n", args.name.c_str(),
                args.store.c_str(), qm.store_caps().backend,
                qm.store_caps().durable ? 1 : 0);
  }
  if (args.role == "receiver") {
    // The application queue must exist BEFORE the transport server can
    // accept traffic: a message arriving for a queue that does not exist
    // yet is dead-lettered (and acked as handled), not retried.
    qm.ensure_queue(args.queue).expect_ok("create queue");
  }

  mq::transport::TransportServerOptions server_options;
  server_options.port = args.listen;
  mq::transport::TransportServer server(qm, server_options);
  server.start().expect_ok("transport server start");
  std::printf("[%s] %s listening on 127.0.0.1:%u\n", args.name.c_str(),
              args.role.c_str(), server.port());
  if (!args.port_file.empty()) {
    // Write via a temp file + rename so a polling peer never reads a
    // half-written port.
    const std::string tmp = args.port_file + ".tmp";
    std::ofstream out(tmp);
    out << server.port() << "\n";
    out.close();
    std::rename(tmp.c_str(), args.port_file.c_str());
  }

  mq::Network net;
  net.add(qm);
  for (auto peer : args.peers) {
    resolve_peer(peer, args.timeout_ms);
    mq::transport::TransportChannelOptions options;
    options.host = peer.host;
    options.port = peer.port;
    net.add_remote(qm, peer.name, options).expect_ok("add_remote");
  }

  const int rc = args.role == "sender" ? run_sender(args, qm, net)
                                       : run_receiver(args, qm, net);
  net.shutdown();
  server.stop();
  std::printf("[%s] exit %d\n", args.name.c_str(), rc);
  return rc;
}
