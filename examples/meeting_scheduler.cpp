// The paper's Example 1 (Figures 1 and 4): a group-meeting notification
// sent to four recipients on a remote queue manager, with
//   * a pick-up deadline on all four recipients,
//   * required transactional processing (calendar update) for receiver3,
//   * at-least-2-of-{receiver1, receiver2, receiver4} processing.
//
// The example runs the scenario twice — once with cooperative recipients
// (SUCCESS: the meeting is scheduled) and once where too few recipients
// process the invitation (FAILURE: compensations cancel the meeting and
// the calendar updates are undone by the receiving applications).
//
// Deadlines are scaled from the paper's days to milliseconds so the
// example runs in about a second.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "mq/queue_manager.hpp"
#include "txn/kvstore.hpp"

using namespace cmx;

namespace {

// Scaled time: 1 "day" = 100 ms.
constexpr util::TimeMs kDay = 100;
constexpr util::TimeMs kWeek = 7 * kDay;

cm::ConditionPtr meeting_condition() {
  return cm::SetBuilder()
      .pick_up_within(2 * kDay)
      .add(cm::DestBuilder(mq::QueueAddress("QM.OFFICE", "Q.RECEIVER3"),
                           "receiver3")
               .processing_within(kWeek)
               .build())
      .add(cm::SetBuilder()
               .processing_within(3 * kDay)
               .min_nr_processing(2)
               .add(cm::DestBuilder(mq::QueueAddress("QM.OFFICE", "Q.RECEIVER1"),
                                    "receiver1")
                        .build())
               .add(cm::DestBuilder(mq::QueueAddress("QM.OFFICE", "Q.RECEIVER2"),
                                    "receiver2")
                        .build())
               .add(cm::DestBuilder(mq::QueueAddress("QM.OFFICE", "Q.RECEIVER4"),
                                    "receiver4")
                        .build())
               .build())
      .build();
}

// One meeting participant: reads the invitation and (optionally) processes
// it by updating a calendar database inside a messaging transaction
// (§2.4's read-process-commit pattern).
struct Participant {
  std::string name;
  std::string queue;
  bool processes;  // accept and update the calendar, or only read

  void run(mq::QueueManager& qm, txn::TxKvStore& calendar) {
    cm::ConditionalReceiver rx(qm, name);
    if (processes) {
      rx.begin_tx().expect_ok("begin_tx");
      auto msg = rx.read_message(queue, 5000);
      msg.status().expect_ok("read");
      calendar.put(name + "-tx", name + "/meeting",
                   std::string(msg.value().body()))
          .expect_ok("calendar update");
      calendar.prepare(name + "-tx");
      calendar.commit(name + "-tx");
      rx.commit_tx().expect_ok("commit_tx");
      std::printf("  %-10s processed the invitation (calendar updated)\n",
                  name.c_str());
    } else {
      auto msg = rx.read_message(queue, 5000);
      msg.status().expect_ok("read");
      std::printf("  %-10s read the invitation (no processing)\n",
                  name.c_str());
    }
  }

  // After a failed meeting: pick up the compensation and undo.
  void compensate(mq::QueueManager& qm, txn::TxKvStore& calendar) {
    cm::ConditionalReceiver rx(qm, name);
    auto msg = rx.read_message(queue, 5000);
    if (msg.is_ok() && msg.value().kind == cm::MessageKind::kCompensation) {
      calendar.put(name + "-undo", name + "/meeting", "<cancelled>")
          .expect_ok("calendar undo");
      calendar.prepare(name + "-undo");
      calendar.commit(name + "-undo");
      std::printf("  %-10s received compensation -> meeting cancelled\n",
                  name.c_str());
    } else if (msg.code() == util::ErrorCode::kTimeout) {
      std::printf("  %-10s nothing to compensate (original annihilated)\n",
                  name.c_str());
    }
  }
};

void run_scenario(const char* title, const std::vector<Participant>& people) {
  std::printf("\n=== %s ===\n", title);
  util::SystemClock clock;
  mq::QueueManager hq("QM.HQ", clock);
  mq::QueueManager office("QM.OFFICE", clock);
  for (const auto& p : people) {
    office.create_queue(p.queue).expect_ok("create");
  }
  mq::Network net;
  net.add(hq);
  net.add(office);

  cm::ConditionalMessagingService service(hq, {.success_notifications = false});
  txn::TxKvStore calendar("calendar-db");

  auto cm_id = service.send_message(
      "team meeting Fri 10:00, room 4-D",
      "MEETING CANCELLED - please remove from calendar", *meeting_condition());
  cm_id.status().expect_ok("send");
  std::printf("sent meeting notification %s to %zu queues\n",
              cm_id.value().c_str(), people.size());

  for (auto participant : people) {
    participant.run(office, calendar);
  }

  auto outcome = service.await_outcome(cm_id.value(), 10000);
  outcome.status().expect_ok("outcome");
  std::printf("meeting outcome: %s%s%s\n",
              cm::outcome_name(outcome.value().outcome),
              outcome.value().reason.empty() ? "" : " — ",
              outcome.value().reason.c_str());

  if (outcome.value().outcome == cm::Outcome::kFailure) {
    for (auto participant : people) {
      participant.compensate(office, calendar);
    }
  }
  std::printf("calendar entries after scenario:\n");
  for (const auto& p : people) {
    auto entry = calendar.read_committed(p.name + "/meeting");
    std::printf("  %-10s : %s\n", p.name.c_str(),
                entry.value_or("<none>").c_str());
  }
  net.shutdown();
}

}  // namespace

int main() {
  // Scenario A: receiver3 processes (required), receivers 1+2 process
  // (2-of-3 satisfied), receiver4 only reads -> SUCCESS.
  run_scenario("scenario A: enough participants accept",
               {{"receiver1", "Q.RECEIVER1", true},
                {"receiver2", "Q.RECEIVER2", true},
                {"receiver3", "Q.RECEIVER3", true},
                {"receiver4", "Q.RECEIVER4", false}});

  // Scenario B: only receiver1 processes; 2-of-3 subset cannot be reached
  // and receiver3's required processing is missing -> FAILURE, followed by
  // compensation delivery to everyone who consumed the invitation.
  run_scenario("scenario B: too few participants accept",
               {{"receiver1", "Q.RECEIVER1", true},
                {"receiver2", "Q.RECEIVER2", false},
                {"receiver3", "Q.RECEIVER3", false},
                {"receiver4", "Q.RECEIVER4", false}});
  return 0;
}
