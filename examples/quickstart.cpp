// Quickstart: the smallest complete conditional-messaging round trip.
//
// A sender publishes a message that must be picked up within 2 seconds; a
// receiver reads it through the conditional messaging API (which sends the
// implicit acknowledgment automatically); the sender observes the SUCCESS
// outcome on its outcome queue.
//
//   $ ./quickstart
#include <cstdio>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"

using namespace cmx;

int main() {
  util::SystemClock clock;

  // 1. A queue manager with an application queue (the MOM substrate).
  mq::QueueManager qm("QM1", clock);
  qm.create_queue("ORDERS").expect_ok("create queue");

  // 2. The conditional messaging service on the sender side.
  cm::ConditionalMessagingService service(qm);

  // 3. A condition: the ORDERS queue must be read within 2 seconds.
  auto condition = cm::DestBuilder(mq::QueueAddress("QM1", "ORDERS"))
                       .pick_up_within(2 * cm::kSecond)
                       .build();

  // 4. sendMessage(Object, Condition) — paper §2.3.
  auto cm_id = service.send_message("order #42: 2x espresso", *condition);
  cm_id.status().expect_ok("send");
  std::printf("sent conditional message %s\n", cm_id.value().c_str());

  // 5. A final recipient reads through the conditional messaging API; the
  //    read acknowledgment is generated implicitly (§2.4).
  cm::ConditionalReceiver receiver(qm, "barista-1");
  auto msg = receiver.read_message("ORDERS", 1000);
  msg.status().expect_ok("read");
  std::printf("receiver got: \"%s\"\n",
              std::string(msg.value().body()).c_str());

  // 6. The evaluation manager decides and notifies DS.OUTCOME.Q (§2.5).
  auto outcome = service.await_outcome(cm_id.value(), 5000);
  outcome.status().expect_ok("outcome");
  std::printf("outcome: %s\n", cm::outcome_name(outcome.value().outcome));
  return outcome.value().outcome == cm::Outcome::kSuccess ? 0 : 1;
}
