// Conditional messaging over publish/subscribe: a trading-desk alert must
// be picked up by at least 2 of the regional desks subscribed to the
// topic within a deadline — otherwise the alert is retracted.
//
// This is the messaging model the paper's definition also ranges over
// ("message queuing and publish/subscribe systems", §2) built on the same
// middleware: subscriptions materialize as queues, the conditional
// publish snapshots the matching subscribers and attaches a k-of-n
// pick-up condition, and everything downstream (acks, evaluation,
// compensation) is §§2.3–2.6 unchanged.
//
//   $ ./conditional_pubsub
#include <cstdio>

#include "cm/conditional_publisher.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/pubsub.hpp"
#include "mq/queue_manager.hpp"

using namespace cmx;

namespace {

void run(const char* title, int desks_reading) {
  std::printf("\n=== %s ===\n", title);
  util::SystemClock clock;
  mq::QueueManager qm("QM.BROKER", clock);
  mq::TopicBroker broker(qm);
  cm::ConditionalMessagingService service(qm);
  cm::ConditionalPublisher publisher(service, broker);

  const char* desks[] = {"emea-desk", "apac-desk", "us-desk"};
  for (const char* desk : desks) {
    auto sub = broker.subscribe("alerts.risk.#", {.durable = true,
                                                  .name = desk});
    sub.status().expect_ok("subscribe");
    std::printf("subscribed %-10s -> %s\n", desk, sub.value().queue.c_str());
  }

  cm::PublishConditions conditions;
  conditions.pick_up_within = 300;  // ms
  conditions.min_subscribers = 2;
  conditions.evaluation_timeout_ms = 350;
  auto cm_id = publisher.publish("alerts.risk.var-breach",
                                 "VaR limit breached on book 7",
                                 "ALERT RETRACTED (insufficient coverage)",
                                 conditions);
  cm_id.status().expect_ok("publish");
  std::printf("published conditional alert %s (need 2 of 3 desks in 300ms)\n",
              cm_id.value().c_str());

  for (int i = 0; i < desks_reading; ++i) {
    cm::ConditionalReceiver rx(qm, desks[i]);
    auto msg = rx.read_message(broker.find(desks[i])->queue, 1000);
    msg.status().expect_ok("read");
    std::printf("  %-10s read: \"%s\"\n", desks[i],
                std::string(msg.value().body()).c_str());
  }

  auto outcome = service.await_outcome(cm_id.value(), 10'000);
  outcome.status().expect_ok("outcome");
  std::printf("alert outcome: %s%s%s\n",
              cm::outcome_name(outcome.value().outcome),
              outcome.value().reason.empty() ? "" : " — ",
              outcome.value().reason.c_str());

  if (outcome.value().outcome == cm::Outcome::kFailure) {
    // desks that saw the alert receive the retraction; unread copies
    // annihilate in the subscription queues
    for (int i = 0; i < 3; ++i) {
      cm::ConditionalReceiver rx(qm, desks[i]);
      auto follow_up = rx.read_message(broker.find(desks[i])->queue, 500);
      if (follow_up.is_ok() &&
          follow_up.value().kind == cm::MessageKind::kCompensation) {
        std::printf("  %-10s received retraction: \"%s\"\n", desks[i],
                    std::string(follow_up.value().body()).c_str());
      } else {
        std::printf("  %-10s unread alert annihilated (%llu)\n", desks[i],
                    static_cast<unsigned long long>(rx.stats().annihilated));
      }
    }
  }
}

}  // namespace

int main() {
  run("scenario A: all three desks react in time", 3);
  run("scenario B: only one desk reacts -> alert retracted", 1);
  return 0;
}
