// Dependency-Spheres (§3): a contract-negotiation workflow groups two
// conditional messages and a transactional database update into ONE atomic
// unit-of-work:
//
//   * a notification to the legal department (must be picked up),
//   * a signature request to the partner company (must be processed
//     transactionally),
//   * the contract record in a transactional store (2PC resource).
//
// If every message meets its conditions and the resource votes commit, the
// sphere commits: the contract is persisted and success notifications go
// out. If any member fails, everything is compensated and rolled back —
// including members that individually succeeded.
//
//   $ ./dsphere_workflow
#include <cstdio>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "ds/dsphere.hpp"
#include "mq/network.hpp"
#include "txn/kvstore.hpp"

using namespace cmx;

namespace {

void run(const char* title, bool partner_signs) {
  std::printf("\n=== %s ===\n", title);
  util::SystemClock clock;
  mq::QueueManager hq("QM.HQ", clock);
  mq::QueueManager partner("QM.PARTNER", clock);
  hq.create_queue("Q.LEGAL").expect_ok("create");
  partner.create_queue("Q.SIGNATURES").expect_ok("create");
  mq::Network net;
  net.add(hq);
  net.add(partner);

  cm::ConditionalMessagingService service(hq,
                                          {.success_notifications = true});
  txn::TwoPhaseCoordinator coordinator;
  ds::DSphereService spheres(service, coordinator);
  txn::TxKvStore contracts("contract-db");

  // --- begin_DS ----------------------------------------------------------
  const auto sphere = spheres.begin();

  // transactional object work inside the sphere (§3.2)
  spheres.enlist(sphere, contracts).expect_ok("enlist");
  const auto tx = spheres.transaction_id(sphere).value();
  contracts.put(tx, "contract/4711", "draft v3, pending signature")
      .expect_ok("stage contract");

  // member 1: legal must see the draft within 500 ms
  auto legal_note = spheres.send_message(
      sphere, "contract 4711 draft for review", "review withdrawn",
      *cm::DestBuilder(mq::QueueAddress("QM.HQ", "Q.LEGAL"), "legal")
           .pick_up_within(500)
           .build());
  legal_note.status().expect_ok("send legal note");

  // member 2: the partner must transactionally countersign within 500 ms
  auto signature_req = spheres.send_message(
      sphere, "please countersign contract 4711", "signature request void",
      *cm::DestBuilder(mq::QueueAddress("QM.PARTNER", "Q.SIGNATURES"),
                       "partner-inc")
           .processing_within(500)
           .build());
  signature_req.status().expect_ok("send signature request");

  // --- the participants act ------------------------------------------------
  cm::ConditionalReceiver legal(hq, "legal");
  legal.read_message("Q.LEGAL", 2000).status().expect_ok("legal read");
  std::printf("legal picked up the draft\n");

  cm::ConditionalReceiver partner_rx(partner, "partner-inc");
  if (partner_signs) {
    partner_rx.begin_tx().expect_ok("begin");
    partner_rx.read_message("Q.SIGNATURES", 2000)
        .status()
        .expect_ok("partner read");
    partner_rx.commit_tx().expect_ok("commit");
    std::printf("partner countersigned (transactional processing)\n");
  } else {
    std::printf("partner never signs (processing deadline will lapse)\n");
  }

  // --- commit_DS ----------------------------------------------------------
  auto result = spheres.commit(sphere, 5000);
  result.status().expect_ok("commit_DS");
  std::printf("D-Sphere outcome: %s%s%s\n",
              ds::dsphere_outcome_name(result.value().outcome),
              result.value().reason.empty() ? "" : " — ",
              result.value().reason.c_str());

  std::printf("contract record: %s\n",
              contracts.read_committed("contract/4711")
                  .value_or("<rolled back>")
                  .c_str());

  // outcome actions reached the members?
  auto follow_up = legal.read_message("Q.LEGAL", 2000);
  if (follow_up.is_ok()) {
    std::printf("legal received %s message\n",
                cm::message_kind_name(follow_up.value().kind));
  }
  net.shutdown();
}

}  // namespace

int main() {
  run("scenario A: partner signs -> sphere commits", true);
  run("scenario B: partner silent -> sphere aborts, contract rolled back",
      false);
  return 0;
}
