// The paper's Example 2 (Figures 2 and 5): incoming flights are announced
// on one central queue; ANY controller must pick a flight up within a
// deadline, otherwise exception handling starts (here: the compensation
// message withdraws the flight and it is re-routed).
//
// The example runs a small workload: flights arrive continuously while a
// pool of controller threads — occasionally distracted — consumes them.
// Each flight carries a pick-up condition (scaled to 200 ms) plus an
// evaluation timeout, exactly the 20 s / 21 s structure of §2.5. At the
// end the sender tallies accepted vs. escalated flights.
//
//   $ ./air_traffic [num_controllers=3] [num_flights=40]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"
#include "util/random.hpp"

using namespace cmx;

namespace {

constexpr util::TimeMs kPickUpDeadline = 200;  // the paper's "20 seconds"
constexpr util::TimeMs kEvalTimeout = 210;     // the paper's "21 seconds"

struct Controller {
  int id;
  std::atomic<bool>* stop;
  mq::QueueManager* qm;
  util::TimeMs distraction_ms;  // how long this controller dawdles
  int handled = 0;

  void operator()() {
    cm::ConditionalReceiver rx(*qm, "controller-" + std::to_string(id));
    util::Rng rng(17 + id);
    while (!stop->load()) {
      auto msg = rx.read_message("Q.CENTRAL", 50);
      if (!msg.is_ok()) continue;
      if (msg.value().kind != cm::MessageKind::kData) continue;
      ++handled;
      // handling a flight takes a while, and sometimes the controller is
      // busy with a handover before the next read
      qm->clock().sleep_ms(rng.uniform(5, 15));
      if (rng.chance(0.3)) qm->clock().sleep_ms(distraction_ms);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int num_controllers = argc > 1 ? std::atoi(argv[1]) : 3;
  const int num_flights = argc > 2 ? std::atoi(argv[2]) : 40;

  util::SystemClock clock;
  mq::QueueManager qm("QM.TOWER", clock);
  qm.create_queue("Q.CENTRAL").expect_ok("create");
  cm::ConditionalMessagingService service(qm);

  std::atomic<bool> stop{false};
  std::vector<Controller> controllers;
  std::vector<std::thread> threads;
  for (int i = 0; i < num_controllers; ++i) {
    controllers.push_back(Controller{i, &stop, &qm, /*distraction_ms=*/120});
  }
  threads.reserve(controllers.size());
  for (auto& controller : controllers) {
    threads.emplace_back(std::ref(controller));
  }

  // The flight condition of Figure 5: central queue, anonymous recipient,
  // pick-up within the deadline.
  auto condition = cm::DestBuilder(mq::QueueAddress("QM.TOWER", "Q.CENTRAL"))
                       .pick_up_within(kPickUpDeadline)
                       .build();
  cm::SendOptions options;
  options.evaluation_timeout_ms = kEvalTimeout;

  util::Rng arrivals(99);
  std::vector<std::string> flight_ids;
  for (int i = 0; i < num_flights; ++i) {
    auto cm_id = service.send_message(
        "flight LH" + std::to_string(1000 + i) + " entering sector", *condition,
        options);
    cm_id.status().expect_ok("send flight");
    flight_ids.push_back(cm_id.value());
    clock.sleep_ms(arrivals.uniform(10, 40));  // inter-arrival gap
  }

  int accepted = 0, escalated = 0;
  for (const auto& id : flight_ids) {
    auto outcome = service.await_outcome(id, 5000);
    outcome.status().expect_ok("outcome");
    if (outcome.value().outcome == cm::Outcome::kSuccess) {
      ++accepted;
    } else {
      ++escalated;
    }
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  std::printf("flights: %d  controllers: %d\n", num_flights, num_controllers);
  std::printf("picked up within %lldms : %d\n",
              static_cast<long long>(kPickUpDeadline), accepted);
  std::printf("escalated (deadline miss): %d\n", escalated);
  int handled = 0;
  for (const auto& c : controllers) {
    std::printf("  controller-%d handled %d flights\n", c.id, c.handled);
    handled += c.handled;
  }
  std::printf(
      "total flight reads: %d — note the condition is about TIMELY pick-up;\n"
      "delivery itself is already guaranteed by the MOM. Escalated flights\n"
      "whose original was still unread were annihilated by their\n"
      "compensation message (§2.6) and never surfaced to a controller.\n",
      handled);
  return 0;
}
