// Using the reliable-messaging substrate directly (paper Figure 6: an
// application can keep talking to the MOM next to the conditional
// messaging service): message selectors, priorities, transacted sessions.
//
// A dispatcher feeds a work queue with mixed-priority jobs for several
// regions; consumers use JMS-style selectors so each only sees its
// region's jobs, and the urgent consumer drains priority >= 7 first.
//
//   $ ./selective_consumer
#include <cstdio>
#include <string>

#include "mq/queue_manager.hpp"
#include "mq/selector.hpp"
#include "mq/session.hpp"

using namespace cmx;

int main() {
  util::SystemClock clock;
  mq::QueueManager qm("QM.DISPATCH", clock);
  qm.create_queue("JOBS").expect_ok("create");

  // produce a mixed batch in one transacted session: all-or-nothing
  auto producer = qm.create_session(/*transacted=*/true);
  const struct {
    const char* region;
    int priority;
    const char* what;
  } jobs[] = {
      {"emea", 2, "nightly report"},   {"apac", 8, "failover drill"},
      {"emea", 9, "sev1 escalation"},  {"us", 4, "invoice batch"},
      {"apac", 3, "log rotation"},     {"us", 7, "cert renewal"},
  };
  for (const auto& job : jobs) {
    mq::Message msg(job.what);
    msg.set_priority(job.priority);
    msg.set_property("region", std::string(job.region));
    msg.set_property("urgent", job.priority >= 7);
    producer->put(mq::QueueAddress("", "JOBS"), std::move(msg))
        .expect_ok("stage job");
  }
  std::printf("staged %zu jobs (invisible until commit)...\n",
              std::size(jobs));
  std::printf("queue depth before commit: %zu\n",
              qm.find_queue("JOBS")->depth());
  producer->commit().expect_ok("commit batch");
  std::printf("queue depth after commit:  %zu\n\n",
              qm.find_queue("JOBS")->depth());

  // the urgent consumer drains high-priority work across all regions,
  // highest priority first
  auto urgent = mq::Selector::parse("urgent = TRUE");
  urgent.status().expect_ok("selector");
  std::printf("urgent consumer:\n");
  while (auto msg = qm.get("JOBS", 0, &urgent.value())) {
    std::printf("  [prio %d] %-6s %s\n", msg.value().priority(),
                msg.value().get_string("region")->c_str(),
                std::string(msg.value().body()).c_str());
  }

  // per-region consumers use selectors over application properties
  for (const char* region : {"emea", "apac", "us"}) {
    auto selector = mq::Selector::parse("region = '" + std::string(region) +
                                        "' AND NOT urgent");
    selector.status().expect_ok("selector");
    std::printf("%s consumer:\n", region);
    while (auto msg = qm.get("JOBS", 0, &selector.value())) {
      std::printf("  [prio %d] %s\n", msg.value().priority(),
                  std::string(msg.value().body()).c_str());
    }
  }
  std::printf("\nremaining depth: %zu\n", qm.find_queue("JOBS")->depth());
  return 0;
}
