// Operator's view of the middleware: drives a small mixed scenario (one
// in-flight conditional message, one decided failure, one unconsumed
// compensation) and dumps the decoded contents of every system queue —
// the DS.* queues of Figure 9 — via the introspection API, followed by
// a live metrics snapshot (counters plus per-stage latency quantiles)
// from the cmx::obs registry.
//
//   $ ./system_inspector
#include <iostream>

#include "cm/condition_builder.hpp"
#include "cm/introspect.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"
#include "obs/export.hpp"
#include "obs/lifecycle.hpp"
#include "obs/registry.hpp"

using namespace cmx;

int main() {
  obs::set_enabled(true);  // collect metrics for the snapshot at the end
  util::SystemClock clock;
  mq::QueueManager qm("QM.OPS", clock);
  qm.create_queue("ORDERS").expect_ok("create");
  qm.create_queue("INVOICES").expect_ok("create");
  cm::ConditionalMessagingService service(qm);

  // 1. an in-flight conditional message (nobody will read for a while)
  auto pending = service.send_message(
      "replenish stock of part 112",
      *cm::DestBuilder(mq::QueueAddress("QM.OPS", "ORDERS"), "warehouse")
           .pick_up_within(60 * cm::kMinute)
           .build(),
      {.evaluation_timeout_ms = 61 * cm::kMinute});
  pending.status().expect_ok("send pending");

  // 2. a conditional message that has been consumed and decided
  auto decided = service.send_message(
      "issue invoice 2026-1843",
      *cm::DestBuilder(mq::QueueAddress("QM.OPS", "INVOICES"), "billing")
           .pick_up_within(5 * cm::kSecond)
           .build());
  decided.status().expect_ok("send decided");
  cm::ConditionalReceiver billing(qm, "billing");
  billing.read_message("INVOICES", 1000).status().expect_ok("read");
  service.await_outcome(decided.value(), 10'000)
      .status()
      .expect_ok("outcome");
  // put the outcome notification back so the dump shows one
  // (await_outcome consumed it)
  cm::OutcomeRecord note;
  note.cm_id = decided.value();
  note.outcome = cm::Outcome::kSuccess;
  note.decided_ts = clock.now_ms();
  qm.put_local(cm::kOutcomeQueue, note.to_message()).expect_ok("re-put");

  // 3. a failed message whose compensation is waiting at the destination
  auto failed = service.send_message(
      "cancelable promo blast", "promo retracted",
      *cm::DestBuilder(mq::QueueAddress("QM.OPS", "ORDERS"), "marketing")
           .pick_up_within(50)
           .build());
  failed.status().expect_ok("send failed");
  clock.sleep_ms(80);
  service.await_outcome(failed.value(), 10'000).status().expect_ok("wait");

  // 4. a burst of quickly-decided sends so the latency histograms have
  //    enough samples for meaningful quantiles
  qm.create_queue("WORK").expect_ok("create");
  cm::ConditionalReceiver worker(qm, "worker");
  for (int i = 0; i < 100; ++i) {
    auto id = service.send_message(
        "job " + std::to_string(i),
        *cm::DestBuilder(mq::QueueAddress("QM.OPS", "WORK"), "worker")
             .pick_up_within(5 * cm::kSecond)
             .build());
    id.status().expect_ok("send job");
    worker.read_message("WORK", 1000).status().expect_ok("read job");
    service.await_outcome(id.value(), 10'000).status().expect_ok("job done");
  }

  std::cout << "\n================ system inspector ================\n";
  cm::dump_all(qm, std::cout);
  std::cout
      << "\nreading guide: the SLOG entry above is the in-flight message\n"
         "(its condition shown in the text format); DS.COMP.Q holds the\n"
         "staged compensation of the in-flight message; the ORDERS queue\n"
         "shows the unread original+compensation pair of the failed promo\n"
         "(they will annihilate on the next read) and the pending\n"
         "replenishment order.\n";

  std::cout << "\n================ metrics snapshot ================\n";
  obs::export_text(std::cout);
  std::cout << "\nlifecycle stage latencies (us):\n";
  for (int i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    const auto snap = obs::LifecycleTracer::instance().stage_snapshot(stage);
    std::cout << "  " << obs::stage_name(stage) << ": count=" << snap.count
              << " p50=" << snap.p50() << " p95=" << snap.p95()
              << " p99=" << snap.p99() << '\n';
  }
  return 0;
}
