#!/usr/bin/env bash
# Smoke test of the multi-process cluster (README "Running a multi-process
# cluster"): one sender and two receivers as separate OS processes,
# rendezvousing over ephemeral TCP ports via port files, running one short
# conditional-messaging round. Fails if any process exits non-zero or the
# round does not finish within the timeout.
#
# Usage: scripts/cluster_smoke.sh [path/to/cluster_node] [messages]
set -euo pipefail

BIN="${1:-build/examples/cluster_node}"
MESSAGES="${2:-5}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/cmx-cluster.XXXXXX")"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "cluster_smoke: $BIN not found or not executable" >&2
  exit 2
fi

"$BIN" --role receiver --name RCV1 --listen 0 \
  --port-file "$WORK/rcv1.port" --peer "SND=@$WORK/snd.port" \
  --queue ORDERS --recipient u1 --expect "$MESSAGES" &
RCV1=$!

"$BIN" --role receiver --name RCV2 --listen 0 \
  --port-file "$WORK/rcv2.port" --peer "SND=@$WORK/snd.port" \
  --queue ORDERS --recipient u2 --expect "$MESSAGES" &
RCV2=$!

"$BIN" --role sender --name SND --listen 0 \
  --port-file "$WORK/snd.port" \
  --peer "RCV1=@$WORK/rcv1.port" --peer "RCV2=@$WORK/rcv2.port" \
  --dest "RCV1/ORDERS=u1" --dest "RCV2/ORDERS=u2" \
  --messages "$MESSAGES" &
SND=$!

rc=0
wait "$SND" || rc=$?
wait "$RCV1" || rc=$((rc + $?))
wait "$RCV2" || rc=$((rc + $?))

if [[ "$rc" -ne 0 ]]; then
  echo "cluster_smoke: FAILED (rc=$rc)" >&2
  exit 1
fi
echo "cluster_smoke: OK ($MESSAGES messages, 2 receivers, 3 processes)"
