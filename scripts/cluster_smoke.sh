#!/usr/bin/env bash
# Smoke test of the multi-process cluster (README "Running a multi-process
# cluster"): one sender and two receivers as separate OS processes,
# rendezvousing over ephemeral TCP ports via port files, running one short
# conditional-messaging round. Fails if any process exits non-zero or the
# round does not finish within the timeout.
#
# Usage: scripts/cluster_smoke.sh [path/to/cluster_node] [messages] [store]
#
# The optional third argument selects a storage backend for every node
# (DESIGN.md §11): "file" or "segmented" give each node a durable store
# under the work directory; anything else (or omitting it) runs without
# durability as before.
set -euo pipefail

BIN="${1:-build/examples/cluster_node}"
MESSAGES="${2:-5}"
STORE="${3:-}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/cmx-cluster.XXXXXX")"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "cluster_smoke: $BIN not found or not executable" >&2
  exit 2
fi

store_flag() {  # $1 = node name; echoes --store SPEC or nothing
  case "$STORE" in
    file)      echo "--store file:$WORK/$1.log?sync=every_batch" ;;
    segmented) echo "--store segmented:$WORK/$1.store?sync=every_batch" ;;
    "")        ;;
    *)         echo "--store $STORE" ;;
  esac
}

# shellcheck disable=SC2046  # store_flag intentionally emits 0 or 2 words
"$BIN" --role receiver --name RCV1 --listen 0 \
  --port-file "$WORK/rcv1.port" --peer "SND=@$WORK/snd.port" \
  --queue ORDERS --recipient u1 --expect "$MESSAGES" $(store_flag rcv1) &
RCV1=$!

"$BIN" --role receiver --name RCV2 --listen 0 \
  --port-file "$WORK/rcv2.port" --peer "SND=@$WORK/snd.port" \
  --queue ORDERS --recipient u2 --expect "$MESSAGES" $(store_flag rcv2) &
RCV2=$!

"$BIN" --role sender --name SND --listen 0 \
  --port-file "$WORK/snd.port" \
  --peer "RCV1=@$WORK/rcv1.port" --peer "RCV2=@$WORK/rcv2.port" \
  --dest "RCV1/ORDERS=u1" --dest "RCV2/ORDERS=u2" \
  --messages "$MESSAGES" $(store_flag snd) &
SND=$!

rc=0
wait "$SND" || rc=$?
wait "$RCV1" || rc=$((rc + $?))
wait "$RCV2" || rc=$((rc + $?))

if [[ "$rc" -ne 0 ]]; then
  echo "cluster_smoke: FAILED (rc=$rc)" >&2
  exit 1
fi
echo "cluster_smoke: OK ($MESSAGES messages, 2 receivers, 3 processes)"
