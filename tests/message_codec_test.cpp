// Codec robustness for the v2 message frame: randomized property-bag
// round-trips (the flat sorted bag and the transit-section split must never
// change what comes back) and exhaustive truncation — decode of a frame cut
// at EVERY byte offset must fail cleanly, never crash or mis-parse.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mq/message.hpp"
#include "util/random.hpp"

namespace cmx::mq {
namespace {

std::string random_key(util::Rng& rng) {
  static const char* kPrefixes[] = {"app_", "CMX_", "CMX_XMIT_", "k", "x_"};
  std::string key = kPrefixes[rng.uniform(0, 4)];
  const int len = static_cast<int>(rng.uniform(1, 40));  // crosses the
  for (int i = 0; i < len; ++i) {  // PropKey inline/heap boundary
    key += static_cast<char>('a' + rng.uniform(0, 25));
  }
  return key;
}

PropertyValue random_value(util::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return rng.chance(0.5);
    case 1:
      return std::int64_t{rng.uniform(-1'000'000, 1'000'000)};
    case 2:
      return rng.uniform01() * 1e6;
    default: {
      std::string s;
      const int len = static_cast<int>(rng.uniform(0, 64));
      for (int i = 0; i < len; ++i) {
        s += static_cast<char>(rng.uniform(0, 255));
      }
      return s;
    }
  }
}

Message random_message(util::Rng& rng) {
  std::string body;
  const int body_len = static_cast<int>(rng.uniform(0, 256));
  for (int i = 0; i < body_len; ++i) {
    body += static_cast<char>(rng.uniform(0, 255));
  }
  Message m(std::move(body));
  if (rng.chance(0.8)) m.set_id("msg-" + std::to_string(rng.uniform(0, 999)));
  if (rng.chance(0.5)) m.set_correlation_id("corr");
  if (rng.chance(0.5)) m.set_reply_to(QueueAddress("QM", "REPLY"));
  m.set_priority(static_cast<int>(rng.uniform(0, 9)));
  m.set_persistence(rng.chance(0.5) ? Persistence::kPersistent
                                    : Persistence::kNonPersistent);
  if (rng.chance(0.5)) m.set_expiry_ms(rng.uniform(1, 1'000'000));
  m.set_put_time_ms(rng.uniform(0, 1'000'000));
  m.set_delivery_count(static_cast<int>(rng.uniform(0, 9)));
  const int props = static_cast<int>(rng.uniform(0, 12));
  for (int i = 0; i < props; ++i) {
    m.set_property(random_key(rng), random_value(rng));
  }
  return m;
}

TEST(MessageCodecTest, RandomizedRoundTrip) {
  util::Rng rng(20260806);
  for (int iter = 0; iter < 200; ++iter) {
    Message m = random_message(rng);
    auto decoded = Message::decode(m.encode());
    ASSERT_TRUE(decoded.is_ok()) << "iter " << iter;
    const Message& d = decoded.value();
    EXPECT_EQ(d.id(), m.id());
    EXPECT_EQ(d.correlation_id(), m.correlation_id());
    EXPECT_EQ(d.reply_to(), m.reply_to());
    EXPECT_EQ(d.priority(), m.priority());
    EXPECT_EQ(d.persistence(), m.persistence());
    EXPECT_EQ(d.expiry_ms(), m.expiry_ms());
    EXPECT_EQ(d.put_time_ms(), m.put_time_ms());
    EXPECT_EQ(d.delivery_count(), m.delivery_count());
    EXPECT_EQ(d.body(), m.body());
    ASSERT_EQ(d.properties().size(), m.properties().size()) << "iter " << iter;
    for (const auto& e : m.properties()) {
      const PropertyValue* v = d.properties().find(e.key.view());
      ASSERT_NE(v, nullptr) << "iter " << iter << " key " << e.key.view();
      EXPECT_EQ(*v, e.value) << "iter " << iter << " key " << e.key.view();
    }
    // Re-encoding the decoded message must reproduce the frame: encode is
    // canonical (sorted properties, fixed section order).
    EXPECT_EQ(d.encode(), m.encode()) << "iter " << iter;
  }
}

TEST(MessageCodecTest, RandomizedRoundTripSurvivesCopiesAndPatches) {
  util::Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    Message m = random_message(rng);
    m.encode();                 // prime the cache
    Message copy = m;           // shares frame + payload
    copy.note_delivery();       // patches its (cloned) frame
    auto decoded = Message::decode(copy.encode());
    ASSERT_TRUE(decoded.is_ok()) << "iter " << iter;
    EXPECT_EQ(decoded.value().delivery_count(), m.delivery_count() + 1);
    EXPECT_EQ(decoded.value().body(), m.body());
  }
}

TEST(MessageCodecTest, TruncationAtEveryOffsetFails) {
  util::Rng rng(7);
  Message m = random_message(rng);
  m.set_property("CMX_XMIT_DEST", std::string("QM2/Q"));  // transit tail too
  const std::string bytes = m.encode();
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = Message::decode(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.is_ok()) << "decode succeeded at truncation " << cut;
  }
  EXPECT_TRUE(Message::decode(bytes).is_ok());
}

TEST(MessageCodecTest, TruncationAtEveryOffsetOverInlinePayloadFrame) {
  // Same exhaustive cut, over a frame whose body rides the inline arm —
  // the decode path that lands in Payload::copy_of's memcpy branch.
  Message m(std::string(Payload::kInlineMax, 'i'));
  ASSERT_TRUE(m.payload().inline_stored());
  m.set_id("msg-inline");
  m.set_property("app_k", std::int64_t{7});
  m.set_property("CMX_XMIT_DEST", std::string("QM2/Q"));
  const std::string bytes = m.encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = Message::decode(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.is_ok()) << "decode succeeded at truncation " << cut;
  }
  auto full = Message::decode(bytes);
  ASSERT_TRUE(full.is_ok());
  EXPECT_TRUE(full.value().payload().inline_stored());
  EXPECT_EQ(full.value().body(), m.body());
}

TEST(MessageCodecTest, RoundTripAtInlineBoundarySizes) {
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, Payload::kInlineMax,
        Payload::kInlineMax + 1, std::size_t{4096}}) {
    Message m(std::string(size, 'z'));
    m.set_id("msg-" + std::to_string(size));
    auto d = Message::decode(m.encode());
    ASSERT_TRUE(d.is_ok()) << "size " << size;
    EXPECT_EQ(d.value().body(), m.body()) << "size " << size;
    EXPECT_EQ(d.value().body_size(), size);
    EXPECT_EQ(d.value().encode(), m.encode()) << "size " << size;
  }
}

TEST(MessageCodecTest, DecodeSharedAdoptsLargeFramesOnly) {
  // A batch slab holding one large and one small frame back to back: the
  // large one borrows the slab, the small one copies out (and so cannot
  // pin the slab alive — the frame-pinning rule).
  Message big(std::string(2 * Message::kFrameAdoptMinBytes, 'B'));
  big.set_id("big");
  Message small(std::string("s"));
  small.set_id("small");
  const std::string big_bytes = big.encode();
  const std::string small_bytes = small.encode();
  ASSERT_GE(big_bytes.size(), Message::kFrameAdoptMinBytes);
  ASSERT_LT(small_bytes.size(), Message::kFrameAdoptMinBytes);

  auto slab = std::make_shared<const std::string>(big_bytes + small_bytes);
  auto d_big = Message::decode_shared(slab, 0, big_bytes.size());
  ASSERT_TRUE(d_big.is_ok());
  EXPECT_TRUE(d_big.value().frame_cached());
  EXPECT_TRUE(d_big.value().frame_borrowed());
  EXPECT_EQ(d_big.value().body(), big.body());
  EXPECT_EQ(d_big.value().frame_view(), big_bytes);

  auto d_small =
      Message::decode_shared(slab, big_bytes.size(), small_bytes.size());
  ASSERT_TRUE(d_small.is_ok());
  EXPECT_TRUE(d_small.value().frame_cached());
  EXPECT_FALSE(d_small.value().frame_borrowed());
  EXPECT_EQ(d_small.value().body(), "s");

  // Dropping the borrowed message releases the slab (use_count back to 1
  // once only our local handle remains).
  const long before = slab.use_count();
  EXPECT_GT(before, 1);
  d_big = Message::decode(small_bytes);  // overwrite releases the borrow
  EXPECT_EQ(slab.use_count(), 1);

  // Out-of-range spans must fail cleanly, never read past the slab.
  EXPECT_FALSE(Message::decode_shared(slab, slab->size(), 4).is_ok());
  EXPECT_FALSE(Message::decode_shared(slab, 0, slab->size() + 1).is_ok());
  EXPECT_FALSE(Message::decode_shared(nullptr, 0, 0).is_ok());
}

TEST(MessageCodecTest, BorrowedFrameMaterializesOnMutation) {
  Message big(std::string(2 * Message::kFrameAdoptMinBytes, 'M'));
  big.set_id("borrowed");
  const std::string bytes = big.encode();
  auto slab = std::make_shared<const std::string>(bytes);
  auto decoded = Message::decode_shared(slab, 0, bytes.size());
  ASSERT_TRUE(decoded.is_ok());
  Message m = std::move(decoded).value();
  ASSERT_TRUE(m.frame_borrowed());

  // A patchable mutation (delivery count) forces a private owned frame;
  // the slab reference is released and the re-encoded frame is coherent.
  m.note_delivery();
  EXPECT_TRUE(m.frame_cached());
  EXPECT_FALSE(m.frame_borrowed());
  EXPECT_EQ(slab.use_count(), 1);
  auto again = Message::decode(m.encode());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().delivery_count(), 1);
  EXPECT_EQ(again.value().body(), big.body());
}

TEST(PropKeyTest, InlineAndHeapStorage) {
  const std::string short_key(PropKey::kInlineCapacity, 'a');
  const std::string long_key(PropKey::kInlineCapacity + 1, 'b');
  PropKey inline_key{std::string_view(short_key)};
  PropKey heap_key{std::string_view(long_key)};
  EXPECT_TRUE(inline_key.inline_stored());
  EXPECT_FALSE(heap_key.inline_stored());
  EXPECT_EQ(inline_key.view(), short_key);
  EXPECT_EQ(heap_key.view(), long_key);

  // Copies preserve content across the representation boundary.
  PropKey inline_copy = inline_key;
  PropKey heap_copy = heap_key;
  EXPECT_EQ(inline_copy.view(), short_key);
  EXPECT_EQ(heap_copy.view(), long_key);
  EXPECT_TRUE(inline_copy.inline_stored());
  EXPECT_FALSE(heap_copy.inline_stored());
}

TEST(PropertyBagTest, SortedIterationAndLookup) {
  PropertyBag bag;
  bag.set("zeta", std::int64_t{1});
  bag.set("alpha", std::int64_t{2});
  bag.set("mid", std::int64_t{3});
  std::vector<std::string> order;
  for (const auto& e : bag) order.emplace_back(e.key.view());
  EXPECT_EQ(order, (std::vector<std::string>{"alpha", "mid", "zeta"}));
  EXPECT_TRUE(bag.contains("mid"));
  EXPECT_FALSE(bag.contains("missing"));
  EXPECT_TRUE(bag.erase("mid"));
  EXPECT_FALSE(bag.erase("mid"));
  EXPECT_EQ(bag.size(), 2u);
}

}  // namespace
}  // namespace cmx::mq
