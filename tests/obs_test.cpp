// Tests for the cmx::obs metrics subsystem: histogram bucket geometry
// and quantiles, lock-free counters/histograms under concurrent
// hammering, registry identity/reset semantics, JSON export, and an
// end-to-end check that one conditional send crossing a network touches
// every lifecycle stage exactly once.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "obs/export.hpp"
#include "obs/lifecycle.hpp"
#include "obs/registry.hpp"

namespace cmx::obs {
namespace {

// The registry is process-global; each test starts from a clean slate
// and leaves collection disabled for whoever runs next.
class ObsTest : public ::testing::Test {
 protected:
  ObsTest() {
    set_enabled(true);
    MetricsRegistry::instance().reset();
  }
  ~ObsTest() override { set_enabled(false); }
};

// ---------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------

TEST_F(ObsTest, BucketIndexIsExactInLinearRegion) {
  for (std::uint64_t v = 0; v < Histogram::kLinearLimit; ++v) {
    const int i = Histogram::bucket_index(v);
    EXPECT_EQ(i, static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_lower(i), v);
    EXPECT_EQ(Histogram::bucket_upper(i), v + 1);
  }
}

TEST_F(ObsTest, EveryValueFallsInsideItsBucket) {
  for (std::uint64_t v : {8ull, 9ull, 15ull, 16ull, 100ull, 1000ull,
                          65535ull, 65536ull, 1'000'000ull,
                          123'456'789ull, (1ull << 41), (1ull << 50)}) {
    const int i = Histogram::bucket_index(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, Histogram::kBucketCount);
    EXPECT_LE(Histogram::bucket_lower(i), v) << "value " << v;
    if (i + 1 < Histogram::kBucketCount) {
      EXPECT_LT(v, Histogram::bucket_upper(i)) << "value " << v;
    }
  }
}

TEST_F(ObsTest, BucketIndexIsMonotonic) {
  int prev = -1;
  for (std::uint64_t v = 0; v < (1ull << 20); v = v < 64 ? v + 1 : v * 2) {
    const int i = Histogram::bucket_index(v);
    EXPECT_GE(i, prev) << "value " << v;
    prev = i;
  }
}

TEST_F(ObsTest, BucketRelativeWidthBounded) {
  // Log-linear with 4 sub-buckets: width/lower <= 1/4 above the linear
  // region — the bound behind the quantile error guarantee.
  for (int i = Histogram::kLinearLimit; i < Histogram::kBucketCount - 1;
       ++i) {
    const auto lower = Histogram::bucket_lower(i);
    const auto width = Histogram::bucket_upper(i) - lower;
    EXPECT_LE(width * 4, lower) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------
// Histogram recording and quantiles
// ---------------------------------------------------------------------

TEST_F(ObsTest, SmallValuesGiveExactQuantiles) {
  Histogram h;
  for (std::uint64_t v = 0; v < 8; ++v) {
    for (int n = 0; n < 10; ++n) h.record(v);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 80u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 7u);
  EXPECT_EQ(snap.quantile(0.0), 0u);
  EXPECT_EQ(snap.quantile(1.0), 7u);
  // The 40th sample (p50) is the last 3; linear-region buckets are
  // exact, so the interpolated estimate stays within the bucket [3, 4).
  EXPECT_EQ(snap.p50(), 3u);
}

TEST_F(ObsTest, QuantileErrorBoundedByBucketWidth) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10'000; ++v) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 10'000u);
  EXPECT_EQ(snap.sum, 10'000ull * 10'001 / 2);
  for (double q : {0.50, 0.90, 0.95, 0.99}) {
    const double exact = q * 10'000;
    const double estimate = static_cast<double>(snap.quantile(q));
    EXPECT_NEAR(estimate, exact, exact * 0.25) << "q=" << q;
  }
}

TEST_F(ObsTest, EmptyHistogramSnapshotsToZero) {
  Histogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.p50(), 0u);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST_F(ObsTest, ResetZeroesInPlace) {
  auto& h = MetricsRegistry::instance().histogram("t.reset_us");
  auto& c = MetricsRegistry::instance().counter("t.reset");
  h.record(42);
  c.inc(7);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(c.value(), 0u);
  // Identity survives reset: the same objects are returned afterwards.
  EXPECT_EQ(&h, &MetricsRegistry::instance().histogram("t.reset_us"));
  EXPECT_EQ(&c, &MetricsRegistry::instance().counter("t.reset"));
}

// ---------------------------------------------------------------------
// Concurrency: exact totals under hammering from N threads
// ---------------------------------------------------------------------

TEST_F(ObsTest, ConcurrentCounterTotalsAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  auto& c = MetricsRegistry::instance().counter("t.hammer");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, ConcurrentHistogramTotalsAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  auto& h = MetricsRegistry::instance().histogram("t.hammer_us");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Distinct per-thread values spread across buckets, min 1, max 8000.
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record((t + 1) * 1000);
      }
      h.record(1);
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * (kPerThread + 1));
  EXPECT_EQ(snap.sum,
            kPerThread * 1000 * (kThreads * (kThreads + 1) / 2) + kThreads);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 8000u);
}

TEST_F(ObsTest, ConcurrentRegistryLookupsYieldOneMetric) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      auto& c = MetricsRegistry::instance().counter("t.lookup_race");
      c.inc();
      seen[t] = &c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
}

// ---------------------------------------------------------------------
// Enable toggle and export
// ---------------------------------------------------------------------

TEST_F(ObsTest, DisabledMacrosCollectNothing) {
  set_enabled(false);
  CMX_OBS_COUNT("t.toggled", 1);
  CMX_OBS_RECORD("t.toggled_us", 5);
  set_enabled(true);
  CMX_OBS_COUNT("t.toggled", 1);
  CMX_OBS_RECORD("t.toggled_us", 5);
  EXPECT_EQ(MetricsRegistry::instance().counter("t.toggled").value(), 1u);
  EXPECT_EQ(
      MetricsRegistry::instance().histogram("t.toggled_us").snapshot().count,
      1u);
}

TEST_F(ObsTest, JsonExportContainsAllSections) {
  MetricsRegistry::instance().counter("t.json_counter").inc(3);
  MetricsRegistry::instance().gauge("t.json_gauge").set(-5);
  MetricsRegistry::instance().histogram("t.json_us").record(100);
  const std::string json = export_json();
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"t.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"t.json_gauge\": -5"), std::string::npos);
  EXPECT_NE(json.find("\"t.json_us\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: one conditional send touches every lifecycle stage once
// ---------------------------------------------------------------------

class ObsLifecycleE2ETest : public ObsTest {
 protected:
  ObsLifecycleE2ETest() {
    qm_sender_ = std::make_unique<mq::QueueManager>("QMA", clock_);
    qm_recv_ = std::make_unique<mq::QueueManager>("QMB", clock_);
    qm_recv_->create_queue("IN1").expect_ok("create");
    net_ = std::make_unique<mq::Network>();
    net_->add(*qm_sender_);
    net_->add(*qm_recv_);
    service_ =
        std::make_unique<cm::ConditionalMessagingService>(*qm_sender_);
  }
  ~ObsLifecycleE2ETest() override {
    service_.reset();
    net_->shutdown();
  }

  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_sender_;
  std::unique_ptr<mq::QueueManager> qm_recv_;
  std::unique_ptr<mq::Network> net_;
  std::unique_ptr<cm::ConditionalMessagingService> service_;
};

TEST_F(ObsLifecycleE2ETest, ConditionalSendTouchesEveryStageExactlyOnce) {
  auto cond = cm::DestBuilder(mq::QueueAddress("QMB", "IN1"), "worker")
                  .processing_within(10 * cm::kSecond)
                  .build();
  auto cm_id = service_->send_message("job", *cond);
  ASSERT_TRUE(cm_id.is_ok());

  cm::ConditionalReceiver rx(*qm_recv_, "worker");
  ASSERT_TRUE(rx.begin_tx());
  ASSERT_TRUE(rx.read_message("IN1", 5000).is_ok());
  ASSERT_TRUE(rx.commit_tx());
  auto record = service_->await_outcome(cm_id.value(), 60 * cm::kSecond);
  ASSERT_TRUE(record.is_ok());
  ASSERT_EQ(record.value().outcome, cm::Outcome::kSuccess);

  auto& tracer = LifecycleTracer::instance();
  for (Stage stage :
       {Stage::kSend, Stage::kSlogAppend, Stage::kChannelTransit,
        Stage::kPickup, Stage::kProcessingAck, Stage::kOutcomeDispatch}) {
    EXPECT_EQ(tracer.stage_count(stage), 1u) << stage_name(stage);
    EXPECT_EQ(tracer.stage_snapshot(stage).count, 1u) << stage_name(stage);
  }
  // The supporting metrics saw traffic too.
  EXPECT_GT(MetricsRegistry::instance().counter("mq.put").value(), 0u);
  EXPECT_GT(MetricsRegistry::instance().counter("mq.get").value(), 0u);
  // The ack's transfer is counted on the channel thread right after the
  // delivering put, so it can trail await_outcome by an instant.
  auto& transferred = MetricsRegistry::instance().counter("channel.transferred");
  for (int i = 0; i < 2000 && transferred.value() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(transferred.value(), 2u);  // data message out, ack back
}

TEST_F(ObsLifecycleE2ETest, DisabledRunTracesNoStages) {
  set_enabled(false);
  auto cond = cm::DestBuilder(mq::QueueAddress("QMB", "IN1"), "worker")
                  .pick_up_within(10 * cm::kSecond)
                  .build();
  auto cm_id = service_->send_message("job", *cond);
  ASSERT_TRUE(cm_id.is_ok());
  cm::ConditionalReceiver rx(*qm_recv_, "worker");
  ASSERT_TRUE(rx.read_message("IN1", 5000).is_ok());
  ASSERT_TRUE(
      service_->await_outcome(cm_id.value(), 60 * cm::kSecond).is_ok());

  auto& tracer = LifecycleTracer::instance();
  for (int i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(tracer.stage_count(static_cast<Stage>(i)), 0u);
  }
}

}  // namespace
}  // namespace cmx::obs
