#include <gtest/gtest.h>

#include <algorithm>

#include "cm/conditional_publisher.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/pubsub.hpp"
#include "tests/test_support.hpp"

namespace cmx::mq {
namespace {

// ---------------------------------------------------------------------
// Topic pattern matching
// ---------------------------------------------------------------------

struct MatchCase {
  const char* pattern;
  const char* topic;
  bool expected;
};

class TopicMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(TopicMatch, Evaluates) {
  EXPECT_EQ(topic_matches(GetParam().pattern, GetParam().topic),
            GetParam().expected)
      << GetParam().pattern << " vs " << GetParam().topic;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, TopicMatch,
    ::testing::Values(
        MatchCase{"a.b.c", "a.b.c", true},
        MatchCase{"a.b.c", "a.b.d", false},
        MatchCase{"a.b.c", "a.b", false},
        MatchCase{"a.b", "a.b.c", false},
        MatchCase{"a.*.c", "a.b.c", true},
        MatchCase{"a.*.c", "a.x.c", true},
        MatchCase{"a.*.c", "a.b.d", false},
        MatchCase{"a.*.c", "a.c", false},       // * matches exactly one level
        MatchCase{"*", "a", true},
        MatchCase{"*", "a.b", false},
        MatchCase{"a.#", "a", true},  // '#' matches zero trailing levels too
        MatchCase{"a.#", "a.b", true},
        MatchCase{"a.#", "a.b.c.d", true},
        MatchCase{"#", "a.b.c", true},
        MatchCase{"#", "a", true},
        MatchCase{"a.#.c", "a.b.c", false}));    // # only valid at the end

// ---------------------------------------------------------------------
// Broker
// ---------------------------------------------------------------------

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() : qm_("QM", clock_), broker_(qm_) {}
  util::SimClock clock_;
  QueueManager qm_;
  TopicBroker broker_;
};

TEST_F(BrokerTest, PublishReachesMatchingSubscriptions) {
  auto emea = broker_.subscribe("market.emea.*");
  auto all = broker_.subscribe("market.#");
  auto apac = broker_.subscribe("market.apac.*");
  ASSERT_TRUE(emea.is_ok());
  ASSERT_TRUE(all.is_ok());
  ASSERT_TRUE(apac.is_ok());

  ASSERT_TRUE(broker_.publish("market.emea.fx", Message("tick")));
  EXPECT_EQ(qm_.find_queue(emea.value().queue)->depth(), 1u);
  EXPECT_EQ(qm_.find_queue(all.value().queue)->depth(), 1u);
  EXPECT_EQ(qm_.find_queue(apac.value().queue)->depth(), 0u);

  auto got = qm_.get(emea.value().queue, 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "tick");
  EXPECT_EQ(got.value().get_string(kTopicProperty), "market.emea.fx");
}

TEST_F(BrokerTest, EachDeliveryIsAnIndependentMessage) {
  auto s1 = broker_.subscribe("t");
  auto s2 = broker_.subscribe("t");
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  ASSERT_TRUE(broker_.publish("t", Message("x")));
  auto m1 = qm_.get(s1.value().queue, 0);
  auto m2 = qm_.get(s2.value().queue, 0);
  ASSERT_TRUE(m1.is_ok());
  ASSERT_TRUE(m2.is_ok());
  EXPECT_NE(m1.value().id(), m2.value().id());  // distinct message identities
}

TEST_F(BrokerTest, SelectorSubscription) {
  auto urgent =
      broker_.subscribe("alerts.#", {.selector = "severity >= 3"});
  ASSERT_TRUE(urgent.is_ok());
  Message low("low");
  low.set_property("severity", std::int64_t{1});
  Message high("high");
  high.set_property("severity", std::int64_t{5});
  ASSERT_TRUE(broker_.publish("alerts.db", low));
  ASSERT_TRUE(broker_.publish("alerts.db", high));
  auto got = qm_.get(urgent.value().queue, 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "high");
  EXPECT_EQ(qm_.get(urgent.value().queue, 0).code(),
            util::ErrorCode::kTimeout);
  EXPECT_EQ(broker_.stats().selector_filtered, 1u);
}

TEST_F(BrokerTest, BadSelectorRejected) {
  auto bad = broker_.subscribe("t", {.selector = "((("});
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(BrokerTest, UnmatchedPublishSucceedsAndIsCounted) {
  ASSERT_TRUE(broker_.publish("nobody.cares", Message("x")));
  EXPECT_EQ(broker_.stats().unmatched_publishes, 1u);
  EXPECT_EQ(broker_.stats().published, 1u);
}

TEST_F(BrokerTest, DurabilityControlsPersistenceClass) {
  auto durable = broker_.subscribe("t", {.durable = true});
  auto volatile_sub = broker_.subscribe("t", {.durable = false});
  ASSERT_TRUE(durable.is_ok());
  ASSERT_TRUE(volatile_sub.is_ok());
  Message m("event");
  m.set_persistence(Persistence::kPersistent);
  ASSERT_TRUE(broker_.publish("t", m));
  EXPECT_TRUE(qm_.get(durable.value().queue, 0).value().persistent());
  EXPECT_FALSE(qm_.get(volatile_sub.value().queue, 0).value().persistent());
}

TEST_F(BrokerTest, NamedSubscriptionsAndDuplicates) {
  auto named = broker_.subscribe("t", {.name = "reports"});
  ASSERT_TRUE(named.is_ok());
  EXPECT_EQ(named.value().name, "reports");
  EXPECT_TRUE(broker_.find("reports").has_value());
  auto dup = broker_.subscribe("other", {.name = "reports"});
  EXPECT_EQ(dup.code(), util::ErrorCode::kAlreadyExists);
}

TEST_F(BrokerTest, UnsubscribeRemovesQueue) {
  auto sub = broker_.subscribe("t", {.name = "temp"});
  ASSERT_TRUE(sub.is_ok());
  ASSERT_TRUE(broker_.unsubscribe("temp"));
  EXPECT_EQ(qm_.find_queue(sub.value().queue), nullptr);
  EXPECT_EQ(broker_.unsubscribe("temp").code(), util::ErrorCode::kNotFound);
  ASSERT_TRUE(broker_.publish("t", Message("x")));  // no crash, unmatched
}

TEST(BrokerRecoveryTest, DurableSubscriptionsSurviveRestart) {
  util::SimClock clock;
  auto store = std::make_shared<MemoryStore>();
  {
    auto qm = cmx::test::make_qm("QM", clock, store);
    qm->recover().expect_ok("recover qm");
    TopicBroker broker(*qm);
    ASSERT_TRUE(broker
                    .subscribe("alerts.#", {.durable = true,
                                            .selector = "severity >= 2",
                                            .name = "ops"})
                    .is_ok());
    ASSERT_TRUE(broker.subscribe("alerts.#", {.durable = false,
                                              .name = "ephemeral"})
                    .is_ok());
    // a persistent message waits on the durable subscription
    Message m("pending-alert");
    m.set_property("severity", std::int64_t{4});
    ASSERT_TRUE(broker.publish("alerts.db", m));
  }

  // restart: new queue manager over the same store, new broker
  auto qm = cmx::test::make_qm("QM", clock, store);
  qm->recover().expect_ok("recover qm");
  TopicBroker broker(*qm);
  ASSERT_TRUE(broker.recover());
  ASSERT_EQ(broker.subscriptions().size(), 1u);  // only the durable one
  auto ops = broker.find("ops");
  ASSERT_TRUE(ops.has_value());
  EXPECT_EQ(ops->pattern, "alerts.#");
  EXPECT_TRUE(ops->durable);

  // the queued message survived and the selector still applies
  auto got = qm->get(ops->queue, 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "pending-alert");
  Message low("low");
  low.set_property("severity", std::int64_t{1});
  ASSERT_TRUE(broker.publish("alerts.db", low));
  EXPECT_EQ(qm->get(ops->queue, 0).code(), util::ErrorCode::kTimeout);
}

TEST(BrokerRecoveryTest, UnsubscribedDurableDoesNotResurrect) {
  util::SimClock clock;
  auto store = std::make_shared<MemoryStore>();
  {
    auto qm = cmx::test::make_qm("QM", clock, store);
    qm->recover().expect_ok("recover qm");
    TopicBroker broker(*qm);
    ASSERT_TRUE(
        broker.subscribe("t", {.durable = true, .name = "gone"}).is_ok());
    ASSERT_TRUE(broker.unsubscribe("gone"));
  }
  auto qm = cmx::test::make_qm("QM", clock, store);
  qm->recover().expect_ok("recover qm");
  TopicBroker broker(*qm);
  ASSERT_TRUE(broker.recover());
  EXPECT_TRUE(broker.subscriptions().empty());
}

TEST_F(BrokerTest, MatchingSnapshot) {
  broker_.subscribe("a.#", {.name = "s1"});
  broker_.subscribe("a.b", {.name = "s2"});
  broker_.subscribe("c", {.name = "s3"});
  auto matched = broker_.matching("a.b");
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_EQ(broker_.subscriptions().size(), 3u);
}

// ---------------------------------------------------------------------
// Subscription index (enqueue-time matching; DESIGN.md §12)
// ---------------------------------------------------------------------

// Publish the same traffic through the index arm and the interpretive
// arm; delivered depths must be identical. The index arm must have probed
// and must expose the synthetic topic key plus the selector's hot key.
TEST(BrokerIndexTest, IndexArmRoutesIdenticallyToInterpretive) {
  auto run = [](bool index_on) {
    set_selector_index_enabled(index_on);
    util::SimClock clock;
    QueueManager qm("QM", clock);
    TopicBroker broker(qm);
    const auto exact = broker.subscribe("news.sports").value();
    const auto wild = broker.subscribe("news.#").value();
    const auto sel =
        broker.subscribe("news.*", {.selector = "grp = 'a' AND qty > 2"})
            .value();
    const auto other = broker.subscribe("weather.eu").value();
    const char* const topics[] = {"news.sports", "news.politics",
                                  "weather.eu", "news.sports.extra",
                                  "news.tech"};
    int i = 0;
    for (const char* topic : topics) {
      Message m("x");
      m.set_property("grp", std::string(i % 2 == 0 ? "a" : "b"));
      m.set_property("qty", std::int64_t(i + 2));
      EXPECT_TRUE(broker.publish(topic, m));
      ++i;
    }
    std::vector<std::size_t> depths;
    for (const auto& info : {exact, wild, sel, other}) {
      depths.push_back(qm.find_queue(info.queue)->depth());
    }
    if (index_on) {
      EXPECT_GT(broker.index_stats().probes, 0u);
      const auto keys = broker.indexed_keys();
      EXPECT_NE(std::find(keys.begin(), keys.end(), kTopicProperty),
                keys.end());
      EXPECT_NE(std::find(keys.begin(), keys.end(), "grp"), keys.end());
      EXPECT_NE(std::find(keys.begin(), keys.end(), "qty"), keys.end());
    } else {
      EXPECT_EQ(broker.index_stats().probes, 0u);
    }
    set_selector_index_enabled(true);
    return depths;
  };
  const auto indexed = run(true);
  EXPECT_EQ(indexed, run(false));
  // Sanity on the fixed traffic: exact=1, wildcard=4, selector=1, other=1.
  EXPECT_EQ(indexed,
            (std::vector<std::size_t>{1, 4, 1, 1}));
}

TEST(BrokerIndexTest, UnsubscribeUnregistersIndexedKeys) {
  util::SimClock clock;
  QueueManager qm("QM", clock);
  TopicBroker broker(qm);
  const auto sub =
      broker.subscribe("news", {.selector = "grp = 'a'"}).value();
  EXPECT_FALSE(broker.indexed_keys().empty());
  ASSERT_TRUE(broker.unsubscribe(sub.name));
  EXPECT_TRUE(broker.indexed_keys().empty());
  // Publishing after removal routes nowhere but stays healthy.
  ASSERT_TRUE(broker.publish("news", Message("x")));
  EXPECT_EQ(broker.stats().unmatched_publishes, 1u);
}

}  // namespace
}  // namespace cmx::mq

// ---------------------------------------------------------------------
// Conditional publish (publisher-side conditions over subscribers)
// ---------------------------------------------------------------------

namespace cmx::cm {
namespace {

class ConditionalPublishTest : public ::testing::Test {
 protected:
  ConditionalPublishTest()
      : qm_("QM", clock_), broker_(qm_), service_(qm_),
        publisher_(service_, broker_) {}

  util::SimClock clock_;
  mq::QueueManager qm_;
  mq::TopicBroker broker_;
  ConditionalMessagingService service_;
  ConditionalPublisher publisher_;
};

TEST_F(ConditionalPublishTest, AllSubscribersReadInTime) {
  auto s1 = broker_.subscribe("news.#", {.name = "desk1"});
  auto s2 = broker_.subscribe("news.tech", {.name = "desk2"});
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());

  PublishConditions conditions;
  conditions.pick_up_within = 1000;
  auto cm_id = publisher_.publish("news.tech", "headline", conditions);
  ASSERT_TRUE(cm_id.is_ok());

  // Note: conditional publish fans out through the conditional messaging
  // service (one message per subscription queue), with the topic stamped.
  ConditionalReceiver rx1(qm_, "desk1-reader");
  auto got = rx1.read_message(s1.value().queue, 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "headline");
  EXPECT_EQ(got.value().message.get_string(mq::kTopicProperty), "news.tech");

  ConditionalReceiver rx2(qm_, "desk2-reader");
  ASSERT_TRUE(rx2.read_message(s2.value().queue, 0).is_ok());

  auto outcome = service_.await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
}

TEST_F(ConditionalPublishTest, KOfNSubscribers) {
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(broker_.subscribe("evt", {.name = name}).is_ok());
  }
  PublishConditions conditions;
  conditions.pick_up_within = 1000;
  conditions.min_subscribers = 2;
  auto cm_id = publisher_.publish("evt", "payload", conditions);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(qm_, "reader");
  ASSERT_TRUE(
      rx.read_message(broker_.find("a")->queue, 0).is_ok());
  ASSERT_TRUE(
      rx.read_message(broker_.find("c")->queue, 0).is_ok());
  auto outcome = service_.await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
}

TEST_F(ConditionalPublishTest, TooFewReadersFailsAndCompensates) {
  for (const char* name : {"a", "b"}) {
    ASSERT_TRUE(broker_.subscribe("evt", {.name = name}).is_ok());
  }
  PublishConditions conditions;
  conditions.pick_up_within = 500;
  auto cm_id =
      publisher_.publish("evt", "payload", "retraction", conditions);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(qm_, "reader");
  ASSERT_TRUE(rx.read_message(broker_.find("a")->queue, 0).is_ok());
  clock_.advance_ms(501);  // subscriber b never reads
  auto outcome = service_.await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kFailure);

  // reader a consumed the event: it receives the retraction
  ASSERT_TRUE(test::eventually([&] {
    return qm_.find_queue(broker_.find("a")->queue)->depth() == 1u;
  }));
  auto comp = rx.read_message(broker_.find("a")->queue, 0);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
  EXPECT_EQ(comp.value().body(), "retraction");
}

TEST_F(ConditionalPublishTest, ProcessingConditionOverSubscribers) {
  ASSERT_TRUE(broker_.subscribe("job", {.name = "worker"}).is_ok());
  PublishConditions conditions;
  conditions.processing_within = 1000;
  auto cm_id = publisher_.publish("job", "task", conditions);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(qm_, "w1");
  ASSERT_TRUE(rx.begin_tx());
  ASSERT_TRUE(rx.read_message(broker_.find("worker")->queue, 0).is_ok());
  ASSERT_TRUE(rx.commit_tx());
  auto outcome = service_.await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
}

TEST_F(ConditionalPublishTest, NoMatchingSubscriptionRejected) {
  PublishConditions conditions;
  conditions.pick_up_within = 100;
  auto result = publisher_.publish("ghost.topic", "x", conditions);
  EXPECT_EQ(result.code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(ConditionalPublishTest, CardinalityBeyondSubscribersRejected) {
  ASSERT_TRUE(broker_.subscribe("t", {.name = "only"}).is_ok());
  PublishConditions conditions;
  conditions.pick_up_within = 100;
  conditions.min_subscribers = 3;
  EXPECT_EQ(publisher_.publish("t", "x", conditions).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST_F(ConditionalPublishTest, NoDeadlineRejected) {
  ASSERT_TRUE(broker_.subscribe("t", {.name = "s"}).is_ok());
  EXPECT_EQ(publisher_.publish("t", "x", PublishConditions{}).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST_F(ConditionalPublishTest, SubscriptionSnapshotAtPublishTime) {
  ASSERT_TRUE(broker_.subscribe("t", {.name = "early"}).is_ok());
  PublishConditions conditions;
  conditions.pick_up_within = 1000;
  auto cm_id = publisher_.publish("t", "x", conditions);
  ASSERT_TRUE(cm_id.is_ok());
  // A subscriber arriving after the publish is NOT part of the condition.
  ASSERT_TRUE(broker_.subscribe("t", {.name = "late"}).is_ok());
  ConditionalReceiver rx(qm_, "reader");
  ASSERT_TRUE(rx.read_message(broker_.find("early")->queue, 0).is_ok());
  auto outcome = service_.await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
  // and it received nothing (the conditional fan-out predates it)
  EXPECT_EQ(qm_.find_queue(broker_.find("late")->queue)->depth(), 0u);
}

}  // namespace
}  // namespace cmx::cm
