#include <gtest/gtest.h>

#include "txn/coordinator.hpp"
#include "txn/kvstore.hpp"

namespace cmx::txn {
namespace {

// ---------------------------------------------------------------------
// TxKvStore
// ---------------------------------------------------------------------

TEST(TxKvStoreTest, ReadYourWrites) {
  TxKvStore store("db");
  ASSERT_TRUE(store.put("t1", "k", "v1"));
  EXPECT_EQ(store.get("t1", "k").value(), "v1");
  // uncommitted writes invisible outside the transaction
  EXPECT_FALSE(store.read_committed("k").has_value());
}

TEST(TxKvStoreTest, CommitPublishes) {
  TxKvStore store("db");
  ASSERT_TRUE(store.put("t1", "k", "v1"));
  EXPECT_EQ(store.prepare("t1"), Vote::kCommit);
  store.commit("t1");
  EXPECT_EQ(store.read_committed("k"), "v1");
  EXPECT_EQ(store.committed_size(), 1u);
  EXPECT_EQ(store.active_transactions(), 0u);
}

TEST(TxKvStoreTest, RollbackDiscards) {
  TxKvStore store("db");
  ASSERT_TRUE(store.put("t1", "k", "v1"));
  store.rollback("t1");
  EXPECT_FALSE(store.read_committed("k").has_value());
  EXPECT_EQ(store.active_transactions(), 0u);
}

TEST(TxKvStoreTest, EraseTombstone) {
  TxKvStore store("db");
  ASSERT_TRUE(store.put("t1", "k", "v"));
  store.prepare("t1");
  store.commit("t1");
  ASSERT_TRUE(store.erase("t2", "k"));
  EXPECT_EQ(store.get("t2", "k").code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(store.read_committed("k"), "v");  // still committed
  store.prepare("t2");
  store.commit("t2");
  EXPECT_FALSE(store.read_committed("k").has_value());
}

TEST(TxKvStoreTest, WriteConflictFailsFast) {
  TxKvStore store("db");
  ASSERT_TRUE(store.put("t1", "k", "a"));
  auto s = store.put("t2", "k", "b");
  EXPECT_EQ(s.code(), util::ErrorCode::kConflict);
  // disjoint keys fine
  EXPECT_TRUE(store.put("t2", "other", "b"));
  // lock released after commit
  store.prepare("t1");
  store.commit("t1");
  EXPECT_TRUE(store.put("t2", "k", "b"));
}

TEST(TxKvStoreTest, ConflictReleasedByRollback) {
  TxKvStore store("db");
  ASSERT_TRUE(store.put("t1", "k", "a"));
  store.rollback("t1");
  EXPECT_TRUE(store.put("t2", "k", "b"));
}

TEST(TxKvStoreTest, PreparedTransactionRejectsNewWrites) {
  TxKvStore store("db");
  ASSERT_TRUE(store.put("t1", "k", "a"));
  EXPECT_EQ(store.prepare("t1"), Vote::kCommit);
  EXPECT_EQ(store.put("t1", "k2", "b").code(),
            util::ErrorCode::kFailedPrecondition);
}

TEST(TxKvStoreTest, FailNextPrepareVotesAbortAndReleases) {
  TxKvStore store("db");
  store.fail_next_prepare();
  ASSERT_TRUE(store.put("t1", "k", "a"));
  EXPECT_EQ(store.prepare("t1"), Vote::kAbort);
  // locks released; a new transaction can proceed and prepare normally
  ASSERT_TRUE(store.put("t2", "k", "b"));
  EXPECT_EQ(store.prepare("t2"), Vote::kCommit);
}

TEST(TxKvStoreTest, EmptyTransactionPreparesTrivially) {
  TxKvStore store("db");
  EXPECT_EQ(store.prepare("ghost"), Vote::kCommit);
  store.commit("ghost");  // no-op
  store.rollback("ghost2");  // no-op
}

// ---------------------------------------------------------------------
// TwoPhaseCoordinator
// ---------------------------------------------------------------------

TEST(CoordinatorTest, CommitAllResources) {
  TwoPhaseCoordinator coord;
  TxKvStore a("a"), b("b");
  const auto tx = coord.begin();
  ASSERT_TRUE(coord.enlist(tx, a));
  ASSERT_TRUE(coord.enlist(tx, b));
  ASSERT_TRUE(a.put(tx, "x", "1"));
  ASSERT_TRUE(b.put(tx, "y", "2"));
  auto decision = coord.commit(tx);
  ASSERT_TRUE(decision.is_ok());
  EXPECT_EQ(decision.value(), Decision::kCommitted);
  EXPECT_EQ(a.read_committed("x"), "1");
  EXPECT_EQ(b.read_committed("y"), "2");
  EXPECT_EQ(coord.decision(tx), Decision::kCommitted);
}

TEST(CoordinatorTest, OneAbortVoteRollsBackEverything) {
  TwoPhaseCoordinator coord;
  TxKvStore a("a"), b("b");
  b.fail_next_prepare();
  const auto tx = coord.begin();
  ASSERT_TRUE(coord.enlist(tx, a));
  ASSERT_TRUE(coord.enlist(tx, b));
  ASSERT_TRUE(a.put(tx, "x", "1"));
  ASSERT_TRUE(b.put(tx, "y", "2"));
  auto decision = coord.commit(tx);
  ASSERT_TRUE(decision.is_ok());
  EXPECT_EQ(decision.value(), Decision::kAborted);
  EXPECT_FALSE(a.read_committed("x").has_value());
  EXPECT_FALSE(b.read_committed("y").has_value());
  EXPECT_EQ(a.active_transactions(), 0u);
  EXPECT_EQ(b.active_transactions(), 0u);
}

TEST(CoordinatorTest, ExplicitRollback) {
  TwoPhaseCoordinator coord;
  TxKvStore a("a");
  const auto tx = coord.begin();
  ASSERT_TRUE(coord.enlist(tx, a));
  ASSERT_TRUE(a.put(tx, "x", "1"));
  ASSERT_TRUE(coord.rollback(tx));
  EXPECT_FALSE(a.read_committed("x").has_value());
  EXPECT_EQ(coord.decision(tx), Decision::kAborted);
}

TEST(CoordinatorTest, UnknownTransactionErrors) {
  TwoPhaseCoordinator coord;
  TxKvStore a("a");
  EXPECT_EQ(coord.enlist("nope", a).code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(coord.commit("nope").code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(coord.rollback("nope").code(), util::ErrorCode::kNotFound);
  EXPECT_FALSE(coord.decision("nope").has_value());
}

TEST(CoordinatorTest, CommitTwiceFails) {
  TwoPhaseCoordinator coord;
  const auto tx = coord.begin();
  ASSERT_TRUE(coord.commit(tx).is_ok());
  EXPECT_EQ(coord.commit(tx).code(), util::ErrorCode::kNotFound);
}

TEST(CoordinatorTest, DoubleEnlistIsIdempotent) {
  TwoPhaseCoordinator coord;
  TxKvStore a("a");
  const auto tx = coord.begin();
  ASSERT_TRUE(coord.enlist(tx, a));
  ASSERT_TRUE(coord.enlist(tx, a));
  ASSERT_TRUE(a.put(tx, "x", "1"));
  EXPECT_EQ(coord.commit(tx).value(), Decision::kCommitted);
  EXPECT_EQ(a.read_committed("x"), "1");  // applied exactly once
}

TEST(CoordinatorTest, StatsTrackDecisions) {
  TwoPhaseCoordinator coord;
  TxKvStore flaky("flaky");
  auto t1 = coord.begin();
  coord.commit(t1);
  auto t2 = coord.begin();
  flaky.fail_next_prepare();
  coord.enlist(t2, flaky);
  coord.commit(t2);
  auto t3 = coord.begin();
  coord.rollback(t3);
  auto stats = coord.stats();
  EXPECT_EQ(stats.begun, 3u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted, 2u);
}

TEST(CoordinatorTest, IndependentTransactionsInterleave) {
  TwoPhaseCoordinator coord;
  TxKvStore store("db");
  const auto t1 = coord.begin();
  const auto t2 = coord.begin();
  ASSERT_TRUE(coord.enlist(t1, store));
  ASSERT_TRUE(coord.enlist(t2, store));
  ASSERT_TRUE(store.put(t1, "a", "1"));
  ASSERT_TRUE(store.put(t2, "b", "2"));
  EXPECT_EQ(coord.commit(t1).value(), Decision::kCommitted);
  EXPECT_EQ(coord.commit(t2).value(), Decision::kCommitted);
  EXPECT_EQ(store.read_committed("a"), "1");
  EXPECT_EQ(store.read_committed("b"), "2");
}

}  // namespace
}  // namespace cmx::txn
