// Shared helpers for the cmx test suite.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "mq/queue_manager.hpp"
#include "util/clock.hpp"

namespace cmx::test {

// Spin-waits (real time) until pred() is true, up to `cap_ms`. Returns the
// final pred() value. For asserting on state reached by background threads
// (evaluation manager, channel movers) without fixed sleeps.
inline bool eventually(const std::function<bool()>& pred,
                       int cap_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(cap_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// Convenience queue-manager factory with durable MemoryStore semantics.
inline std::unique_ptr<mq::QueueManager> make_qm(
    const std::string& name, util::Clock& clock,
    std::shared_ptr<mq::MemoryStore> store = nullptr) {
  if (store == nullptr) {
    return std::make_unique<mq::QueueManager>(name, clock,
                                              std::make_unique<mq::NullStore>());
  }
  // MemoryStore is shared between "incarnations" of a queue manager to
  // model restart; wrap the shared object in a forwarding adapter.
  class SharedStore final : public mq::MessageStore {
   public:
    explicit SharedStore(std::shared_ptr<mq::MemoryStore> inner)
        : inner_(std::move(inner)) {}
    util::Status append(const mq::LogRecord& r) override {
      return inner_->append(r);
    }
    util::Status append_batch(const std::vector<mq::LogRecord>& r) override {
      return inner_->append_batch(r);
    }
    util::Result<std::vector<mq::LogRecord>> replay() override {
      return inner_->replay();
    }
    util::Status rewrite(const std::vector<mq::LogRecord>& s) override {
      return inner_->rewrite(s);
    }
    std::size_t appended_since_compaction() const override {
      return inner_->appended_since_compaction();
    }

   private:
    std::shared_ptr<mq::MemoryStore> inner_;
  };
  return std::make_unique<mq::QueueManager>(
      name, clock, std::make_unique<SharedStore>(std::move(store)));
}

}  // namespace cmx::test
