// Property-based fuzz test for the selector parser, printer, evaluator,
// and the enqueue-time selector index (DESIGN.md §12). Three properties:
//
//   1. Round-trip: parse(e).canonical() re-parses, its canonical form is
//      a fixed point, and the re-parsed selector agrees with the original
//      on every message (including three-valued UNKNOWN cases from absent
//      properties and type mismatches).
//   2. Index differential: routing a message through a SelectorIndex of
//      many random selectors yields EXACTLY the selectors whose
//      interpretive matches() returns true — the indexed equality/range
//      predicates plus residuals must not change semantics.
//   3. Indexability soundness around the 2^53 exact-integer boundary:
//      selectors on huge int literals stay correct whether or not the
//      analysis indexed them.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "mq/message.hpp"
#include "mq/selector.hpp"
#include "mq/selector_index.hpp"

namespace cmx::mq {
namespace {

const char* const kKeys[] = {"region", "grp", "price", "qty", "flag", "name"};

class Fuzz {
 public:
  explicit Fuzz(unsigned seed) : rng_(seed) {}

  std::string make_expr() { return expr(3); }

  // Messages draw from the same small domains the expressions use so
  // matches are common; some keys are left absent to exercise UNKNOWN.
  Message make_msg() {
    Message msg;
    for (const char* key : kKeys) {
      switch (rng_() % 5) {
        case 0:
          break;  // absent -> UNKNOWN when referenced
        case 1:
          msg.set_property(key, small_string());
          break;
        case 2:
          msg.set_property(key, std::int64_t(int(rng_() % 7) - 3));
          break;
        case 3:
          msg.set_property(key, double(int(rng_() % 7) - 3) * 0.5);
          break;
        default:
          msg.set_property(key, rng_() % 2 == 0);
          break;
      }
    }
    return msg;
  }

  std::mt19937& rng() { return rng_; }

 private:
  std::string key() { return kKeys[rng_() % (sizeof(kKeys) / sizeof(*kKeys))]; }
  std::string small_string() {
    static const char* const kStrings[] = {"a", "b", "emea", "o'brien", "x%_"};
    return kStrings[rng_() % 5];
  }

  std::string quoted(const std::string& s) {
    std::string out = "'";
    for (char c : s) {
      out += c;
      if (c == '\'') out += '\'';
    }
    out += '\'';
    return out;
  }

  std::string comparison() {
    static const char* const kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    const int pick = int(rng_() % 10);
    if (pick < 4) {
      // numeric comparison, sometimes with arithmetic
      std::string lhs = key();
      if (rng_() % 4 == 0) {
        lhs = "(" + lhs + (rng_() % 2 == 0 ? " + " : " * ") +
              std::to_string(int(rng_() % 3) + 1) + ")";
      }
      return lhs + " " + kOps[rng_() % 6] + " " +
             std::to_string(int(rng_() % 7) - 3);
    }
    if (pick < 6) {  // string equality
      return key() + (rng_() % 2 == 0 ? " = " : " <> ") +
             quoted(rng_() % 2 == 0 ? "a" : "emea");
    }
    if (pick == 6) {  // BETWEEN
      const int lo = int(rng_() % 5) - 2;
      return key() + (rng_() % 3 == 0 ? " NOT BETWEEN " : " BETWEEN ") +
             std::to_string(lo) + " AND " + std::to_string(lo + int(rng_() % 4));
    }
    if (pick == 7) {  // IN
      std::string out = key();
      if (rng_() % 3 == 0) out += " NOT";
      out += " IN ('a', 'b'";
      if (rng_() % 2 == 0) out += ", 'emea'";
      out += ")";
      return out;
    }
    if (pick == 8) {  // LIKE
      static const char* const kPatterns[] = {"a%", "%e_a", "x\\%\\_", "%"};
      std::string out = key();
      if (rng_() % 3 == 0) out += " NOT";
      out += " LIKE " + quoted(kPatterns[rng_() % 4]);
      if (out.find("\\%") != std::string::npos) out += " ESCAPE '\\'";
      return out;
    }
    // IS [NOT] NULL
    return key() + (rng_() % 2 == 0 ? " IS NULL" : " IS NOT NULL");
  }

  std::string expr(int depth) {
    if (depth == 0 || rng_() % 3 == 0) return comparison();
    switch (rng_() % 3) {
      case 0:
        return "(" + expr(depth - 1) + " AND " + expr(depth - 1) + ")";
      case 1:
        return "(" + expr(depth - 1) + " OR " + expr(depth - 1) + ")";
      default:
        return "NOT (" + expr(depth - 1) + ")";
    }
  }

  std::mt19937 rng_;
};

class SelectorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SelectorFuzz, CanonicalRoundTripPreservesSemantics) {
  Fuzz fuzz(static_cast<unsigned>(GetParam()));
  for (int round = 0; round < 40; ++round) {
    const std::string text = fuzz.make_expr();
    auto parsed = Selector::parse(text);
    ASSERT_TRUE(parsed) << text << ": " << parsed.status().to_string();
    const std::string canonical = parsed.value().canonical();

    auto reparsed = Selector::parse(canonical);
    ASSERT_TRUE(reparsed) << "canonical form failed to parse: " << canonical
                          << " (from " << text << ")";
    // The canonical form is a fixed point of print ∘ parse.
    EXPECT_EQ(reparsed.value().canonical(), canonical) << "from " << text;

    for (int m = 0; m < 25; ++m) {
      const Message msg = fuzz.make_msg();
      EXPECT_EQ(parsed.value().matches(msg), reparsed.value().matches(msg))
          << "expr: " << text << "\ncanonical: " << canonical;
    }
  }
}

TEST_P(SelectorFuzz, IndexRoutingAgreesWithInterpretiveMatches) {
  Fuzz fuzz(static_cast<unsigned>(GetParam()) + 1000);
  for (int round = 0; round < 10; ++round) {
    std::vector<Selector> selectors;
    SelectorIndex index;
    for (std::uint64_t id = 0; id < 24; ++id) {
      while (true) {
        auto parsed = Selector::parse(fuzz.make_expr());
        if (parsed) {
          selectors.push_back(std::move(parsed).value());
          break;
        }
      }
      index.add(id, &selectors.back());
    }
    // Random removals re-exercise index maintenance (posting unlink).
    std::set<std::uint64_t> removed;
    for (int i = 0; i < 6; ++i) {
      const std::uint64_t id = fuzz.rng()() % selectors.size();
      if (removed.insert(id).second) index.remove(id);
    }

    std::vector<std::uint64_t> got;
    for (int m = 0; m < 50; ++m) {
      const Message msg = fuzz.make_msg();
      got.clear();
      index.collect_matches(msg, got);
      std::sort(got.begin(), got.end());
      std::vector<std::uint64_t> want;
      for (std::uint64_t id = 0; id < selectors.size(); ++id) {
        if (removed.count(id) != 0) continue;
        if (selectors[id].matches(msg)) want.push_back(id);
      }
      ASSERT_EQ(got, want) << "round " << round << " message " << m;
    }
    const auto stats = index.stats();
    EXPECT_EQ(stats.probes, 50u);
  }
}

// Selectors with integer literals around and beyond 2^53: the analysis
// must refuse to index what a double-keyed posting map cannot represent
// exactly, and matching must stay correct either way.
TEST(SelectorFuzzEdge, HugeIntegerLiteralsStayExact) {
  const std::int64_t kBig = (std::int64_t(1) << 53);  // first inexact double
  struct Case {
    std::int64_t message_value;
    std::int64_t literal;
    bool expect_match;
  };
  const Case cases[] = {
      {kBig, kBig, true},
      {kBig + 1, kBig, false},     // double(2^53+1) == double(2^53)!
      {kBig, kBig + 1, false},
      {kBig - 1, kBig - 1, true},  // last exact value: indexable
      {-kBig, -kBig, true},
      {(std::int64_t(1) << 62), (std::int64_t(1) << 62), true},
  };
  for (const auto& c : cases) {
    auto selector =
        Selector::parse("qty = " + std::to_string(c.literal));
    ASSERT_TRUE(selector);
    Message msg;
    msg.set_property("qty", c.message_value);
    EXPECT_EQ(selector.value().matches(msg), c.expect_match)
        << c.message_value << " = " << c.literal;

    // The same answer must come out of the index path.
    SelectorIndex index;
    index.add(1, &selector.value());
    std::vector<std::uint64_t> got;
    index.collect_matches(msg, got);
    EXPECT_EQ(!got.empty(), c.expect_match)
        << "indexed: " << c.message_value << " = " << c.literal;
  }
  // Values beyond the exact range are not indexable at all: the whole
  // selector falls back to interpretive evaluation (counted as fallback).
  auto selector = Selector::parse("qty = " + std::to_string(kBig));
  ASSERT_TRUE(selector);
  CompiledSelector compiled(&selector.value());
  EXPECT_TRUE(compiled.indexed().empty());
  auto indexable = Selector::parse("qty = " + std::to_string(kBig - 1));
  ASSERT_TRUE(indexable);
  CompiledSelector compiled_ok(&indexable.value());
  EXPECT_EQ(compiled_ok.indexed().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorFuzz, ::testing::Range(1, 13));

}  // namespace
}  // namespace cmx::mq
