#include <gtest/gtest.h>

#include "mq/message.hpp"

namespace cmx::mq {
namespace {

TEST(QueueAddressTest, ToStringAndParse) {
  QueueAddress a("QM1", "ORDERS");
  EXPECT_EQ(a.to_string(), "QM1/ORDERS");
  EXPECT_EQ(QueueAddress::parse("QM1/ORDERS"), a);

  QueueAddress local("", "LOCAL.Q");
  EXPECT_EQ(local.to_string(), "LOCAL.Q");
  EXPECT_EQ(QueueAddress::parse("LOCAL.Q"), local);
}

TEST(QueueAddressTest, Ordering) {
  QueueAddress a("A", "Q1"), b("A", "Q2"), c("B", "Q0");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_TRUE(QueueAddress().empty());
  EXPECT_FALSE(a.empty());
}

TEST(MessageTest, DefaultsMatchMomConventions) {
  Message m;
  EXPECT_EQ(m.priority, kDefaultPriority);
  EXPECT_TRUE(m.persistent());
  EXPECT_EQ(m.expiry_ms, util::kNoDeadline);
  EXPECT_FALSE(m.expired(0));
}

TEST(MessageTest, TypedPropertyAccess) {
  Message m;
  m.set_property("s", std::string("text"));
  m.set_property("i", std::int64_t{42});
  m.set_property("b", true);
  m.set_property("d", 2.5);

  EXPECT_EQ(m.get_string("s"), "text");
  EXPECT_EQ(m.get_int("i"), 42);
  EXPECT_EQ(m.get_bool("b"), true);
  EXPECT_EQ(m.get_double("d"), 2.5);

  // wrong-type and missing lookups yield nullopt
  EXPECT_FALSE(m.get_int("s").has_value());
  EXPECT_FALSE(m.get_string("i").has_value());
  EXPECT_FALSE(m.get_bool("nope").has_value());
  EXPECT_TRUE(m.has_property("s"));
  EXPECT_FALSE(m.has_property("nope"));
}

TEST(MessageTest, PropertyOverwrite) {
  Message m;
  m.set_property("k", std::int64_t{1});
  m.set_property("k", std::string("two"));
  EXPECT_EQ(m.get_string("k"), "two");
  EXPECT_FALSE(m.get_int("k").has_value());
}

TEST(MessageTest, Expiry) {
  Message m;
  m.expiry_ms = 100;
  EXPECT_FALSE(m.expired(99));
  EXPECT_TRUE(m.expired(100));
  EXPECT_TRUE(m.expired(101));
}

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message m("the payload bytes \x01\x02");
  m.id = "msg-1";
  m.correlation_id = "corr-9";
  m.reply_to = QueueAddress("QM2", "REPLY.Q");
  m.priority = 8;
  m.persistence = Persistence::kNonPersistent;
  m.expiry_ms = 123456;
  m.put_time_ms = 777;
  m.delivery_count = 3;
  m.set_property("s", std::string("str"));
  m.set_property("i", std::int64_t{-5});
  m.set_property("b", false);
  m.set_property("d", 1.75);

  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  const Message& d = decoded.value();
  EXPECT_EQ(d.id, "msg-1");
  EXPECT_EQ(d.correlation_id, "corr-9");
  EXPECT_EQ(d.reply_to, m.reply_to);
  EXPECT_EQ(d.priority, 8);
  EXPECT_EQ(d.persistence, Persistence::kNonPersistent);
  EXPECT_EQ(d.expiry_ms, 123456);
  EXPECT_EQ(d.put_time_ms, 777);
  EXPECT_EQ(d.delivery_count, 3);
  EXPECT_EQ(d.body, m.body);
  EXPECT_EQ(d.get_string("s"), "str");
  EXPECT_EQ(d.get_int("i"), -5);
  EXPECT_EQ(d.get_bool("b"), false);
  EXPECT_EQ(d.get_double("d"), 1.75);
}

TEST(MessageTest, DecodeRejectsTruncation) {
  Message m("body");
  m.set_property("k", std::string("v"));
  const std::string bytes = m.encode();
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                          bytes.size() - 1}) {
    auto r = Message::decode(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.is_ok()) << "cut at " << cut;
  }
}

TEST(MessageTest, DecodeRejectsBadVersion) {
  Message m("x");
  std::string bytes = m.encode();
  bytes[0] = 99;
  EXPECT_FALSE(Message::decode(bytes).is_ok());
}

TEST(MessageTest, PropertyToString) {
  EXPECT_EQ(property_to_string(PropertyValue(true)), "true");
  EXPECT_EQ(property_to_string(PropertyValue(std::int64_t{7})), "7");
  EXPECT_EQ(property_to_string(PropertyValue(std::string("abc"))), "abc");
}

TEST(MessageTest, EmptyMessageRoundTrip) {
  Message m;
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().body.empty());
  EXPECT_TRUE(decoded.value().properties.empty());
}

}  // namespace
}  // namespace cmx::mq
