#include <gtest/gtest.h>

#include "mq/message.hpp"

namespace cmx::mq {
namespace {

TEST(QueueAddressTest, ToStringAndParse) {
  QueueAddress a("QM1", "ORDERS");
  EXPECT_EQ(a.to_string(), "QM1/ORDERS");
  EXPECT_EQ(QueueAddress::parse("QM1/ORDERS"), a);

  QueueAddress local("", "LOCAL.Q");
  EXPECT_EQ(local.to_string(), "LOCAL.Q");
  EXPECT_EQ(QueueAddress::parse("LOCAL.Q"), local);
}

TEST(QueueAddressTest, Ordering) {
  QueueAddress a("A", "Q1"), b("A", "Q2"), c("B", "Q0");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_TRUE(QueueAddress().empty());
  EXPECT_FALSE(a.empty());
}

TEST(MessageTest, DefaultsMatchMomConventions) {
  Message m;
  EXPECT_EQ(m.priority(), kDefaultPriority);
  EXPECT_TRUE(m.persistent());
  EXPECT_EQ(m.expiry_ms(), util::kNoDeadline);
  EXPECT_FALSE(m.expired(0));
}

TEST(MessageTest, TypedPropertyAccess) {
  Message m;
  m.set_property("s", std::string("text"));
  m.set_property("i", std::int64_t{42});
  m.set_property("b", true);
  m.set_property("d", 2.5);

  EXPECT_EQ(m.get_string("s"), "text");
  EXPECT_EQ(m.get_int("i"), 42);
  EXPECT_EQ(m.get_bool("b"), true);
  EXPECT_EQ(m.get_double("d"), 2.5);

  // wrong-type and missing lookups yield nullopt
  EXPECT_FALSE(m.get_int("s").has_value());
  EXPECT_FALSE(m.get_string("i").has_value());
  EXPECT_FALSE(m.get_bool("nope").has_value());
  EXPECT_TRUE(m.has_property("s"));
  EXPECT_FALSE(m.has_property("nope"));
}

TEST(MessageTest, PropertyOverwrite) {
  Message m;
  m.set_property("k", std::int64_t{1});
  m.set_property("k", std::string("two"));
  EXPECT_EQ(m.get_string("k"), "two");
  EXPECT_FALSE(m.get_int("k").has_value());
}

TEST(MessageTest, Expiry) {
  Message m;
  m.set_expiry_ms(100);
  EXPECT_FALSE(m.expired(99));
  EXPECT_TRUE(m.expired(100));
  EXPECT_TRUE(m.expired(101));
}

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message m("the payload bytes \x01\x02");
  m.set_id("msg-1");
  m.set_correlation_id("corr-9");
  m.set_reply_to(QueueAddress("QM2", "REPLY.Q"));
  m.set_priority(8);
  m.set_persistence(Persistence::kNonPersistent);
  m.set_expiry_ms(123456);
  m.set_put_time_ms(777);
  m.set_delivery_count(3);
  m.set_property("s", std::string("str"));
  m.set_property("i", std::int64_t{-5});
  m.set_property("b", false);
  m.set_property("d", 1.75);

  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  const Message& d = decoded.value();
  EXPECT_EQ(d.id(), "msg-1");
  EXPECT_EQ(d.correlation_id(), "corr-9");
  EXPECT_EQ(d.reply_to(), m.reply_to());
  EXPECT_EQ(d.priority(), 8);
  EXPECT_EQ(d.persistence(), Persistence::kNonPersistent);
  EXPECT_EQ(d.expiry_ms(), 123456);
  EXPECT_EQ(d.put_time_ms(), 777);
  EXPECT_EQ(d.delivery_count(), 3);
  EXPECT_EQ(d.body(), m.body());
  EXPECT_EQ(d.get_string("s"), "str");
  EXPECT_EQ(d.get_int("i"), -5);
  EXPECT_EQ(d.get_bool("b"), false);
  EXPECT_EQ(d.get_double("d"), 1.75);
}

TEST(MessageTest, DecodeRejectsTruncation) {
  Message m("body");
  m.set_property("k", std::string("v"));
  const std::string bytes = m.encode();
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                          bytes.size() - 1}) {
    auto r = Message::decode(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.is_ok()) << "cut at " << cut;
  }
}

TEST(MessageTest, DecodeRejectsBadVersion) {
  Message m("x");
  std::string bytes = m.encode();
  bytes[0] = 99;
  EXPECT_FALSE(Message::decode(bytes).is_ok());
}

TEST(MessageTest, PropertyToString) {
  EXPECT_EQ(property_to_string(PropertyValue(true)), "true");
  EXPECT_EQ(property_to_string(PropertyValue(std::int64_t{7})), "7");
  EXPECT_EQ(property_to_string(PropertyValue(std::string("abc"))), "abc");
}

TEST(MessageTest, EmptyMessageRoundTrip) {
  Message m;
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().body().empty());
  EXPECT_TRUE(decoded.value().properties().empty());
}

// ---------------------------------------------------------------------------
// Zero-copy payload semantics
// ---------------------------------------------------------------------------

TEST(PayloadTest, CopySharesBuffer) {
  // Above the inline threshold the body lives on the heap and copies share
  // the allocation; at or below it the bytes are stored in-object instead.
  const std::string big(Payload::kInlineMax + 1, 'x');
  Message a(big);
  Message b = a;
  EXPECT_TRUE(a.payload().shares_with(b.payload()));
  EXPECT_EQ(a.payload().use_count(), 2);
  EXPECT_EQ(b.body(), big);
}

TEST(PayloadTest, SmallBodyIsInlineNotShared) {
  Message a("shared body bytes");  // well under kInlineMax
  Message b = a;
  EXPECT_TRUE(a.payload().inline_stored());
  EXPECT_TRUE(b.payload().inline_stored());
  EXPECT_FALSE(a.payload().shares_with(b.payload()));
  EXPECT_EQ(b.body(), "shared body bytes");
}

TEST(PayloadTest, BoundarySizesPickTheRightArm) {
  // 0 and 1 byte, exactly kInlineMax, and one past it — the four corners
  // of the inline/heap split.
  const struct {
    std::size_t size;
    bool expect_inline;
  } cases[] = {
      {0, false},  // empty: neither arm holds bytes
      {1, true},
      {Payload::kInlineMax, true},
      {Payload::kInlineMax + 1, false},
  };
  for (const auto& c : cases) {
    const std::string body(c.size, 'b');
    Payload p{std::string(body)};
    EXPECT_EQ(p.size(), c.size);
    EXPECT_EQ(p.view(), body);
    EXPECT_EQ(p.inline_stored(), c.expect_inline) << "size " << c.size;
    Payload copy = p;
    EXPECT_EQ(copy.view(), body);
    EXPECT_EQ(copy.inline_stored(), c.expect_inline) << "size " << c.size;
    // copy_of (the decode path) must agree with the string constructor.
    Payload from_view = Payload::copy_of(body);
    EXPECT_EQ(from_view.view(), body);
    EXPECT_EQ(from_view.inline_stored(), c.expect_inline) << "size " << c.size;
  }
}

TEST(PayloadTest, ShareMaterializesInlineBytes) {
  Payload p{std::string("tiny")};
  ASSERT_TRUE(p.inline_stored());
  auto buf = p.share();
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(*buf, "tiny");
  // An empty payload shares nothing.
  EXPECT_EQ(Payload{}.share(), nullptr);
}

TEST(PayloadTest, ArenaDisabledForcesHeapArm) {
  util::set_arena_enabled(false);
  Payload p{std::string("small")};
  EXPECT_FALSE(p.inline_stored());
  Payload copy = p;
  EXPECT_TRUE(p.shares_with(copy));  // PR 4 shape: shared even when tiny
  util::set_arena_enabled(true);
  EXPECT_EQ(copy.view(), "small");
}

TEST(PayloadTest, SetBodyDetaches) {
  Message a("original");
  Message b = a;
  b.set_body("changed");
  EXPECT_FALSE(a.payload().shares_with(b.payload()));
  EXPECT_EQ(a.body(), "original");
  EXPECT_EQ(b.body(), "changed");
}

TEST(PayloadTest, SharedPayloadConstructorFansOut) {
  const std::string big(Payload::kInlineMax * 2, 'f');
  Payload body{std::string(big)};
  Message a(body);
  Message b(body);
  EXPECT_TRUE(a.payload().shares_with(b.payload()));
  EXPECT_EQ(a.body(), big);
}

TEST(PayloadTest, DeepCopyModeDuplicates) {
  set_zero_copy_enabled(false);
  Message a("deep copy body");
  Message b = a;
  EXPECT_FALSE(a.payload().shares_with(b.payload()));
  EXPECT_EQ(b.body(), "deep copy body");
  set_zero_copy_enabled(true);
}

// ---------------------------------------------------------------------------
// Memoized encode frames
// ---------------------------------------------------------------------------

TEST(FrameCacheTest, EncodeTwiceIsIdenticalAndCached) {
  Message m("body");
  m.set_id("msg-1");
  m.set_property("k", std::string("v"));
  EXPECT_FALSE(m.frame_cached());
  const std::string first = m.encode();
  EXPECT_TRUE(m.frame_cached());
  EXPECT_EQ(m.encode(), first);
  auto frame = m.encoded_frame();
  EXPECT_EQ(*frame, first);
}

TEST(FrameCacheTest, CopySharesFrame) {
  Message m("body");
  m.set_id("msg-1");
  const std::string bytes = m.encode();
  Message copy = m;
  EXPECT_TRUE(copy.frame_cached());
  EXPECT_EQ(copy.encode(), bytes);
}

TEST(FrameCacheTest, MutationInvalidates) {
  Message m("body");
  m.set_id("msg-1");
  m.encode();
  m.set_priority(9);
  EXPECT_FALSE(m.frame_cached());
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().priority(), 9);
}

TEST(FrameCacheTest, RegularPropertyMutationInvalidates) {
  Message m("body");
  m.encode();
  m.set_property("app", std::int64_t{1});
  EXPECT_FALSE(m.frame_cached());
  m.encode();
  m.erase_property("app");
  EXPECT_FALSE(m.frame_cached());
}

TEST(FrameCacheTest, DeliveryCountPatchesInPlace) {
  Message m("body");
  m.set_id("msg-1");
  m.encode();
  m.note_delivery();
  m.note_delivery();
  ASSERT_TRUE(m.frame_cached());  // patched, not invalidated
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().delivery_count(), 2);
  // The patched frame must be byte-identical to a from-scratch encode.
  Message fresh("body");
  fresh.set_id("msg-1");
  fresh.set_delivery_count(2);
  EXPECT_EQ(m.encode(), fresh.encode());
}

TEST(FrameCacheTest, PatchDoesNotCorruptSharedCopies) {
  Message m("body");
  m.set_id("msg-1");
  const std::string before = m.encode();
  Message copy = m;  // shares the cached frame
  m.note_delivery();
  // The copy's frame must still decode to delivery_count 0.
  auto copy_decoded = Message::decode(copy.encode());
  ASSERT_TRUE(copy_decoded.is_ok());
  EXPECT_EQ(copy_decoded.value().delivery_count(), 0);
  EXPECT_EQ(copy.encode(), before);
  auto m_decoded = Message::decode(m.encode());
  ASSERT_TRUE(m_decoded.is_ok());
  EXPECT_EQ(m_decoded.value().delivery_count(), 1);
}

TEST(FrameCacheTest, TransitPropertyRewritesTailKeepingCache) {
  Message m("body");
  m.set_id("msg-1");
  m.set_property("app", std::string("regular"));
  m.encode();
  ASSERT_TRUE(m.frame_cached());

  // Setting and erasing a CMX_XMIT* property must keep the cache...
  m.set_property("CMX_XMIT_DEST", std::string("QM2/ORDERS"));
  ASSERT_TRUE(m.frame_cached());
  // ...and the patched frame must equal a canonical re-encode.
  Message with_dest = m;
  Message canonical("body");
  canonical.set_id("msg-1");
  canonical.set_property("app", std::string("regular"));
  canonical.set_property("CMX_XMIT_DEST", std::string("QM2/ORDERS"));
  EXPECT_EQ(with_dest.encode(), canonical.encode());

  m.erase_property("CMX_XMIT_DEST");
  ASSERT_TRUE(m.frame_cached());
  Message canonical2("body");
  canonical2.set_id("msg-1");
  canonical2.set_property("app", std::string("regular"));
  EXPECT_EQ(m.encode(), canonical2.encode());
}

TEST(FrameCacheTest, TransitPropertiesSurviveRoundTrip) {
  Message m("body");
  m.set_property("CMX_XMIT_DEST", std::string("QM2/Q"));
  m.set_property("app", std::int64_t{7});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().get_string("CMX_XMIT_DEST"), "QM2/Q");
  EXPECT_EQ(decoded.value().get_int("app"), 7);
}

TEST(FrameCacheTest, DeepCopyModeDisablesMemoization) {
  set_zero_copy_enabled(false);
  Message m("body");
  m.encode();
  EXPECT_FALSE(m.frame_cached());
  set_zero_copy_enabled(true);
}

}  // namespace
}  // namespace cmx::mq
