#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "mq/store.hpp"

namespace cmx::mq {
namespace {

Message msg(const std::string& body) {
  Message m(body);
  m.set_id("id-" + body);
  return m;
}

// ---------------------------------------------------------------------
// LogRecord codec
// ---------------------------------------------------------------------

TEST(LogRecordTest, PutRoundTrip) {
  auto rec = LogRecord::put("Q1", msg("hello"));
  auto decoded = LogRecord::decode(rec.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().type, LogRecord::Type::kPut);
  EXPECT_EQ(decoded.value().queue, "Q1");
  EXPECT_EQ(decoded.value().message.body(), "hello");
  EXPECT_EQ(decoded.value().message.id(), "id-hello");
}

TEST(LogRecordTest, GetRoundTrip) {
  auto decoded = LogRecord::decode(LogRecord::get("Q2", "m-7").encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().type, LogRecord::Type::kGet);
  EXPECT_EQ(decoded.value().queue, "Q2");
  EXPECT_EQ(decoded.value().msg_id, "m-7");
}

TEST(LogRecordTest, AdminAndTxRoundTrip) {
  for (const auto& rec :
       {LogRecord::queue_create("A"), LogRecord::queue_delete("A"),
        LogRecord::tx_begin("t1"), LogRecord::tx_commit("t1")}) {
    auto decoded = LogRecord::decode(rec.encode());
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().type, rec.type);
    EXPECT_EQ(decoded.value().queue, rec.queue);
    EXPECT_EQ(decoded.value().tx_id, rec.tx_id);
  }
}

TEST(LogRecordTest, DecodeRejectsTruncation) {
  auto bytes = LogRecord::put("Q", msg("payload")).encode();
  EXPECT_FALSE(LogRecord::decode(bytes.substr(0, bytes.size() / 2)).is_ok());
}

// ---------------------------------------------------------------------
// MemoryStore
// ---------------------------------------------------------------------

TEST(MemoryStoreTest, ReplayReturnsAppendedRecords) {
  MemoryStore store;
  ASSERT_TRUE(store.append(LogRecord::queue_create("Q")));
  ASSERT_TRUE(store.append(LogRecord::put("Q", msg("a"))));
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].type, LogRecord::Type::kQueueCreate);
  EXPECT_EQ(records.value()[1].message.body(), "a");
}

TEST(MemoryStoreTest, CommittedBatchSurvivesReplay) {
  MemoryStore store;
  ASSERT_TRUE(store.append_batch(
      {LogRecord::get("Q", "m1"), LogRecord::get("Q", "m2")}));
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 2u);  // markers filtered out
}

TEST(MemoryStoreTest, TornBatchIsDiscarded) {
  MemoryStore store;
  ASSERT_TRUE(store.append(LogRecord::put("Q", msg("keep"))));
  ASSERT_TRUE(store.append_batch(
      {LogRecord::get("Q", "m1"), LogRecord::get("Q", "m2")}));
  // Drop the commit marker: the batch must vanish on replay.
  store.truncate_tail(1);
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].message.body(), "keep");
}

TEST(MemoryStoreTest, RewriteReplacesContents) {
  MemoryStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg(std::to_string(i)))));
  }
  EXPECT_EQ(store.appended_since_compaction(), 10u);
  ASSERT_TRUE(store.rewrite({LogRecord::queue_create("Q")}));
  EXPECT_EQ(store.appended_since_compaction(), 0u);
  auto records = store.replay();
  ASSERT_EQ(records.value().size(), 1u);
}

// ---------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cmx_store_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".compact");
  }
  std::filesystem::path path_;
};

TEST_F(FileStoreTest, ReplayAfterReopen) {
  {
    FileStore store(path_.string());
    ASSERT_TRUE(store.append(LogRecord::queue_create("Q")));
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg("persisted"))));
  }
  FileStore reopened(path_.string());
  auto records = reopened.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[1].message.body(), "persisted");
}

TEST_F(FileStoreTest, EmptyFileReplaysEmpty) {
  FileStore store(path_.string());
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  EXPECT_TRUE(records.value().empty());
}

TEST_F(FileStoreTest, TornTailIsIgnored) {
  {
    FileStore store(path_.string());
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg("good"))));
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg("tornrecord"))));
  }
  // Chop bytes off the end, simulating a crash mid-write.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 5);
  FileStore store(path_.string());
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].message.body(), "good");
}

TEST_F(FileStoreTest, CorruptPayloadFailsChecksum) {
  {
    FileStore store(path_.string());
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg("aaaa"))));
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg("bbbb"))));
  }
  // Flip a byte in the middle of the second record's payload.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-3, std::ios::end);
  f.put('X');
  f.close();
  FileStore store(path_.string());
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].message.body(), "aaaa");
}

TEST_F(FileStoreTest, RewriteCompactsAndKeepsAppending) {
  FileStore store(path_.string());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg(std::to_string(i)))));
  }
  ASSERT_TRUE(store.rewrite({LogRecord::queue_create("Q"),
                             LogRecord::put("Q", msg("survivor"))}));
  EXPECT_EQ(store.appended_since_compaction(), 0u);
  ASSERT_TRUE(store.append(LogRecord::put("Q", msg("after"))));
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[1].message.body(), "survivor");
  EXPECT_EQ(records.value()[2].message.body(), "after");
}

TEST_F(FileStoreTest, BatchAtomicityAcrossReplay) {
  FileStore store(path_.string());
  ASSERT_TRUE(store.append_batch({LogRecord::get("Q", "a"),
                                  LogRecord::get("Q", "b"),
                                  LogRecord::get("Q", "c")}));
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 3u);
  for (const auto& rec : records.value()) {
    EXPECT_EQ(rec.type, LogRecord::Type::kGet);
  }
}

TEST_F(FileStoreTest, ConcurrentAppendersAllSurviveReplay) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    FileStore store(path_.string());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Message m("body");
          m.set_id("m-" + std::to_string(t) + "-" + std::to_string(i));
          store.append(LogRecord::put("Q", std::move(m)))
              .expect_ok("concurrent append");
        }
      });
    }
    for (auto& th : threads) th.join();
  }  // clean shutdown drains the write-behind staging buffer
  FileStore reopened(path_.string());
  auto records = reopened.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::string> ids;
  for (const auto& rec : records.value()) ids.insert(rec.message.id());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(FileStoreTest, TornBatchFrameDropsWholeBatch) {
  {
    FileStore store(path_.string());
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg("keep"))));
    ASSERT_TRUE(store.append_batch({LogRecord::put("Q", msg("b1")),
                                    LogRecord::put("Q", msg("b2")),
                                    LogRecord::put("Q", msg("b3"))}));
  }
  // Tear the tail of the batch's frame, as a crash mid-group-write would:
  // the whole batch must vanish, not just its last record.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 5);
  FileStore store(path_.string());
  auto records = store.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].message.body(), "keep");
}

TEST_F(FileStoreTest, EveryBatchAckMeansOnDisk) {
  FileStoreOptions options;
  options.sync = SyncPolicy::kEveryBatch;
  FileStore store(path_.string(), options);
  ASSERT_TRUE(store.append(LogRecord::put("Q", msg("durable"))));
  // The writer is still open — no destructor drain has happened. An
  // acknowledged kEveryBatch append must already be readable from the
  // file, because the ack followed the write+fsync.
  FileStore reader(path_.string());
  auto records = reader.replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].message.body(), "durable");
}

TEST_F(FileStoreTest, IntervalPolicyRoundTrip) {
  FileStoreOptions options;
  options.sync = SyncPolicy::kInterval;
  options.sync_interval_ms = 1;
  {
    FileStore store(path_.string(), options);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store.append(LogRecord::put("Q", msg(std::to_string(i)))));
    }
  }
  FileStore reopened(path_.string(), options);
  auto records = reopened.replay();
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 50u);
}

TEST_F(FileStoreTest, LegacyFormatRoundTrip) {
  FileStoreOptions legacy;
  legacy.group_commit = false;
  {
    FileStore store(path_.string(), legacy);
    ASSERT_TRUE(store.append(LogRecord::put("Q", msg("one"))));
    ASSERT_TRUE(store.append_batch(
        {LogRecord::get("Q", "m1"), LogRecord::get("Q", "m2")}));
  }
  FileStore reopened(path_.string(), legacy);
  auto records = reopened.replay();
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 3u);  // markers filtered
  // A default (group-commit) store dispatches on the missing magic and can
  // still read a legacy log.
  FileStore v2_reader(path_.string());
  auto via_v2 = v2_reader.replay();
  ASSERT_TRUE(via_v2.is_ok());
  EXPECT_EQ(via_v2.value().size(), 3u);
}

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  EXPECT_EQ(crc32(""), 0u);
  // standard test vector
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_NE(crc32("abc"), crc32("abd"));
}

TEST(Crc32cTest, KnownVectorsAndSensitivity) {
  EXPECT_EQ(crc32c(""), 0u);
  // standard CRC-32C (Castagnoli) test vector — pins the polynomial, so a
  // hardware/software implementation mismatch fails here.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  // Exercise the 8-byte fast path plus the byte tail.
  const std::string long_a(1031, 'x');
  std::string long_b = long_a;
  long_b[1030] = 'y';
  EXPECT_NE(crc32c(long_a), crc32c(long_b));
  EXPECT_NE(crc32c("abc"), crc32c("abd"));
}

}  // namespace
}  // namespace cmx::mq
