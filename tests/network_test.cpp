#include <gtest/gtest.h>

#include "mq/network.hpp"
#include "mq/queue_manager.hpp"
#include "tests/test_support.hpp"

namespace cmx::mq {
namespace {

Message msg(const std::string& body,
            Persistence persistence = Persistence::kPersistent) {
  Message m(body);
  m.set_persistence(persistence);
  return m;
}

// Network/channel tests use the real clock: the movers are real threads
// and zero-latency channels deliver promptly without time control.
class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() {
    qma_ = std::make_unique<QueueManager>("QMA", clock_);
    qmb_ = std::make_unique<QueueManager>("QMB", clock_);
    qmb_->create_queue("IN").expect_ok("create IN");
    net_ = std::make_unique<Network>();
    net_->add(*qma_);
    net_->add(*qmb_);
  }
  ~NetworkTest() override { net_->shutdown(); }

  util::SystemClock clock_;
  std::unique_ptr<QueueManager> qma_;
  std::unique_ptr<QueueManager> qmb_;
  std::unique_ptr<Network> net_;
};

TEST_F(NetworkTest, RemotePutArrives) {
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("cross")));
  auto got = qmb_->get("IN", 2000);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "cross");
  // transport property must not leak to the application
  EXPECT_FALSE(got.value().has_property(kXmitDestProperty));
}

TEST_F(NetworkTest, UnknownQmgrFails) {
  EXPECT_EQ(qma_->put(QueueAddress("NOWHERE", "IN"), msg("x")).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(NetworkTest, UnknownRemoteQueueIsDeadLettered) {
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "MISSING"), msg("lost")));
  ASSERT_TRUE(test::eventually(
      [&] { return qmb_->find_queue(kDeadLetterQueue) != nullptr &&
                   qmb_->find_queue(kDeadLetterQueue)->depth() > 0; }));
  auto dead = qmb_->get(kDeadLetterQueue, 1000);
  ASSERT_TRUE(dead.is_ok());
  EXPECT_EQ(dead.value().body(), "lost");
  EXPECT_EQ(dead.value().get_string(kXmitDestProperty), "QMB/MISSING");
  auto* channel = net_->channel("QMA", "QMB");
  ASSERT_NE(channel, nullptr);
  EXPECT_EQ(channel->stats().dead_lettered, 1u);
}

TEST_F(NetworkTest, PausedChannelAccumulatesThenDrains) {
  ASSERT_TRUE(net_->connect("QMA", "QMB", ChannelOptions{}));
  auto* channel = net_->channel("QMA", "QMB");
  ASSERT_NE(channel, nullptr);
  channel->pause();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("m")));
  }
  // Give the mover a moment: nothing must arrive while paused (the mover
  // may hold at most the one message it already pulled before pausing).
  auto in_queue = qmb_->find_queue("IN");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(in_queue->depth(), 1u);
  channel->resume();
  ASSERT_TRUE(test::eventually([&] { return in_queue->depth() == 5u; }));
  EXPECT_TRUE(channel->paused() == false);
}

TEST_F(NetworkTest, NonPersistentDropsWithFaultInjection) {
  ASSERT_TRUE(net_->connect("QMA", "QMB",
                            ChannelOptions{.drop_nonpersistent = 1.0}));
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"),
                        msg("gone", Persistence::kNonPersistent)));
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("kept")));
  auto got = qmb_->get("IN", 2000);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "kept");  // persistent never dropped
  auto* channel = net_->channel("QMA", "QMB");
  EXPECT_EQ(channel->stats().dropped, 1u);
}

TEST_F(NetworkTest, DuplicateFaultInjectionDeliversTwice) {
  ASSERT_TRUE(net_->connect("QMA", "QMB", ChannelOptions{.duplicate = 1.0}));
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("twice")));
  EXPECT_EQ(qmb_->get("IN", 2000).value().body(), "twice");
  EXPECT_EQ(qmb_->get("IN", 2000).value().body(), "twice");
  auto* channel = net_->channel("QMA", "QMB");
  EXPECT_TRUE(
      test::eventually([&] { return channel->stats().duplicated == 1u; }));
}

TEST_F(NetworkTest, LatencyDelaysDelivery) {
  ASSERT_TRUE(net_->connect("QMA", "QMB", ChannelOptions{.latency_ms = 50}));
  const auto start = clock_.now_ms();
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("slow")));
  auto got = qmb_->get("IN", 5000);
  ASSERT_TRUE(got.is_ok());
  EXPECT_GE(clock_.now_ms() - start, 45);
}

TEST_F(NetworkTest, BidirectionalTraffic) {
  qma_->create_queue("BACK").expect_ok("create BACK");
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("ping")));
  auto ping = qmb_->get("IN", 2000);
  ASSERT_TRUE(ping.is_ok());
  ASSERT_TRUE(qmb_->put(QueueAddress("QMA", "BACK"), msg("pong")));
  auto pong = qma_->get("BACK", 2000);
  ASSERT_TRUE(pong.is_ok());
  EXPECT_EQ(pong.value().body(), "pong");
}

TEST_F(NetworkTest, ChannelStatsCountTransfers) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("x")));
  }
  ASSERT_TRUE(test::eventually(
      [&] { return qmb_->find_queue("IN")->depth() == 10u; }));
  auto* channel = net_->channel("QMA", "QMB");
  EXPECT_EQ(channel->stats().transferred, 10u);
  EXPECT_EQ(channel->source(), "QMA");
  EXPECT_EQ(channel->destination(), "QMB");
}

TEST_F(NetworkTest, XmitQueueSurvivesChannelPauseAcrossMessages) {
  ASSERT_TRUE(net_->connect("QMA", "QMB", ChannelOptions{}));
  auto* channel = net_->channel("QMA", "QMB");
  channel->pause();
  ASSERT_TRUE(qma_->put(QueueAddress("QMB", "IN"), msg("queued")));
  auto xmit = qma_->find_queue(channel->xmit_queue_name());
  ASSERT_NE(xmit, nullptr);
  // message waits on the transmission queue (or is held by the mover)
  channel->resume();
  EXPECT_TRUE(test::eventually(
      [&] { return qmb_->find_queue("IN")->depth() == 1u; }));
}

TEST_F(NetworkTest, ShutdownStopsMovers) {
  net_->shutdown();
  EXPECT_EQ(qma_->put(QueueAddress("QMB", "IN"), msg("x")).code(),
            util::ErrorCode::kFailedPrecondition);  // network detached
}

}  // namespace
}  // namespace cmx::mq
