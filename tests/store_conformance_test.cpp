// Backend-parameterized conformance suite for the MessageStore contract
// (DESIGN.md §11): every registry engine — memory, file (legacy and
// group-commit) and segmented — must agree on append/replay ordering,
// tx-marker filtering, torn-tail tolerance, chunked replay and the
// compaction behaviour its capability descriptor advertises. Engines are
// built through registry specs, so this suite also pins the spec grammar.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mq/store.hpp"

namespace cmx::mq {
namespace {

Message msg(const std::string& body) {
  Message m(body);
  m.set_id("id-" + body);
  return m;
}

std::vector<std::string> bodies(const std::vector<LogRecord>& records) {
  std::vector<std::string> out;
  for (const auto& rec : records) {
    if (rec.type == LogRecord::Type::kPut) out.emplace_back(rec.msg().body());
  }
  return out;
}

struct Backend {
  const char* name;
  bool on_disk;  // spec embeds a path; reopening it replays the log
  std::string (*spec)(const std::string& path);
};

const Backend kBackends[] = {
    {"memory", false, [](const std::string&) { return std::string("memory"); }},
    {"file_legacy", true,
     [](const std::string& path) { return "file:" + path + "?group_commit=0"; }},
    {"file_group", true,
     [](const std::string& path) { return "file:" + path + "?group_commit=1"; }},
    {"segmented", true,
     [](const std::string& path) {
       // Small segments so multi-record tests span several files.
       return "segmented:" + path + "?segment_bytes=1024";
     }},
};

class StoreConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    // Parameterized test names contain '/'; flatten for the filesystem.
    std::string test =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (auto& c : test) {
      if (c == '/') c = '_';
    }
    path_ = (std::filesystem::temp_directory_path() /
             ("cmx_conf_" + std::to_string(::getpid()) + "_" + test))
                .string();
    std::filesystem::remove_all(path_);
  }
  void TearDown() override { std::filesystem::remove_all(path_); }

  std::unique_ptr<MessageStore> make() {
    auto store = make_store(GetParam().spec(path_));
    store.status().expect_ok("conformance store spec");
    return std::move(store).value();
  }

  // The newest on-disk log file: the flat log itself, or the
  // highest-index segment of a segmented directory.
  std::filesystem::path newest_log_file() {
    const std::filesystem::path p(path_);
    if (std::filesystem::is_regular_file(p)) return p;
    std::filesystem::path newest;
    for (const auto& entry : std::filesystem::directory_iterator(p)) {
      if (entry.path().extension() != ".seg") continue;
      if (newest.empty() || entry.path().filename() > newest.filename()) {
        newest = entry.path();
      }
    }
    return newest;
  }

  std::string path_;
};

TEST_P(StoreConformanceTest, CapsDescriptorIsCoherent) {
  auto store = make();
  const StoreCaps caps = store->caps();
  EXPECT_EQ(caps.durable, GetParam().on_disk);
  // The registry key is the leading token of every spec this suite builds.
  EXPECT_EQ(std::string(GetParam().name).rfind(caps.backend, 0), 0u);
}

TEST_P(StoreConformanceTest, AppendThenReplayPreservesOrder) {
  auto store = make();
  ASSERT_TRUE(store->append(LogRecord::queue_create("Q")));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("a"))));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("b"))));
  ASSERT_TRUE(store->append(LogRecord::get("Q", "id-a")));
  ASSERT_TRUE(store->append(LogRecord::queue_create("R")));
  ASSERT_TRUE(store->append(LogRecord::put("R", msg("c"))));
  auto records = store->replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 6u);
  EXPECT_EQ(records.value()[0].type, LogRecord::Type::kQueueCreate);
  EXPECT_EQ(records.value()[3].type, LogRecord::Type::kGet);
  EXPECT_EQ(records.value()[3].message_id(), "id-a");
  EXPECT_EQ(bodies(records.value()),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST_P(StoreConformanceTest, BatchMarkersAreFilteredOutOfReplay) {
  auto store = make();
  ASSERT_TRUE(store->append_batch(
      {LogRecord::put("Q", msg("x")), LogRecord::get("Q", "id-y")}));
  auto records = store->replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  for (const auto& rec : records.value()) {
    EXPECT_NE(rec.type, LogRecord::Type::kTxBegin);
    EXPECT_NE(rec.type, LogRecord::Type::kTxCommit);
  }
}

TEST_P(StoreConformanceTest, NestedMarkersReplayOnlyCommittedRecords) {
  auto store = make();
  ASSERT_TRUE(store->append(LogRecord::tx_begin("t1")));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("a"))));
  ASSERT_TRUE(store->append(LogRecord::tx_begin("t2")));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("b"))));
  ASSERT_TRUE(store->append(LogRecord::tx_commit("t2")));
  ASSERT_TRUE(store->append(LogRecord::tx_commit("t1")));
  // An opened-but-never-committed batch must vanish.
  ASSERT_TRUE(store->append(LogRecord::tx_begin("t3")));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("lost"))));
  auto records = store->replay();
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(bodies(records.value()), (std::vector<std::string>{"a", "b"}));
}

TEST_P(StoreConformanceTest, TornTailDropsAsAUnitOnReopen) {
  if (!GetParam().on_disk) GTEST_SKIP() << "no on-disk log to tear";
  {
    auto store = make();
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg("keep"))));
    ASSERT_TRUE(store->append_batch(
        {LogRecord::put("Q", msg("pair1")), LogRecord::put("Q", msg("pair2"))}));
  }
  // A crash mid-write leaves a partial frame at the tail: chop bytes off
  // the newest log file so its last group frame no longer checks out.
  const auto victim = newest_log_file();
  ASSERT_FALSE(victim.empty());
  const auto size = std::filesystem::file_size(victim);
  std::filesystem::resize_file(victim, size - 5);

  auto store = make();
  auto records = store->replay();
  ASSERT_TRUE(records.is_ok());
  // The torn batch drops as a unit — never pair1 without pair2.
  EXPECT_EQ(bodies(records.value()), std::vector<std::string>{"keep"});
}

TEST_P(StoreConformanceTest, ChunkedReplayMatchesFullReplay) {
  auto store = make();
  std::vector<std::string> want;
  ASSERT_TRUE(store->append(LogRecord::queue_create("Q")));
  for (int i = 0; i < 40; ++i) {
    want.push_back("m" + std::to_string(i));
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg(want.back()))));
  }
  std::vector<LogRecord> chunked;
  MessageStore::ReplayCursor cursor;
  int chunks = 0;
  while (!cursor.done) {
    auto chunk = store->replay_chunk(cursor);
    ASSERT_TRUE(chunk.is_ok());
    for (auto& rec : chunk.value()) chunked.push_back(std::move(rec));
    ++chunks;
    ASSERT_LT(chunks, 1000) << "cursor never reported done";
  }
  EXPECT_EQ(bodies(chunked), want);
  if (store->caps().supports_chunked_replay) {
    EXPECT_GT(chunks, 1) << "40 records across 1 KiB segments should stream "
                            "in more than one chunk";
  }
}

TEST_P(StoreConformanceTest, CompactionFollowsCapabilityDescriptor) {
  auto store = make();
  ASSERT_TRUE(store->append(LogRecord::queue_create("Q")));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::to_string(i)))));
    ASSERT_TRUE(store->append(LogRecord::get("Q", "id-" + std::to_string(i))));
  }
  switch (store->caps().compaction) {
    case CompactionMode::kSnapshotRewrite: {
      ASSERT_TRUE(store->rewrite({LogRecord::queue_create("Q")}));
      EXPECT_EQ(store->compact_self().code(),
                util::ErrorCode::kFailedPrecondition);
      auto records = store->replay();
      ASSERT_TRUE(records.is_ok());
      ASSERT_EQ(records.value().size(), 1u);
      EXPECT_EQ(records.value()[0].type, LogRecord::Type::kQueueCreate);
      break;
    }
    case CompactionMode::kSelfCompacting: {
      ASSERT_TRUE(store->compact_self());
      EXPECT_EQ(store->rewrite({}).code(),
                util::ErrorCode::kFailedPrecondition);
      // Self-compaction must preserve exactly the live state: all puts
      // were consumed, so replay is metadata only.
      auto records = store->replay();
      ASSERT_TRUE(records.is_ok());
      for (const auto& rec : records.value()) {
        EXPECT_NE(rec.type, LogRecord::Type::kPut);
      }
      break;
    }
    case CompactionMode::kNone:
      EXPECT_EQ(store->rewrite({}).code(),
                util::ErrorCode::kFailedPrecondition);
      EXPECT_EQ(store->compact_self().code(),
                util::ErrorCode::kFailedPrecondition);
      break;
  }
}

TEST_P(StoreConformanceTest, AppendedSinceCompactionCountsAndResets) {
  auto store = make();
  EXPECT_EQ(store->appended_since_compaction(), 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::to_string(i)))));
  }
  // Group-commit engines count appends on the commit thread; replay()
  // drains staging, making the counter exact.
  ASSERT_TRUE(store->replay().is_ok());
  EXPECT_EQ(store->appended_since_compaction(), 5u);
  switch (store->caps().compaction) {
    case CompactionMode::kSnapshotRewrite:
      ASSERT_TRUE(store->rewrite(store->replay().value()));
      break;
    case CompactionMode::kSelfCompacting:
      ASSERT_TRUE(store->compact_self());
      break;
    case CompactionMode::kNone:
      GTEST_SKIP() << "engine does not compact";
  }
  EXPECT_EQ(store->appended_since_compaction(), 0u);
}

TEST_P(StoreConformanceTest, ReopenReplaysCommittedRecords) {
  if (!GetParam().on_disk) GTEST_SKIP() << "memory engine does not persist";
  {
    auto store = make();
    ASSERT_TRUE(store->append(LogRecord::queue_create("Q")));
    ASSERT_TRUE(store->append_batch(
        {LogRecord::put("Q", msg("a")), LogRecord::put("Q", msg("b"))}));
    ASSERT_TRUE(store->append(LogRecord::get("Q", "id-a")));
  }
  auto store = make();
  auto records = store->replay();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 4u);
  EXPECT_EQ(bodies(records.value()), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records.value()[3].type, LogRecord::Type::kGet);
}

INSTANTIATE_TEST_SUITE_P(
    Store, StoreConformanceTest, ::testing::ValuesIn(kBackends),
    [](const ::testing::TestParamInfo<Backend>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace cmx::mq
