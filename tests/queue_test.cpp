#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mq/queue.hpp"
#include "tests/test_support.hpp"

namespace cmx::mq {
namespace {

Message msg(const std::string& body, int priority = kDefaultPriority) {
  Message m(body);
  m.set_id("id-" + body);
  m.set_priority(priority);
  return m;
}

class QueueTest : public ::testing::Test {
 protected:
  util::SimClock clock_;
  Queue q_{"Q", QueueOptions{}, clock_};
};

TEST_F(QueueTest, FifoWithinPriority) {
  ASSERT_TRUE(q_.put(msg("a")));
  ASSERT_TRUE(q_.put(msg("b")));
  ASSERT_TRUE(q_.put(msg("c")));
  EXPECT_EQ(q_.try_get()->msg.body(), "a");
  EXPECT_EQ(q_.try_get()->msg.body(), "b");
  EXPECT_EQ(q_.try_get()->msg.body(), "c");
  EXPECT_FALSE(q_.try_get().has_value());
}

TEST_F(QueueTest, HigherPriorityFirst) {
  ASSERT_TRUE(q_.put(msg("low", 1)));
  ASSERT_TRUE(q_.put(msg("high", 9)));
  ASSERT_TRUE(q_.put(msg("mid", 5)));
  EXPECT_EQ(q_.try_get()->msg.body(), "high");
  EXPECT_EQ(q_.try_get()->msg.body(), "mid");
  EXPECT_EQ(q_.try_get()->msg.body(), "low");
}

TEST_F(QueueTest, PriorityClampedToValidRange) {
  ASSERT_TRUE(q_.put(msg("over", 99)));
  ASSERT_TRUE(q_.put(msg("under", -3)));
  EXPECT_EQ(q_.try_get()->msg.body(), "over");
  EXPECT_EQ(q_.try_get()->msg.body(), "under");
}

TEST_F(QueueTest, DepthLimitRejectsPut) {
  Queue small("S", QueueOptions{.max_depth = 2}, clock_);
  EXPECT_TRUE(small.put(msg("1")));
  EXPECT_TRUE(small.put(msg("2")));
  auto s = small.put(msg("3"));
  EXPECT_EQ(s.code(), util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(small.depth(), 2u);
}

TEST_F(QueueTest, ExpiredMessagesAreDiscardedOnGet) {
  Message m = msg("fresh");
  Message e = msg("stale");
  e.set_expiry_ms(100);
  ASSERT_TRUE(q_.put(e));
  ASSERT_TRUE(q_.put(m));
  clock_.set_ms(150);
  EXPECT_EQ(q_.try_get()->msg.body(), "fresh");
  EXPECT_EQ(q_.stats().expired, 1u);
}

TEST_F(QueueTest, DiscardCallbackFiresForExpired) {
  std::vector<std::string> discarded;
  Queue q("D", QueueOptions{}, clock_,
          [&](const Message& m) { discarded.emplace_back(m.body()); });
  Message e = msg("gone");
  e.set_expiry_ms(10);
  ASSERT_TRUE(q.put(e));
  clock_.set_ms(20);
  EXPECT_FALSE(q.try_get().has_value());
  ASSERT_EQ(discarded.size(), 1u);
  EXPECT_EQ(discarded[0], "gone");
}

TEST_F(QueueTest, BrowseSkipsExpiredAndPreservesOrder) {
  Message e = msg("stale");
  e.set_expiry_ms(5);
  ASSERT_TRUE(q_.put(msg("a", 2)));
  ASSERT_TRUE(q_.put(e));
  ASSERT_TRUE(q_.put(msg("b", 8)));
  clock_.set_ms(10);
  auto all = q_.browse();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].body(), "b");
  EXPECT_EQ(all[1].body(), "a");
  EXPECT_EQ(q_.depth(), 3u);  // browse does not remove
}

TEST_F(QueueTest, RestoreReinsertsAtOriginalPosition) {
  ASSERT_TRUE(q_.put(msg("first")));
  ASSERT_TRUE(q_.put(msg("second")));
  auto got = q_.try_get();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->msg.body(), "first");
  q_.restore(got->seq, got->msg);
  EXPECT_EQ(q_.try_get()->msg.body(), "first");  // back at the head
  EXPECT_EQ(q_.try_get()->msg.body(), "second");
  EXPECT_EQ(q_.stats().restored, 1u);
}

TEST_F(QueueTest, DeliveryCountIncrementsOnEachGet) {
  ASSERT_TRUE(q_.put(msg("m")));
  auto got = q_.try_get();
  EXPECT_EQ(got->msg.delivery_count(), 1);
  q_.restore(got->seq, got->msg);
  EXPECT_EQ(q_.try_get()->msg.delivery_count(), 2);
}

TEST_F(QueueTest, RemoveById) {
  ASSERT_TRUE(q_.put(msg("a")));
  ASSERT_TRUE(q_.put(msg("b")));
  EXPECT_TRUE(q_.contains_id("id-a"));
  auto removed = q_.remove_by_id("id-a");
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->body(), "a");
  EXPECT_FALSE(q_.contains_id("id-a"));
  EXPECT_FALSE(q_.remove_by_id("id-a").has_value());
  EXPECT_EQ(q_.depth(), 1u);
}

TEST_F(QueueTest, SelectorFiltersGet) {
  Message a = msg("a");
  a.set_property("kind", std::string("x"));
  Message b = msg("b");
  b.set_property("kind", std::string("y"));
  ASSERT_TRUE(q_.put(a));
  ASSERT_TRUE(q_.put(b));
  auto sel = Selector::parse("kind = 'y'");
  ASSERT_TRUE(sel.is_ok());
  EXPECT_EQ(q_.try_get(&sel.value())->msg.body(), "b");
  EXPECT_EQ(q_.depth(), 1u);  // "a" untouched
}

TEST_F(QueueTest, BatchGetDrainsInOrderUpToLimit) {
  ASSERT_TRUE(q_.put(msg("a")));
  ASSERT_TRUE(q_.put(msg("b", 9)));
  ASSERT_TRUE(q_.put(msg("c")));
  auto got = q_.try_get_batch(2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].msg.body(), "b");  // priority order, like try_get
  EXPECT_EQ(got[1].msg.body(), "a");
  EXPECT_EQ(got[0].msg.delivery_count(), 1);
  EXPECT_EQ(q_.depth(), 1u);
  auto rest = q_.try_get_batch(10);  // partial batch: whatever is left
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].msg.body(), "c");
  EXPECT_TRUE(q_.try_get_batch(10).empty());
  EXPECT_EQ(q_.stats().gets, 3u);  // counted per message, not per batch
}

TEST_F(QueueTest, BatchGetHonorsSelector) {
  for (int i = 0; i < 4; ++i) {
    Message m = msg(std::to_string(i));
    m.set_property("kind", std::string(i % 2 == 0 ? "even" : "odd"));
    ASSERT_TRUE(q_.put(m));
  }
  auto sel = Selector::parse("kind = 'odd'");
  ASSERT_TRUE(sel.is_ok());
  auto got = q_.try_get_batch(10, &sel.value());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].msg.body(), "1");
  EXPECT_EQ(got[1].msg.body(), "3");
  EXPECT_EQ(q_.depth(), 2u);  // evens untouched
}

TEST_F(QueueTest, BatchGetSkipsExpiredAndRespectsClose) {
  Message e = msg("stale");
  e.set_expiry_ms(5);
  ASSERT_TRUE(q_.put(e));
  ASSERT_TRUE(q_.put(msg("fresh")));
  clock_.set_ms(10);
  auto got = q_.try_get_batch(10);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].msg.body(), "fresh");
  EXPECT_EQ(q_.stats().expired, 1u);
  ASSERT_TRUE(q_.put(msg("x")));
  EXPECT_TRUE(q_.try_get_batch(0).empty());  // max_n = 0 is a no-op
  q_.close();
  EXPECT_TRUE(q_.try_get_batch(10).empty());  // closed: nothing delivered
}

TEST_F(QueueTest, GetTimesOutAtDeadline) {
  auto result = q_.get(/*deadline_ms=*/clock_.now_ms());
  EXPECT_EQ(result.code(), util::ErrorCode::kTimeout);
}

TEST_F(QueueTest, BlockedGetWokenByPut) {
  util::SystemClock rt;
  Queue q("RT", QueueOptions{}, rt);
  std::atomic<bool> got{false};
  std::thread getter([&] {
    auto r = q.get(rt.now_ms() + 5000);
    EXPECT_TRUE(r.is_ok());
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(q.put(msg("wake")));
  getter.join();
  EXPECT_TRUE(got.load());
}

TEST_F(QueueTest, CloseWakesBlockedGetWithClosed) {
  util::SystemClock rt;
  Queue q("RT", QueueOptions{}, rt);
  std::thread getter([&] {
    auto r = q.get(util::kNoDeadline);
    EXPECT_EQ(r.code(), util::ErrorCode::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  getter.join();
  EXPECT_EQ(q.put(msg("late")).code(), util::ErrorCode::kClosed);
  EXPECT_TRUE(q.closed());
}

TEST_F(QueueTest, PutListenerInvoked) {
  int notifications = 0;
  q_.set_put_listener([&] { ++notifications; });
  ASSERT_TRUE(q_.put(msg("a")));
  ASSERT_TRUE(q_.put(msg("b")));
  EXPECT_EQ(notifications, 2);
  auto got = q_.try_get();
  q_.restore(got->seq, got->msg);
  EXPECT_EQ(notifications, 3);  // restore also notifies
  q_.set_put_listener({});
  ASSERT_TRUE(q_.put(msg("c")));
  EXPECT_EQ(notifications, 3);
}

TEST_F(QueueTest, StatsCountPutsAndGets) {
  ASSERT_TRUE(q_.put(msg("a")));
  ASSERT_TRUE(q_.put(msg("b")));
  q_.try_get();
  auto st = q_.stats();
  EXPECT_EQ(st.puts, 2u);
  EXPECT_EQ(st.gets, 1u);
}

TEST_F(QueueTest, BrowseChunkVisitsEveryMessageExactlyOnce) {
  // Mixed priorities so the cursor has to resume across priority classes.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q_.put(msg(std::to_string(i), i % 10)));
  }
  const auto full = q_.browse();
  ASSERT_EQ(full.size(), 100u);
  for (std::size_t chunk : {1u, 7u, 100u, 1000u}) {
    Queue::BrowseCursor cursor;
    std::vector<Message> chunked;
    while (!cursor.done) {
      for (auto& m : q_.browse_chunk(cursor, chunk)) {
        chunked.push_back(std::move(m));
      }
    }
    ASSERT_EQ(chunked.size(), full.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(chunked[i].id(), full[i].id()) << "chunk=" << chunk;
    }
  }
}

TEST_F(QueueTest, BrowseChunkSkipsExpiredWithoutStalling) {
  for (int i = 0; i < 20; ++i) {
    Message m = msg(std::to_string(i));
    if (i % 2 == 0) m.set_expiry_ms(clock_.now_ms() + 5);
    ASSERT_TRUE(q_.put(std::move(m)));
  }
  clock_.advance_ms(10);  // half the queue is now expired
  Queue::BrowseCursor cursor;
  std::size_t seen = 0;
  while (!cursor.done) seen += q_.browse_chunk(cursor, 4).size();
  EXPECT_EQ(seen, 10u);
}

TEST_F(QueueTest, BrowseChunkToleratesConsumptionBetweenChunks) {
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q_.put(msg(std::to_string(i))));
  Queue::BrowseCursor cursor;
  auto first = q_.browse_chunk(cursor, 3);
  ASSERT_EQ(first.size(), 3u);
  // Consume two messages the cursor already passed and one ahead of it.
  ASSERT_TRUE(q_.remove_by_id("id-0").has_value());
  ASSERT_TRUE(q_.remove_by_id("id-2").has_value());
  ASSERT_TRUE(q_.remove_by_id("id-5").has_value());
  std::vector<std::string> rest;
  while (!cursor.done) {
    for (auto& m : q_.browse_chunk(cursor, 3)) rest.push_back(m.id());
  }
  // No duplicates of the already-visited prefix, no visit of consumed
  // entries — the remainder is exactly ids 3,4,6..9.
  EXPECT_EQ(rest,
            (std::vector<std::string>{"id-3", "id-4", "id-6", "id-7", "id-8",
                                      "id-9"}));
}

TEST_F(QueueTest, ConcurrentPutsAndGetsBalance) {
  util::SystemClock rt;
  Queue q("CC", QueueOptions{}, rt);
  constexpr int kN = 2000;
  std::atomic<int> received{0};
  std::thread consumer([&] {
    for (int i = 0; i < kN; ++i) {
      auto r = q.get(rt.now_ms() + 10000);
      ASSERT_TRUE(r.is_ok());
      received.fetch_add(1);
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(q.put(msg(std::to_string(i))));
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(received.load(), kN);
  EXPECT_EQ(q.depth(), 0u);
}

// ---------------------------------------------------------------------
// Selector waiter index (selective-consumer wakeups; DESIGN.md §12)
// ---------------------------------------------------------------------

Message tagged(const std::string& body, const std::string& grp) {
  Message m(body);
  m.set_property("grp", grp);
  return m;
}

// Two consumers parked with disjoint selectors: each must receive exactly
// its own message, and the waiter index must have been consulted (hits
// never exceed probes; skipped waiters are the selective win).
TEST_F(QueueTest, SelectorWaitersEachGetTheirOwnMessage) {
  util::SystemClock rt;
  Queue q("RT", QueueOptions{}, rt);
  auto sel0 = Selector::parse("grp = 'g0'");
  auto sel1 = Selector::parse("grp = 'g1'");
  ASSERT_TRUE(sel0.is_ok());
  ASSERT_TRUE(sel1.is_ok());
  std::atomic<int> done{0};
  std::thread t0([&] {
    auto r = q.get(rt.now_ms() + 5000, &sel0.value());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().msg.body(), "m0");
    ++done;
  });
  std::thread t1([&] {
    auto r = q.get(rt.now_ms() + 5000, &sel1.value());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().msg.body(), "m1");
    ++done;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(q.put(tagged("m0", "g0")));
  t0.join();
  // Only the matching waiter completed; the other still waits.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(done.load(), 1);
  ASSERT_TRUE(q.put(tagged("m1", "g1")));
  t1.join();
  EXPECT_EQ(done.load(), 2);
  const auto stats = q.selector_waiter_stats();
  EXPECT_LE(stats.index_hits, stats.probes * 2);
  EXPECT_EQ(q.depth(), 0u);
}

// The A/B toggle falls back to the shared-cv interpretive arm; selector
// gets stay correct, the waiter index is simply not consulted.
TEST_F(QueueTest, SelectorGetWorksWithIndexDisabled) {
  set_selector_index_enabled(false);
  util::SystemClock rt;
  Queue q("RT", QueueOptions{}, rt);
  auto sel = Selector::parse("grp = 'g0'");
  ASSERT_TRUE(sel.is_ok());
  std::thread getter([&] {
    auto r = q.get(rt.now_ms() + 5000, &sel.value());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().msg.body(), "hit");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(q.put(tagged("miss", "g1")));
  ASSERT_TRUE(q.put(tagged("hit", "g0")));
  getter.join();
  set_selector_index_enabled(true);
  EXPECT_EQ(q.selector_waiter_stats().probes, 0u);
  EXPECT_EQ(q.depth(), 1u);  // "miss" remains for someone else
}

// Close must wake selector waiters parked on their private cvs.
TEST_F(QueueTest, CloseWakesSelectorWaiters) {
  util::SystemClock rt;
  Queue q("RT", QueueOptions{}, rt);
  auto sel = Selector::parse("grp = 'g0'");
  ASSERT_TRUE(sel.is_ok());
  std::thread getter([&] {
    auto r = q.get(util::kNoDeadline, &sel.value());
    EXPECT_EQ(r.code(), util::ErrorCode::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  getter.join();
}

}  // namespace
}  // namespace cmx::mq
