#include <gtest/gtest.h>

#include "mq/queue_manager.hpp"
#include "mq/session.hpp"
#include "tests/test_support.hpp"

namespace cmx::mq {
namespace {

Message msg(const std::string& body,
            Persistence persistence = Persistence::kPersistent) {
  Message m(body);
  m.set_persistence(persistence);
  return m;
}

class QueueManagerTest : public ::testing::Test {
 protected:
  QueueManagerTest() : store_(std::make_shared<MemoryStore>()) {
    qm_ = test::make_qm("QM1", clock_, store_);
    qm_->recover().expect_ok("recover");
    qm_->create_queue("Q").expect_ok("create");
  }

  // Simulates a crash/restart: a new queue manager over the same store.
  std::unique_ptr<QueueManager> restart() {
    qm_.reset();
    auto fresh = test::make_qm("QM1", clock_, store_);
    fresh->recover().expect_ok("recover");
    return fresh;
  }

  util::SimClock clock_;
  std::shared_ptr<MemoryStore> store_;
  std::unique_ptr<QueueManager> qm_;
};

TEST_F(QueueManagerTest, CreateDuplicateFails) {
  EXPECT_EQ(qm_->create_queue("Q").code(), util::ErrorCode::kAlreadyExists);
  EXPECT_TRUE(qm_->ensure_queue("Q"));
  EXPECT_TRUE(qm_->ensure_queue("Q2"));
}

TEST_F(QueueManagerTest, PutGetLocal) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("hello")));
  auto got = qm_->get("Q", 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "hello");
  EXPECT_FALSE(got.value().id().empty());
  EXPECT_EQ(got.value().put_time_ms(), clock_.now_ms());
}

TEST_F(QueueManagerTest, PutToOwnNameIsLocal) {
  ASSERT_TRUE(qm_->put(QueueAddress("QM1", "Q"), msg("x")));
  EXPECT_TRUE(qm_->get("Q", 0).is_ok());
}

TEST_F(QueueManagerTest, PutUnknownQueueFails) {
  EXPECT_EQ(qm_->put(QueueAddress("", "NOPE"), msg("x")).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(QueueManagerTest, RemotePutWithoutNetworkFails) {
  EXPECT_EQ(qm_->put(QueueAddress("OTHER", "Q"), msg("x")).code(),
            util::ErrorCode::kFailedPrecondition);
}

TEST_F(QueueManagerTest, GetTimeout) {
  auto got = qm_->get("Q", 0);
  EXPECT_EQ(got.code(), util::ErrorCode::kTimeout);
}

TEST_F(QueueManagerTest, ExpiredPutRejected) {
  clock_.set_ms(500);
  Message m = msg("old");
  m.set_expiry_ms(100);
  EXPECT_EQ(qm_->put(QueueAddress("", "Q"), m).code(),
            util::ErrorCode::kExpired);
}

TEST_F(QueueManagerTest, PersistentMessagesSurviveRestart) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("durable")));
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"),
                       msg("volatile", Persistence::kNonPersistent)));
  auto fresh = restart();
  auto got = fresh->get("Q", 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "durable");
  EXPECT_EQ(fresh->get("Q", 0).code(), util::ErrorCode::kTimeout);
}

TEST_F(QueueManagerTest, ConsumedMessagesStayConsumedAfterRestart) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("a")));
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("b")));
  ASSERT_TRUE(qm_->get("Q", 0).is_ok());  // consume "a"
  auto fresh = restart();
  auto got = fresh->get("Q", 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "b");
  EXPECT_EQ(fresh->get("Q", 0).code(), util::ErrorCode::kTimeout);
}

TEST_F(QueueManagerTest, DeletedQueueGoneAfterRestart) {
  ASSERT_TRUE(qm_->create_queue("DOOMED"));
  ASSERT_TRUE(qm_->delete_queue("DOOMED"));
  auto fresh = restart();
  EXPECT_EQ(fresh->find_queue("DOOMED"), nullptr);
  EXPECT_NE(fresh->find_queue("Q"), nullptr);
}

TEST_F(QueueManagerTest, RemoveMessageLogsRemoval) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("kill-me")));
  auto all = qm_->find_queue("Q")->browse();
  ASSERT_EQ(all.size(), 1u);
  auto removed = qm_->remove_message("Q", all[0].id());
  ASSERT_TRUE(removed.is_ok());
  EXPECT_EQ(removed.value().body(), "kill-me");
  EXPECT_EQ(qm_->remove_message("Q", all[0].id()).code(),
            util::ErrorCode::kNotFound);
  auto fresh = restart();
  EXPECT_EQ(fresh->get("Q", 0).code(), util::ErrorCode::kTimeout);
}

TEST_F(QueueManagerTest, BatchGetLogsRemovalsDurably) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg(std::to_string(i))));
  }
  auto got = qm_->get_batch("Q", 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].body(), "0");
  EXPECT_EQ(got[2].body(), "2");
  EXPECT_TRUE(qm_->get_batch("NOPE", 3).empty());

  // The batch's removals hit the store as one append_batch: after a
  // restart the consumed messages stay consumed.
  auto fresh = restart();
  auto q = fresh->find_queue("Q");
  ASSERT_NE(q, nullptr);
  auto left = q->browse();
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0].body(), "3");
  EXPECT_EQ(left[1].body(), "4");
}

TEST_F(QueueManagerTest, CompactionPreservesState) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("m" + std::to_string(i))));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(qm_->get("Q", 0).is_ok());
  }
  const auto before = store_->record_count();
  ASSERT_TRUE(qm_->compact());
  EXPECT_LT(store_->record_count(), before);
  auto fresh = restart();
  int remaining = 0;
  while (fresh->get("Q", 0).is_ok()) ++remaining;
  EXPECT_EQ(remaining, 30);
}

TEST_F(QueueManagerTest, CompactionOfDeepQueueIsChunkedAndLossless) {
  // Deeper than the snapshot chunk size (256): the chunked browse passes
  // must stitch the full contents back together with nothing duplicated
  // or dropped across chunk boundaries.
  constexpr int kDeep = 1000;
  std::vector<std::pair<QueueAddress, Message>> puts;
  puts.reserve(kDeep);
  for (int i = 0; i < kDeep; ++i) {
    puts.emplace_back(QueueAddress("", "Q"), msg("d" + std::to_string(i)));
  }
  ASSERT_TRUE(qm_->put_all(std::move(puts)));
  ASSERT_TRUE(qm_->compact());
  auto fresh = restart();
  std::set<std::string> bodies;
  for (int i = 0; i < kDeep; ++i) {
    auto got = fresh->get("Q", 0);
    ASSERT_TRUE(got.is_ok()) << "lost message " << i << " in compaction";
    bodies.insert(std::string(got.value().body()));
  }
  EXPECT_EQ(bodies.size(), size_t(kDeep));  // all distinct — no duplicates
  EXPECT_FALSE(fresh->get("Q", 0).is_ok());  // and no extras
}

TEST_F(QueueManagerTest, ExplicitCompactionShrinksEmptyQueueLog) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("x")));
    ASSERT_TRUE(qm_->get("Q", 0).is_ok());
  }
  ASSERT_TRUE(qm_->compact());
  // After compaction of an empty queue only the create record remains.
  EXPECT_LE(store_->record_count(), 2u);
}

TEST_F(QueueManagerTest, QueueNamesListsAll) {
  ASSERT_TRUE(qm_->create_queue("ANOTHER"));
  auto names = qm_->queue_names();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(QueueManagerTest, ShutdownClosesQueues) {
  qm_->shutdown();
  EXPECT_EQ(qm_->put(QueueAddress("", "Q"), msg("x")).code(),
            util::ErrorCode::kClosed);
}

// ---------------------------------------------------------------------
// Transacted sessions
// ---------------------------------------------------------------------

class SessionTest : public QueueManagerTest {};

TEST_F(SessionTest, NonTransactedPassThrough) {
  auto session = qm_->create_session(false);
  ASSERT_TRUE(session->put(QueueAddress("", "Q"), msg("direct")));
  auto got = session->get("Q", 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "direct");
  EXPECT_EQ(session->commit().code(), util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(session->rollback().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(SessionTest, PutsInvisibleUntilCommit) {
  auto session = qm_->create_session(true);
  ASSERT_TRUE(session->put(QueueAddress("", "Q"), msg("staged")));
  EXPECT_EQ(qm_->get("Q", 0).code(), util::ErrorCode::kTimeout);
  ASSERT_TRUE(session->commit());
  EXPECT_EQ(qm_->get("Q", 0).value().body(), "staged");
}

TEST_F(SessionTest, RollbackDiscardsPuts) {
  auto session = qm_->create_session(true);
  ASSERT_TRUE(session->put(QueueAddress("", "Q"), msg("staged")));
  ASSERT_TRUE(session->rollback());
  EXPECT_EQ(qm_->get("Q", 0).code(), util::ErrorCode::kTimeout);
}

TEST_F(SessionTest, GetInvisibleToOthersUntilRollback) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("contended")));
  auto session = qm_->create_session(true);
  auto got = session->get("Q", 0);
  ASSERT_TRUE(got.is_ok());
  // other consumers cannot see it
  EXPECT_EQ(qm_->get("Q", 0).code(), util::ErrorCode::kTimeout);
  ASSERT_TRUE(session->rollback());
  auto again = qm_->get("Q", 0);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().body(), "contended");
  EXPECT_EQ(again.value().delivery_count(), 2);  // redelivery is visible
}

TEST_F(SessionTest, CommittedGetIsDurable) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("consumed")));
  {
    auto session = qm_->create_session(true);
    ASSERT_TRUE(session->get("Q", 0).is_ok());
    ASSERT_TRUE(session->commit());
  }
  auto fresh = restart();
  EXPECT_EQ(fresh->get("Q", 0).code(), util::ErrorCode::kTimeout);
}

TEST_F(SessionTest, UncommittedGetRedeliveredAfterRestart) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("inflight")));
  auto session = qm_->create_session(true);
  ASSERT_TRUE(session->get("Q", 0).is_ok());
  session.reset();  // destructor rolls back
  auto fresh = restart();
  auto got = fresh->get("Q", 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "inflight");
}

TEST_F(SessionTest, CompactionDuringOpenTransactionKeepsInflight) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("held")));
  auto session = qm_->create_session(true);
  ASSERT_TRUE(session->get("Q", 0).is_ok());
  // Compaction runs while the message is in neither queue nor log-get.
  ASSERT_TRUE(qm_->compact());
  session->rollback();
  qm_->find_queue("Q");  // still registered
  session.reset();
  auto fresh = restart();
  auto got = fresh->get("Q", 0);
  ASSERT_TRUE(got.is_ok()) << "in-flight message lost by compaction";
  EXPECT_EQ(got.value().body(), "held");
}

TEST_F(SessionTest, CommitHooksRunOnCommitOnly) {
  int commits = 0, rollbacks = 0;
  {
    auto session = qm_->create_session(true);
    session->on_commit([&] { ++commits; });
    session->on_rollback([&] { ++rollbacks; });
    ASSERT_TRUE(session->put(QueueAddress("", "Q"), msg("x")));
    ASSERT_TRUE(session->commit());
  }
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(rollbacks, 0);
  {
    auto session = qm_->create_session(true);
    session->on_commit([&] { ++commits; });
    session->on_rollback([&] { ++rollbacks; });
    ASSERT_TRUE(session->put(QueueAddress("", "Q"), msg("y")));
    ASSERT_TRUE(session->rollback());
  }
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(rollbacks, 1);
}

TEST_F(SessionTest, AbandonedSessionRollsBackInDestructor) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("abandoned")));
  {
    auto session = qm_->create_session(true);
    ASSERT_TRUE(session->get("Q", 0).is_ok());
    EXPECT_TRUE(session->has_pending_work());
  }
  EXPECT_TRUE(qm_->get("Q", 0).is_ok());
}

TEST_F(SessionTest, MultipleOperationsCommitAtomically) {
  ASSERT_TRUE(qm_->create_queue("OUT"));
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("in1")));
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("in2")));
  auto session = qm_->create_session(true);
  ASSERT_TRUE(session->get("Q", 0).is_ok());
  ASSERT_TRUE(session->get("Q", 0).is_ok());
  ASSERT_TRUE(session->put(QueueAddress("", "OUT"), msg("out1")));
  ASSERT_TRUE(session->put(QueueAddress("", "OUT"), msg("out2")));
  ASSERT_TRUE(session->commit());
  auto fresh = restart();
  EXPECT_EQ(fresh->get("Q", 0).code(), util::ErrorCode::kTimeout);
  EXPECT_TRUE(fresh->get("OUT", 0).is_ok());
  EXPECT_TRUE(fresh->get("OUT", 0).is_ok());
}

// ---------------------------------------------------------------------
// Poison messages: backout threshold
// ---------------------------------------------------------------------

class BackoutTest : public QueueManagerTest {
 protected:
  BackoutTest() {
    qm_->create_queue("WORK", QueueOptions{.backout_threshold = 3,
                                           .backout_queue = "WORK.BACKOUT"})
        .expect_ok("create");
  }
};

TEST_F(BackoutTest, RepeatedRollbackMovesToBackoutQueue) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "WORK"), msg("poison")));
  // deliveries 1 and 2 roll back normally (below the threshold of 3)
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto session = qm_->create_session(true);
    auto got = session->get("WORK", 0);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value().delivery_count(), attempt + 1);
    ASSERT_TRUE(session->rollback());
    EXPECT_EQ(qm_->find_queue("WORK")->depth(), 1u);
  }
  // third delivery reaches the threshold: rollback backs it out
  auto session = qm_->create_session(true);
  ASSERT_TRUE(session->get("WORK", 0).is_ok());
  ASSERT_TRUE(session->rollback());
  EXPECT_EQ(qm_->find_queue("WORK")->depth(), 0u);
  auto backed_out = qm_->get("WORK.BACKOUT", 0);
  ASSERT_TRUE(backed_out.is_ok());
  EXPECT_EQ(backed_out.value().body(), "poison");
}

TEST_F(BackoutTest, BackoutIsDurable) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "WORK"), msg("poison")));
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto session = qm_->create_session(true);
    ASSERT_TRUE(session->get("WORK", 0).is_ok());
    ASSERT_TRUE(session->rollback());
  }
  auto fresh = restart();
  // gone from the work queue, present on the backout queue — durably
  EXPECT_EQ(fresh->get("WORK", 0).code(), util::ErrorCode::kTimeout);
  auto backed_out = fresh->get("WORK.BACKOUT", 0);
  ASSERT_TRUE(backed_out.is_ok());
  EXPECT_EQ(backed_out.value().body(), "poison");
}

TEST_F(BackoutTest, CommitNeverBacksOut) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "WORK"), msg("fine")));
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto session = qm_->create_session(true);
    ASSERT_TRUE(session->get("WORK", 0).is_ok());
    ASSERT_TRUE(session->rollback());
    if (qm_->find_queue("WORK")->depth() == 0) break;
  }
  // the message is on the backout queue now; consuming it there commits
  auto session = qm_->create_session(true);
  ASSERT_TRUE(session->get("WORK.BACKOUT", 0).is_ok());
  ASSERT_TRUE(session->commit());
  EXPECT_EQ(qm_->find_queue("WORK.BACKOUT")->depth(), 0u);
}

TEST_F(BackoutTest, ZeroThresholdNeverBacksOut) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "Q"), msg("stubborn")));  // plain Q
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto session = qm_->create_session(true);
    ASSERT_TRUE(session->get("Q", 0).is_ok());
    ASSERT_TRUE(session->rollback());
  }
  auto got = qm_->get("Q", 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().delivery_count(), 11);
}

}  // namespace
}  // namespace cmx::mq
