#include <gtest/gtest.h>

#include "cm/condition.hpp"
#include "cm/condition_builder.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

// The paper's Example 1 condition tree (Figure 4): four recipients, a
// two-day pick-up condition on all, required processing for receiver3
// within a week, and at-least-two-of-three processing within three days.
ConditionPtr example1() {
  return SetBuilder()
      .pick_up_within(2 * kDay)
      .add(DestBuilder(QueueAddress("QMB", "Q.R3"), "receiver3")
               .processing_within(kWeek)
               .build())
      .add(SetBuilder()
               .processing_within(3 * kDay)
               .min_nr_processing(2)
               .add(DestBuilder(QueueAddress("QMB", "Q.R1"), "receiver1")
                        .build())
               .add(DestBuilder(QueueAddress("QMB", "Q.R2"), "receiver2")
                        .build())
               .add(DestBuilder(QueueAddress("QMB", "Q.R4"), "receiver4")
                        .build())
               .build())
      .build();
}

// Example 2 (Figure 5): one shared queue, anonymous pick-up within 20 s.
ConditionPtr example2() {
  return DestBuilder(QueueAddress("QMC", "Q.CENTRAL"))
      .pick_up_within(20 * kSecond)
      .build();
}

TEST(ConditionTest, Example1StructureMatchesFigure4) {
  auto root = example1();
  ASSERT_TRUE(root->validate());
  EXPECT_FALSE(root->is_leaf());
  EXPECT_EQ(root->msg_pick_up_time(), 2 * kDay);
  ASSERT_EQ(root->children().size(), 2u);

  const auto* qr3 = root->children()[0]->as_destination();
  ASSERT_NE(qr3, nullptr);
  EXPECT_EQ(qr3->recipient_id(), "receiver3");
  EXPECT_TRUE(qr3->required());
  EXPECT_TRUE(qr3->processing_required());
  EXPECT_EQ(qr3->msg_processing_time(), kWeek);

  const auto* sub = root->children()[1]->as_destination_set();
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->min_nr_processing(), 2);
  EXPECT_EQ(sub->msg_processing_time(), 3 * kDay);
  EXPECT_EQ(sub->children().size(), 3u);
  for (const auto& child : sub->children()) {
    const auto* leaf = child->as_destination();
    ASSERT_NE(leaf, nullptr);
    EXPECT_FALSE(leaf->required()) << "subset members are optional";
  }
  EXPECT_EQ(root->leaves().size(), 4u);
}

TEST(ConditionTest, Example2StructureMatchesFigure5) {
  auto cond = example2();
  ASSERT_TRUE(cond->validate());
  const auto* leaf = cond->as_destination();
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->recipient_id().empty());
  EXPECT_EQ(leaf->msg_pick_up_time(), 20 * kSecond);
  EXPECT_FALSE(leaf->msg_processing_time().has_value());
  EXPECT_TRUE(leaf->required());
}

TEST(ConditionTest, CompositeRejectsChildOpsOnLeaf) {
  auto leaf = Destination::make(QueueAddress("", "Q"));
  EXPECT_THROW(leaf->add(Destination::make(QueueAddress("", "Q2"))),
               std::logic_error);
  EXPECT_THROW(leaf->remove(nullptr), std::logic_error);
  EXPECT_TRUE(leaf->children().empty());
}

TEST(ConditionTest, AddRemoveChildren) {
  auto set = DestinationSet::make();
  auto a = Destination::make(QueueAddress("", "A"));
  auto b = Destination::make(QueueAddress("", "B"));
  set->add(a);
  set->add(b);
  EXPECT_EQ(set->children().size(), 2u);
  set->remove(a);
  ASSERT_EQ(set->children().size(), 1u);
  EXPECT_EQ(set->children()[0], b);
  EXPECT_THROW(set->add(nullptr), std::logic_error);
}

TEST(ConditionTest, CloneIsDeep) {
  auto root = example1();
  auto copy = root->clone();
  ASSERT_TRUE(copy->validate());
  EXPECT_EQ(copy->leaves().size(), 4u);
  // mutate the copy; the original must be unaffected
  auto* copy_set = const_cast<DestinationSet*>(copy->as_destination_set());
  copy_set->set_msg_pick_up_time(1);
  copy_set->children()[0]->set_msg_processing_time(2);
  EXPECT_EQ(root->msg_pick_up_time(), 2 * kDay);
  EXPECT_EQ(root->children()[0]->msg_processing_time(), kWeek);
}

TEST(ConditionTest, CodecRoundTripPreservesEverything) {
  auto root = SetBuilder()
                  .pick_up_within(1000)
                  .processing_within(2000)
                  .min_nr_pick_up(1)
                  .max_nr_pick_up(3)
                  .min_nr_processing(1)
                  .max_nr_processing(2)
                  .min_nr_anonymous(1)
                  .max_nr_anonymous(5)
                  .priority(7)
                  .expiry(9999)
                  .persistence(mq::Persistence::kNonPersistent)
                  .add(DestBuilder(QueueAddress("QM", "Q1"), "alice")
                           .pick_up_within(500)
                           .priority(2)
                           .build())
                  .add(SetBuilder()
                           .pick_up_within(800)
                           .add(DestBuilder(QueueAddress("QM", "Q2")).build())
                           .build())
                  .build();
  auto decoded = Condition::decode(root->encode());
  ASSERT_TRUE(decoded.is_ok());
  const auto* set = decoded.value()->as_destination_set();
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->msg_pick_up_time(), 1000);
  EXPECT_EQ(set->msg_processing_time(), 2000);
  EXPECT_EQ(set->min_nr_pick_up(), 1);
  EXPECT_EQ(set->max_nr_pick_up(), 3);
  EXPECT_EQ(set->min_nr_processing(), 1);
  EXPECT_EQ(set->max_nr_processing(), 2);
  EXPECT_EQ(set->min_nr_anonymous(), 1);
  EXPECT_EQ(set->max_nr_anonymous(), 5);
  EXPECT_EQ(set->msg_priority(), 7);
  EXPECT_EQ(set->msg_expiry(), 9999);
  EXPECT_EQ(set->msg_persistence(), mq::Persistence::kNonPersistent);
  ASSERT_EQ(set->children().size(), 2u);
  const auto* leaf = set->children()[0]->as_destination();
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->address(), QueueAddress("QM", "Q1"));
  EXPECT_EQ(leaf->recipient_id(), "alice");
  EXPECT_EQ(leaf->msg_pick_up_time(), 500);
  EXPECT_EQ(leaf->msg_priority(), 2);
  const auto* sub = set->children()[1]->as_destination_set();
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->children().size(), 1u);
}

TEST(ConditionTest, CodecRejectsGarbage) {
  EXPECT_FALSE(Condition::decode("").is_ok());
  EXPECT_FALSE(Condition::decode("garbage").is_ok());
  auto bytes = example2()->encode();
  EXPECT_FALSE(
      Condition::decode(std::string_view(bytes).substr(0, bytes.size() / 2))
          .is_ok());
}

TEST(ConditionTest, DescribeMentionsKeyFacts) {
  const auto text = example1()->describe();
  EXPECT_NE(text.find("receiver3"), std::string::npos);
  EXPECT_NE(text.find("minProcessing=2"), std::string::npos);
  EXPECT_NE(text.find("required"), std::string::npos);
}

// --- validation matrix ----------------------------------------------------

struct InvalidCase {
  const char* name;
  ConditionPtr (*make)();
};

class ConditionValidation : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(ConditionValidation, Rejected) {
  auto cond = GetParam().make();
  auto s = cond->validate();
  EXPECT_FALSE(s.is_ok()) << GetParam().name;
  EXPECT_EQ(s.code(), util::ErrorCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Invalid, ConditionValidation,
    ::testing::Values(
        InvalidCase{"empty queue",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          Destination::make(QueueAddress("", "")));
                    }},
        InvalidCase{"empty set",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          DestinationSet::make());
                    }},
        InvalidCase{"negative pickup time",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          DestBuilder(QueueAddress("", "Q"))
                              .pick_up_within(-5)
                              .build());
                    }},
        InvalidCase{"zero processing time",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          DestBuilder(QueueAddress("", "Q"))
                              .processing_within(0)
                              .build());
                    }},
        InvalidCase{"priority out of range",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          DestBuilder(QueueAddress("", "Q"))
                              .priority(10)
                              .build());
                    }},
        InvalidCase{"min above max",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          SetBuilder()
                              .pick_up_within(100)
                              .min_nr_pick_up(3)
                              .max_nr_pick_up(1)
                              .add(DestBuilder(QueueAddress("", "Q")).build())
                              .build());
                    }},
        InvalidCase{"cardinality without deadline",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          SetBuilder()
                              .min_nr_pick_up(1)
                              .add(DestBuilder(QueueAddress("", "Q")).build())
                              .build());
                    }},
        InvalidCase{"processing cardinality without deadline",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          SetBuilder()
                              .min_nr_processing(1)
                              .add(DestBuilder(QueueAddress("", "Q")).build())
                              .build());
                    }},
        InvalidCase{"min exceeds leaves",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          SetBuilder()
                              .pick_up_within(100)
                              .min_nr_pick_up(5)
                              .add(DestBuilder(QueueAddress("", "Q")).build())
                              .build());
                    }},
        InvalidCase{"negative anonymous",
                    [] {
                      return std::static_pointer_cast<Condition>(
                          SetBuilder()
                              .pick_up_within(100)
                              .min_nr_anonymous(-1)
                              .add(DestBuilder(QueueAddress("", "Q")).build())
                              .build());
                    }}));

TEST(ConditionTest, SharedNodeRejected) {
  auto shared = Destination::make(QueueAddress("", "Q"));
  auto root = SetBuilder().pick_up_within(100).add(shared).add(shared).build();
  EXPECT_FALSE(root->validate().is_ok());
}

TEST(ConditionTest, ValidMinimalForms) {
  EXPECT_TRUE(DestBuilder(QueueAddress("", "Q")).build()->validate());
  EXPECT_TRUE(example1()->validate());
  EXPECT_TRUE(example2()->validate());
  auto nested = SetBuilder()
                    .add(SetBuilder()
                             .add(DestBuilder(QueueAddress("", "Q")).build())
                             .build())
                    .build();
  EXPECT_TRUE(nested->validate());
}

TEST(ConditionTest, RequiredVsOptional) {
  auto required_pickup =
      DestBuilder(QueueAddress("", "Q")).pick_up_within(10).build();
  auto required_processing =
      DestBuilder(QueueAddress("", "Q")).processing_within(10).build();
  auto optional = DestBuilder(QueueAddress("", "Q")).build();
  EXPECT_TRUE(required_pickup->required());
  EXPECT_TRUE(required_processing->required());
  EXPECT_FALSE(optional->required());
  EXPECT_FALSE(required_pickup->processing_required());
  EXPECT_TRUE(required_processing->processing_required());
}

TEST(ConditionTest, LeavesAreLeftToRight) {
  auto root = example1();
  auto leaves = root->leaves();
  ASSERT_EQ(leaves.size(), 4u);
  EXPECT_EQ(leaves[0]->recipient_id(), "receiver3");
  EXPECT_EQ(leaves[1]->recipient_id(), "receiver1");
  EXPECT_EQ(leaves[2]->recipient_id(), "receiver2");
  EXPECT_EQ(leaves[3]->recipient_id(), "receiver4");
}

}  // namespace
}  // namespace cmx::cm
