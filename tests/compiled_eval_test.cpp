// Differential test: the compiled incremental engine (CompiledEval behind
// EvalState) must agree with the interpretive tree walker at EVERY
// evaluation point, not just on final verdicts. Worlds here are nastier
// than eval_oracle_test's: queues are shared between leaves (exercising
// anonymous assignment and the first-anonymous fallback), acks include
// named strangers and anonymous reads that match no leaf (exercising the
// MinNr/MaxNrAnonymous windows), timestamps can be late or out of order,
// and both values of the early-failure-detection ablation are run —
// the ablation is where a missed deadline can legitimately be undone by a
// late-arriving ack with an early timestamp.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "cm/condition_builder.hpp"
#include "cm/eval_state.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

constexpr util::TimeMs kHorizon = 1000;

// RAII guard: pin the process-wide engine default and restore it.
class EngineDefaultGuard {
 public:
  explicit EngineDefaultGuard(bool enabled)
      : prev_(compiled_eval_enabled()) {
    set_compiled_eval_enabled(enabled);
  }
  ~EngineDefaultGuard() { set_compiled_eval_enabled(prev_); }

 private:
  bool prev_;
};

class Gen {
 public:
  explicit Gen(unsigned seed) : rng_(seed) {}

  ConditionPtr make_tree() { return make_set(2); }

  // Random ack: usually aimed at some leaf's queue, sometimes from a
  // stranger recipient or fully anonymous, occasionally for a queue no
  // leaf uses (pure noise the engines must also agree on).
  AckRecord make_ack(const std::vector<const Destination*>& leaves) {
    AckRecord ack;
    ack.cm_id = "cm";
    if (!leaves.empty() && chance(85)) {
      const auto* leaf = leaves[rng_() % leaves.size()];
      ack.queue = leaf->address();
      switch (rng_() % 4) {
        case 0:
          ack.recipient_id = leaf->recipient_id();  // may be ""
          break;
        case 1:
          ack.recipient_id = "";  // anonymous
          break;
        default:
          ack.recipient_id = "stranger" + std::to_string(rng_() % 3);
          break;
      }
    } else {
      ack.queue = QueueAddress("QM", "UNRELATED");
      ack.recipient_id = chance(50) ? "" : "stranger0";
    }
    ack.read_ts = util::TimeMs(rng_() % (kHorizon + 200));
    if (chance(40)) {
      ack.type = AckType::kProcessing;
      ack.commit_ts = ack.read_ts + util::TimeMs(rng_() % 300);
    }
    return ack;
  }

  util::TimeMs step() { return 1 + util::TimeMs(rng_() % 120); }
  bool chance(int pct) { return int(rng_() % 100) < pct; }
  std::mt19937& rng() { return rng_; }

 private:
  ConditionPtr make_leaf() {
    // Small queue pool => leaves share queues, anonymous fallback fires.
    auto builder =
        DestBuilder(QueueAddress("QM", "Q" + std::to_string(rng_() % 4)),
                    chance(40) ? "user" + std::to_string(rng_() % 3) : "");
    if (chance(50)) builder.pick_up_within(duration());
    if (chance(35)) builder.processing_within(duration());
    return builder.build();
  }

  ConditionPtr make_set(int max_depth) {
    SetBuilder builder;
    const int children = 1 + int(rng_() % 3);
    int leaf_count = 0;
    for (int i = 0; i < children; ++i) {
      if (max_depth > 0 && chance(30)) {
        auto sub = make_set(max_depth - 1);
        leaf_count += int(sub->leaves().size());
        builder.add(std::move(sub));
      } else {
        builder.add(make_leaf());
        ++leaf_count;
      }
    }
    if (chance(75)) {
      builder.pick_up_within(duration());
      if (chance(50)) {
        builder.min_nr_pick_up(int(rng_() % (leaf_count + 2)));
        if (chance(30)) builder.max_nr_pick_up(int(rng_() % (leaf_count + 1)));
      }
      if (chance(35)) builder.min_nr_anonymous(int(rng_() % 3));
      if (chance(25)) builder.max_nr_anonymous(int(rng_() % 3));
    }
    if (chance(40)) {
      builder.processing_within(duration());
      if (chance(60)) builder.min_nr_processing(int(rng_() % (leaf_count + 1)));
    }
    return builder.build();
  }

  util::TimeMs duration() { return 50 + util::TimeMs(rng_() % 900); }

  std::mt19937 rng_;
};

class CompiledDifferential : public ::testing::TestWithParam<int> {};

// Feed both engines the identical interleaving of acks and evaluations;
// their verdict STATES must agree at every step (reasons may be worded
// from a different part, so only the substring family is compared in the
// targeted tests below).
TEST_P(CompiledDifferential, AgreesWithInterpretiveAtEveryStep) {
  Gen gen(static_cast<unsigned>(GetParam()));
  for (int round = 0; round < 15; ++round) {
    for (const bool early_failure : {true, false}) {
      auto tree = gen.make_tree();
      if (!tree->validate()) continue;  // generator can overshoot limits
      const auto leaves = tree->leaves();

      EvalStateOptions compiled_opts;
      compiled_opts.early_failure_detection = early_failure;
      compiled_opts.engine = EvalEngine::kCompiled;
      EvalStateOptions interp_opts = compiled_opts;
      interp_opts.engine = EvalEngine::kInterpretive;

      const util::TimeMs timeout = gen.chance(30) ? kHorizon / 2 : 0;
      EvalState compiled("cm", *tree, 0, timeout, compiled_opts);
      EvalState interpretive("cm", *tree, 0, timeout, interp_opts);
      ASSERT_TRUE(compiled.compiled());
      ASSERT_FALSE(interpretive.compiled());

      util::TimeMs now = 0;
      int step = 0;
      while (now <= kHorizon + 300) {
        if (gen.chance(70)) {
          const AckRecord ack = gen.make_ack(leaves);
          compiled.add_ack(ack);
          interpretive.add_ack(ack);
        }
        const auto vc = compiled.evaluate(now);
        const auto vi = interpretive.evaluate(now);
        ASSERT_EQ(vc.state, vi.state)
            << "step " << step << " now=" << now
            << " early_failure=" << early_failure
            << "\ntree: " << tree->describe()
            << "\ncompiled reason: " << vc.reason
            << "\ninterpretive reason: " << vi.reason;
        ASSERT_EQ(compiled.next_deadline(now), interpretive.next_deadline(now));
        now += gen.step();
        ++step;
      }
      // Both must have resolved by the horizon (all deadlines < kHorizon).
      EXPECT_TRUE(compiled.decided());
      EXPECT_TRUE(interpretive.decided());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledDifferential, ::testing::Range(1, 21));

ConditionPtr two_leaf_set(util::TimeMs window) {
  return SetBuilder()
      .add(DestBuilder(QueueAddress("QM", "A")).pick_up_within(window).build())
      .add(DestBuilder(QueueAddress("QM", "B")).build())
      .pick_up_within(window)
      .build();
}

AckRecord read_ack(const QueueAddress& queue, util::TimeMs read_ts,
                   const std::string& recipient = "") {
  AckRecord ack;
  ack.cm_id = "cm";
  ack.queue = queue;
  ack.recipient_id = recipient;
  ack.read_ts = read_ts;
  return ack;
}

// Under the ablation (no early failure detection) a deadline miss is held
// open, and a late-arriving ack carrying an early timestamp must flip the
// verdict back — for BOTH engines. This is the case that forbids latching
// missed parts in the compiled engine.
TEST(CompiledEval, AblationLateAckWithEarlyTimestampUnmissesDeadline) {
  for (const auto engine : {EvalEngine::kCompiled, EvalEngine::kInterpretive}) {
    EvalStateOptions opts;
    opts.early_failure_detection = false;
    opts.engine = engine;
    // Leaf A's own deadline (100) can be missed while the set's window
    // (500) keeps the ablation holding the violation open.
    auto tree =
        SetBuilder()
            .add(DestBuilder(QueueAddress("QM", "A")).pick_up_within(100).build())
            .add(DestBuilder(QueueAddress("QM", "B")).build())
            .pick_up_within(500)
            .build();
    EvalState state("cm", *tree, 0, /*evaluation_timeout_ms=*/1000, opts);

    // Past the pick-up deadline with no acks: violated internally, held
    // back by the ablation.
    EXPECT_EQ(state.evaluate(150).state, TriState::kPending);
    // Late arrivals, but timestamped inside the window: condition is met.
    state.add_ack(read_ack(QueueAddress("QM", "A"), 40));
    state.add_ack(read_ack(QueueAddress("QM", "B"), 60));
    EXPECT_EQ(state.evaluate(160).state, TriState::kSatisfied)
        << "engine " << (engine == EvalEngine::kCompiled ? "compiled"
                                                         : "interpretive");
  }
}

// With early failure detection (the default) the first post-deadline
// evaluation decides and later acks cannot resurrect the message.
TEST(CompiledEval, EarlyFailureLatchesAcrossLateAcks) {
  for (const auto engine : {EvalEngine::kCompiled, EvalEngine::kInterpretive}) {
    EvalStateOptions opts;
    opts.engine = engine;
    auto tree = two_leaf_set(100);
    EvalState state("cm", *tree, 0, 0, opts);
    const auto verdict = state.evaluate(150);
    EXPECT_EQ(verdict.state, TriState::kViolated);
    EXPECT_NE(verdict.reason.find("pick-up"), std::string::npos);
    state.add_ack(read_ack(QueueAddress("QM", "A"), 40));
    state.add_ack(read_ack(QueueAddress("QM", "B"), 60));
    EXPECT_EQ(state.evaluate(160).state, TriState::kViolated);
  }
}

// MaxNrPickUp is checked before the subset-satisfied shortcut; exceeding
// it violates even though the minimum was reached long ago.
TEST(CompiledEval, MaxExceededLatchesInBothEngines) {
  for (const auto engine : {EvalEngine::kCompiled, EvalEngine::kInterpretive}) {
    EvalStateOptions opts;
    opts.engine = engine;
    auto tree =
        SetBuilder()
            .add(DestBuilder(QueueAddress("QM", "A")).build())
            .add(DestBuilder(QueueAddress("QM", "B")).build())
            .add(DestBuilder(QueueAddress("QM", "C")).build())
            .pick_up_within(100)
            .min_nr_pick_up(1)
            .max_nr_pick_up(1)
            .build();
    EvalState state("cm", *tree, 0, 0, opts);
    state.add_ack(read_ack(QueueAddress("QM", "A"), 10));
    EXPECT_EQ(state.evaluate(20).state, TriState::kSatisfied);

    EvalState state2("cm", *tree, 0, 0, opts);
    state2.add_ack(read_ack(QueueAddress("QM", "A"), 10));
    state2.add_ack(read_ack(QueueAddress("QM", "B"), 12));
    const auto verdict = state2.evaluate(20);
    EXPECT_EQ(verdict.state, TriState::kViolated);
    EXPECT_NE(verdict.reason.find("MaxNrPickUp"), std::string::npos);
  }
}

// Anonymous windows: distinct named strangers count once, anonymous reads
// count each, and only reads inside the pick-up window count at all.
TEST(CompiledEval, AnonymousCountsAgree) {
  for (const auto engine : {EvalEngine::kCompiled, EvalEngine::kInterpretive}) {
    EvalStateOptions opts;
    opts.engine = engine;
    auto tree = SetBuilder()
                    .add(DestBuilder(QueueAddress("QM", "A"), "alice")
                             .pick_up_within(100)
                             .build())
                    .pick_up_within(100)
                    .min_nr_anonymous(3)
                    .build();
    EvalState state("cm", *tree, 0, 0, opts);
    state.add_ack(read_ack(QueueAddress("QM", "A"), 10, "alice"));
    state.add_ack(read_ack(QueueAddress("QM", "A"), 20, "bob"));
    state.add_ack(read_ack(QueueAddress("QM", "A"), 30, "bob"));  // dup
    state.add_ack(read_ack(QueueAddress("QM", "A"), 200));  // outside window
    EXPECT_EQ(state.evaluate(50).state, TriState::kPending);
    state.add_ack(read_ack(QueueAddress("QM", "A"), 40));  // anonymous
    state.add_ack(read_ack(QueueAddress("QM", "A"), 45));  // anonymous
    EXPECT_EQ(state.evaluate(60).state, TriState::kSatisfied)
        << "bob(1) + two anonymous reads must reach MinNrAnonymous=3";
  }
}

// The process-wide toggle drives kAuto engine selection at construction.
TEST(CompiledEval, AutoEngineFollowsProcessToggle) {
  auto tree = two_leaf_set(100);
  {
    EngineDefaultGuard guard(true);
    EvalState state("cm", *tree, 0);
    EXPECT_TRUE(state.compiled());
  }
  {
    EngineDefaultGuard guard(false);
    EvalState state("cm", *tree, 0);
    EXPECT_FALSE(state.compiled());
    // Explicit engine choice overrides the toggle.
    EvalStateOptions opts;
    opts.engine = EvalEngine::kCompiled;
    EvalState forced("cm", *tree, 0, 0, opts);
    EXPECT_TRUE(forced.compiled());
  }
}

// dump() exposes the engine and, for the compiled one, per-node residuals.
TEST(CompiledEval, DumpShowsEngineAndResiduals) {
  auto tree = two_leaf_set(100);
  EvalStateOptions opts;
  opts.engine = EvalEngine::kCompiled;
  EvalState state("cm", *tree, 0, 0, opts);
  state.add_ack(read_ack(QueueAddress("QM", "A"), 10));
  std::ostringstream os;
  state.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("engine=compiled"), std::string::npos) << text;
  EXPECT_NE(text.find("residual="), std::string::npos) << text;
  EXPECT_NE(text.find("pick-up 1/1"), std::string::npos) << text;
}

}  // namespace
}  // namespace cmx::cm
