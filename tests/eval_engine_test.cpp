// Tests of the sharded, event-driven evaluation engine (DESIGN.md §8):
// shard routing, the deadline heap's lazy-deletion protocol, batch ack
// draining, forced decisions racing in-flight acks, and the bounded
// decision-retention buffer.
//
// Suite names start with EvalEngine so the TSan CI job picks them up
// (the multi-shard engine is exactly the code that needs race coverage).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/evaluation_manager.hpp"
#include "tests/test_support.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

class EvalEngineTest : public ::testing::Test {
 protected:
  EvalEngineTest() { qm_ = test::make_qm("QM", clock_); }

  void start(EvaluationOptions options = {}) {
    eval_ = std::make_unique<EvaluationManager>(
        *qm_,
        [this](const OutcomeRecord& record, bool) {
          std::lock_guard<std::mutex> lk(mu_);
          ++outcome_counts_[record.cm_id];
          outcomes_[record.cm_id] = record;
        },
        options);
  }

  // One leaf on QM/R that must be read within `pick_up_ms` of `send_ts`.
  std::unique_ptr<EvalState> make_state(const std::string& cm_id,
                                        util::TimeMs pick_up_ms,
                                        util::TimeMs send_ts) {
    auto cond = DestBuilder(dest_).pick_up_within(pick_up_ms).build();
    return std::make_unique<EvalState>(cm_id, *cond, send_ts);
  }

  void put_read_ack(const std::string& cm_id, util::TimeMs read_ts) {
    AckRecord ack;
    ack.cm_id = cm_id;
    ack.type = AckType::kRead;
    ack.queue = dest_;
    ack.read_ts = read_ts;
    qm_->put_local(kAckQueue, ack.to_message()).expect_ok("put ack");
  }

  int outcome_count(const std::string& cm_id) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = outcome_counts_.find(cm_id);
    return it == outcome_counts_.end() ? 0 : it->second;
  }

  OutcomeRecord outcome_of(const std::string& cm_id) {
    std::lock_guard<std::mutex> lk(mu_);
    return outcomes_.at(cm_id);
  }

  std::size_t total_outcomes() {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto& [id, count] : outcome_counts_) n += count;
    return n;
  }

  QueueAddress dest_{"QM", "R"};
  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_;
  std::unique_ptr<EvaluationManager> eval_;

  std::mutex mu_;
  std::map<std::string, int> outcome_counts_;
  std::map<std::string, OutcomeRecord> outcomes_;
};

TEST_F(EvalEngineTest, AckDrivenSuccessAcrossAllShards) {
  start();
  ASSERT_EQ(eval_->shard_count(), kEvalShards);
  constexpr int kN = 64;
  std::vector<std::string> ids;
  for (int i = 0; i < kN; ++i) {
    ids.push_back("cm-" + std::to_string(i));
    eval_->register_message(make_state(ids.back(), 1000, clock_.now_ms()),
                            /*deferred=*/false);
  }
  // The ids must actually spread over shards, or this test is vacuous.
  std::vector<bool> hit(eval_->shard_count(), false);
  for (const auto& id : ids) hit[eval_->shard_of(id)] = true;
  EXPECT_GE(std::count(hit.begin(), hit.end(), true), 2);

  for (const auto& id : ids) put_read_ack(id, clock_.now_ms());
  for (const auto& id : ids) {
    EXPECT_TRUE(eval_->await_decided(id, 5000)) << id;
    EXPECT_EQ(outcome_of(id).outcome, Outcome::kSuccess) << id;
  }
  EXPECT_EQ(eval_->in_flight(), 0u);
  auto stats = eval_->stats();
  EXPECT_EQ(stats.acks_processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(stats.decided_success, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(stats.decided_failure, 0u);
  EXPECT_GE(stats.ack_batches, 1u);
  std::size_t decisions = 0;
  for (const auto& s : eval_->shard_info()) decisions += s.decisions;
  EXPECT_EQ(decisions, static_cast<std::size_t>(kN));
}

TEST_F(EvalEngineTest, DeadlineLapseFailsViaHeapWakeup) {
  start();
  eval_->register_message(make_state("cm-late", 100, clock_.now_ms()),
                          false);
  EXPECT_TRUE(eval_->is_in_flight("cm-late"));
  EXPECT_FALSE(eval_->await_decided("cm-late", 50));  // deadline not lapsed
  clock_.advance_ms(101);
  ASSERT_TRUE(eval_->await_decided("cm-late", 5000));
  const auto record = outcome_of("cm-late");
  EXPECT_EQ(record.outcome, Outcome::kFailure);
  EXPECT_NE(record.reason.find("pick-up"), std::string::npos);
  EXPECT_FALSE(eval_->is_in_flight("cm-late"));
}

TEST_F(EvalEngineTest, StaleHeapEntryAfterEarlySuccessIsHarmless) {
  start();
  eval_->register_message(make_state("cm-early", 500, clock_.now_ms()),
                          false);
  // Let the worker evaluate once so the deadline is on the heap.
  ASSERT_TRUE(test::eventually([&] {
    std::size_t heap = 0;
    for (const auto& s : eval_->shard_info()) heap += s.heap;
    return heap == 1;
  }));
  put_read_ack("cm-early", clock_.now_ms());
  ASSERT_TRUE(eval_->await_decided("cm-early", 5000));
  EXPECT_EQ(outcome_of("cm-early").outcome, Outcome::kSuccess);

  // The heap still holds the (now stale) deadline item. Letting the
  // deadline lapse must not produce a second outcome — the stale item is
  // discarded on pop — and the heap drains.
  clock_.advance_ms(1000);
  EXPECT_TRUE(test::eventually([&] {
    std::size_t heap = 0;
    for (const auto& s : eval_->shard_info()) heap += s.heap;
    return heap == 0;
  }));
  EXPECT_EQ(outcome_count("cm-early"), 1);
  auto stats = eval_->stats();
  EXPECT_EQ(stats.decided_success, 1u);
  EXPECT_EQ(stats.decided_failure, 0u);
}

TEST_F(EvalEngineTest, MalformedAckDroppedWithoutPoisoningBatch) {
  start();
  eval_->register_message(make_state("cm-a", 1000, clock_.now_ms()), false);
  eval_->register_message(make_state("cm-b", 1000, clock_.now_ms()), false);
  put_read_ack("cm-a", clock_.now_ms());
  // Not an ack at all: no control properties to decode.
  qm_->put_local(kAckQueue, mq::Message("junk")).expect_ok("put junk");
  put_read_ack("cm-b", clock_.now_ms());

  EXPECT_TRUE(eval_->await_decided("cm-a", 5000));
  EXPECT_TRUE(eval_->await_decided("cm-b", 5000));
  EXPECT_EQ(outcome_of("cm-a").outcome, Outcome::kSuccess);
  EXPECT_EQ(outcome_of("cm-b").outcome, Outcome::kSuccess);
  auto stats = eval_->stats();
  EXPECT_EQ(stats.acks_malformed, 1u);
  EXPECT_EQ(stats.acks_processed, 2u);
}

TEST_F(EvalEngineTest, OrphanAckCounted) {
  start();
  put_read_ack("cm-ghost", clock_.now_ms());
  EXPECT_TRUE(test::eventually(
      [&] { return eval_->stats().acks_orphaned == 1; }));
}

TEST_F(EvalEngineTest, ForceDecisionRacesInFlightAcksOnOneShard) {
  start();
  // All ids deliberately on ONE shard: the race between the router
  // applying an ack and force_decision() erasing the state is
  // shard-internal.
  const std::size_t shard = eval_->shard_of("cm-seed");
  std::vector<std::string> ids;
  for (int i = 0; ids.size() < 32; ++i) {
    std::string id = "cm-race-" + std::to_string(i);
    if (eval_->shard_of(id) == shard) ids.push_back(std::move(id));
  }
  for (const auto& id : ids) {
    eval_->register_message(make_state(id, 10'000, clock_.now_ms()), false);
  }
  std::thread acker([&] {
    for (const auto& id : ids) put_read_ack(id, clock_.now_ms());
  });
  std::size_t forced = 0;
  for (const auto& id : ids) {
    if (eval_->force_decision(id, Outcome::kFailure, "raced")) ++forced;
  }
  acker.join();

  // Whichever side won each race, every message decided exactly once.
  for (const auto& id : ids) {
    EXPECT_TRUE(eval_->await_decided(id, 5000)) << id;
  }
  for (const auto& id : ids) {
    EXPECT_EQ(outcome_count(id), 1) << id;
  }
  EXPECT_EQ(total_outcomes(), ids.size());
  EXPECT_EQ(eval_->in_flight(), 0u);
  auto stats = eval_->stats();
  EXPECT_EQ(stats.decided_success + stats.decided_failure, ids.size());
  EXPECT_GE(stats.decided_failure, static_cast<std::uint64_t>(forced));
}

TEST_F(EvalEngineTest, RepeatedStopIsNoOp) {
  start();
  eval_->register_message(make_state("cm-x", 100, clock_.now_ms()), false);
  put_read_ack("cm-x", clock_.now_ms());
  ASSERT_TRUE(eval_->await_decided("cm-x", 5000));
  eval_->stop();
  eval_->stop();  // second (and later) stops must be harmless
  eval_->stop();
  EXPECT_EQ(eval_->stats().decided_success, 1u);
  eval_.reset();  // destructor also calls stop()
}

TEST_F(EvalEngineTest, ScanEngineBaselineStillDecides) {
  start(EvaluationOptions{.shard_count = 1, .max_batch = 1,
                          .scan_engine = true});
  EXPECT_EQ(eval_->shard_count(), 1u);
  eval_->register_message(make_state("cm-scan", 100, clock_.now_ms()),
                          false);
  eval_->register_message(make_state("cm-scan2", 100, clock_.now_ms()),
                          false);
  put_read_ack("cm-scan", clock_.now_ms());
  ASSERT_TRUE(eval_->await_decided("cm-scan", 5000));
  EXPECT_EQ(outcome_of("cm-scan").outcome, Outcome::kSuccess);
  clock_.advance_ms(101);
  ASSERT_TRUE(eval_->await_decided("cm-scan2", 5000));
  EXPECT_EQ(outcome_of("cm-scan2").outcome, Outcome::kFailure);
}

TEST_F(EvalEngineTest, DecisionRetentionBoundedWithFifoEviction) {
  start(EvaluationOptions{.shard_count = 4, .decision_retention = 64});
  constexpr int kDecided = 200'000;
  for (int i = 0; i < kDecided; ++i) {
    const std::string id = "cm-" + std::to_string(i);
    eval_->register_message(make_state(id, 1000, clock_.now_ms()), false);
    eval_->force_decision(id, Outcome::kSuccess, "retire")
        .expect_ok("force");
  }
  EXPECT_EQ(eval_->in_flight(), 0u);

  // Retained decisions stay bounded no matter how many messages decided:
  // at most retention/shard per shard, FIFO-evicted beyond that.
  std::size_t retained = 0;
  for (const auto& s : eval_->shard_info()) {
    EXPECT_LE(s.decisions, 64u / 4u);
    retained += s.decisions;
  }
  EXPECT_LE(retained, 64u);
  auto stats = eval_->stats();
  EXPECT_EQ(stats.decided_success, static_cast<std::uint64_t>(kDecided));
  EXPECT_GE(stats.decisions_evicted,
            static_cast<std::uint64_t>(kDecided) - 64);
  // A recent decision is still queryable; the very first was evicted.
  EXPECT_TRUE(
      eval_->await_decided("cm-" + std::to_string(kDecided - 1), 1000));
  EXPECT_FALSE(eval_->await_decided("cm-0", 10));
}

}  // namespace
}  // namespace cmx::cm
