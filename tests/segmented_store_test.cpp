// SegmentedLogStore specifics beyond the backend-agnostic conformance
// suite: segment rolling, chunked replay streaming, whole-segment
// retirement and in-place squash, and crash-restart fault injection —
// torn tails, corrupt headers, vanished segments, orphaned compaction
// temporaries — ending with an end-to-end exactly-one-ack check over a
// segmented-backed queue manager restarted twice.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/control.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"
#include "mq/store.hpp"

namespace cmx::mq {
namespace {

Message msg(const std::string& body) {
  Message m(body);
  m.set_id("id-" + body);
  return m;
}

std::vector<std::string> bodies(const std::vector<LogRecord>& records) {
  std::vector<std::string> out;
  for (const auto& rec : records) {
    if (rec.type == LogRecord::Type::kPut) out.emplace_back(rec.msg().body());
  }
  return out;
}

class SegmentedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("cmx_seg_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // segment_bytes=1: every frame rolls into its own segment, making the
  // record→segment mapping deterministic for fault injection.
  std::unique_ptr<SegmentedLogStore> make(std::size_t segment_bytes = 1) {
    SegmentedStoreOptions options;
    options.segment_bytes = segment_bytes;
    auto store = SegmentedLogStore::open(dir_, options);
    store.status().expect_ok("open segmented store");
    return std::move(store).value();
  }

  std::size_t count_files(const char* suffix) {
    std::size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      const auto name = entry.path().filename().string();
      if (name.size() >= std::strlen(suffix) &&
          name.compare(name.size() - std::strlen(suffix), std::string::npos,
                       suffix) == 0) {
        ++n;
      }
    }
    return n;
  }

  std::string dir_;
};

TEST_F(SegmentedStoreTest, RollsSegmentsAndReplaysAcrossThem) {
  auto store = make(/*segment_bytes=*/256);
  std::vector<std::string> want;
  for (int i = 0; i < 30; ++i) {
    want.push_back("m" + std::to_string(i));
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg(want.back()))));
  }
  EXPECT_GT(store->segment_count(), 3u);
  EXPECT_EQ(bodies(store->replay().value()), want);
  store.reset();
  EXPECT_EQ(bodies(make(256)->replay().value()), want);
}

TEST_F(SegmentedStoreTest, ChunkedReplayStreamsOneSegmentPerChunk) {
  auto store = make();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::to_string(i)))));
  }
  MessageStore::ReplayCursor cursor;
  std::size_t chunks = 0, records = 0;
  while (!cursor.done) {
    auto chunk = store->replay_chunk(cursor);
    ASSERT_TRUE(chunk.is_ok());
    records += chunk.value().size();
    ++chunks;
    ASSERT_LT(chunks, 100u);
  }
  EXPECT_EQ(records, 5u);
  // One frame per segment here, so streaming visits >= 5 chunks (the
  // final empty active segment may add one).
  EXPECT_GE(chunks, 5u);
}

TEST_F(SegmentedStoreTest, CommittedBatchSpanningReplayChunksSurvives) {
  // Markers and their records always share one frame (one segment), but
  // the replay-side CommitFilter must persist across chunk boundaries for
  // MANUALLY appended marker pairs that land in different segments.
  auto store = make();
  ASSERT_TRUE(store->append(LogRecord::tx_begin("t1")));    // segment A
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("x"))));  // segment B
  ASSERT_TRUE(store->append(LogRecord::tx_commit("t1")));   // segment C
  EXPECT_EQ(bodies(store->replay().value()), std::vector<std::string>{"x"});
  store.reset();
  EXPECT_EQ(bodies(make()->replay().value()), std::vector<std::string>{"x"});
}

TEST_F(SegmentedStoreTest, FullyDeadSegmentsAreRetiredWhole) {
  auto store = make();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::to_string(i)))));
  }
  const std::size_t before = store->segment_count();
  // Consume every put: their single-record segments become fully dead.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store->append(LogRecord::get("Q", "id-" + std::to_string(i))));
  }
  ASSERT_TRUE(store->compact_self());
  EXPECT_LT(store->segment_count(), before);
  EXPECT_EQ(store->live_put_count(), 0u);
  EXPECT_EQ(bodies(store->replay().value()), std::vector<std::string>{});
  // The gets' own segments became dead too once their put died; whatever
  // remains must still replay cleanly after a restart.
  store.reset();
  EXPECT_EQ(bodies(make()->replay().value()), std::vector<std::string>{});
}

TEST_F(SegmentedStoreTest, SquashPreservesLiveRecordsAndOrder) {
  // Several records in ONE sealed segment, some dead: squash must shrink
  // the file while replaying the survivors in their original order.
  auto store = make(/*segment_bytes=*/4096);
  ASSERT_TRUE(store->append(LogRecord::queue_create("Q")));
  for (const char* body : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg(body))));
  }
  // Roll: a big record seals the first segment, then kill b and d.
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::string(8192, 'z')))));
  ASSERT_TRUE(store->append(LogRecord::get("Q", "id-b")));
  ASSERT_TRUE(store->append(LogRecord::get("Q", "id-d")));
  const auto first_seg = store->segment_files().front();
  const auto size_before = std::filesystem::file_size(first_seg);
  ASSERT_TRUE(store->compact_self());
  EXPECT_LT(std::filesystem::file_size(first_seg), size_before);
  auto replayed = bodies(store->replay().value());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0], "a");
  EXPECT_EQ(replayed[1], "c");
  store.reset();
  EXPECT_EQ(bodies(make(4096)->replay().value()), replayed);
}

TEST_F(SegmentedStoreTest, RetirementKeepsGetsTargetingPinnedSegments) {
  // A manually bracketed batch spanning segments pins the put's segment
  // forever (commit status is not judgeable segment-locally, so it is
  // never squashed). The get that later consumes the put lands alone in a
  // CLEAN segment; retiring that segment would erase the only evidence
  // the put was consumed, and a restart would redeliver an acknowledged
  // message.
  auto store = make();  // segment_bytes=1: one frame per segment
  ASSERT_TRUE(store->append(LogRecord::tx_begin("t1")));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("x"))));  // pinned seg
  ASSERT_TRUE(store->append(LogRecord::tx_commit("t1")));
  ASSERT_TRUE(store->append(LogRecord::get("Q", "id-x")));  // clean seg
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("tail"))));  // seals it
  ASSERT_TRUE(store->compact_self());
  EXPECT_EQ(store->live_put_count(), 1u);  // only "tail"
  store.reset();
  // The put replays from its pinned segment; the preserved get must still
  // consume it — across a restart, another compaction, and a second
  // restart (the paper's exactly-once guarantee is per restart, forever).
  auto reopened = make();
  EXPECT_EQ(reopened->live_put_count(), 1u);
  ASSERT_TRUE(reopened->compact_self());
  reopened.reset();
  EXPECT_EQ(make()->live_put_count(), 1u);
}

TEST_F(SegmentedStoreTest, SquashReemitsGetsTargetingPinnedSegments) {
  auto store = make();
  ASSERT_TRUE(store->append(LogRecord::tx_begin("t1")));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("x"))));  // pinned seg
  ASSERT_TRUE(store->append(LogRecord::tx_commit("t1")));
  // One batch frame = one segment holding {y, get x, get y}. After the
  // gets, that segment holds dead records (y and its local get) plus one
  // load-bearing get (x lives in the pinned segment), so compaction must
  // squash it down to just the get instead of dropping the get with the
  // rest.
  ASSERT_TRUE(store->append_batch({LogRecord::put("Q", msg("y")),
                                   LogRecord::get("Q", "id-x"),
                                   LogRecord::get("Q", "id-y")}));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("tail"))));  // seals it
  const auto batch_seg = store->segment_files()[3];
  const auto size_before = std::filesystem::file_size(batch_seg);
  ASSERT_TRUE(store->compact_self());
  EXPECT_LT(std::filesystem::file_size(batch_seg), size_before);
  EXPECT_EQ(store->live_put_count(), 1u);  // x and y consumed, tail live
  store.reset();
  EXPECT_EQ(make()->live_put_count(), 1u);
}

TEST_F(SegmentedStoreTest, OpenReportsIoErrorInsteadOfAborting) {
  // A --store path that turns out to be a regular file must come back as
  // kIoError through the registry, not abort the node.
  std::ofstream(dir_) << "not a directory";
  auto store = make_store("segmented:" + dir_);
  ASSERT_FALSE(store.is_ok());
  EXPECT_EQ(store.status().code(), util::ErrorCode::kIoError);
}

TEST_F(SegmentedStoreTest, SpecRejectsNumbersThatOverflow) {
  // 2^64 and beyond must be rejected, not silently wrapped into an
  // arbitrary accepted value.
  auto store =
      make_store("segmented:" + dir_ + "?segment_bytes=99999999999999999999");
  ASSERT_FALSE(store.is_ok());
  EXPECT_EQ(store.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(SegmentedStoreTest, TruncatedTailRecoversCommittedPrefix) {
  std::vector<std::string> segs;
  {
    auto store = make(/*segment_bytes=*/1 << 20);  // all in one segment
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::to_string(i)))));
    }
    segs = store->segment_files();
  }
  // Crash mid-write: the last frame loses its tail bytes.
  const auto& seg = segs.front();
  std::filesystem::resize_file(seg, std::filesystem::file_size(seg) - 3);

  auto store = make(1 << 20);
  EXPECT_EQ(bodies(store->replay().value()),
            (std::vector<std::string>{"0", "1", "2", "3"}));
  // Recovery truncated the torn frame and appends go to a FRESH segment,
  // so new records stay replayable across another restart.
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("after"))));
  store.reset();
  EXPECT_EQ(bodies(make(1 << 20)->replay().value()),
            (std::vector<std::string>{"0", "1", "2", "3", "after"}));
}

TEST_F(SegmentedStoreTest, CorruptHeaderStopsReplayAndQuarantinesTheRest) {
  std::vector<std::string> segs;
  {
    auto store = make();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::to_string(i)))));
    }
    segs = store->segment_files();
  }
  ASSERT_GE(segs.size(), 4u);
  {
    // Flip a byte inside the second segment's CRC'd header.
    std::fstream f(segs[1], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }
  auto store = make();
  // Conservative stop: nothing at or past the corruption is trusted.
  EXPECT_EQ(bodies(store->replay().value()), std::vector<std::string>{"0"});
  // The unreadable segment and everything behind it are quarantined so
  // future appends (at higher indices) can never hide behind them.
  EXPECT_GE(count_files(".bad"), 3u);
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("new"))));
  store.reset();
  EXPECT_EQ(bodies(make()->replay().value()),
            (std::vector<std::string>{"0", "new"}));
}

TEST_F(SegmentedStoreTest, MissingNewestSegmentRecoversTheRest) {
  std::vector<std::string> segs;
  {
    auto store = make();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store->append(LogRecord::put("Q", msg(std::to_string(i)))));
    }
    segs = store->segment_files();
  }
  std::filesystem::remove(segs.back());
  auto store = make();
  EXPECT_EQ(bodies(store->replay().value()),
            (std::vector<std::string>{"0", "1"}));
  ASSERT_TRUE(store->append(LogRecord::put("Q", msg("new"))));
  store.reset();
  EXPECT_EQ(bodies(make()->replay().value()),
            (std::vector<std::string>{"0", "1", "new"}));
}

TEST_F(SegmentedStoreTest, OrphanedCompactionTemporariesAreDiscarded) {
  std::string orphan;
  {
    auto store = make();
    ASSERT_TRUE(store->append(LogRecord::put("Q", msg("live"))));
    orphan = store->segment_files().front() + ".compact";
  }
  // A crash between writing <seg>.compact and the rename leaves the
  // temporary behind; reopening must ignore and remove it.
  std::ofstream(orphan) << "half-written squash output";
  auto store = make();
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_EQ(bodies(store->replay().value()), std::vector<std::string>{"live"});
}

TEST_F(SegmentedStoreTest, ExactlyOneAckPerReceiverMessageAfterRestart) {
  // End-to-end over a segmented-backed queue manager: three conditional
  // messages consumed transactionally, then the process "crashes" twice.
  // Each restart must replay exactly one receiver-log ack per
  // (receiver, message) — no resurrected messages, no duplicated acks.
  util::SimClock clock;
  QueueManagerOptions qm_options;
  qm_options.store = "segmented:" + dir_ + "/qm?segment_bytes=512";
  constexpr int kMessages = 3;
  {
    QueueManager qm("QM1", clock, nullptr, qm_options);
    qm.recover().expect_ok("recover");
    qm.create_queue("Q").expect_ok("create");
    cm::ConditionalMessagingService service(qm);
    for (int i = 0; i < kMessages; ++i) {
      auto sent = service.send_message(
          "work-" + std::to_string(i),
          *cm::DestBuilder(QueueAddress("QM1", "Q"), "worker")
               .processing_within(60'000)
               .build());
      ASSERT_TRUE(sent.is_ok());
      cm::ConditionalReceiver rx(qm, "worker");
      ASSERT_TRUE(rx.begin_tx());
      ASSERT_TRUE(rx.read_message("Q", 0).is_ok());
      ASSERT_TRUE(rx.commit_tx());
      auto outcome = service.await_outcome(sent.value(), 60'000);
      ASSERT_TRUE(outcome.is_ok());
      ASSERT_EQ(outcome.value().outcome, cm::Outcome::kSuccess);
    }
  }  // crash #1
  for (int restart = 0; restart < 2; ++restart) {
    QueueManager qm("QM1", clock, nullptr, qm_options);
    qm.recover().expect_ok("recover");
    EXPECT_EQ(qm.store_caps().backend, std::string("segmented"));
    // The consumed messages stay consumed...
    EXPECT_EQ(qm.find_queue("Q")->depth(), 0u);
    // ...and the receiver log holds exactly one ack per message, stable
    // across repeated restarts.
    EXPECT_EQ(qm.find_queue(cm::kReceiverLogQueue)->depth(),
              static_cast<std::size_t>(kMessages));
  }
}

}  // namespace
}  // namespace cmx::mq
