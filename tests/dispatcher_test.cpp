#include <gtest/gtest.h>

#include <atomic>

#include "cm/condition_builder.hpp"
#include "cm/outcome_dispatcher.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "tests/test_support.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest() : qm_("QM", clock_), service_(qm_) {
    qm_.create_queue("Q").expect_ok("create");
  }
  ConditionPtr pick_up(util::TimeMs within) {
    return DestBuilder(QueueAddress("QM", "Q")).pick_up_within(within).build();
  }
  util::SimClock clock_;
  mq::QueueManager qm_;
  ConditionalMessagingService service_;
};

TEST_F(DispatcherTest, HandlerReceivesItsOutcome) {
  OutcomeDispatcher dispatcher(qm_);
  auto cm_id = service_.send_message("x", *pick_up(1000));
  ASSERT_TRUE(cm_id.is_ok());
  std::atomic<int> calls{0};
  Outcome seen = Outcome::kFailure;
  dispatcher.on_outcome(cm_id.value(), [&](const OutcomeRecord& record) {
    seen = record.outcome;
    calls.fetch_add(1);
  });
  ConditionalReceiver rx(qm_, "reader");
  ASSERT_TRUE(rx.read_message("Q", 0).is_ok());
  ASSERT_TRUE(dispatcher.await_dispatched(1));
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, Outcome::kSuccess);
}

TEST_F(DispatcherTest, FallbackReceivesUnclaimedOutcomes) {
  std::atomic<int> fallback_calls{0};
  OutcomeDispatcher dispatcher(
      qm_, [&](const OutcomeRecord&) { fallback_calls.fetch_add(1); });
  auto cm_id = service_.send_message("x", *pick_up(100));
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(101);
  ASSERT_TRUE(dispatcher.await_dispatched(1));
  EXPECT_EQ(fallback_calls.load(), 1);
}

TEST_F(DispatcherTest, HandlersAreOneShotAndPerMessage) {
  OutcomeDispatcher dispatcher(qm_);
  auto a = service_.send_message("a", *pick_up(1000));
  auto b = service_.send_message("b", *pick_up(100));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  std::atomic<int> a_calls{0}, b_calls{0};
  std::atomic<bool> b_failed{false};
  dispatcher.on_outcome(a.value(),
                        [&](const OutcomeRecord&) { a_calls.fetch_add(1); });
  dispatcher.on_outcome(b.value(), [&](const OutcomeRecord& record) {
    b_calls.fetch_add(1);
    b_failed = record.outcome == Outcome::kFailure;
  });
  ConditionalReceiver rx(qm_, "reader");
  ASSERT_TRUE(rx.read_message("Q", 0).is_ok());  // delivers "a"'s message
  clock_.advance_ms(101);                        // fails "b"
  ASSERT_TRUE(dispatcher.await_dispatched(2));
  EXPECT_EQ(a_calls.load(), 1);
  EXPECT_EQ(b_calls.load(), 1);
  EXPECT_TRUE(b_failed.load());
}

TEST_F(DispatcherTest, StopIsIdempotentAndJoins) {
  OutcomeDispatcher dispatcher(qm_);
  dispatcher.stop();
  dispatcher.stop();
  EXPECT_EQ(dispatcher.dispatched(), 0u);
}

}  // namespace
}  // namespace cmx::cm
