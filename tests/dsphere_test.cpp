// Tests for Dependency-Spheres (§3): atomic groups of conditional
// messages, optionally integrating 2PC-managed transactional resources.
#include <gtest/gtest.h>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "ds/dsphere.hpp"
#include "tests/test_support.hpp"
#include "txn/kvstore.hpp"

namespace cmx::ds {
namespace {

using cm::DestBuilder;
using cm::MessageKind;
using mq::QueueAddress;

class DSphereTest : public ::testing::Test {
 protected:
  DSphereTest() {
    qm_ = std::make_unique<mq::QueueManager>("QM1", clock_);
    for (const char* q : {"A", "B", "C"}) {
      qm_->create_queue(q).expect_ok("create");
    }
    service_ = std::make_unique<cm::ConditionalMessagingService>(*qm_);
    spheres_ = std::make_unique<DSphereService>(*service_, coordinator_);
  }

  cm::ConditionPtr read_within(const char* queue, util::TimeMs within) {
    return DestBuilder(QueueAddress("QM1", queue))
        .pick_up_within(within)
        .build();
  }

  // Reads one message from `queue` so its member message succeeds.
  void consume(const char* queue, const std::string& recipient) {
    cm::ConditionalReceiver rx(*qm_, recipient);
    rx.read_message(queue, 0).status().expect_ok("consume");
  }

  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_;
  std::unique_ptr<cm::ConditionalMessagingService> service_;
  txn::TwoPhaseCoordinator coordinator_;
  std::unique_ptr<DSphereService> spheres_;
};

TEST_F(DSphereTest, EmptySphereCommits) {
  const auto ds = spheres_->begin();
  auto result = spheres_->commit(ds, 0);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kCommitted);
  EXPECT_EQ(spheres_->outcome(ds)->outcome, DSphereOutcome::kCommitted);
}

TEST_F(DSphereTest, MembersAreSentImmediately) {
  // §3.1: unlike messaging transactions, D-Sphere messages are NOT held
  // back until commit.
  const auto ds = spheres_->begin();
  ASSERT_TRUE(spheres_->send_message(ds, "m1", *read_within("A", 1000)));
  EXPECT_EQ(qm_->find_queue("A")->depth(), 1u);  // already delivered
  EXPECT_EQ(spheres_->members(ds).size(), 1u);
}

TEST_F(DSphereTest, AllMembersSucceedSphereCommits) {
  const auto ds = spheres_->begin();
  auto m1 = spheres_->send_message(ds, "m1", *read_within("A", 1000));
  auto m2 = spheres_->send_message(ds, "m2", *read_within("B", 1000));
  ASSERT_TRUE(m1.is_ok());
  ASSERT_TRUE(m2.is_ok());
  consume("A", "ra");
  consume("B", "rb");
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m1.value(), 5000));
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m2.value(), 5000));

  auto result = spheres_->commit(ds, 10 * cm::kSecond);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kCommitted);
  // success actions released: compensations discarded
  EXPECT_EQ(service_->compensation_manager().staged_count(m1.value()), 0u);
  EXPECT_EQ(service_->compensation_manager().staged_count(m2.value()), 0u);
}

TEST_F(DSphereTest, OutcomeActionsDeferredUntilSphereResolves) {
  const auto ds = spheres_->begin();
  auto m1 = spheres_->send_message(ds, "m1", *read_within("A", 100));
  ASSERT_TRUE(m1.is_ok());
  clock_.advance_ms(101);  // member fails
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m1.value(), 5000));
  // The member is decided (failure), but its compensation must still be
  // parked: outcome actions wait for the sphere (§3.1).
  EXPECT_EQ(service_->outcome_of(m1.value()), cm::Outcome::kFailure);
  EXPECT_EQ(service_->compensation_manager().staged_count(m1.value()), 1u);
  EXPECT_EQ(qm_->find_queue("A")->depth(), 1u);  // no compensation yet

  auto result = spheres_->commit(ds, 0);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kAborted);
  // now the compensation flows
  EXPECT_TRUE(test::eventually(
      [&] { return qm_->find_queue("A")->depth() == 2u; }));
}

TEST_F(DSphereTest, OneFailedMemberAbortsSphereAndCompensatesAll) {
  const auto ds = spheres_->begin();
  auto good = spheres_->send_message(ds, "good", *read_within("A", 1000));
  auto bad = spheres_->send_message(ds, "bad", *read_within("B", 100));
  ASSERT_TRUE(good.is_ok());
  ASSERT_TRUE(bad.is_ok());
  consume("A", "ra");  // good member succeeds
  ASSERT_TRUE(
      service_->evaluation_manager().await_decided(good.value(), 5000));
  clock_.advance_ms(101);  // bad member times out
  ASSERT_TRUE(service_->evaluation_manager().await_decided(bad.value(), 5000));

  auto result = spheres_->commit(ds, 10 * cm::kSecond);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kAborted);
  EXPECT_NE(result.value().reason.find(bad.value()), std::string::npos);

  // Compensation reaches BOTH members — including the one that succeeded
  // individually (its effects must be undone for group atomicity).
  cm::ConditionalReceiver ra(*qm_, "ra");
  auto comp = ra.read_message("A", 5000);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
  // B's original and compensation annihilate
  cm::ConditionalReceiver rb(*qm_, "rb");
  EXPECT_EQ(rb.read_message("B", 0).code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(rb.stats().annihilated, 1u);
}

TEST_F(DSphereTest, TimeoutForceFailsPendingMembers) {
  const auto ds = spheres_->begin();
  auto m1 = spheres_->send_message(ds, "m1", *read_within("A", cm::kHour));
  ASSERT_TRUE(m1.is_ok());
  // commit with a zero timeout: the member is still pending and gets
  // force-failed with the D-Sphere timeout reason
  auto result = spheres_->commit(ds, 0);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kAborted);
  EXPECT_EQ(service_->outcome_of(m1.value()), cm::Outcome::kFailure);
  auto record = service_->await_outcome(m1.value(), 1000);
  ASSERT_TRUE(record.is_ok());
  EXPECT_NE(record.value().reason.find("timeout"), std::string::npos);
}

TEST_F(DSphereTest, AbortRollsBackEverything) {
  const auto ds = spheres_->begin();
  auto m1 = spheres_->send_message(ds, "m1", *read_within("A", 1000));
  ASSERT_TRUE(m1.is_ok());
  consume("A", "ra");
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m1.value(), 5000));
  auto result = spheres_->abort(ds);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kAborted);
  cm::ConditionalReceiver ra(*qm_, "ra");
  auto comp = ra.read_message("A", 5000);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
}

TEST_F(DSphereTest, TransactionalResourceCommitsWithSphere) {
  txn::TxKvStore calendar("calendar");
  const auto ds = spheres_->begin();
  ASSERT_TRUE(spheres_->enlist(ds, calendar));
  auto tx = spheres_->transaction_id(ds);
  ASSERT_TRUE(tx.is_ok());
  ASSERT_TRUE(calendar.put(tx.value(), "meeting", "room-42"));

  auto m1 = spheres_->send_message(ds, "invite", *read_within("A", 1000));
  ASSERT_TRUE(m1.is_ok());
  consume("A", "ra");
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m1.value(), 5000));

  auto result = spheres_->commit(ds, 10 * cm::kSecond);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kCommitted);
  EXPECT_EQ(calendar.read_committed("meeting"), "room-42");
  EXPECT_EQ(coordinator_.stats().committed, 1u);
}

TEST_F(DSphereTest, ResourceAbortVoteFailsSphere) {
  // §3.2: "In case that a transactional object request fails, the
  // D-Sphere as a whole fails."
  txn::TxKvStore flaky("flaky");
  const auto ds = spheres_->begin();
  ASSERT_TRUE(spheres_->enlist(ds, flaky));
  auto tx = spheres_->transaction_id(ds);
  ASSERT_TRUE(flaky.put(tx.value(), "k", "v"));
  flaky.fail_next_prepare();

  auto m1 = spheres_->send_message(ds, "msg", *read_within("A", 1000));
  ASSERT_TRUE(m1.is_ok());
  consume("A", "ra");
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m1.value(), 5000));

  auto result = spheres_->commit(ds, 10 * cm::kSecond);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kAborted);
  EXPECT_NE(result.value().reason.find("resource"), std::string::npos);
  EXPECT_FALSE(flaky.read_committed("k").has_value());
  // ...and even the successful message is compensated
  cm::ConditionalReceiver ra(*qm_, "ra");
  EXPECT_EQ(ra.read_message("A", 5000).value().kind,
            MessageKind::kCompensation);
}

TEST_F(DSphereTest, MemberFailureRollsBackResources) {
  // §3.2: "In case that the D-Sphere fails, all object requests need to
  // be rolled back."
  txn::TxKvStore db("db");
  const auto ds = spheres_->begin();
  ASSERT_TRUE(spheres_->enlist(ds, db));
  auto tx = spheres_->transaction_id(ds);
  ASSERT_TRUE(db.put(tx.value(), "k", "v"));
  auto m1 = spheres_->send_message(ds, "msg", *read_within("A", 100));
  ASSERT_TRUE(m1.is_ok());
  clock_.advance_ms(101);
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m1.value(), 5000));

  auto result = spheres_->commit(ds, 10 * cm::kSecond);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kAborted);
  EXPECT_FALSE(db.read_committed("k").has_value());
  EXPECT_EQ(db.active_transactions(), 0u);
}

TEST_F(DSphereTest, SendOnResolvedSphereRejected) {
  const auto ds = spheres_->begin();
  ASSERT_TRUE(spheres_->commit(ds, 0).is_ok());
  auto result = spheres_->send_message(ds, "late", *read_within("A", 100));
  EXPECT_EQ(result.code(), util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(spheres_->commit(ds, 0).code(),
            util::ErrorCode::kFailedPrecondition);
}

TEST_F(DSphereTest, UnknownSphereErrors) {
  EXPECT_EQ(spheres_->commit("nope", 0).code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(spheres_->abort("nope").code(), util::ErrorCode::kNotFound);
  EXPECT_FALSE(spheres_->outcome("nope").has_value());
  EXPECT_TRUE(spheres_->members("nope").empty());
}

TEST_F(DSphereTest, NonSphereMessagesUnaffected) {
  // Conditional messages outside any sphere keep their immediate outcome
  // actions even while the sphere service is installed.
  auto cm_id = service_->send_message("solo", *read_within("C", 100));
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(101);
  auto record = service_->await_outcome(cm_id.value(), 60 * cm::kSecond);
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().outcome, cm::Outcome::kFailure);
  // compensation released immediately (not deferred)
  EXPECT_TRUE(test::eventually(
      [&] { return qm_->find_queue("C")->depth() == 2u; }));
}

TEST_F(DSphereTest, TwoSpheresIndependent) {
  const auto ds1 = spheres_->begin();
  const auto ds2 = spheres_->begin();
  auto m1 = spheres_->send_message(ds1, "one", *read_within("A", 1000));
  auto m2 = spheres_->send_message(ds2, "two", *read_within("B", 100));
  ASSERT_TRUE(m1.is_ok());
  ASSERT_TRUE(m2.is_ok());
  consume("A", "ra");
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m1.value(), 5000));
  clock_.advance_ms(101);
  ASSERT_TRUE(service_->evaluation_manager().await_decided(m2.value(), 5000));
  EXPECT_EQ(spheres_->commit(ds1, 5000).value().outcome,
            DSphereOutcome::kCommitted);
  EXPECT_EQ(spheres_->commit(ds2, 5000).value().outcome,
            DSphereOutcome::kAborted);
  auto stats = spheres_->stats();
  EXPECT_EQ(stats.begun, 2u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted, 1u);
}

TEST_F(DSphereTest, CommitWaitsForInFlightMembers) {
  const auto ds = spheres_->begin();
  auto m1 = spheres_->send_message(ds, "slow", *read_within("A", 5000));
  ASSERT_TRUE(m1.is_ok());
  // Reader acts while commit() is blocked waiting on the member.
  std::thread reader([&] {
    ASSERT_TRUE(clock_.await_waiters(1, 5000));
    consume("A", "ra");
  });
  auto result = spheres_->commit(ds, 60 * cm::kSecond);
  reader.join();
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().outcome, DSphereOutcome::kCommitted);
}

}  // namespace
}  // namespace cmx::ds
