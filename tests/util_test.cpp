#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/clock.hpp"
#include "util/codec.hpp"
#include "util/id.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace cmx::util {
namespace {

// ---------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = make_error(ErrorCode::kTimeout, "waited too long");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(s.message(), "waited too long");
  EXPECT_EQ(s.to_string(), "TIMEOUT: waited too long");
}

TEST(StatusTest, ExpectOkThrowsOnError) {
  Status s = make_error(ErrorCode::kNotFound, "missing");
  EXPECT_THROW(s.expect_ok("ctx"), std::runtime_error);
  EXPECT_NO_THROW(Status::ok().expect_ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kUnavailable); ++i) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(i)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(make_error(ErrorCode::kConflict, "boom"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kConflict);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW(r.value(), std::runtime_error);
}

TEST(ResultTest, ConstructingFromOkStatusIsABug) {
  EXPECT_THROW(Result<int> r(Status::ok()), std::logic_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

TEST(CodecTest, RoundTripsAllTypes) {
  BinaryWriter w;
  w.put_u8(7);
  w.put_u32(123456);
  w.put_u64(0xDEADBEEFCAFEBABEull);
  w.put_i64(-42);
  w.put_f64(3.25);
  w.put_bool(true);
  w.put_string("hello \0 world");  // embedded NUL is cut by literal, fine
  w.put_string(std::string(3, '\0'));

  BinaryReader r(w.data());
  EXPECT_EQ(r.get_u8().value(), 7);
  EXPECT_EQ(r.get_u32().value(), 123456u);
  EXPECT_EQ(r.get_u64().value(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(r.get_i64().value(), -42);
  EXPECT_EQ(r.get_f64().value(), 3.25);
  EXPECT_TRUE(r.get_bool().value());
  EXPECT_EQ(r.get_string().value(), "hello ");
  EXPECT_EQ(r.get_string().value(), std::string(3, '\0'));
  EXPECT_TRUE(r.at_end());
}

TEST(CodecTest, TruncatedReadsFailGracefully) {
  BinaryWriter w;
  w.put_u64(99);
  const std::string data = w.data().substr(0, 3);
  BinaryReader r(data);
  auto v = r.get_u64();
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.code(), ErrorCode::kIoError);
}

TEST(CodecTest, TruncatedStringLengthFails) {
  BinaryWriter w;
  w.put_string("abcdef");
  const std::string data = w.data().substr(0, 6);  // length + partial body
  BinaryReader r(data);
  EXPECT_FALSE(r.get_string().is_ok());
}

TEST(CodecTest, EmptyBufferIsAtEnd) {
  BinaryReader r("");
  EXPECT_TRUE(r.at_end());
  EXPECT_FALSE(r.get_u8().is_ok());
}

// ---------------------------------------------------------------------
// Ids
// ---------------------------------------------------------------------

TEST(IdTest, UniqueAcrossManyCalls) {
  std::set<std::string> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.insert(generate_id("x"));
  }
  EXPECT_EQ(ids.size(), 10000u);
}

TEST(IdTest, CarriesPrefix) {
  EXPECT_EQ(generate_id("msg").rfind("msg-", 0), 0u);
}

TEST(IdTest, SequencesIncrease) {
  const auto a = next_sequence();
  const auto b = next_sequence();
  EXPECT_LT(a, b);
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(42);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

// ---------------------------------------------------------------------
// SystemClock
// ---------------------------------------------------------------------

TEST(SystemClockTest, MonotonicNonNegative) {
  SystemClock clock;
  const auto a = clock.now_ms();
  EXPECT_GE(a, 0);
  clock.sleep_ms(5);
  EXPECT_GE(clock.now_ms(), a + 4);
}

TEST(SystemClockTest, WaitUntilHonorsPredicate) {
  SystemClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool flag = false;
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      std::lock_guard<std::mutex> lk(mu);
      flag = true;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  const bool ok = clock.wait_until(lk, cv, clock.now_ms() + 2000,
                                   [&] { return flag; });
  EXPECT_TRUE(ok);
  setter.join();
}

TEST(SystemClockTest, WaitUntilTimesOut) {
  SystemClock clock;
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(mu);
  const auto start = clock.now_ms();
  const bool ok =
      clock.wait_until(lk, cv, start + 20, [] { return false; });
  EXPECT_FALSE(ok);
  EXPECT_GE(clock.now_ms(), start + 19);
}

// ---------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------

TEST(SimClockTest, TimeOnlyMovesOnAdvance) {
  SimClock clock(100);
  EXPECT_EQ(clock.now_ms(), 100);
  clock.advance_ms(50);
  EXPECT_EQ(clock.now_ms(), 150);
  clock.set_ms(1000);
  EXPECT_EQ(clock.now_ms(), 1000);
}

TEST(SimClockTest, WaitUntilReleasedByAdvance) {
  SimClock clock;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lk(mu);
    clock.wait_until(lk, cv, 500, [] { return false; });
    done = true;
  });
  ASSERT_TRUE(clock.await_waiters(1));
  EXPECT_FALSE(done.load());
  clock.advance_ms(499);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  clock.advance_ms(1);
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(SimClockTest, WaitUntilReleasedByPredicate) {
  SimClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool flag = false;
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lk(mu);
    const bool ok =
        clock.wait_until(lk, cv, util::kNoDeadline, [&] { return flag; });
    EXPECT_TRUE(ok);
  });
  ASSERT_TRUE(clock.await_waiters(1));
  {
    std::lock_guard<std::mutex> lk(mu);
    flag = true;
  }
  cv.notify_all();
  waiter.join();
}

TEST(SimClockTest, SleepBlocksUntilAdvance) {
  SimClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_ms(100);
    woke = true;
  });
  ASSERT_TRUE(clock.await_waiters(1));
  EXPECT_FALSE(woke.load());
  clock.advance_ms(100);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(SimClockTest, WaiterCountTracksBlockedThreads) {
  SimClock clock;
  EXPECT_EQ(clock.waiter_count(), 0);
  std::thread sleeper([&] { clock.sleep_ms(10); });
  ASSERT_TRUE(clock.await_waiters(1));
  EXPECT_EQ(clock.waiter_count(), 1);
  clock.advance_ms(10);
  sleeper.join();
  EXPECT_EQ(clock.waiter_count(), 0);
}

// ---------------------------------------------------------------------
// MpmcQueue
// ---------------------------------------------------------------------

TEST(MpmcQueueTest, FifoOrder) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueueTest, CloseWakesBlockedPop) {
  MpmcQueue<int> q;
  std::thread popper([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  popper.join();
}

TEST(MpmcQueueTest, PushAfterCloseIsDropped) {
  MpmcQueue<int> q;
  q.close();
  q.push(9);
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 1000;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < 3; ++p) threads[p].join();
  while (consumed.load() < 3 * kPerProducer) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  q.close();
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(consumed.load(), 3 * kPerProducer);
}

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

TEST(LoggingTest, ParseLogLevelRecognizesEveryLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownStrings) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("DEBUG"), std::nullopt);  // case-sensitive
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("warn "), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
}

}  // namespace
}  // namespace cmx::util
