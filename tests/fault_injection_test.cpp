// Conditional messaging over a misbehaving network: duplicated messages,
// duplicated acknowledgments, partitions, and lost (non-persistent)
// deliveries. The middleware must stay correct — one outcome per
// conditional message, no stuck evaluations, compensations that cannot
// reach a consumer are dropped, not misdelivered.
#include <gtest/gtest.h>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "tests/test_support.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() {
    qm_sender_ = std::make_unique<mq::QueueManager>("QMA", clock_);
    qm_recv_ = std::make_unique<mq::QueueManager>("QMB", clock_);
    qm_recv_->create_queue("IN").expect_ok("create");
    net_ = std::make_unique<mq::Network>();
    net_->add(*qm_sender_);
    net_->add(*qm_recv_);
    service_ = std::make_unique<ConditionalMessagingService>(*qm_sender_);
  }
  ~FaultInjectionTest() override {
    service_.reset();
    net_->shutdown();
  }

  ConditionPtr pick_up(util::TimeMs within) {
    return DestBuilder(QueueAddress("QMB", "IN")).pick_up_within(within).build();
  }

  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_sender_;
  std::unique_ptr<mq::QueueManager> qm_recv_;
  std::unique_ptr<mq::Network> net_;
  std::unique_ptr<ConditionalMessagingService> service_;
};

TEST_F(FaultInjectionTest, DuplicatedDataMessageSingleOutcome) {
  // The forward channel duplicates every message: two copies arrive, two
  // receivers read them, two acks flow back — but there is exactly ONE
  // outcome, and the late ack is absorbed/orphaned, never a second decision.
  ASSERT_TRUE(net_->connect("QMA", "QMB", mq::ChannelOptions{.duplicate = 1.0}));
  auto cm_id = service_->send_message("dup-me", *pick_up(10'000));
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx1(*qm_recv_, "r1"), rx2(*qm_recv_, "r2");
  ASSERT_TRUE(rx1.read_message("IN", 5000).is_ok());
  ASSERT_TRUE(rx2.read_message("IN", 5000).is_ok());

  auto outcome = service_->await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
  // no second outcome notification for this message
  auto again = service_->await_outcome(cm_id.value(), 0);
  EXPECT_EQ(again.code(), util::ErrorCode::kTimeout);
  // both acks were consumed (one decided, one absorbed or orphaned)
  EXPECT_TRUE(test::eventually([&] {
    const auto stats = service_->evaluation_manager().stats();
    return stats.acks_processed + stats.acks_orphaned == 2;
  }));
}

TEST_F(FaultInjectionTest, DuplicatedAckHarmless) {
  // The REVERSE channel duplicates: one read produces two identical acks.
  ASSERT_TRUE(net_->connect("QMB", "QMA", mq::ChannelOptions{.duplicate = 1.0}));
  auto cm_id = service_->send_message("ack-dup", *pick_up(10'000));
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(*qm_recv_, "r1");
  ASSERT_TRUE(rx.read_message("IN", 5000).is_ok());
  auto outcome = service_->await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
  EXPECT_EQ(service_->await_outcome(cm_id.value(), 0).code(),
            util::ErrorCode::kTimeout);
}

TEST_F(FaultInjectionTest, PartitionDelaysDeliveryPastDeadline) {
  // The forward channel is partitioned: the message arrives only after the
  // pick-up deadline. The receiver still reads it (delivery is guaranteed),
  // but the read is late, so the condition fails.
  ASSERT_TRUE(net_->connect("QMA", "QMB", mq::ChannelOptions{}));
  auto* forward = net_->channel("QMA", "QMB");
  forward->pause();

  auto cm_id = service_->send_message("partitioned", "undo", *pick_up(1000));
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(1500);  // partition outlives the deadline
  auto outcome = service_->await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kFailure);

  forward->resume();
  // Both the late original and its compensation cross the healed channel
  // (guaranteed delivery), and cancel out at the receiver (§2.6): the
  // application never sees a message whose condition already failed.
  ASSERT_TRUE(test::eventually(
      [&] { return qm_recv_->find_queue("IN")->depth() == 2u; }));
  ConditionalReceiver rx(*qm_recv_, "r1");
  EXPECT_EQ(rx.read_message("IN", 0).code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(rx.stats().annihilated, 1u);
  EXPECT_EQ(qm_recv_->find_queue("IN")->depth(), 0u);
}

TEST_F(FaultInjectionTest, LostNonPersistentMessageFailsAndDropsComp) {
  // A non-persistent conditional message is dropped by the channel. The
  // condition fails at its deadline; the (persistent) compensation crosses
  // fine, but no consumption record exists at the receiver, so it is
  // dropped rather than delivered to an application that never saw the
  // original.
  ASSERT_TRUE(net_->connect(
      "QMA", "QMB", mq::ChannelOptions{.drop_nonpersistent = 1.0}));
  auto condition = DestBuilder(QueueAddress("QMB", "IN"))
                       .pick_up_within(1000)
                       .persistence(mq::Persistence::kNonPersistent)
                       .build();
  auto cm_id = service_->send_message("lost", "undo-lost", *condition);
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(1001);
  auto outcome = service_->await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kFailure);

  // compensation arrives at the receiver queue...
  ASSERT_TRUE(test::eventually(
      [&] { return qm_recv_->find_queue("IN")->depth() == 1u; }));
  // ...but the receiver must not deliver it to the application
  ConditionalReceiver rx(*qm_recv_, "r1");
  EXPECT_EQ(rx.read_message("IN", 0).code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(rx.stats().compensations_dropped, 1u);
}

TEST_F(FaultInjectionTest, JitteredChannelStillDecidesCorrectly) {
  ASSERT_TRUE(net_->connect(
      "QMA", "QMB",
      mq::ChannelOptions{.latency_ms = 1, .jitter_ms = 3, .seed = 7}));
  // With SimClock, channel latency consumes virtual time: advance it from
  // a helper thread while the receiver blocks.
  auto cm_id = service_->send_message("jittered", *pick_up(10'000));
  ASSERT_TRUE(cm_id.is_ok());
  std::thread ticker([&] {
    for (int i = 0; i < 100; ++i) {
      clock_.advance_ms(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  ConditionalReceiver rx(*qm_recv_, "r1");
  auto msg = rx.read_message("IN", 10'000);
  ticker.join();
  ASSERT_TRUE(msg.is_ok());
  auto outcome = service_->await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
}

}  // namespace
}  // namespace cmx::cm
