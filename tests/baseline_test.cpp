#include <gtest/gtest.h>

#include <thread>

#include "baseline/app_managed.hpp"
#include "baseline/coyote.hpp"
#include "tests/test_support.hpp"

namespace cmx::baseline {
namespace {

using mq::QueueAddress;

class AppManagedTest : public ::testing::Test {
 protected:
  AppManagedTest() {
    qm_ = std::make_unique<mq::QueueManager>("QM1", clock_);
    qm_->create_queue("D1").expect_ok("create");
    qm_->create_queue("D2").expect_ok("create");
  }
  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_;
};

TEST_F(AppManagedTest, AllAcksYieldSuccess) {
  AppManagedSender sender(*qm_);
  auto id = sender.send_all_must_read(
      "note", {QueueAddress("", "D1"), QueueAddress("", "D2")}, 1000);
  ASSERT_TRUE(id.is_ok());
  AppManagedReceiver rx(*qm_);
  ASSERT_TRUE(rx.read_and_ack("D1", 0).is_ok());
  ASSERT_TRUE(rx.read_and_ack("D2", 0).is_ok());
  auto outcome = sender.await_outcome(id.value());
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome.value().success);
  EXPECT_EQ(outcome.value().acks_received, 2);
}

TEST_F(AppManagedTest, MissingAckFailsAndCompensates) {
  AppManagedSender sender(*qm_);
  auto id = sender.send_all_must_read(
      "note", {QueueAddress("", "D1"), QueueAddress("", "D2")}, 500);
  ASSERT_TRUE(id.is_ok());
  AppManagedReceiver rx(*qm_);
  ASSERT_TRUE(rx.read_and_ack("D1", 0).is_ok());
  // D2 never reads; the sender's hand-rolled loop must give up at the
  // deadline. await_outcome blocks on the ack queue, so advance the clock
  // from another thread once it is waiting.
  std::thread advancer([&] {
    ASSERT_TRUE(clock_.await_waiters(1, 5000));
    clock_.advance_ms(501);
  });
  auto outcome = sender.await_outcome(id.value());
  advancer.join();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome.value().success);
  EXPECT_EQ(outcome.value().acks_received, 1);
  // hand-rolled compensation reached both destinations
  auto comp1 = qm_->get("D1", 0);
  ASSERT_TRUE(comp1.is_ok());
  EXPECT_EQ(comp1.value().get_bool(kAppCompensation), true);
  // D2 still holds the original AND the compensation — the baseline has no
  // annihilation logic; the application would have to handle the pair.
  EXPECT_EQ(qm_->find_queue("D2")->depth(), 2u);
}

TEST_F(AppManagedTest, ReceiverIgnoresForeignAckProperties) {
  AppManagedSender sender(*qm_);
  // a message that did NOT come from the AppManagedSender protocol
  ASSERT_TRUE(qm_->put(QueueAddress("", "D1"), mq::Message("plain")));
  AppManagedReceiver rx(*qm_);
  auto got = rx.read_and_ack("D1", 0);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "plain");  // no crash, no ack
}

TEST_F(AppManagedTest, UnknownOutcomeIdErrors) {
  AppManagedSender sender(*qm_);
  EXPECT_EQ(sender.await_outcome("nope").code(), util::ErrorCode::kNotFound);
}

TEST_F(AppManagedTest, EmptyDestinationsRejected) {
  AppManagedSender sender(*qm_);
  EXPECT_EQ(sender.send_all_must_read("x", {}, 100).code(),
            util::ErrorCode::kInvalidArgument);
}

class CoyoteTest : public ::testing::Test {
 protected:
  CoyoteTest() {
    qm_ = std::make_unique<mq::QueueManager>("QM1", clock_);
    qm_->create_queue("SERVER.Q").expect_ok("create");
  }
  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_;
};

TEST_F(CoyoteTest, AckWithinDeadline) {
  CoyoteClient client(*qm_);
  CoyoteServer server(*qm_);
  std::thread server_thread([&] {
    ASSERT_TRUE(server.serve_one("SERVER.Q", 5000).is_ok());
  });
  auto result = client.call(QueueAddress("", "SERVER.Q"), "req", 5000);
  server_thread.join();
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), CoyoteResult::kAcknowledged);
  EXPECT_EQ(server.acks_sent(), 1u);
}

TEST_F(CoyoteTest, TimeoutSendsCancellation) {
  CoyoteClient client(*qm_);
  std::thread advancer([&] {
    ASSERT_TRUE(clock_.await_waiters(1, 5000));
    clock_.advance_ms(1001);
  });
  auto result = client.call(QueueAddress("", "SERVER.Q"), "req", 1000);
  advancer.join();
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), CoyoteResult::kCancelled);
  // the server later sees both the request and the cancellation
  CoyoteServer server(*qm_);
  ASSERT_TRUE(server.serve_one("SERVER.Q", 0).is_ok());
  ASSERT_TRUE(server.serve_one("SERVER.Q", 0).is_ok());
  EXPECT_EQ(server.cancels_seen(), 1u);
}

TEST_F(CoyoteTest, LateAckIgnoredByCorrelation) {
  CoyoteClient client(*qm_);
  CoyoteServer server(*qm_);
  // first call times out; its late ack must not satisfy the second call
  std::thread advancer([&] {
    ASSERT_TRUE(clock_.await_waiters(1, 5000));
    clock_.advance_ms(101);
  });
  auto first = client.call(QueueAddress("", "SERVER.Q"), "r1", 100);
  advancer.join();
  ASSERT_EQ(first.value(), CoyoteResult::kCancelled);
  ASSERT_TRUE(server.serve_one("SERVER.Q", 0).is_ok());  // acks r1 (late)
  ASSERT_TRUE(server.serve_one("SERVER.Q", 0).is_ok());  // sees cancel

  std::thread advancer2([&] {
    ASSERT_TRUE(clock_.await_waiters(1, 5000));
    clock_.advance_ms(101);
  });
  auto second = client.call(QueueAddress("", "SERVER.Q"), "r2", 100);
  advancer2.join();
  EXPECT_EQ(second.value(), CoyoteResult::kCancelled);
}

}  // namespace
}  // namespace cmx::baseline
