// Guaranteed compensation (paper §2.6, reference [16]): outcome actions
// must survive a sender crash. The sender writes a persistent
// pending-action marker (DS.PEND.Q) before running compensation/success
// actions; recovery re-drives any marker still present, and sweeps
// compensations orphaned by a crashed Dependency-Sphere.
#include <gtest/gtest.h>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "ds/dsphere.hpp"
#include "tests/test_support.hpp"
#include "txn/coordinator.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

class GuaranteedCompensationTest : public ::testing::Test {
 protected:
  GuaranteedCompensationTest() {
    qm_ = std::make_unique<mq::QueueManager>("QM", clock_);
    qm_->create_queue("Q").expect_ok("create");
  }

  ConditionPtr pick_up(util::TimeMs within) {
    return DestBuilder(QueueAddress("QM", "Q")).pick_up_within(within).build();
  }

  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_;
};

TEST_F(GuaranteedCompensationTest, MarkerRemovedAfterNormalOutcome) {
  ConditionalMessagingService service(*qm_);
  auto cm_id = service.send_message("x", *pick_up(100));
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(101);
  ASSERT_TRUE(service.await_outcome(cm_id.value(), 60'000).is_ok());
  // the failure path ran to completion: no marker left behind
  EXPECT_EQ(qm_->find_queue(kPendingActionQueue)->depth(), 0u);
}

TEST_F(GuaranteedCompensationTest, RecoveryRedrivesInterruptedFailure) {
  // Simulate a sender that crashed AFTER deciding failure and writing the
  // marker, but BEFORE releasing the compensations: the durable state is
  // a PEND marker + staged compensations + (already removed) SLOG entry.
  std::string cm_id;
  std::string msg_id;
  {
    ConditionalMessagingService crashed(*qm_);
    auto sent = crashed.send_message("do", "undo", *pick_up(100));
    ASSERT_TRUE(sent.is_ok());
    cm_id = sent.value();
    msg_id = qm_->find_queue("Q")->browse().at(0).id();
    // hand-craft the crash point: marker present, SLOG consumed, staged
    // compensation untouched, actions never ran
    PendingActionMarker marker;
    marker.cm_id = cm_id;
    marker.outcome = Outcome::kFailure;
    marker.reason = "pick-up deadline missed";
    marker.deliveries = {{QueueAddress("QM", "Q"), msg_id}};
    ASSERT_TRUE(qm_->put_local(kPendingActionQueue, marker.to_message()));
    auto selector =
        mq::Selector::parse(std::string(prop::kCmId) + " = '" + cm_id + "'");
    ASSERT_TRUE(qm_->get(kSenderLogQueue, 0, &selector.value()).is_ok());
  }  // service destroyed = crash

  ConditionalMessagingService recovered(*qm_);
  ASSERT_TRUE(recovered.recover());
  // actions re-driven: compensation released to the destination queue
  EXPECT_EQ(recovered.compensation_manager().staged_count(cm_id), 0u);
  EXPECT_EQ(qm_->find_queue(kPendingActionQueue)->depth(), 0u);
  EXPECT_EQ(qm_->find_queue("Q")->depth(), 2u);  // original + compensation
  // an outcome notification was (re)emitted
  auto outcome = recovered.await_outcome(cm_id, 0);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kFailure);
  // and the evaluation was NOT resurrected (the message is decided)
  EXPECT_EQ(recovered.evaluation_manager().in_flight(), 0u);

  // a late reader finds nothing: the pair annihilates
  ConditionalReceiver rx(*qm_, "late");
  EXPECT_EQ(rx.read_message("Q", 0).code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(rx.stats().annihilated, 1u);
}

TEST_F(GuaranteedCompensationTest, RecoveryRedriveIsIdempotentOnRelease) {
  // Crash after the actions ran but before the marker was removed: the
  // re-drive must not duplicate compensations.
  std::string cm_id;
  {
    ConditionalMessagingService crashed(*qm_);
    auto sent = crashed.send_message("do", "undo", *pick_up(100));
    ASSERT_TRUE(sent.is_ok());
    cm_id = sent.value();
    clock_.advance_ms(101);
    ASSERT_TRUE(crashed.await_outcome(cm_id, 60'000).is_ok());
    // normal path completed; now re-plant the marker as if removal raced
    // the crash
    PendingActionMarker marker;
    marker.cm_id = cm_id;
    marker.outcome = Outcome::kFailure;
    ASSERT_TRUE(qm_->put_local(kPendingActionQueue, marker.to_message()));
  }
  ASSERT_EQ(qm_->find_queue("Q")->depth(), 2u);  // original + compensation

  ConditionalMessagingService recovered(*qm_);
  ASSERT_TRUE(recovered.recover());
  EXPECT_EQ(qm_->find_queue(kPendingActionQueue)->depth(), 0u);
  // release re-ran but found nothing staged: still exactly one comp
  EXPECT_EQ(qm_->find_queue("Q")->depth(), 2u);
}

TEST_F(GuaranteedCompensationTest, OrphanedSphereMemberFailedOnRecovery) {
  // A Dependency-Sphere member whose sphere died with the sender: its
  // outcome actions were deferred, SLOG consumed, no marker. The staged
  // compensation is the only durable trace; the sweep must fail it.
  std::string cm_id;
  {
    ConditionalMessagingService crashed(*qm_);
    txn::TwoPhaseCoordinator coordinator;
    ds::DSphereService spheres(crashed, coordinator);
    const auto ds = spheres.begin();
    auto sent = spheres.send_message(ds, "do", "undo", *pick_up(1000));
    ASSERT_TRUE(sent.is_ok());
    cm_id = sent.value();
    ConditionalReceiver rx(*qm_, "reader");
    ASSERT_TRUE(rx.read_message("Q", 0).is_ok());  // member SUCCEEDS
    ASSERT_TRUE(crashed.evaluation_manager().await_decided(cm_id, 5000));
    // sphere never resolves: crash
  }
  EXPECT_EQ(qm_->find_queue(kCompensationQueue)->depth(), 1u);

  ConditionalMessagingService recovered(*qm_);
  ASSERT_TRUE(recovered.recover());
  // swept: compensation released to the (consumed) destination
  EXPECT_EQ(qm_->find_queue(kCompensationQueue)->depth(), 0u);
  // Two outcome notifications exist: the member's individual evaluation
  // result (success, emitted before the crash) and the sweep's final
  // failure. Outcome records arrive in order.
  auto individual = recovered.await_outcome(cm_id, 0);
  ASSERT_TRUE(individual.is_ok());
  EXPECT_EQ(individual.value().outcome, Outcome::kSuccess);
  auto final_outcome = recovered.await_outcome(cm_id, 0);
  ASSERT_TRUE(final_outcome.is_ok());
  EXPECT_EQ(final_outcome.value().outcome, Outcome::kFailure);
  EXPECT_NE(final_outcome.value().reason.find("D-Sphere"),
            std::string::npos);
  // the reader, having consumed the original, receives the compensation
  ConditionalReceiver rx(*qm_, "reader");
  auto comp = rx.read_message("Q", 0);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
  EXPECT_EQ(comp.value().body(), "undo");
}

TEST_F(GuaranteedCompensationTest, SweepSparesInFlightAndDecided) {
  ConditionalMessagingService service(*qm_);
  ASSERT_TRUE(qm_->create_queue("Q2"));
  // in-flight message with staged compensation (never read)
  auto in_flight = service.send_message(
      "later", "undo-later",
      *DestBuilder(QueueAddress("QM", "Q2")).pick_up_within(60'000).build());
  ASSERT_TRUE(in_flight.is_ok());
  // decided-success message (compensation already discarded)
  auto decided = service.send_message("now", *pick_up(1000));
  ASSERT_TRUE(decided.is_ok());
  ConditionalReceiver rx(*qm_, "reader");
  ASSERT_TRUE(rx.read_message("Q", 0).is_ok());
  ASSERT_TRUE(service.await_outcome(decided.value(), 60'000).is_ok());

  // recover() on the live service: the sweep must not touch either
  ASSERT_TRUE(service.recover());
  EXPECT_EQ(service.compensation_manager().staged_count(in_flight.value()),
            1u);
  EXPECT_FALSE(service.outcome_of(in_flight.value()).has_value());
}

}  // namespace
}  // namespace cmx::cm
