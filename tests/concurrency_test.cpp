// Concurrency tests for the sharded QueueManager: puts/gets on different
// queues must not serialize on a single manager-wide lock, and the put/get
// paths must be clean under concurrent use (these tests are the TSan
// targets for the mq layer).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mq/queue_manager.hpp"
#include "tests/test_support.hpp"

namespace cmx::mq {
namespace {

Message msg(const std::string& body) {
  Message m(body);
  m.set_persistence(Persistence::kPersistent);
  return m;
}

// Held-lock probe: a store whose append parks any put-record for the
// "SLOW" queue until the gate opens. If the queue manager held a
// manager-wide lock across the store append (as the pre-sharding
// implementation did), a put to ANY other queue would stall behind the
// parked one and the probe below would time out.
class GateStore final : public MessageStore {
 public:
  util::Status append(const LogRecord& rec) override {
    if (rec.type == LogRecord::Type::kPut && rec.queue_name() == "SLOW") {
      std::unique_lock<std::mutex> lk(mu_);
      ++blocked_;
      cv_.notify_all();
      cv_.wait(lk, [&] { return open_; });
    }
    return inner_.append(rec);
  }
  util::Status append_batch(const std::vector<LogRecord>& recs) override {
    return inner_.append_batch(recs);
  }
  util::Result<std::vector<LogRecord>> replay() override {
    return inner_.replay();
  }
  util::Status rewrite(const std::vector<LogRecord>& snapshot) override {
    return inner_.rewrite(snapshot);
  }
  std::size_t appended_since_compaction() const override {
    return inner_.appended_since_compaction();
  }

  bool wait_until_blocked(int cap_ms = 5000) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, std::chrono::milliseconds(cap_ms),
                        [&] { return blocked_ > 0; });
  }
  void open_gate() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  MemoryStore inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int blocked_ = 0;
};

TEST(ConcurrencyTest, PutsToDistinctQueuesDoNotSerialize) {
  util::SimClock clock;
  auto gate_store = std::make_unique<GateStore>();
  GateStore* gate = gate_store.get();
  QueueManager qm("QM1", clock, std::move(gate_store));
  qm.recover().expect_ok("recover");
  qm.create_queue("SLOW").expect_ok("create SLOW");
  qm.create_queue("FAST").expect_ok("create FAST");

  std::thread slow([&] {
    qm.put(QueueAddress("", "SLOW"), msg("s")).expect_ok("slow put");
  });
  ASSERT_TRUE(gate->wait_until_blocked());

  // The SLOW put is parked inside the store. A put to a different queue
  // must still complete promptly.
  std::atomic<bool> fast_done{false};
  std::thread fast([&] {
    qm.put(QueueAddress("", "FAST"), msg("f")).expect_ok("fast put");
    fast_done.store(true);
  });
  EXPECT_TRUE(test::eventually([&] { return fast_done.load(); }, 2000));

  gate->open_gate();
  slow.join();
  fast.join();
  EXPECT_TRUE(qm.get("FAST", 0).is_ok());
  EXPECT_TRUE(qm.get("SLOW", 0).is_ok());
  qm.shutdown();
}

TEST(ConcurrencyTest, ParallelPutsAndGetsAcrossQueues) {
  constexpr int kQueues = 4;
  constexpr int kPerQueue = 100;
  util::SimClock clock;
  QueueManager qm("QM1", clock, std::make_unique<MemoryStore>());
  qm.recover().expect_ok("recover");
  for (int q = 0; q < kQueues; ++q) {
    qm.create_queue("Q" + std::to_string(q)).expect_ok("create");
  }

  std::vector<std::thread> producers;
  for (int q = 0; q < kQueues; ++q) {
    producers.emplace_back([&qm, q] {
      const std::string queue = "Q" + std::to_string(q);
      for (int i = 0; i < kPerQueue; ++i) {
        qm.put(QueueAddress("", queue), msg(queue + "#" + std::to_string(i)))
            .expect_ok("producer put");
      }
    });
  }
  std::vector<std::thread> consumers;
  std::atomic<int> received{0};
  for (int q = 0; q < kQueues; ++q) {
    consumers.emplace_back([&qm, &received, q] {
      const std::string queue = "Q" + std::to_string(q);
      int got = 0;
      while (got < kPerQueue) {
        auto r = qm.get(queue, 0);
        if (r.is_ok()) {
          ++got;
          received.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(received.load(), kQueues * kPerQueue);
  for (int q = 0; q < kQueues; ++q) {
    EXPECT_EQ(qm.find_queue("Q" + std::to_string(q))->depth(), 0u);
  }
  qm.shutdown();
}

TEST(ConcurrencyTest, ConcurrentBatchPutsLandAtomically) {
  constexpr int kThreads = 4;
  constexpr int kBatches = 50;
  util::SimClock clock;
  QueueManager qm("QM1", clock, std::make_unique<MemoryStore>());
  qm.recover().expect_ok("recover");
  qm.create_queue("A").expect_ok("create A");
  qm.create_queue("B").expect_ok("create B");
  qm.create_queue("C").expect_ok("create C");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&qm, t] {
      for (int i = 0; i < kBatches; ++i) {
        const std::string tag = std::to_string(t) + "-" + std::to_string(i);
        std::vector<std::pair<QueueAddress, Message>> batch;
        batch.emplace_back(QueueAddress("", "A"), msg("a" + tag));
        batch.emplace_back(QueueAddress("", "B"), msg("b" + tag));
        batch.emplace_back(QueueAddress("", "C"), msg("c" + tag));
        qm.put_all(std::move(batch)).expect_ok("batch put");
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const char* q : {"A", "B", "C"}) {
    EXPECT_EQ(qm.find_queue(q)->depth(),
              static_cast<std::size_t>(kThreads) * kBatches)
        << q;
  }
  qm.shutdown();
}

}  // namespace
}  // namespace cmx::mq
