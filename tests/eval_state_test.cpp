#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cm/condition_builder.hpp"
#include "cm/eval_state.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

AckRecord read_ack(const QueueAddress& queue, util::TimeMs read_ts,
                   const std::string& recipient = "") {
  AckRecord ack;
  ack.cm_id = "cm-1";
  ack.type = AckType::kRead;
  ack.queue = queue;
  ack.recipient_id = recipient;
  ack.read_ts = read_ts;
  return ack;
}

AckRecord processing_ack(const QueueAddress& queue, util::TimeMs read_ts,
                         util::TimeMs commit_ts,
                         const std::string& recipient = "") {
  AckRecord ack = read_ack(queue, read_ts, recipient);
  ack.type = AckType::kProcessing;
  ack.commit_ts = commit_ts;
  return ack;
}

// ---------------------------------------------------------------------
// Single destination (Example 2 shape)
// ---------------------------------------------------------------------

class LeafEval : public ::testing::Test {
 protected:
  QueueAddress q_{"QM", "Q"};
};

TEST_F(LeafEval, PickUpInTimeSucceeds) {
  auto cond = DestBuilder(q_).pick_up_within(100).build();
  EvalState state("cm-1", *cond, /*send_ts=*/1000);
  EXPECT_EQ(state.evaluate(1000).state, TriState::kPending);
  state.add_ack(read_ack(q_, 1050));
  EXPECT_EQ(state.evaluate(1050).state, TriState::kSatisfied);
}

TEST_F(LeafEval, PickUpAtExactDeadlineSucceeds) {
  auto cond = DestBuilder(q_).pick_up_within(100).build();
  EvalState state("cm-1", *cond, 1000);
  state.add_ack(read_ack(q_, 1100));  // == send + 100
  EXPECT_EQ(state.evaluate(1100).state, TriState::kSatisfied);
}

TEST_F(LeafEval, NoAckFailsOncePastDeadline) {
  auto cond = DestBuilder(q_).pick_up_within(100).build();
  EvalState state("cm-1", *cond, 1000);
  EXPECT_EQ(state.evaluate(1100).state, TriState::kPending);  // not yet past
  auto verdict = state.evaluate(1101);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  EXPECT_NE(verdict.reason.find("pick-up deadline"), std::string::npos);
}

TEST_F(LeafEval, LateAckStillFails) {
  auto cond = DestBuilder(q_).pick_up_within(100).build();
  EvalState state("cm-1", *cond, 1000);
  state.add_ack(read_ack(q_, 1200));  // after the deadline
  EXPECT_EQ(state.evaluate(1250).state, TriState::kViolated);
}

TEST_F(LeafEval, ProcessingRequiresCommitTimestamp) {
  auto cond = DestBuilder(q_).processing_within(200).build();
  EvalState state("cm-1", *cond, 1000);
  // A plain read ack does not satisfy a processing condition.
  state.add_ack(read_ack(q_, 1010));
  EXPECT_EQ(state.evaluate(1010).state, TriState::kPending);
  EXPECT_EQ(state.evaluate(1201).state, TriState::kViolated);
}

TEST_F(LeafEval, ProcessingAckSatisfies) {
  auto cond = DestBuilder(q_).processing_within(200).build();
  EvalState state("cm-1", *cond, 1000);
  state.add_ack(processing_ack(q_, 1010, 1150));
  EXPECT_EQ(state.evaluate(1150).state, TriState::kSatisfied);
}

TEST_F(LeafEval, PickUpAndProcessingBothRequired) {
  auto cond =
      DestBuilder(q_).pick_up_within(50).processing_within(200).build();
  EvalState state("cm-1", *cond, 1000);
  // processed in time but read too late -> violated
  state.add_ack(processing_ack(q_, 1080, 1100));
  EXPECT_EQ(state.evaluate(1100).state, TriState::kViolated);
}

TEST_F(LeafEval, RecipientMismatchDoesNotCount) {
  auto cond = DestBuilder(q_, "alice").pick_up_within(100).build();
  EvalState state("cm-1", *cond, 1000);
  state.add_ack(read_ack(q_, 1010, "bob"));
  EXPECT_EQ(state.evaluate(1010).state, TriState::kPending);
  state.add_ack(read_ack(q_, 1020, "alice"));
  EXPECT_EQ(state.evaluate(1020).state, TriState::kSatisfied);
}

TEST_F(LeafEval, AnonymousLeafAcceptsAnyRecipient) {
  auto cond = DestBuilder(q_).pick_up_within(100).build();
  EvalState state("cm-1", *cond, 1000);
  state.add_ack(read_ack(q_, 1010, "whoever"));
  EXPECT_EQ(state.evaluate(1010).state, TriState::kSatisfied);
}

TEST_F(LeafEval, WrongQueueDoesNotCount) {
  auto cond = DestBuilder(q_).pick_up_within(100).build();
  EvalState state("cm-1", *cond, 1000);
  state.add_ack(read_ack(QueueAddress("QM", "OTHER"), 1010));
  EXPECT_EQ(state.evaluate(1010).state, TriState::kPending);
}

TEST_F(LeafEval, NoConditionsIsImmediatelySatisfied) {
  auto cond = DestBuilder(q_).build();
  EvalState state("cm-1", *cond, 1000);
  EXPECT_EQ(state.evaluate(1000).state, TriState::kSatisfied);
}

TEST_F(LeafEval, DecisionIsMonotone) {
  auto cond = DestBuilder(q_).pick_up_within(100).build();
  EvalState state("cm-1", *cond, 1000);
  ASSERT_EQ(state.evaluate(2000).state, TriState::kViolated);
  // a late ack cannot resurrect it
  state.add_ack(read_ack(q_, 1010));
  EXPECT_EQ(state.evaluate(2001).state, TriState::kViolated);
  EXPECT_TRUE(state.decided());
}

TEST_F(LeafEval, EvaluationTimeoutForcesFailure) {
  auto cond = DestBuilder(q_).pick_up_within(10 * kSecond).build();
  EvalState state("cm-1", *cond, 1000, /*evaluation_timeout_ms=*/500);
  EXPECT_EQ(state.evaluate(1400).state, TriState::kPending);
  auto verdict = state.evaluate(1500);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  EXPECT_NE(verdict.reason.find("timeout"), std::string::npos);
}

TEST_F(LeafEval, NextDeadlineTracksConditionTimes) {
  auto cond =
      DestBuilder(q_).pick_up_within(100).processing_within(300).build();
  EvalState state("cm-1", *cond, 1000, 500);
  EXPECT_EQ(state.next_deadline(1000), 1101);  // pickup resolves at 1101
  EXPECT_EQ(state.next_deadline(1101), 1301);  // then processing
  EXPECT_EQ(state.next_deadline(1301), 1501);  // then the eval timeout
  state.evaluate(1600);                        // decided (violated)
  EXPECT_EQ(state.next_deadline(1600), util::kNoDeadline);
}

// ---------------------------------------------------------------------
// Destination sets
// ---------------------------------------------------------------------

class SetEval : public ::testing::Test {
 protected:
  QueueAddress q1_{"QM", "Q1"};
  QueueAddress q2_{"QM", "Q2"};
  QueueAddress q3_{"QM", "Q3"};

  ConditionPtr all_must_read(util::TimeMs within) {
    return SetBuilder()
        .pick_up_within(within)
        .add(DestBuilder(q1_).build())
        .add(DestBuilder(q2_).build())
        .add(DestBuilder(q3_).build())
        .build();
  }
};

TEST_F(SetEval, AllMembersMustReadWithoutMin) {
  EvalState state("cm-1", *all_must_read(100), 0);
  state.add_ack(read_ack(q1_, 10));
  state.add_ack(read_ack(q2_, 20));
  EXPECT_EQ(state.evaluate(20).state, TriState::kPending);
  state.add_ack(read_ack(q3_, 99));
  EXPECT_EQ(state.evaluate(99).state, TriState::kSatisfied);
}

TEST_F(SetEval, MissingMemberViolatesAtDeadline) {
  EvalState state("cm-1", *all_must_read(100), 0);
  state.add_ack(read_ack(q1_, 10));
  state.add_ack(read_ack(q2_, 20));
  auto verdict = state.evaluate(101);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  EXPECT_NE(verdict.reason.find("2/3"), std::string::npos);
}

TEST_F(SetEval, MinSubsetSatisfiedEarly) {
  auto cond = SetBuilder()
                  .pick_up_within(100)
                  .min_nr_pick_up(2)
                  .add(DestBuilder(q1_).build())
                  .add(DestBuilder(q2_).build())
                  .add(DestBuilder(q3_).build())
                  .build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(read_ack(q1_, 10));
  EXPECT_EQ(state.evaluate(10).state, TriState::kPending);
  state.add_ack(read_ack(q3_, 30));
  EXPECT_EQ(state.evaluate(30).state, TriState::kSatisfied);
}

TEST_F(SetEval, MaxSubsetExceededViolates) {
  auto cond = SetBuilder()
                  .pick_up_within(100)
                  .min_nr_pick_up(1)
                  .max_nr_pick_up(1)
                  .add(DestBuilder(q1_).build())
                  .add(DestBuilder(q2_).build())
                  .build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(read_ack(q1_, 10));
  state.add_ack(read_ack(q2_, 20));
  auto verdict = state.evaluate(20);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  EXPECT_NE(verdict.reason.find("MaxNrPickUp"), std::string::npos);
}

TEST_F(SetEval, ProcessingSubset) {
  auto cond = SetBuilder()
                  .processing_within(200)
                  .min_nr_processing(2)
                  .add(DestBuilder(q1_).build())
                  .add(DestBuilder(q2_).build())
                  .add(DestBuilder(q3_).build())
                  .build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(processing_ack(q1_, 10, 50));
  state.add_ack(read_ack(q2_, 20));  // read only: does not count
  EXPECT_EQ(state.evaluate(60).state, TriState::kPending);
  state.add_ack(processing_ack(q3_, 30, 150));
  EXPECT_EQ(state.evaluate(150).state, TriState::kSatisfied);
}

TEST_F(SetEval, ProcessingSubsetFailsAtDeadline) {
  auto cond = SetBuilder()
                  .processing_within(200)
                  .min_nr_processing(2)
                  .add(DestBuilder(q1_).build())
                  .add(DestBuilder(q2_).build())
                  .build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(processing_ack(q1_, 10, 50));
  EXPECT_EQ(state.evaluate(201).state, TriState::kViolated);
}

TEST_F(SetEval, RequiredChildViolationFailsWholeTree) {
  auto cond = SetBuilder()
                  .pick_up_within(1000)
                  .add(DestBuilder(q1_, "vip").processing_within(50).build())
                  .add(DestBuilder(q2_).build())
                  .build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(read_ack(q1_, 10, "vip"));
  state.add_ack(read_ack(q2_, 10));
  // both read well within the set window, but the required processing of
  // the vip leaf lapses at t=51
  auto verdict = state.evaluate(51);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  EXPECT_NE(verdict.reason.find("processing deadline"), std::string::npos);
}

TEST_F(SetEval, AnonymousMinCount) {
  auto cond = SetBuilder()
                  .pick_up_within(100)
                  .min_nr_pick_up(0)
                  .min_nr_anonymous(2)
                  .add(DestBuilder(q1_, "named").build())
                  .build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(read_ack(q1_, 5, "named"));  // assigned to the named leaf
  EXPECT_EQ(state.evaluate(5).state, TriState::kPending);
  state.add_ack(read_ack(q1_, 10, "stranger1"));
  state.add_ack(read_ack(q1_, 15, "stranger1"));  // duplicate: 1 distinct
  EXPECT_EQ(state.evaluate(15).state, TriState::kPending);
  state.add_ack(read_ack(q1_, 20, "stranger2"));
  EXPECT_EQ(state.evaluate(20).state, TriState::kSatisfied);
}

TEST_F(SetEval, AnonymousMaxViolated) {
  auto cond = SetBuilder()
                  .pick_up_within(100)
                  .min_nr_pick_up(1)
                  .max_nr_anonymous(1)
                  .add(DestBuilder(q1_, "named").build())
                  .build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(read_ack(q1_, 5, "named"));
  state.add_ack(read_ack(q1_, 10, "s1"));
  EXPECT_EQ(state.evaluate(10).state, TriState::kSatisfied);
  // (monotone: decided already; build a fresh state to see the violation)
  EvalState fresh("cm-2", *cond, 0);
  fresh.add_ack(read_ack(q1_, 10, "s1"));
  fresh.add_ack(read_ack(q1_, 12, "s2"));
  auto verdict = fresh.evaluate(12);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  EXPECT_NE(verdict.reason.find("MaxNrAnonymous"), std::string::npos);
}

// ---------------------------------------------------------------------
// Example 1: the full truth table of the paper's scenario
// ---------------------------------------------------------------------

class Example1Eval : public ::testing::Test {
 protected:
  QueueAddress r1_{"QMB", "Q.R1"};
  QueueAddress r2_{"QMB", "Q.R2"};
  QueueAddress r3_{"QMB", "Q.R3"};
  QueueAddress r4_{"QMB", "Q.R4"};

  ConditionPtr cond_ = SetBuilder()
                           .pick_up_within(2 * kDay)
                           .add(DestBuilder(r3_, "receiver3")
                                    .processing_within(kWeek)
                                    .build())
                           .add(SetBuilder()
                                    .processing_within(3 * kDay)
                                    .min_nr_processing(2)
                                    .add(DestBuilder(r1_, "receiver1").build())
                                    .add(DestBuilder(r2_, "receiver2").build())
                                    .add(DestBuilder(r4_, "receiver4").build())
                                    .build())
                           .build();

  void all_pickups(EvalState& state, util::TimeMs at) {
    state.add_ack(read_ack(r1_, at, "receiver1"));
    state.add_ack(read_ack(r2_, at, "receiver2"));
    state.add_ack(read_ack(r3_, at, "receiver3"));
    state.add_ack(read_ack(r4_, at, "receiver4"));
  }
};

TEST_F(Example1Eval, HappyPath) {
  EvalState state("cm-1", *cond_, 0);
  // everyone reads on day 1; r3 processes on day 5; r1+r2 process on day 2
  state.add_ack(processing_ack(r3_, kDay, 5 * kDay, "receiver3"));
  state.add_ack(processing_ack(r1_, kDay, 2 * kDay, "receiver1"));
  state.add_ack(processing_ack(r2_, kDay, 2 * kDay, "receiver2"));
  state.add_ack(read_ack(r4_, kDay, "receiver4"));
  EXPECT_EQ(state.evaluate(5 * kDay).state, TriState::kSatisfied);
}

TEST_F(Example1Eval, OneLatePickupFails) {
  EvalState state("cm-1", *cond_, 0);
  state.add_ack(processing_ack(r3_, kDay, 5 * kDay, "receiver3"));
  state.add_ack(processing_ack(r1_, kDay, 2 * kDay, "receiver1"));
  state.add_ack(processing_ack(r2_, kDay, 2 * kDay, "receiver2"));
  state.add_ack(read_ack(r4_, 3 * kDay, "receiver4"));  // past the 2-day window
  EXPECT_EQ(state.evaluate(8 * kDay).state, TriState::kViolated);
}

TEST_F(Example1Eval, Receiver3MissingProcessingFails) {
  EvalState state("cm-1", *cond_, 0);
  all_pickups(*&state, kDay);
  state.add_ack(processing_ack(r1_, kDay, 2 * kDay, "receiver1"));
  state.add_ack(processing_ack(r2_, kDay, 2 * kDay, "receiver2"));
  // receiver3 reads but never processes
  EXPECT_EQ(state.evaluate(kWeek).state, TriState::kPending);
  EXPECT_EQ(state.evaluate(kWeek + 1).state, TriState::kViolated);
}

TEST_F(Example1Eval, OnlyOneOfThreeProcessesFails) {
  EvalState state("cm-1", *cond_, 0);
  all_pickups(state, kDay);
  state.add_ack(processing_ack(r3_, kDay, 2 * kDay, "receiver3"));
  state.add_ack(processing_ack(r1_, kDay, 2 * kDay, "receiver1"));
  // r2/r4 never process: the min-2-of-3 subset lapses after day 3
  EXPECT_EQ(state.evaluate(3 * kDay).state, TriState::kPending);
  auto verdict = state.evaluate(3 * kDay + 1);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  EXPECT_NE(verdict.reason.find("1/2"), std::string::npos);
}

TEST_F(Example1Eval, TwoOfThreeProcessingSufficesWithAllPickups) {
  EvalState state("cm-1", *cond_, 0);
  all_pickups(state, kDay);
  state.add_ack(processing_ack(r3_, kDay, 6 * kDay, "receiver3"));
  state.add_ack(processing_ack(r2_, kDay, 2 * kDay, "receiver2"));
  state.add_ack(processing_ack(r4_, kDay, 3 * kDay, "receiver4"));
  EXPECT_EQ(state.evaluate(6 * kDay).state, TriState::kSatisfied);
}

TEST_F(Example1Eval, ProcessingAfterSubsetDeadlineDoesNotCount) {
  EvalState state("cm-1", *cond_, 0);
  all_pickups(state, kDay);
  state.add_ack(processing_ack(r3_, kDay, 2 * kDay, "receiver3"));
  state.add_ack(processing_ack(r1_, kDay, 2 * kDay, "receiver1"));
  state.add_ack(
      processing_ack(r2_, kDay, 3 * kDay + kHour, "receiver2"));  // too late
  EXPECT_EQ(state.evaluate(4 * kDay).state, TriState::kViolated);
}

// ---------------------------------------------------------------------
// Property-style sweeps
// ---------------------------------------------------------------------

// Ack arrival ORDER must not affect the verdict: feed the same ack multiset
// in random permutations and expect identical outcomes.
class AckOrderInvariance : public ::testing::TestWithParam<int> {};

TEST_P(AckOrderInvariance, VerdictIndependentOfArrivalOrder) {
  const QueueAddress r1{"QM", "R1"}, r2{"QM", "R2"}, r3{"QM", "R3"};
  auto cond = SetBuilder()
                  .pick_up_within(100)
                  .add(DestBuilder(r1, "a").processing_within(200).build())
                  .add(SetBuilder()
                           .processing_within(150)
                           .min_nr_processing(1)
                           .add(DestBuilder(r2).build())
                           .add(DestBuilder(r3).build())
                           .build())
                  .build();
  std::vector<AckRecord> acks = {
      processing_ack(r1, 50, 180, "a"),
      processing_ack(r2, 60, 140),
      read_ack(r3, 70),
  };
  // Reference verdict with canonical order.
  EvalState reference("cm-ref", *cond, 0);
  for (const auto& ack : acks) reference.add_ack(ack);
  const auto expected = reference.evaluate(1000).state;
  ASSERT_EQ(expected, TriState::kSatisfied);

  std::mt19937 rng(GetParam());
  std::shuffle(acks.begin(), acks.end(), rng);
  EvalState shuffled("cm-shuf", *cond, 0);
  for (const auto& ack : acks) shuffled.add_ack(ack);
  EXPECT_EQ(shuffled.evaluate(1000).state, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AckOrderInvariance,
                         ::testing::Range(1, 21));

// Interleaving evaluation calls between acks must not change the verdict,
// as long as no deadline passes in between (incremental == batch).
class IncrementalEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEquivalence, InterleavedEvaluationsHarmless) {
  const QueueAddress q{"QM", "Q"};
  auto cond = SetBuilder()
                  .pick_up_within(1000)
                  .min_nr_pick_up(3)
                  .add(DestBuilder(q, "u1").build())
                  .add(DestBuilder(q, "u2").build())
                  .add(DestBuilder(q, "u3").build())
                  .add(DestBuilder(q, "u4").build())
                  .build();
  std::mt19937 rng(GetParam());
  EvalState state("cm-1", *cond, 0);
  std::vector<std::string> users = {"u1", "u2", "u3"};
  std::shuffle(users.begin(), users.end(), rng);
  util::TimeMs t = 1;
  for (const auto& user : users) {
    if (rng() % 2 == 0) {
      EXPECT_NE(state.evaluate(t).state, TriState::kViolated);
    }
    state.add_ack(read_ack(q, t, user));
    t += 10;
  }
  EXPECT_EQ(state.evaluate(t).state, TriState::kSatisfied);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Range(1, 16));

// Every condition tree resolves by its largest deadline: never pending
// after that, whatever subset of acks arrived.
class TerminationProperty : public ::testing::TestWithParam<int> {};

TEST_P(TerminationProperty, ResolvedByLargestDeadline) {
  const QueueAddress q1{"QM", "Q1"}, q2{"QM", "Q2"};
  std::mt19937 rng(GetParam());
  auto maybe = [&](int pct) { return int(rng() % 100) < pct; };

  auto d1 = DestBuilder(q1, "a");
  if (maybe(50)) d1.pick_up_within(50 + rng() % 100);
  if (maybe(50)) d1.processing_within(100 + rng() % 200);
  auto d2 = DestBuilder(q2);
  if (maybe(30)) d2.pick_up_within(50 + rng() % 100);
  auto cond = SetBuilder()
                  .pick_up_within(100 + rng() % 400)
                  .add(d1.build())
                  .add(d2.build())
                  .build();
  ASSERT_TRUE(cond->validate());

  EvalState state("cm-1", *cond, 0);
  if (maybe(60)) state.add_ack(read_ack(q1, rng() % 600, "a"));
  if (maybe(60)) state.add_ack(processing_ack(q1, rng() % 300,
                                              rng() % 600, "a"));
  if (maybe(60)) state.add_ack(read_ack(q2, rng() % 600));
  // Largest possible deadline in this generator is < 1000.
  EXPECT_NE(state.evaluate(1001).state, TriState::kPending);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TerminationProperty,
                         ::testing::Range(1, 31));

TEST(EvalStateMisc, AcksAfterDecisionAreIgnored) {
  const QueueAddress q{"QM", "Q"};
  auto cond = DestBuilder(q).pick_up_within(10).build();
  EvalState state("cm-1", *cond, 0);
  ASSERT_EQ(state.evaluate(11).state, TriState::kViolated);
  const auto before = state.ack_count();
  state.add_ack(read_ack(q, 5));
  EXPECT_EQ(state.ack_count(), before);
}

TEST(EvalStateMisc, DuplicateAcksKeepEarliestTimestamp) {
  const QueueAddress q{"QM", "Q"};
  auto cond = DestBuilder(q, "a").pick_up_within(100).build();
  EvalState state("cm-1", *cond, 0);
  state.add_ack(read_ack(q, 90, "a"));
  state.add_ack(read_ack(q, 150, "a"));  // later duplicate must not regress
  EXPECT_EQ(state.evaluate(95).state, TriState::kSatisfied);
}

}  // namespace
}  // namespace cmx::cm
