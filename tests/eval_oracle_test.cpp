// Property test: the incremental evaluation engine (EvalState) must agree
// with an independently-written brute-force oracle that evaluates the
// §2.2/§2.5 semantics directly over the final set of acknowledgments.
//
// Trees are generated with one distinct queue per leaf (so ack-to-leaf
// assignment is unambiguous and the oracle stays simple); each leaf
// randomly gets pick-up/processing conditions, each set randomly gets
// windowed cardinalities. Acks arrive in random order, interleaved with
// evaluations at random times. Checked properties:
//   1. final verdict == oracle verdict,
//   2. monotonicity: once decided, later evaluations agree,
//   3. early decisions are sound: a decision at time t equals the oracle.
#include <gtest/gtest.h>

#include <random>

#include "cm/condition_builder.hpp"
#include "cm/eval_state.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

constexpr util::TimeMs kHorizon = 1000;  // all deadlines < kHorizon

struct LeafAcks {
  // at most one read event and one processing event per leaf
  std::optional<util::TimeMs> read_ts;
  std::optional<util::TimeMs> commit_ts;  // implies a read at read_ts
};

struct World {
  ConditionPtr tree;
  std::vector<const Destination*> leaves;
  std::vector<LeafAcks> acks;
};

// ---------------------------------------------------------------------
// Oracle: direct recursive satisfaction at a time when every deadline has
// passed (so tri-state collapses to boolean).
// ---------------------------------------------------------------------

bool oracle_leaf(const Destination& leaf, const LeafAcks& acks) {
  if (auto t = leaf.msg_pick_up_time()) {
    if (!acks.read_ts.has_value() || *acks.read_ts > *t) return false;
  }
  if (auto t = leaf.msg_processing_time()) {
    if (!acks.commit_ts.has_value() || *acks.commit_ts > *t) return false;
  }
  return true;
}

bool oracle_node(const Condition& node, const World& world);

bool oracle_set(const DestinationSet& set, const World& world) {
  // indices of the leaves in this subtree
  std::vector<std::size_t> idx;
  for (const auto* leaf : set.leaves()) {
    for (std::size_t i = 0; i < world.leaves.size(); ++i) {
      if (world.leaves[i] == leaf) idx.push_back(i);
    }
  }
  if (auto t = set.msg_pick_up_time()) {
    int count = 0;
    for (auto i : idx) {
      const auto& a = world.acks[i];
      if (a.read_ts.has_value() && *a.read_ts <= *t) ++count;
    }
    const int needed = set.min_nr_pick_up().value_or(int(idx.size()));
    if (count < needed) return false;
    if (auto max = set.max_nr_pick_up(); max.has_value() && count > *max) {
      return false;
    }
  }
  if (auto t = set.msg_processing_time()) {
    int count = 0;
    for (auto i : idx) {
      const auto& a = world.acks[i];
      if (a.commit_ts.has_value() && *a.commit_ts <= *t) ++count;
    }
    const int needed = set.min_nr_processing().value_or(int(idx.size()));
    if (count < needed) return false;
    if (auto max = set.max_nr_processing();
        max.has_value() && count > *max) {
      return false;
    }
  }
  for (const auto& child : set.children()) {
    if (!oracle_node(*child, world)) return false;
  }
  return true;
}

bool oracle_node(const Condition& node, const World& world) {
  if (const auto* leaf = node.as_destination()) {
    for (std::size_t i = 0; i < world.leaves.size(); ++i) {
      if (world.leaves[i] == leaf) return oracle_leaf(*leaf, world.acks[i]);
    }
    ADD_FAILURE() << "leaf not found";
    return false;
  }
  return oracle_set(*node.as_destination_set(), world);
}

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

class Gen {
 public:
  explicit Gen(unsigned seed) : rng_(seed) {}

  World make_world() {
    World world;
    next_queue_ = 0;
    world.tree = make_set(2);
    world.leaves = world.tree->leaves();
    std::uniform_int_distribution<int> kind(0, 3);
    std::uniform_int_distribution<util::TimeMs> when(1, kHorizon - 1);
    for (std::size_t i = 0; i < world.leaves.size(); ++i) {
      LeafAcks acks;
      switch (kind(rng_)) {
        case 0:  // silent leaf
          break;
        case 1:  // read only
          acks.read_ts = when(rng_);
          break;
        default: {  // transactional: read then commit
          const auto read = when(rng_);
          acks.read_ts = read;
          acks.commit_ts = std::min<util::TimeMs>(
              kHorizon - 1, read + when(rng_) % 200);
          break;
        }
      }
      world.acks.push_back(acks);
    }
    return world;
  }

  std::mt19937& rng() { return rng_; }

 private:
  ConditionPtr make_leaf() {
    auto builder = DestBuilder(
        QueueAddress("QM", "Q" + std::to_string(next_queue_++)),
        chance(50) ? "user" + std::to_string(next_queue_) : "");
    if (chance(50)) builder.pick_up_within(duration());
    if (chance(35)) builder.processing_within(duration());
    return builder.build();
  }

  ConditionPtr make_set(int max_depth) {
    SetBuilder builder;
    const int children = 1 + int(rng_() % 3);
    int leaf_count = 0;
    for (int i = 0; i < children; ++i) {
      if (max_depth > 0 && chance(30)) {
        auto sub = make_set(max_depth - 1);
        leaf_count += int(sub->leaves().size());
        builder.add(std::move(sub));
      } else {
        builder.add(make_leaf());
        ++leaf_count;
      }
    }
    const bool pick_up = chance(70);
    if (pick_up) {
      builder.pick_up_within(duration());
      if (chance(50)) {
        builder.min_nr_pick_up(1 + int(rng_() % leaf_count));
        if (chance(30)) builder.max_nr_pick_up(leaf_count);
      }
    }
    if (chance(40)) {
      builder.processing_within(duration());
      if (chance(60)) {
        builder.min_nr_processing(1 + int(rng_() % leaf_count));
      }
    }
    return builder.build();
  }

  util::TimeMs duration() { return 50 + util::TimeMs(rng_() % 900); }
  bool chance(int pct) { return int(rng_() % 100) < pct; }

  std::mt19937 rng_;
  int next_queue_ = 0;
};

AckRecord to_record(const Destination& leaf, const LeafAcks& acks) {
  AckRecord record;
  record.cm_id = "cm";
  record.queue = leaf.address();
  record.recipient_id = leaf.recipient_id();
  record.read_ts = acks.read_ts.value_or(0);
  if (acks.commit_ts.has_value()) {
    record.type = AckType::kProcessing;
    record.commit_ts = *acks.commit_ts;
  } else {
    record.type = AckType::kRead;
  }
  return record;
}

class EvalOracle : public ::testing::TestWithParam<int> {};

TEST_P(EvalOracle, IncrementalAgreesWithBruteForce) {
  Gen gen(static_cast<unsigned>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    World world = gen.make_world();
    ASSERT_TRUE(world.tree->validate()) << world.tree->describe();

    const bool expected = oracle_node(*world.tree, world);

    // Complete-knowledge evaluation: apply every ack (in random order —
    // order independence is its own property), then evaluate once after
    // all deadlines. The engine must agree with the oracle exactly.
    //
    // (Early decisions interleaved with arrivals are deliberately NOT
    // compared against the oracle: a witness ack still in flight at a
    // deadline makes the engine legitimately more pessimistic than ground
    // truth — the asynchrony §2.5's evaluation timeout exists to bound.
    // Early-decision monotonicity is covered in eval_state_test.cpp.)
    std::vector<AckRecord> arrivals;
    for (std::size_t i = 0; i < world.leaves.size(); ++i) {
      if (!world.acks[i].read_ts.has_value()) continue;
      arrivals.push_back(to_record(*world.leaves[i], world.acks[i]));
    }
    std::shuffle(arrivals.begin(), arrivals.end(), gen.rng());

    EvalState state("cm", *world.tree, 0);
    for (const auto& record : arrivals) {
      state.add_ack(record);
    }
    const auto final_verdict = state.evaluate(kHorizon + 1);
    ASSERT_NE(final_verdict.state, TriState::kPending);
    const bool got = final_verdict.state == TriState::kSatisfied;
    EXPECT_EQ(got, expected)
        << "tree: " << world.tree->describe()
        << "\nreason: " << final_verdict.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalOracle, ::testing::Range(1, 26));

}  // namespace
}  // namespace cmx::cm
