// Full-stack durability: the conditional messaging system running over
// disk-backed queue managers, killed and restarted at interesting points.
// This exercises the actual recovery path an operator would rely on —
// store replay, sender-log re-registration, transmission-queue survival.
// Parameterized over the durable storage engines (flat file log and
// segmented log), so both must honour the same recovery contract.
#include <gtest/gtest.h>

#include <filesystem>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "tests/test_support.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

class DurabilityE2ETest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    // Parameterized test names contain '/'; flatten for the filesystem.
    std::string test =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (auto& c : test) {
      if (c == '/') c = '_';
    }
    dir_ = std::filesystem::temp_directory_path() /
           ("cmx_e2e_" + std::to_string(::getpid()) + "_" + test);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<mq::QueueManager> make_qm(const std::string& name) {
    mq::QueueManagerOptions options;
    options.store =
        std::string(GetParam()) + ":" + (dir_ / (name + ".store")).string();
    return std::make_unique<mq::QueueManager>(name, clock_, nullptr, options);
  }

  util::SimClock clock_;
  std::filesystem::path dir_;
};

INSTANTIATE_TEST_SUITE_P(
    Durability, DurabilityE2ETest, ::testing::Values("file", "segmented"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST_P(DurabilityE2ETest, InFlightConditionalMessageSurvivesFullRestart) {
  std::string cm_id;
  {
    auto qm = make_qm("QM1");
    qm->recover().expect_ok("recover");
    qm->create_queue("Q").expect_ok("create");
    ConditionalMessagingService service(*qm);
    auto sent = service.send_message(
        "durable work", "durable undo",
        *DestBuilder(QueueAddress("QM1", "Q")).pick_up_within(60'000).build());
    ASSERT_TRUE(sent.is_ok());
    cm_id = sent.value();
    service.evaluation_manager().stop();
  }  // hard stop: queue manager and service destroyed

  // Restart everything from the log files.
  auto qm = make_qm("QM1");
  qm->recover().expect_ok("recover");
  ConditionalMessagingService service(*qm);
  ASSERT_TRUE(service.recover());
  EXPECT_EQ(service.evaluation_manager().in_flight(), 1u);
  EXPECT_EQ(qm->find_queue("Q")->depth(), 1u);  // data message survived
  EXPECT_EQ(service.compensation_manager().staged_count(cm_id), 1u);

  // The message can complete normally after the restart.
  ConditionalReceiver rx(*qm, "worker");
  ASSERT_TRUE(rx.read_message("Q", 0).is_ok());
  auto outcome = service.await_outcome(cm_id, 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
}

TEST_P(DurabilityE2ETest, DeadlineFailureAfterRestartCompensates) {
  std::string cm_id;
  {
    auto qm = make_qm("QM1");
    qm->recover().expect_ok("recover");
    qm->create_queue("Q").expect_ok("create");
    ConditionalMessagingService service(*qm);
    auto sent = service.send_message(
        "to-fail", "undo-it",
        *DestBuilder(QueueAddress("QM1", "Q")).pick_up_within(500).build());
    ASSERT_TRUE(sent.is_ok());
    cm_id = sent.value();
  }

  clock_.advance_ms(501);  // the deadline passes while the sender is down
  auto qm = make_qm("QM1");
  qm->recover().expect_ok("recover");
  ConditionalMessagingService service(*qm);
  ASSERT_TRUE(service.recover());
  auto outcome = service.await_outcome(cm_id, 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kFailure);
  // compensation released; the unread pair annihilates
  ConditionalReceiver rx(*qm, "late");
  EXPECT_EQ(rx.read_message("Q", 0).code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(rx.stats().annihilated, 1u);
}

TEST_P(DurabilityE2ETest, ReceiverLogSurvivesRestartForCompensation) {
  auto qm_sender = make_qm("QMA");
  qm_sender->recover().expect_ok("recover");
  std::string cm_id;
  {
    auto qm_recv = make_qm("QMB");
    qm_recv->recover().expect_ok("recover");
    qm_recv->create_queue("IN").expect_ok("create");
    mq::Network net;
    net.add(*qm_sender);
    net.add(*qm_recv);
    ConditionalMessagingService service(*qm_sender);
    auto sent = service.send_message(
        "process-me", "undo-me",
        *DestBuilder(QueueAddress("QMB", "IN"), "worker")
             .processing_within(1000)
             .build());
    ASSERT_TRUE(sent.is_ok());
    cm_id = sent.value();
    ConditionalReceiver rx(*qm_recv, "worker");
    ASSERT_TRUE(rx.read_message("IN", 5000).is_ok());  // read only
    clock_.advance_ms(1001);
    auto outcome = service.await_outcome(cm_id, 60'000);
    ASSERT_TRUE(outcome.is_ok());
    ASSERT_EQ(outcome.value().outcome, Outcome::kFailure);
    // compensation reaches QMB before we "crash" it
    ASSERT_TRUE(test::eventually(
        [&] { return qm_recv->find_queue("IN")->depth() == 1u; }));
    net.shutdown();
  }  // receiver-side queue manager crashes

  auto qm_recv = make_qm("QMB");
  qm_recv->recover().expect_ok("recover");
  // The RLOG entry and the compensation are both durable: after the
  // restart the compensation is still deliverable to the application.
  ConditionalReceiver rx(*qm_recv, "worker");
  auto comp = rx.read_message("IN", 0);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
  EXPECT_EQ(comp.value().body(), "undo-me");
}

TEST_P(DurabilityE2ETest, XmitQueueSurvivesRestartAndDelivers) {
  // A message routed to a remote queue manager sits on the persistent
  // transmission queue while the channel is down; after a full restart of
  // the sending side, a fresh network attachment drains it.
  auto qm_recv = make_qm("QMB");
  qm_recv->recover().expect_ok("recover");
  qm_recv->create_queue("IN").expect_ok("create");
  {
    auto qm_sender = make_qm("QMA");
    qm_sender->recover().expect_ok("recover");
    mq::Network net;
    net.add(*qm_sender);
    net.add(*qm_recv);
    ASSERT_TRUE(net.connect("QMA", "QMB",
                            mq::ChannelOptions{.start_paused = true}));
    ASSERT_TRUE(
        qm_sender->put(QueueAddress("QMB", "IN"), mq::Message("stranded")));
    net.shutdown();
  }  // sender crashes with the message still on SYSTEM.XMIT.QMB

  auto qm_sender = make_qm("QMA");
  qm_sender->recover().expect_ok("recover");
  const auto xmit = std::string(mq::kXmitQueuePrefix) + "QMB";
  ASSERT_NE(qm_sender->find_queue(xmit), nullptr);
  EXPECT_EQ(qm_sender->find_queue(xmit)->depth(), 1u);

  mq::Network net;
  net.add(*qm_sender);
  net.add(*qm_recv);
  ASSERT_TRUE(net.connect("QMA", "QMB", mq::ChannelOptions{}));
  auto got = qm_recv->get("IN", 5000);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().body(), "stranded");
  net.shutdown();
}

TEST_P(DurabilityE2ETest, TransactionalConsumptionDurableAcrossRestart) {
  std::string cm_id;
  {
    auto qm = make_qm("QM1");
    qm->recover().expect_ok("recover");
    qm->create_queue("Q").expect_ok("create");
    ConditionalMessagingService service(*qm);
    auto sent = service.send_message(
        "tx-work", *DestBuilder(QueueAddress("QM1", "Q"), "worker")
                        .processing_within(60'000)
                        .build());
    ASSERT_TRUE(sent.is_ok());
    cm_id = sent.value();
    ConditionalReceiver rx(*qm, "worker");
    ASSERT_TRUE(rx.begin_tx());
    ASSERT_TRUE(rx.read_message("Q", 0).is_ok());
    ASSERT_TRUE(rx.commit_tx());
    auto outcome = service.await_outcome(cm_id, 60'000);
    ASSERT_TRUE(outcome.is_ok());
    ASSERT_EQ(outcome.value().outcome, Outcome::kSuccess);
  }
  auto qm = make_qm("QM1");
  qm->recover().expect_ok("recover");
  // the committed consumption must not resurrect the message
  EXPECT_EQ(qm->find_queue("Q")->depth(), 0u);
  // and the RLOG still proves the consumption
  EXPECT_EQ(qm->find_queue(kReceiverLogQueue)->depth(), 1u);
  ConditionalMessagingService service(*qm);
  ASSERT_TRUE(service.recover());
  EXPECT_EQ(service.evaluation_manager().in_flight(), 0u);
}

}  // namespace
}  // namespace cmx::cm
