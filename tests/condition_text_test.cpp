#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "cm/condition_builder.hpp"
#include "cm/condition_text.hpp"

namespace cmx::cm {
namespace {

TEST(ConditionTextTest, ParsesExample1) {
  const char* text = R"(
    ; the paper's Figure 4
    (set :pickUp 2d
      (dest "QMB/Q.R3" :recipient "receiver3" :processing 1w)
      (set :processing 3d :minProcessing 2
        (dest "QMB/Q.R1" :recipient "receiver1")
        (dest "QMB/Q.R2" :recipient "receiver2")
        (dest "QMB/Q.R4" :recipient "receiver4")))
  )";
  auto parsed = parse_condition_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& root = *parsed.value();
  ASSERT_TRUE(root.validate());
  EXPECT_EQ(root.msg_pick_up_time(), 2 * kDay);
  ASSERT_EQ(root.children().size(), 2u);
  const auto* r3 = root.children()[0]->as_destination();
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->recipient_id(), "receiver3");
  EXPECT_EQ(r3->msg_processing_time(), kWeek);
  const auto* sub = root.children()[1]->as_destination_set();
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->min_nr_processing(), 2);
  EXPECT_EQ(sub->msg_processing_time(), 3 * kDay);
  EXPECT_EQ(root.leaves().size(), 4u);
}

TEST(ConditionTextTest, ParsesSingleDestination) {
  auto parsed = parse_condition_text("(dest \"QMC/Q.CENTRAL\" :pickUp 20s)");
  ASSERT_TRUE(parsed.is_ok());
  const auto* dest = parsed.value()->as_destination();
  ASSERT_NE(dest, nullptr);
  EXPECT_EQ(dest->address(), mq::QueueAddress("QMC", "Q.CENTRAL"));
  EXPECT_EQ(dest->msg_pick_up_time(), 20 * kSecond);
  EXPECT_TRUE(dest->recipient_id().empty());
}

TEST(ConditionTextTest, DurationUnits) {
  struct Case {
    const char* text;
    util::TimeMs expected;
  };
  const Case cases[] = {
      {"(dest q :pickUp 500)", 500},        {"(dest q :pickUp 500ms)", 500},
      {"(dest q :pickUp 2s)", 2000},        {"(dest q :pickUp 3m)", 180'000},
      {"(dest q :pickUp 1h)", 3'600'000},   {"(dest q :pickUp 2d)", 2 * kDay},
      {"(dest q :pickUp 1w)", kWeek},
  };
  for (const auto& c : cases) {
    auto parsed = parse_condition_text(c.text);
    ASSERT_TRUE(parsed.is_ok()) << c.text;
    EXPECT_EQ(parsed.value()->msg_pick_up_time(), c.expected) << c.text;
  }
}

TEST(ConditionTextTest, AllAttributes) {
  auto parsed = parse_condition_text(
      "(set :pickUp 1s :processing 2s :expiry 3s :priority 7 "
      ":persistent false :minPickUp 1 :maxPickUp 2 :minProcessing 1 "
      ":maxProcessing 2 :minAnonymous 1 :maxAnonymous 3 "
      "(dest q :recipient bob :priority 2 :persistent true))");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto* set = parsed.value()->as_destination_set();
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->msg_expiry(), 3000);
  EXPECT_EQ(set->msg_priority(), 7);
  EXPECT_EQ(set->msg_persistence(), mq::Persistence::kNonPersistent);
  EXPECT_EQ(set->min_nr_pick_up(), 1);
  EXPECT_EQ(set->max_nr_pick_up(), 2);
  EXPECT_EQ(set->min_nr_anonymous(), 1);
  EXPECT_EQ(set->max_nr_anonymous(), 3);
  const auto* dest = set->children()[0]->as_destination();
  EXPECT_EQ(dest->recipient_id(), "bob");
  EXPECT_EQ(dest->msg_priority(), 2);
  EXPECT_EQ(dest->msg_persistence(), mq::Persistence::kPersistent);
}

TEST(ConditionTextTest, RoundTripPreservesStructure) {
  auto original = SetBuilder()
                      .pick_up_within(2 * kDay)
                      .min_nr_pick_up(2)
                      .priority(8)
                      .add(DestBuilder(mq::QueueAddress("QM", "A"), "alice")
                               .processing_within(90 * kMinute)
                               .build())
                      .add(SetBuilder()
                               .processing_within(45 * kSecond)
                               .min_nr_processing(1)
                               .add(DestBuilder(mq::QueueAddress("QM", "B"))
                                        .expiry(777)
                                        .build())
                               .build())
                      .build();
  const std::string text = condition_to_text(*original);
  auto reparsed = parse_condition_text(text);
  ASSERT_TRUE(reparsed.is_ok()) << text << "\n"
                                << reparsed.status().to_string();
  // structural equality via the binary codec
  EXPECT_EQ(reparsed.value()->encode(), original->encode()) << text;
}

TEST(ConditionTextTest, RoundTripOddDurations) {
  // 777 ms has no larger exact unit; 60000 ms should print as 1m.
  auto tree = DestBuilder(mq::QueueAddress("", "Q"))
                  .pick_up_within(777)
                  .processing_within(60'000)
                  .build();
  const auto text = condition_to_text(*tree);
  EXPECT_NE(text.find("777ms"), std::string::npos);
  EXPECT_NE(text.find("1m"), std::string::npos);
  auto reparsed = parse_condition_text(text);
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed.value()->encode(), tree->encode());
}

TEST(ConditionTextTest, QuotingAndEscapes) {
  auto tree = Destination::make(mq::QueueAddress("QM", "Q"), "odd \"name\"");
  const auto text = condition_to_text(*tree);
  auto reparsed = parse_condition_text(text);
  ASSERT_TRUE(reparsed.is_ok()) << text;
  EXPECT_EQ(reparsed.value()->as_destination()->recipient_id(),
            "odd \"name\"");
}

struct BadText {
  const char* text;
};
class ConditionTextErrors : public ::testing::TestWithParam<BadText> {};

TEST_P(ConditionTextErrors, Rejected) {
  auto parsed = parse_condition_text(GetParam().text);
  ASSERT_FALSE(parsed.is_ok()) << GetParam().text;
  EXPECT_EQ(parsed.status().code(), util::ErrorCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ConditionTextErrors,
    ::testing::Values(BadText{""}, BadText{"dest q"},
                      BadText{"(dest)"},
                      BadText{"(dest q :pickUp)"},
                      BadText{"(dest q :pickUp abc)"},
                      BadText{"(dest q :pickUp 5y)"},
                      BadText{"(dest q :unknownKey 5)"},
                      BadText{"(frobnicate q)"},
                      BadText{"(set :minPickUp 1"},
                      BadText{"(dest q) trailing"}));

// Property: every randomly-generated condition tree round-trips through
// the text format to a structurally identical tree (binary-codec equal).
class TextRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(TextRoundTripProperty, RandomTreesRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  auto chance = [&](int pct) { return int(rng() % 100) < pct; };
  int queue_counter = 0;

  std::function<ConditionPtr(int)> make_node = [&](int depth) -> ConditionPtr {
    if (depth == 0 || chance(55)) {
      auto leaf = DestBuilder(
          mq::QueueAddress(chance(50) ? "QM" + std::to_string(rng() % 3) : "",
                           "Q" + std::to_string(queue_counter++)),
          chance(40) ? "user " + std::to_string(rng() % 9) : "");
      if (chance(60)) leaf.pick_up_within(1 + util::TimeMs(rng() % 100000));
      if (chance(40)) leaf.processing_within(1 + util::TimeMs(rng() % 9999));
      if (chance(25)) leaf.priority(int(rng() % 10));
      if (chance(25)) leaf.expiry(1 + util::TimeMs(rng() % 777));
      if (chance(20)) {
        leaf.persistence(chance(50) ? mq::Persistence::kPersistent
                                    : mq::Persistence::kNonPersistent);
      }
      return leaf.build();
    }
    SetBuilder set;
    const int children = 1 + int(rng() % 3);
    for (int i = 0; i < children; ++i) set.add(make_node(depth - 1));
    if (chance(70)) set.pick_up_within(1 + util::TimeMs(rng() % kWeek));
    if (chance(40)) set.processing_within(1 + util::TimeMs(rng() % kDay));
    if (chance(30)) set.min_nr_pick_up(int(rng() % 4));
    if (chance(20)) set.max_nr_pick_up(4 + int(rng() % 4));
    if (chance(30)) set.min_nr_processing(int(rng() % 4));
    if (chance(20)) set.max_nr_processing(4 + int(rng() % 4));
    if (chance(15)) set.min_nr_anonymous(int(rng() % 3));
    if (chance(15)) set.max_nr_anonymous(3 + int(rng() % 3));
    return set.build();
  };

  for (int round = 0; round < 25; ++round) {
    auto tree = make_node(3);
    const std::string text = condition_to_text(*tree);
    auto reparsed = parse_condition_text(text);
    ASSERT_TRUE(reparsed.is_ok())
        << reparsed.status().to_string() << "\n" << text;
    EXPECT_EQ(reparsed.value()->encode(), tree->encode()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextRoundTripProperty,
                         ::testing::Range(1, 11));

TEST(ConditionTextTest, ParsedTreeIsUsableEndToEnd) {
  auto parsed = parse_condition_text(
      "(set :pickUp 100 :minPickUp 1 (dest \"QM/A\") (dest \"QM/B\"))");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value()->validate());
  EXPECT_EQ(parsed.value()->leaves().size(), 2u);
}

}  // namespace
}  // namespace cmx::cm
