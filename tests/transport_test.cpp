// Tests of the TCP channel transport (docs/PROTOCOL.md, DESIGN.md §10):
// wire codec round-trips, end-to-end delivery between a TransportChannel
// and a TransportServer, fault injection (partial writes, mid-frame
// disconnects), duplicate suppression on reconnect, and the conditional
// messaging ack contract across a full-duplex TCP pair.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "mq/queue_manager.hpp"
#include "mq/transport/socket.hpp"
#include "mq/transport/transport_channel.hpp"
#include "mq/transport/transport_server.hpp"
#include "mq/transport/wire.hpp"
#include "tests/test_support.hpp"

namespace cmx::mq::transport {
namespace {

// ---- wire codec ----------------------------------------------------------

// Feeds `bytes` to a FrameParser one byte at a time, collecting complete
// frames as (type, payload-copy) pairs — the harshest possible
// fragmentation a TCP stream can produce.
std::vector<std::pair<FrameType, std::string>> parse_bytewise(
    const std::string& bytes) {
  FrameParser parser;
  std::vector<std::pair<FrameType, std::string>> frames;
  for (char c : bytes) {
    parser.append(std::string_view(&c, 1));
    FrameParser::Frame frame;
    while (parser.next(frame) == FrameParser::Result::kFrame) {
      frames.emplace_back(frame.type, std::string(frame.payload));
    }
    parser.compact();
  }
  return frames;
}

TEST(WireCodec, HandshakeAndControlFramesRoundTrip) {
  std::string out;
  HelloFrame hello;
  hello.channel_id = "SND->RCV";
  hello.source_qmgr = "SND";
  append_hello(out, hello);
  WelcomeFrame welcome;
  welcome.receiver_qmgr = "RCV";
  welcome.last_delivered_seq = 41;
  append_welcome(out, welcome);
  AckFrame ack;
  ack.acked_seq = 99;
  append_ack(out, ack);
  CloseFrame close{CloseCode::kShuttingDown, "bye"};
  append_close(out, close);

  auto frames = parse_bytewise(out);
  ASSERT_EQ(frames.size(), 4u);

  ASSERT_EQ(frames[0].first, FrameType::kHello);
  auto h = decode_hello(frames[0].second);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(h.value().magic, kWireMagic);
  EXPECT_EQ(h.value().version_min, kWireVersionMin);
  EXPECT_EQ(h.value().version_max, kWireVersionMax);
  EXPECT_EQ(h.value().channel_id, "SND->RCV");
  EXPECT_EQ(h.value().source_qmgr, "SND");

  ASSERT_EQ(frames[1].first, FrameType::kWelcome);
  auto w = decode_welcome(frames[1].second);
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value().receiver_qmgr, "RCV");
  EXPECT_EQ(w.value().last_delivered_seq, 41u);

  ASSERT_EQ(frames[2].first, FrameType::kAck);
  auto a = decode_ack(frames[2].second);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().acked_seq, 99u);

  ASSERT_EQ(frames[3].first, FrameType::kClose);
  auto c = decode_close(frames[3].second);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().code, CloseCode::kShuttingDown);
  EXPECT_EQ(c.value().reason, "bye");
}

TEST(WireCodec, MsgBatchRoundTrip) {
  Message m1("first");
  m1.set_id("id-1");
  Message m2("second");
  m2.set_id("id-2");
  const std::string f1 = m1.encode();
  const std::string f2 = m2.encode();

  std::string out;
  const std::size_t off = begin_msg_batch(out, 7);
  add_batch_message(out, f1);
  add_batch_message(out, f2);
  end_msg_batch(out, off, 2);

  auto frames = parse_bytewise(out);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].first, FrameType::kMsgBatch);
  std::string_view entries;
  auto header = decode_msg_batch_header(frames[0].second, entries);
  ASSERT_TRUE(header.is_ok());
  EXPECT_EQ(header.value().first_seq, 7u);
  EXPECT_EQ(header.value().count, 2u);
  auto e1 = next_batch_message(entries);
  ASSERT_TRUE(e1.is_ok());
  EXPECT_EQ(e1.value(), f1);
  auto e2 = next_batch_message(entries);
  ASSERT_TRUE(e2.is_ok());
  EXPECT_EQ(e2.value(), f2);
  EXPECT_TRUE(entries.empty());

  auto decoded = Message::decode(e2.value(), /*retain_frame=*/true);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().body(), "second");
  EXPECT_TRUE(decoded.value().frame_cached());
}

TEST(WireCodec, OversizedFrameLengthPoisonsParser) {
  std::string bytes;
  const std::uint32_t len = kMaxFrameBytes + 1;
  bytes.append(reinterpret_cast<const char*>(&len), sizeof(len));
  bytes.push_back(0x03);
  FrameParser parser;
  parser.append(bytes);
  FrameParser::Frame frame;
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kError);
  // Poisoned for good: more bytes don't unpoison it.
  parser.append("more");
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kError);
}

// ---- end-to-end channel <-> server ---------------------------------------

Message msg(const std::string& body) {
  Message m(body);
  m.set_persistence(Persistence::kPersistent);
  return m;
}

// One "sender process" (queue manager + network + TCP channel) and one
// "receiver process" (queue manager + transport server) in one address
// space. Nothing but bytes crosses between the two queue managers.
class TransportDeliveryTest : public ::testing::Test {
 protected:
  void start(TransportChannelOptions opts = {}) {
    sender_ = std::make_unique<QueueManager>("SND", clock_);
    receiver_ = std::make_unique<QueueManager>("RCV", clock_);
    receiver_->create_queue("IN").expect_ok("create IN");
    server_ = std::make_unique<TransportServer>(*receiver_);
    server_->start().expect_ok("server start");
    net_ = std::make_unique<Network>();
    net_->add(*sender_);
    opts.port = server_->port();
    net_->add_remote(*sender_, "RCV", opts).expect_ok("add_remote");
    channel_ = net_->transport_channel("SND", "RCV");
    ASSERT_NE(channel_, nullptr);
  }

  void TearDown() override {
    if (net_) net_->shutdown();
    if (server_) server_->stop();
  }

  // Puts `n` uniquely-bodied messages and asserts each arrives exactly
  // once, fully acked back to the sender.
  void send_and_verify(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          sender_->put(QueueAddress("RCV", "IN"), msg("m" + std::to_string(i))));
    }
    ASSERT_TRUE(channel_->wait_for_acked(static_cast<std::uint64_t>(n),
                                         20 * 1000));
    auto in = receiver_->find_queue("IN");
    ASSERT_NE(in, nullptr);
    ASSERT_TRUE(test::eventually([&] { return in->depth() == size_t(n); }));
    std::set<std::string> bodies;
    for (int i = 0; i < n; ++i) {
      auto got = receiver_->get("IN", 2000);
      ASSERT_TRUE(got.is_ok());
      EXPECT_FALSE(got.value().has_property(kXmitDestProperty));
      bodies.insert(std::string(got.value().body()));
    }
    EXPECT_EQ(bodies.size(), size_t(n));  // no duplicates
    EXPECT_EQ(in->depth(), 0u);           // no extras
    EXPECT_EQ(channel_->stats().acked, static_cast<std::uint64_t>(n));
  }

  util::SystemClock clock_;
  std::unique_ptr<QueueManager> sender_;
  std::unique_ptr<QueueManager> receiver_;
  std::unique_ptr<TransportServer> server_;
  std::unique_ptr<Network> net_;
  TransportChannel* channel_ = nullptr;
};

TEST_F(TransportDeliveryTest, BasicExactlyOnce) {
  start();
  send_and_verify(100);
  EXPECT_EQ(server_->stats().delivered, 100u);
  EXPECT_EQ(server_->stats().duplicates_suppressed, 0u);
  EXPECT_EQ(channel_->stats().retransmitted, 0u);
  EXPECT_EQ(server_->last_delivered_seq("SND->RCV"), 100u);
}

TEST_F(TransportDeliveryTest, ReceivedFrameIsAdoptedNotReserialized) {
  start();
  ASSERT_TRUE(sender_->put(QueueAddress("RCV", "IN"), msg("zero-copy")));
  auto got = receiver_->get("IN", 5000);
  ASSERT_TRUE(got.is_ok());
  // The wire bytes became the received message's memoized frame (the
  // CMX_XMIT_DEST removal only patched the transit tail).
  EXPECT_TRUE(got.value().frame_cached());
}

TEST_F(TransportDeliveryTest, PartialWritesDeliverEverything) {
  TransportChannelOptions opts;
  opts.fault.max_write_bytes = 7;  // every flush dribbles 7 bytes at most
  start(opts);
  send_and_verify(40);
  EXPECT_EQ(server_->stats().delivered, 40u);
  EXPECT_EQ(server_->stats().duplicates_suppressed, 0u);
}

TEST_F(TransportDeliveryTest, MidFrameDisconnectRetransmitsExactlyOnce) {
  TransportChannelOptions opts;
  // The HELLO is 32 bytes; 48 lands inside the first MSGBATCH, so the
  // receiver sees a torn frame and the sender must reconnect and resend.
  opts.fault.disconnect_after_bytes = 48;
  start(opts);
  send_and_verify(30);
  EXPECT_GE(channel_->stats().reconnects, 1u);
  EXPECT_GE(channel_->stats().retransmitted, 1u);
  // Exactly-once held: everything the server delivered was unique.
  EXPECT_EQ(server_->stats().delivered, 30u);
}

TEST_F(TransportDeliveryTest, SmallWindowBackpressuresButDeliversAll) {
  TransportChannelOptions opts;
  opts.window = 4;
  opts.max_batch = 2;
  start(opts);
  send_and_verify(50);
}

TEST_F(TransportDeliveryTest, UnknownRemoteQueueIsDeadLettered) {
  start();
  ASSERT_TRUE(sender_->put(QueueAddress("RCV", "MISSING"), msg("lost")));
  ASSERT_TRUE(test::eventually([&] {
    auto dlq = receiver_->find_queue(kDeadLetterQueue);
    return dlq != nullptr && dlq->depth() > 0;
  }));
  auto dead = receiver_->get(kDeadLetterQueue, 2000);
  ASSERT_TRUE(dead.is_ok());
  EXPECT_EQ(dead.value().body(), "lost");
  EXPECT_EQ(dead.value().get_string(kXmitDestProperty), "RCV/MISSING");
  EXPECT_EQ(server_->stats().dead_lettered, 1u);
  // Dead-lettering counts as handled: the sender still gets its ack.
  EXPECT_TRUE(channel_->wait_for_acked(1, 5000));
}

// ---- raw-wire conformance -------------------------------------------------

// A hand-rolled protocol client, for driving the server into states a
// well-behaved TransportChannel never produces.
class RawClient {
 public:
  void connect(std::uint16_t port) {
    auto fd = tcp_connect("127.0.0.1", port, 5000);
    fd.status().expect_ok("raw connect");
    fd_ = std::move(fd).value();
    set_recv_timeout(fd_.get(), 5000).expect_ok("timeout");
  }

  void send(const std::string& bytes) {
    send_all(fd_.get(), bytes.data(), bytes.size()).expect_ok("raw send");
  }

  // Blocks for the next complete frame (copying the payload out).
  std::pair<FrameType, std::string> read_frame() {
    FrameParser::Frame frame;
    while (true) {
      auto r = parser_.next(frame);
      if (r == FrameParser::Result::kFrame) {
        return {frame.type, std::string(frame.payload)};
      }
      EXPECT_EQ(r, FrameParser::Result::kNeedMore);
      parser_.compact();
      char buf[4096];
      auto n = recv_some(fd_.get(), buf, sizeof(buf));
      n.status().expect_ok("raw recv");
      if (n.value() == 0) ADD_FAILURE() << "peer closed mid-read";
      parser_.append(std::string_view(buf, n.value()));
    }
  }

  void close() { fd_.reset(); }

 private:
  Fd fd_;
  FrameParser parser_;
};

std::string hello_bytes(const std::string& channel_id) {
  std::string out;
  HelloFrame hello;
  hello.channel_id = channel_id;
  hello.source_qmgr = "RAW";
  append_hello(out, hello);
  return out;
}

std::string batch_bytes(std::uint64_t first_seq, int count,
                        const std::string& body_prefix) {
  std::string out;
  const std::size_t off = begin_msg_batch(out, first_seq);
  for (int i = 0; i < count; ++i) {
    Message m(body_prefix + std::to_string(first_seq + i));
    m.set_id("raw-" + std::to_string(first_seq + i));
    m.set_put_time_ms(1);  // nonzero so the receiving put keeps the frame
    m.set_property(kXmitDestProperty, "RCV/IN");
    add_batch_message(out, m.encode());
  }
  end_msg_batch(out, off, static_cast<std::uint32_t>(count));
  return out;
}

class RawWireTest : public ::testing::Test {
 protected:
  RawWireTest() {
    receiver_ = std::make_unique<QueueManager>("RCV", clock_);
    receiver_->create_queue("IN").expect_ok("create IN");
    server_ = std::make_unique<TransportServer>(*receiver_);
    server_->start().expect_ok("server start");
  }
  ~RawWireTest() override { server_->stop(); }

  util::SystemClock clock_;
  std::unique_ptr<QueueManager> receiver_;
  std::unique_ptr<TransportServer> server_;
};

TEST_F(RawWireTest, DuplicateBatchIsSuppressedAndReAcked) {
  RawClient c1;
  c1.connect(server_->port());
  c1.send(hello_bytes("RAW->RCV"));
  auto [wt, wp] = c1.read_frame();
  ASSERT_EQ(wt, FrameType::kWelcome);
  EXPECT_EQ(decode_welcome(wp).value().last_delivered_seq, 0u);

  c1.send(batch_bytes(1, 5, "dup"));
  auto [at, ap] = c1.read_frame();
  ASSERT_EQ(at, FrameType::kAck);
  EXPECT_EQ(decode_ack(ap).value().acked_seq, 5u);
  c1.close();

  // Reconnect; the WELCOME reports the delivered horizon...
  RawClient c2;
  c2.connect(server_->port());
  c2.send(hello_bytes("RAW->RCV"));
  auto [wt2, wp2] = c2.read_frame();
  ASSERT_EQ(wt2, FrameType::kWelcome);
  EXPECT_EQ(decode_welcome(wp2).value().last_delivered_seq, 5u);

  // ...but this client ignores it and replays 1..5 anyway, then sends
  // 6..10. The replay must be suppressed yet still covered by the ack.
  c2.send(batch_bytes(1, 5, "dup"));
  auto [at2, ap2] = c2.read_frame();
  ASSERT_EQ(at2, FrameType::kAck);
  EXPECT_EQ(decode_ack(ap2).value().acked_seq, 5u);
  c2.send(batch_bytes(6, 5, "new"));
  auto [at3, ap3] = c2.read_frame();
  ASSERT_EQ(at3, FrameType::kAck);
  EXPECT_EQ(decode_ack(ap3).value().acked_seq, 10u);

  EXPECT_EQ(server_->stats().duplicates_suppressed, 5u);
  EXPECT_EQ(server_->stats().delivered, 10u);
  auto in = receiver_->find_queue("IN");
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->depth(), 10u);  // exactly once, despite the replay
}

TEST_F(RawWireTest, BadMagicIsRefused) {
  RawClient c;
  c.connect(server_->port());
  std::string out;
  HelloFrame hello;
  hello.magic = 0xDEADBEEF;
  hello.channel_id = "X->RCV";
  append_hello(out, hello);
  c.send(out);
  auto [t, p] = c.read_frame();
  ASSERT_EQ(t, FrameType::kClose);
  EXPECT_EQ(decode_close(p).value().code, CloseCode::kBadMagic);
}

TEST_F(RawWireTest, NoCommonVersionIsRefused) {
  RawClient c;
  c.connect(server_->port());
  std::string out;
  HelloFrame hello;
  hello.version_min = kWireVersionMax + 1;
  hello.version_max = kWireVersionMax + 7;
  hello.channel_id = "X->RCV";
  append_hello(out, hello);
  c.send(out);
  auto [t, p] = c.read_frame();
  ASSERT_EQ(t, FrameType::kClose);
  EXPECT_EQ(decode_close(p).value().code, CloseCode::kVersionMismatch);
}

TEST_F(RawWireTest, BatchBeforeHelloIsProtocolError) {
  RawClient c;
  c.connect(server_->port());
  c.send(batch_bytes(1, 1, "early"));
  auto [t, p] = c.read_frame();
  ASSERT_EQ(t, FrameType::kClose);
  EXPECT_EQ(decode_close(p).value().code, CloseCode::kProtocolError);
}

// ---- conditional messaging across TCP -------------------------------------

// Full-duplex pair: the sender's conditional service fans out over TCP to
// the receiver process, and the receiver's implicit acknowledgments ride
// a second TCP channel back to the sender's DS.ACK.Q. The §7 contract —
// exactly one ack per (receiver, message) — must survive both hops.
TEST(CmOverTcp, ExactlyOneAckPerReceiverAndMessage) {
  util::SystemClock clock;
  QueueManager snd("SND", clock);
  QueueManager rcv("RCV", clock);
  rcv.create_queue("R1").expect_ok("R1");
  rcv.create_queue("R2").expect_ok("R2");

  TransportServer snd_server(snd);   // receives the acks
  TransportServer rcv_server(rcv);   // receives the data messages
  snd_server.start().expect_ok("snd server");
  rcv_server.start().expect_ok("rcv server");

  Network snd_net;
  snd_net.add(snd);
  TransportChannelOptions to_rcv;
  to_rcv.port = rcv_server.port();
  snd_net.add_remote(snd, "RCV", to_rcv).expect_ok("snd->rcv");

  Network rcv_net;
  rcv_net.add(rcv);
  TransportChannelOptions to_snd;
  to_snd.port = snd_server.port();
  rcv_net.add_remote(rcv, "SND", to_snd).expect_ok("rcv->snd");

  {
    cm::ConditionalMessagingService service(snd);
    cm::ConditionalReceiver u1(rcv, "u1");
    cm::ConditionalReceiver u2(rcv, "u2");

    auto cond =
        cm::SetBuilder()
            .pick_up_within(30 * cm::kSecond)
            .add(cm::DestBuilder(QueueAddress("RCV", "R1"), "u1").build())
            .add(cm::DestBuilder(QueueAddress("RCV", "R2"), "u2").build())
            .build();
    auto cm_id = service.send_message("conditional-over-tcp", *cond);
    ASSERT_TRUE(cm_id.is_ok());

    auto got1 = u1.read_message("R1", 20 * cm::kSecond);
    ASSERT_TRUE(got1.is_ok());
    EXPECT_EQ(got1.value().body(), "conditional-over-tcp");
    auto got2 = u2.read_message("R2", 20 * cm::kSecond);
    ASSERT_TRUE(got2.is_ok());

    auto outcome = service.await_outcome(cm_id.value(), 30 * cm::kSecond);
    outcome.status().expect_ok("await_outcome");
    EXPECT_EQ(outcome.value().outcome, cm::Outcome::kSuccess);

    // Exactly one ack per (receiver, message): each receiver emitted one
    // read ack, and the ack channel carried exactly two messages total.
    EXPECT_EQ(u1.stats().read_acks, 1u);
    EXPECT_EQ(u2.stats().read_acks, 1u);
    auto* back = rcv_net.transport_channel("RCV", "SND");
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(test::eventually([&] { return back->stats().acked == 2; }));
    EXPECT_EQ(back->stats().sent, 2u);
  }

  snd_net.shutdown();
  rcv_net.shutdown();
  snd_server.stop();
  rcv_server.stop();
}

}  // namespace
}  // namespace cmx::mq::transport
