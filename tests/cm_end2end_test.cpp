// End-to-end tests of the conditional messaging system: sender service,
// receiver service, evaluation manager, compensation manager, across one
// queue manager and across a network of two.
#include <gtest/gtest.h>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "tests/test_support.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

class CmLocalTest : public ::testing::Test {
 protected:
  CmLocalTest() {
    qm_ = std::make_unique<mq::QueueManager>("QM1", clock_);
    for (const char* q : {"R1", "R2", "R3", "R4", "SHARED"}) {
      qm_->create_queue(q).expect_ok("create");
    }
    service_ = std::make_unique<ConditionalMessagingService>(*qm_);
  }

  ConditionPtr all_must_read(util::TimeMs within,
                             std::vector<std::string> queues) {
    SetBuilder builder;
    builder.pick_up_within(within);
    for (auto& q : queues) {
      builder.add(DestBuilder(QueueAddress("QM1", q)).build());
    }
    return builder.build();
  }

  OutcomeRecord outcome_of(const std::string& cm_id) {
    auto record = service_->await_outcome(cm_id, 60 * kSecond);
    record.status().expect_ok("await_outcome");
    return record.value();
  }

  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_;
  std::unique_ptr<ConditionalMessagingService> service_;
};

TEST_F(CmLocalTest, FanOutOneMessagePerDistinctQueue) {
  auto cond = SetBuilder()
                  .pick_up_within(1000)
                  .add(DestBuilder(QueueAddress("QM1", "R1"), "u1").build())
                  .add(DestBuilder(QueueAddress("QM1", "R1"), "u2").build())
                  .add(DestBuilder(QueueAddress("QM1", "R2"), "u3")
                           .processing_within(2000)
                           .build())
                  .build();
  auto cm_id = service_->send_message("payload", *cond);
  ASSERT_TRUE(cm_id.is_ok());

  // Two distinct queues -> two standard messages (R1 shared by u1+u2).
  EXPECT_EQ(qm_->find_queue("R1")->depth(), 1u);
  EXPECT_EQ(qm_->find_queue("R2")->depth(), 1u);
  auto on_r2 = qm_->find_queue("R2")->browse();
  ASSERT_EQ(on_r2.size(), 1u);
  EXPECT_EQ(on_r2[0].body(), "payload");
  EXPECT_EQ(on_r2[0].get_string(prop::kCmId), cm_id.value());
  EXPECT_EQ(on_r2[0].get_bool(prop::kProcessingRequired), true);
  EXPECT_EQ(on_r2[0].get_string(prop::kSenderQmgr), "QM1");
  EXPECT_EQ(on_r2[0].get_string(prop::kAckQueue), std::string(kAckQueue));
  auto on_r1 = qm_->find_queue("R1")->browse();
  EXPECT_EQ(on_r1[0].get_bool(prop::kProcessingRequired), false);

  // Sender log entry and staged compensations (one per delivery).
  EXPECT_EQ(qm_->find_queue(kSenderLogQueue)->depth(), 1u);
  EXPECT_EQ(service_->compensation_manager().staged_count(cm_id.value()), 2u);
  auto stats = service_->stats();
  EXPECT_EQ(stats.conditional_messages, 1u);
  EXPECT_EQ(stats.standard_messages, 2u);
}

TEST_F(CmLocalTest, InvalidConditionRejected) {
  auto bad = DestinationSet::make();
  auto result = service_->send_message("x", *bad);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(CmLocalTest, NonTransactionalReadsYieldSuccess) {
  auto cm_id =
      service_->send_message("hi", *all_must_read(1000, {"R1", "R2"}));
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx1(*qm_, "alice"), rx2(*qm_, "bob");
  auto m1 = rx1.read_message("R1", 0);
  ASSERT_TRUE(m1.is_ok());
  EXPECT_EQ(m1.value().body(), "hi");
  EXPECT_TRUE(m1.value().conditional);
  EXPECT_FALSE(m1.value().processing_required);
  ASSERT_TRUE(rx2.read_message("R2", 0).is_ok());

  auto record = outcome_of(cm_id.value());
  EXPECT_EQ(record.outcome, Outcome::kSuccess);
  EXPECT_EQ(service_->outcome_of(cm_id.value()), Outcome::kSuccess);
  // success discards the staged compensations and consumes the log entry
  EXPECT_TRUE(test::eventually([&] {
    return service_->compensation_manager().staged_count(cm_id.value()) == 0;
  }));
  EXPECT_EQ(qm_->find_queue(kSenderLogQueue)->depth(), 0u);
  EXPECT_EQ(rx1.stats().read_acks, 1u);
}

TEST_F(CmLocalTest, PickUpDeadlineMissFailsAndCompensates) {
  auto cm_id = service_->send_message("doomed",
                                      *all_must_read(1000, {"R1", "R2"}));
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(1001);
  auto record = outcome_of(cm_id.value());
  EXPECT_EQ(record.outcome, Outcome::kFailure);
  EXPECT_NE(record.reason.find("pick-up"), std::string::npos);

  // Compensations were released to the destination queues...
  ASSERT_TRUE(test::eventually([&] {
    return qm_->find_queue("R1")->depth() == 2u &&
           qm_->find_queue("R2")->depth() == 2u;
  }));
  // ...and an unread original + compensation annihilate at the receiver.
  ConditionalReceiver rx(*qm_, "late-reader");
  auto read = rx.read_message("R1", 0);
  EXPECT_EQ(read.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(rx.stats().annihilated, 1u);
  EXPECT_EQ(qm_->find_queue("R1")->depth(), 0u);
}

TEST_F(CmLocalTest, CompensationDeliveredAfterConsumption) {
  // Condition demands processing; the receiver only reads, so the message
  // fails — and the receiver, having consumed the original, must get the
  // application-defined compensation data.
  auto cond = DestBuilder(QueueAddress("QM1", "R1"), "alice")
                  .processing_within(500)
                  .build();
  auto cm_id = service_->send_message("do-work", "undo-work", *cond);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());  // read ack only
  clock_.advance_ms(501);
  EXPECT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kFailure);

  ASSERT_TRUE(
      test::eventually([&] { return qm_->find_queue("R1")->depth() == 1u; }));
  auto comp = rx.read_message("R1", 0);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
  EXPECT_EQ(comp.value().body(), "undo-work");
  EXPECT_EQ(comp.value().cm_id, cm_id.value());
  EXPECT_EQ(rx.stats().compensations_delivered, 1u);
}

TEST_F(CmLocalTest, SystemCompensationHasEmptyBody) {
  auto cond = DestBuilder(QueueAddress("QM1", "R1"), "alice")
                  .processing_within(500)
                  .build();
  auto cm_id = service_->send_message("work", *cond);  // two-arg form
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());
  clock_.advance_ms(501);
  ASSERT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kFailure);
  ASSERT_TRUE(
      test::eventually([&] { return qm_->find_queue("R1")->depth() == 1u; }));
  auto comp = rx.read_message("R1", 0);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_TRUE(comp.value().body().empty());
  EXPECT_EQ(comp.value().message.get_string(prop::kCompType), "system");
}

TEST_F(CmLocalTest, TransactionalCommitSatisfiesProcessing) {
  auto cond = DestBuilder(QueueAddress("QM1", "R1"), "alice")
                  .processing_within(1000)
                  .build();
  auto cm_id = service_->send_message("task", *cond);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.begin_tx());
  auto msg = rx.read_message("R1", 0);
  ASSERT_TRUE(msg.is_ok());
  EXPECT_TRUE(msg.value().processing_required);
  // Not committed yet: no ack, evaluation still pending.
  EXPECT_EQ(service_->evaluation_manager().stats().acks_processed, 0u);
  clock_.advance_ms(100);
  ASSERT_TRUE(rx.commit_tx());
  EXPECT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kSuccess);
  EXPECT_EQ(rx.stats().processing_acks, 1u);
  EXPECT_EQ(rx.stats().read_acks, 0u);  // never two acks for one read
}

TEST_F(CmLocalTest, RollbackProducesNoAckAndRedelivers) {
  auto cond = DestBuilder(QueueAddress("QM1", "R1"), "alice")
                  .pick_up_within(5000)
                  .build();
  auto cm_id = service_->send_message("retry-me", *cond);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.begin_tx());
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());
  ASSERT_TRUE(rx.rollback_tx());
  EXPECT_EQ(rx.stats().processing_acks, 0u);
  EXPECT_EQ(rx.stats().read_acks, 0u);
  // message restored by the MOM (§2.4)
  EXPECT_EQ(qm_->find_queue("R1")->depth(), 1u);

  // second attempt, non-transactional: exactly one ack, success
  auto again = rx.read_message("R1", 0);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().message.delivery_count(), 2);
  EXPECT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kSuccess);
  EXPECT_EQ(rx.stats().read_acks, 1u);
}

TEST_F(CmLocalTest, SuccessNotificationsWhenEnabled) {
  SendOptions options;
  options.success_notifications = true;
  auto cm_id = service_->send_message("meet", *all_must_read(1000, {"R1"}),
                                      options);
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());
  ASSERT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kSuccess);
  ASSERT_TRUE(
      test::eventually([&] { return qm_->find_queue("R1")->depth() == 1u; }));
  auto note = rx.read_message("R1", 0);
  ASSERT_TRUE(note.is_ok());
  EXPECT_EQ(note.value().kind, MessageKind::kSuccess);
  EXPECT_EQ(note.value().cm_id, cm_id.value());
}

TEST_F(CmLocalTest, SharedQueueAnyReaderExample2) {
  // Example 2: one shared queue, any controller must read within 20 s.
  auto cond = DestBuilder(QueueAddress("QM1", "SHARED"))
                  .pick_up_within(20 * kSecond)
                  .build();
  SendOptions options;
  options.evaluation_timeout_ms = 21 * kSecond;
  auto cm_id = service_->send_message("flight LH123", *cond, options);
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(5 * kSecond);
  ConditionalReceiver controller2(*qm_, "controller2");
  ASSERT_TRUE(controller2.read_message("SHARED", 0).is_ok());
  EXPECT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kSuccess);
}

TEST_F(CmLocalTest, SharedQueueNobodyReadsTimesOut) {
  auto cond = DestBuilder(QueueAddress("QM1", "SHARED"))
                  .pick_up_within(20 * kSecond)
                  .build();
  SendOptions options;
  options.evaluation_timeout_ms = 21 * kSecond;
  auto cm_id = service_->send_message("flight XY999", *cond, options);
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(20 * kSecond + 1);
  auto record = outcome_of(cm_id.value());
  EXPECT_EQ(record.outcome, Outcome::kFailure);
}

TEST_F(CmLocalTest, UnconditionalMessagesPassThroughUntouched) {
  ASSERT_TRUE(qm_->put(QueueAddress("", "R1"), mq::Message("plain")));
  ConditionalReceiver rx(*qm_, "alice");
  auto msg = rx.read_message("R1", 0);
  ASSERT_TRUE(msg.is_ok());
  EXPECT_FALSE(msg.value().conditional);
  EXPECT_EQ(msg.value().body(), "plain");
  EXPECT_EQ(rx.stats().read_acks, 0u);
  EXPECT_EQ(qm_->find_queue(kReceiverLogQueue)->depth(), 0u);
}

TEST_F(CmLocalTest, MultipleInFlightMessagesDemultiplexed) {
  // §2.5: "Incoming acknowledgment messages must be sorted with respect to
  // the conditional message they address".
  auto id_a = service_->send_message("a", *all_must_read(1000, {"R1"}));
  auto id_b = service_->send_message("b", *all_must_read(1000, {"R2"}));
  auto id_c = service_->send_message("c", *all_must_read(1000, {"R3"}));
  ASSERT_TRUE(id_a.is_ok());
  ASSERT_TRUE(id_b.is_ok());
  ASSERT_TRUE(id_c.is_ok());
  EXPECT_EQ(service_->evaluation_manager().in_flight(), 3u);

  ConditionalReceiver rx(*qm_, "worker");
  ASSERT_TRUE(rx.read_message("R2", 0).is_ok());
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());
  EXPECT_EQ(outcome_of(id_a.value()).outcome, Outcome::kSuccess);
  EXPECT_EQ(outcome_of(id_b.value()).outcome, Outcome::kSuccess);
  // c untouched: still pending
  EXPECT_FALSE(service_->outcome_of(id_c.value()).has_value());
  clock_.advance_ms(1001);
  EXPECT_EQ(outcome_of(id_c.value()).outcome, Outcome::kFailure);
}

TEST_F(CmLocalTest, OrphanAcksAreCountedAndIgnored) {
  AckRecord bogus;
  bogus.cm_id = "cm-never-sent";
  bogus.type = AckType::kRead;
  bogus.queue = QueueAddress("QM1", "R1");
  bogus.read_ts = clock_.now_ms();
  ASSERT_TRUE(qm_->put_local(kAckQueue, bogus.to_message()));
  EXPECT_TRUE(test::eventually([&] {
    return service_->evaluation_manager().stats().acks_orphaned == 1u;
  }));
}

TEST_F(CmLocalTest, MalformedAckDoesNotKillEvaluator) {
  ASSERT_TRUE(qm_->put_local(kAckQueue, mq::Message("not an ack")));
  auto cm_id = service_->send_message("still-works",
                                      *all_must_read(1000, {"R1"}));
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());
  EXPECT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kSuccess);
}

TEST_F(CmLocalTest, RecoveryRebuildsEvaluationFromSenderLog) {
  auto cm_id = service_->send_message("survive",
                                      *all_must_read(5000, {"R1"}));
  ASSERT_TRUE(cm_id.is_ok());
  // "Crash" the sender service (the queue manager, with its persistent
  // queues, survives — DS.SLOG.Q still holds the entry).
  service_.reset();
  service_ = std::make_unique<ConditionalMessagingService>(*qm_);
  EXPECT_EQ(service_->evaluation_manager().in_flight(), 0u);
  ASSERT_TRUE(service_->recover());
  EXPECT_EQ(service_->evaluation_manager().in_flight(), 1u);

  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());
  EXPECT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kSuccess);
}

TEST_F(CmLocalTest, RecoverySkipsDecidedMessages) {
  auto cm_id = service_->send_message("done", *all_must_read(1000, {"R1"}));
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.read_message("R1", 0).is_ok());
  ASSERT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kSuccess);
  ASSERT_TRUE(service_->recover());
  EXPECT_EQ(service_->evaluation_manager().in_flight(), 0u);
}

TEST_F(CmLocalTest, AnnihilationInsideTransaction) {
  auto cond = DestBuilder(QueueAddress("QM1", "R1"), "alice")
                  .pick_up_within(100)
                  .build();
  auto cm_id = service_->send_message("never-read", *cond);
  ASSERT_TRUE(cm_id.is_ok());
  clock_.advance_ms(101);
  ASSERT_EQ(outcome_of(cm_id.value()).outcome, Outcome::kFailure);
  ASSERT_TRUE(
      test::eventually([&] { return qm_->find_queue("R1")->depth() == 2u; }));

  ConditionalReceiver rx(*qm_, "alice");
  ASSERT_TRUE(rx.begin_tx());
  EXPECT_EQ(rx.read_message("R1", 0).code(), util::ErrorCode::kTimeout);
  ASSERT_TRUE(rx.commit_tx());
  EXPECT_EQ(rx.stats().annihilated, 1u);
  EXPECT_EQ(qm_->find_queue("R1")->depth(), 0u);
}

TEST_F(CmLocalTest, MomPropertiesFromConditionApplied) {
  auto cond = DestBuilder(QueueAddress("QM1", "R1"))
                  .pick_up_within(1000)
                  .priority(9)
                  .expiry(5000)
                  .persistence(mq::Persistence::kNonPersistent)
                  .build();
  ASSERT_TRUE(service_->send_message("urgent", *cond).is_ok());
  auto msgs = qm_->find_queue("R1")->browse();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].priority(), 9);
  EXPECT_EQ(msgs[0].expiry_ms(), clock_.now_ms() + 5000);
  EXPECT_FALSE(msgs[0].persistent());
}

// ---------------------------------------------------------------------
// Distributed: sender and receivers on different queue managers
// ---------------------------------------------------------------------

class CmDistributedTest : public ::testing::Test {
 protected:
  CmDistributedTest() {
    qm_sender_ = std::make_unique<mq::QueueManager>("QMA", clock_);
    qm_recv_ = std::make_unique<mq::QueueManager>("QMB", clock_);
    qm_recv_->create_queue("IN1").expect_ok("create");
    qm_recv_->create_queue("IN2").expect_ok("create");
    net_ = std::make_unique<mq::Network>();
    net_->add(*qm_sender_);
    net_->add(*qm_recv_);
    service_ = std::make_unique<ConditionalMessagingService>(*qm_sender_);
  }
  ~CmDistributedTest() override {
    service_.reset();
    net_->shutdown();
  }

  util::SimClock clock_;
  std::unique_ptr<mq::QueueManager> qm_sender_;
  std::unique_ptr<mq::QueueManager> qm_recv_;
  std::unique_ptr<mq::Network> net_;
  std::unique_ptr<ConditionalMessagingService> service_;
};

TEST_F(CmDistributedTest, AcksFlowBackAcrossTheNetwork) {
  auto cond = SetBuilder()
                  .pick_up_within(10 * kSecond)
                  .add(DestBuilder(QueueAddress("QMB", "IN1"), "r1").build())
                  .add(DestBuilder(QueueAddress("QMB", "IN2"), "r2").build())
                  .build();
  auto cm_id = service_->send_message("cross-qm", *cond);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx1(*qm_recv_, "r1"), rx2(*qm_recv_, "r2");
  auto m1 = rx1.read_message("IN1", 5000);
  ASSERT_TRUE(m1.is_ok());
  EXPECT_EQ(m1.value().body(), "cross-qm");
  ASSERT_TRUE(rx2.read_message("IN2", 5000).is_ok());

  auto record = service_->await_outcome(cm_id.value(), 60 * kSecond);
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().outcome, Outcome::kSuccess);
}

TEST_F(CmDistributedTest, TransactionalProcessingAcrossNetwork) {
  auto cond = DestBuilder(QueueAddress("QMB", "IN1"), "worker")
                  .processing_within(10 * kSecond)
                  .build();
  auto cm_id = service_->send_message("job", *cond);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(*qm_recv_, "worker");
  ASSERT_TRUE(rx.begin_tx());
  ASSERT_TRUE(rx.read_message("IN1", 5000).is_ok());
  ASSERT_TRUE(rx.commit_tx());
  auto record = service_->await_outcome(cm_id.value(), 60 * kSecond);
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().outcome, Outcome::kSuccess);
}

TEST_F(CmDistributedTest, CompensationTravelsToRemoteReceiver) {
  auto cond = DestBuilder(QueueAddress("QMB", "IN1"), "worker")
                  .processing_within(1000)
                  .build();
  auto cm_id = service_->send_message("do", "undo", *cond);
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(*qm_recv_, "worker");
  ASSERT_TRUE(rx.read_message("IN1", 5000).is_ok());  // read-only: will fail
  clock_.advance_ms(1001);
  auto record = service_->await_outcome(cm_id.value(), 60 * kSecond);
  ASSERT_TRUE(record.is_ok());
  ASSERT_EQ(record.value().outcome, Outcome::kFailure);
  auto comp = rx.read_message("IN1", 5000);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
  EXPECT_EQ(comp.value().body(), "undo");
}

TEST_F(CmDistributedTest, PausedChannelDelaysAckPastDeadline) {
  // Partition the ack path: the receiver reads in time, but its ack cannot
  // reach the sender before the evaluation timeout — the sender-side view
  // must fail the message (exactly the asynchrony §2.5 reasons about).
  ASSERT_TRUE(net_->connect("QMB", "QMA", mq::ChannelOptions{}));
  auto* back_channel = net_->channel("QMB", "QMA");
  ASSERT_NE(back_channel, nullptr);
  back_channel->pause();

  auto cond = DestBuilder(QueueAddress("QMB", "IN1"), "worker")
                  .pick_up_within(1000)
                  .build();
  SendOptions options;
  options.evaluation_timeout_ms = 1500;
  auto cm_id = service_->send_message("partitioned", *cond, options);
  ASSERT_TRUE(cm_id.is_ok());

  ConditionalReceiver rx(*qm_recv_, "worker");
  ASSERT_TRUE(rx.read_message("IN1", 5000).is_ok());  // ack stuck on QMB
  clock_.advance_ms(1501);
  auto record = service_->await_outcome(cm_id.value(), 60 * kSecond);
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().outcome, Outcome::kFailure);
  back_channel->resume();  // late ack arrives and is counted as orphaned
  EXPECT_TRUE(test::eventually([&] {
    return service_->evaluation_manager().stats().acks_orphaned == 1u;
  }));
}

}  // namespace
}  // namespace cmx::cm
