// Tests for the two ablation switches DESIGN.md calls out:
//   * early failure detection (EvalStateOptions / SendOptions)
//   * compensation staging at send time vs. on failure (SenderOptions)
#include <gtest/gtest.h>

#include "cm/condition_builder.hpp"
#include "cm/eval_state.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "tests/test_support.hpp"

namespace cmx::cm {
namespace {

using mq::QueueAddress;

// ---------------------------------------------------------------------
// Early failure detection
// ---------------------------------------------------------------------

ConditionPtr two_stage_condition() {
  // first decisive deadline at 100, largest deadline at 1000
  return SetBuilder()
      .pick_up_within(100)
      .add(DestBuilder(QueueAddress("QM", "A")).build())
      .add(DestBuilder(QueueAddress("QM", "B"))
               .processing_within(1000)
               .build())
      .build();
}

TEST(EarlyFailureAblation, EarlyModeFailsAtFirstViolatedDeadline) {
  EvalState state("cm", *two_stage_condition(), 0, 0, {true});
  EXPECT_EQ(state.evaluate(100).state, TriState::kPending);
  EXPECT_EQ(state.evaluate(101).state, TriState::kViolated);
}

TEST(EarlyFailureAblation, LateModeHoldsVerdictUntilLastDeadline) {
  EvalState state("cm", *two_stage_condition(), 0, 0, {false});
  EXPECT_EQ(state.evaluate(101).state, TriState::kPending);
  EXPECT_EQ(state.evaluate(500).state, TriState::kPending);
  EXPECT_EQ(state.evaluate(1000).state, TriState::kPending);
  auto verdict = state.evaluate(1001);
  EXPECT_EQ(verdict.state, TriState::kViolated);
  // the reason is the real violated condition, not a generic timeout
  EXPECT_NE(verdict.reason.find("pick-up"), std::string::npos);
}

TEST(EarlyFailureAblation, LateModeStillDecidesSuccessEarly) {
  auto cond = DestBuilder(QueueAddress("QM", "A")).pick_up_within(500).build();
  EvalState state("cm", *cond, 0, 0, {false});
  AckRecord ack;
  ack.cm_id = "cm";
  ack.type = AckType::kRead;
  ack.queue = QueueAddress("QM", "A");
  ack.read_ts = 10;
  state.add_ack(ack);
  EXPECT_EQ(state.evaluate(10).state, TriState::kSatisfied);
}

TEST(EarlyFailureAblation, LateModeRespectsEvaluationTimeout) {
  EvalState state("cm", *two_stage_condition(), 0, /*timeout=*/300, {false});
  EXPECT_EQ(state.evaluate(200).state, TriState::kPending);
  EXPECT_EQ(state.evaluate(300).state, TriState::kViolated);
}

TEST(EarlyFailureAblation, EndToEndLatencyDifference) {
  util::SimClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("A").expect_ok("create");
  qm.create_queue("B").expect_ok("create");
  ConditionalMessagingService service(qm);

  auto cond = SetBuilder()
                  .pick_up_within(100)
                  .add(DestBuilder(QueueAddress("QM", "A")).build())
                  .add(DestBuilder(QueueAddress("QM", "B"))
                           .processing_within(1000)
                           .build())
                  .build();
  SendOptions early;
  SendOptions late;
  late.early_failure_detection = false;
  auto fast = service.send_message("x", *cond, early);
  auto slow = service.send_message("x", *cond, late);
  ASSERT_TRUE(fast.is_ok());
  ASSERT_TRUE(slow.is_ok());

  clock.advance_ms(101);
  auto fast_outcome = service.await_outcome(fast.value(), 60'000);
  ASSERT_TRUE(fast_outcome.is_ok());
  EXPECT_EQ(fast_outcome.value().outcome, Outcome::kFailure);
  EXPECT_FALSE(service.outcome_of(slow.value()).has_value());  // held back

  clock.advance_ms(900);  // past the largest deadline
  auto slow_outcome = service.await_outcome(slow.value(), 60'000);
  ASSERT_TRUE(slow_outcome.is_ok());
  EXPECT_EQ(slow_outcome.value().outcome, Outcome::kFailure);
}

// ---------------------------------------------------------------------
// Compensation staging mode
// ---------------------------------------------------------------------

class CompStagingTest : public ::testing::Test {
 protected:
  CompStagingTest() : qm_("QM", clock_) {
    qm_.create_queue("Q").expect_ok("create");
  }
  ConditionPtr cond() {
    return DestBuilder(QueueAddress("QM", "Q")).pick_up_within(100).build();
  }
  util::SimClock clock_;
  mq::QueueManager qm_;
};

TEST_F(CompStagingTest, OnFailureModeStagesNothingAtSend) {
  ConditionalMessagingService service(
      qm_, {.compensation_staging = CompensationStaging::kOnFailure});
  auto cm_id = service.send_message("do", "undo", *cond());
  ASSERT_TRUE(cm_id.is_ok());
  EXPECT_EQ(qm_.find_queue(kCompensationQueue)->depth(), 0u);

  clock_.advance_ms(101);
  auto outcome = service.await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  ASSERT_EQ(outcome.value().outcome, Outcome::kFailure);
  // compensation materialized on failure and released to the queue
  ASSERT_TRUE(test::eventually(
      [&] { return qm_.find_queue("Q")->depth() == 2u; }));
  EXPECT_EQ(qm_.find_queue(kCompensationQueue)->depth(), 0u);
}

TEST_F(CompStagingTest, OnFailureModeDeliversSameCompensationData) {
  ConditionalMessagingService service(
      qm_, {.compensation_staging = CompensationStaging::kOnFailure});
  auto cond_processing = DestBuilder(QueueAddress("QM", "Q"), "w")
                             .processing_within(100)
                             .build();
  auto cm_id = service.send_message("do", "undo-data", *cond_processing);
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(qm_, "w");
  ASSERT_TRUE(rx.read_message("Q", 0).is_ok());  // read only -> failure
  clock_.advance_ms(101);
  ASSERT_TRUE(service.await_outcome(cm_id.value(), 60'000).is_ok());
  auto comp = rx.read_message("Q", 5000);
  ASSERT_TRUE(comp.is_ok());
  EXPECT_EQ(comp.value().kind, MessageKind::kCompensation);
  EXPECT_EQ(comp.value().body(), "undo-data");
}

TEST_F(CompStagingTest, OnFailureModeSuccessPathIsClean) {
  ConditionalMessagingService service(
      qm_, {.compensation_staging = CompensationStaging::kOnFailure});
  auto cm_id = service.send_message("do", "undo", *cond());
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(qm_, "r");
  ASSERT_TRUE(rx.read_message("Q", 0).is_ok());
  auto outcome = service.await_outcome(cm_id.value(), 60'000);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().outcome, Outcome::kSuccess);
  EXPECT_EQ(qm_.find_queue(kCompensationQueue)->depth(), 0u);
  EXPECT_EQ(qm_.find_queue("Q")->depth(), 0u);
}

TEST_F(CompStagingTest, AtSendModeSurvivesCrashButOnFailureDoesNot) {
  // The crash-safety difference the ablation is about: after a decided
  // failure whose actions were interrupted, the staged-at-send mode still
  // has the compensation on DS.COMP.Q; the on-failure mode has nothing.
  ConditionalMessagingService staged(
      qm_, {.compensation_staging = CompensationStaging::kAtSendTime});
  auto cm_id = staged.send_message("do", "undo", *cond());
  ASSERT_TRUE(cm_id.is_ok());
  EXPECT_EQ(staged.compensation_manager().staged_count(cm_id.value()), 1u);
  // (the recovery path over this durable state is covered in
  // guaranteed_compensation_test.cpp)
}

}  // namespace
}  // namespace cmx::cm
