#include <gtest/gtest.h>

#include "sim/workload.hpp"

namespace cmx::sim {
namespace {

TEST(WorkloadTest, LightLoadAllSucceed) {
  WorkloadSpec spec;
  spec.messages = 10;
  spec.mean_interarrival_ms = 30;
  spec.pick_up_deadline_ms = 500;
  ReceiverProfile profile;
  profile.count = 2;
  profile.service_time_min_ms = 1;
  profile.service_time_max_ms = 3;
  auto report = run_workload(spec, profile);
  EXPECT_EQ(report.sent, 10);
  EXPECT_EQ(report.succeeded + report.failed, report.sent);
  EXPECT_EQ(report.succeeded, 10);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  EXPECT_GT(report.acks_processed, 0u);
  EXPECT_EQ(report.compensations_released, 0u);
}

TEST(WorkloadTest, NoReceiversAllFailAndCompensate) {
  WorkloadSpec spec;
  spec.messages = 5;
  spec.mean_interarrival_ms = 5;
  spec.pick_up_deadline_ms = 50;
  ReceiverProfile profile;
  profile.count = 0;  // nobody consumes
  auto report = run_workload(spec, profile);
  EXPECT_EQ(report.failed, 5);
  EXPECT_DOUBLE_EQ(report.success_rate, 0.0);
  EXPECT_EQ(report.compensations_released, 5u);
  // failures decide at the evaluation timeout (deadline + 10ms default)
  EXPECT_GE(report.p50_outcome_latency_ms, 50);
}

TEST(WorkloadTest, TransactionalProfileSatisfiesProcessing) {
  WorkloadSpec spec;
  spec.messages = 8;
  spec.mean_interarrival_ms = 20;
  spec.pick_up_deadline_ms = 500;
  spec.processing_deadline_ms = 500;
  ReceiverProfile profile;
  profile.count = 2;
  profile.transactional = true;
  profile.service_time_min_ms = 1;
  profile.service_time_max_ms = 3;
  auto report = run_workload(spec, profile);
  EXPECT_EQ(report.succeeded, 8);
}

TEST(WorkloadTest, PlainReadersCannotSatisfyProcessingConditions) {
  WorkloadSpec spec;
  spec.messages = 4;
  spec.mean_interarrival_ms = 10;
  spec.pick_up_deadline_ms = 120;
  spec.processing_deadline_ms = 120;  // demands transactional processing
  ReceiverProfile profile;
  profile.count = 2;
  profile.transactional = false;  // they only read
  profile.service_time_min_ms = 1;
  profile.service_time_max_ms = 2;
  auto report = run_workload(spec, profile);
  EXPECT_EQ(report.succeeded, 0);
  EXPECT_EQ(report.failed, 4);
}

TEST(WorkloadTest, AlwaysRollingBackNeverSucceeds) {
  WorkloadSpec spec;
  spec.messages = 4;
  spec.mean_interarrival_ms = 10;
  spec.pick_up_deadline_ms = 150;
  spec.processing_deadline_ms = 150;
  ReceiverProfile profile;
  profile.count = 1;
  profile.transactional = true;
  profile.rollback_probability = 1.0;
  profile.service_time_min_ms = 1;
  profile.service_time_max_ms = 2;
  auto report = run_workload(spec, profile);
  EXPECT_EQ(report.succeeded, 0);
  EXPECT_GT(report.rollbacks, 0u);
}

TEST(WorkloadTest, ReportToStringMentionsKeyFigures) {
  WorkloadReport report;
  report.sent = 3;
  report.succeeded = 2;
  report.failed = 1;
  report.success_rate = 2.0 / 3.0;
  const auto text = report.to_string();
  EXPECT_NE(text.find("sent=3"), std::string::npos);
  EXPECT_NE(text.find("ok=2"), std::string::npos);
  EXPECT_NE(text.find("failed=1"), std::string::npos);
}

}  // namespace
}  // namespace cmx::sim
