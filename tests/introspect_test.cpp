#include <gtest/gtest.h>

#include <sstream>

#include "cm/compiled_eval.hpp"
#include "cm/condition_builder.hpp"
#include "cm/introspect.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"

namespace cmx::cm {
namespace {

TEST(IntrospectTest, DumpShowsDecodedSystemState) {
  util::SimClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("APPQ").expect_ok("create");
  ConditionalMessagingService service(qm);

  auto pending = service.send_message(
      "visible body",
      *DestBuilder(mq::QueueAddress("QM", "APPQ"), "ops")
           .pick_up_within(kHour)
           .build());
  ASSERT_TRUE(pending.is_ok());

  std::ostringstream out;
  dump_all(qm, out);
  const std::string text = out.str();

  // sender log entry with the condition in text form
  EXPECT_NE(text.find("slog " + pending.value()), std::string::npos);
  EXPECT_NE(text.find(":recipient \"ops\""), std::string::npos);
  EXPECT_NE(text.find(":pickUp 1h"), std::string::npos);
  // staged compensation on DS.COMP.Q
  EXPECT_NE(text.find("DS.COMP.Q: depth=1"), std::string::npos);
  // application queue with the data message and its body
  EXPECT_NE(text.find("APPQ: depth=1"), std::string::npos);
  EXPECT_NE(text.find("visible body"), std::string::npos);
}

TEST(IntrospectTest, DumpShowsAcksOutcomesAndRlog) {
  util::SimClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("APPQ").expect_ok("create");
  ConditionalMessagingService service(qm);

  // Stop the evaluator from consuming the ack so the dump can show it.
  service.evaluation_manager().stop();
  auto cm_id = service.send_message(
      "x", *DestBuilder(mq::QueueAddress("QM", "APPQ")).pick_up_within(1000)
               .build());
  ASSERT_TRUE(cm_id.is_ok());
  ConditionalReceiver rx(qm, "reader-7");
  ASSERT_TRUE(rx.read_message("APPQ", 0).is_ok());

  std::ostringstream out;
  dump_system_state(qm, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("read ack for " + cm_id.value()), std::string::npos);
  EXPECT_NE(text.find("from reader-7"), std::string::npos);
  EXPECT_NE(text.find("consumed"), std::string::npos);  // RLOG entry
}

TEST(IntrospectTest, AbsentQueueReported) {
  util::SimClock clock;
  mq::QueueManager qm("QM", clock);
  std::ostringstream out;
  dump_queue(qm, "NO.SUCH.Q", out);
  EXPECT_NE(out.str().find("<absent>"), std::string::npos);
}

// dump_evaluation surfaces the engine default plus per-state engines and
// (for the compiled engine) per-node residual counts.
TEST(IntrospectTest, DumpEvaluationShowsEngineAndResiduals) {
  util::SimClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("APPQ").expect_ok("create");
  ConditionalMessagingService service(qm);

  auto cm_id = service.send_message(
      "x", *SetBuilder()
               .add(DestBuilder(mq::QueueAddress("QM", "APPQ")).build())
               .pick_up_within(1000)
               .build());
  ASSERT_TRUE(cm_id.is_ok());

  std::ostringstream out;
  dump_evaluation(service.evaluation_manager(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("condition engine default: compiled"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("eval " + cm_id.value() + ": engine=compiled"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("residual="), std::string::npos) << text;
  EXPECT_NE(text.find("pick-up 0/1"), std::string::npos) << text;
}

// With the toggle off, newly registered states use the interpretive
// walker and the dump says so.
TEST(IntrospectTest, DumpEvaluationShowsInterpretiveArm) {
  set_compiled_eval_enabled(false);
  util::SimClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("APPQ").expect_ok("create");
  ConditionalMessagingService service(qm);
  auto cm_id = service.send_message(
      "x", *DestBuilder(mq::QueueAddress("QM", "APPQ"))
               .pick_up_within(1000)
               .build());
  set_compiled_eval_enabled(true);
  ASSERT_TRUE(cm_id.is_ok());
  std::ostringstream out;
  dump_evaluation(service.evaluation_manager(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("engine=interpretive"), std::string::npos) << text;
}

}  // namespace
}  // namespace cmx::cm
