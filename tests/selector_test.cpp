#include <gtest/gtest.h>

#include "mq/selector.hpp"

namespace cmx::mq {
namespace {

Message sample() {
  Message m;
  m.set_id("ID-1");
  m.set_correlation_id("CORR-1");
  m.set_priority(7);
  m.set_delivery_count(2);
  m.set_property("region", std::string("emea"));
  m.set_property("amount", std::int64_t{250});
  m.set_property("rate", 0.5);
  m.set_property("urgent", true);
  return m;
}

bool eval(const std::string& expr, const Message& m = sample()) {
  auto sel = Selector::parse(expr);
  EXPECT_TRUE(sel.is_ok()) << expr << " -> " << sel.status().to_string();
  return sel.value().matches(m);
}

TEST(SelectorTest, EmptyMatchesEverything) {
  EXPECT_TRUE(eval(""));
  EXPECT_TRUE(eval("   "));
}

// --- a parameterized sweep over expression/expectation pairs -------------
struct Case {
  const char* expr;
  bool expected;
};

class SelectorSweep : public ::testing::TestWithParam<Case> {};

TEST_P(SelectorSweep, Evaluates) {
  EXPECT_EQ(eval(GetParam().expr), GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Comparisons, SelectorSweep,
    ::testing::Values(Case{"amount = 250", true},
                      Case{"amount <> 250", false},
                      Case{"amount > 100", true},
                      Case{"amount >= 250", true},
                      Case{"amount < 250", false},
                      Case{"amount <= 249", false},
                      Case{"rate = 0.5", true},
                      Case{"rate < 1", true},
                      Case{"region = 'emea'", true},
                      Case{"region = 'apac'", false},
                      Case{"region <> 'apac'", true},
                      Case{"urgent = TRUE", true},
                      Case{"urgent = FALSE", false}));

INSTANTIATE_TEST_SUITE_P(
    Logic, SelectorSweep,
    ::testing::Values(Case{"amount > 100 AND region = 'emea'", true},
                      Case{"amount > 300 AND region = 'emea'", false},
                      Case{"amount > 300 OR region = 'emea'", true},
                      Case{"NOT urgent", false},
                      Case{"NOT (amount > 300)", true},
                      Case{"urgent AND NOT urgent", false},
                      Case{"urgent OR NOT urgent", true}));

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, SelectorSweep,
    ::testing::Values(Case{"amount + 50 = 300", true},
                      Case{"amount - 50 = 200", true},
                      Case{"amount * 2 = 500", true},
                      Case{"amount / 2 = 125", true},
                      Case{"-amount = -250", true},
                      Case{"amount + rate > 250", true},
                      Case{"2 + 3 * 4 = 14", true},  // precedence
                      Case{"(2 + 3) * 4 = 20", true}));

INSTANTIATE_TEST_SUITE_P(
    SetAndRange, SelectorSweep,
    ::testing::Values(Case{"region IN ('emea', 'apac')", true},
                      Case{"region IN ('us', 'apac')", false},
                      Case{"region NOT IN ('us', 'apac')", true},
                      Case{"amount IN (100, 250)", true},
                      Case{"amount BETWEEN 200 AND 300", true},
                      Case{"amount BETWEEN 300 AND 400", false},
                      Case{"amount NOT BETWEEN 300 AND 400", true}));

INSTANTIATE_TEST_SUITE_P(
    Like, SelectorSweep,
    ::testing::Values(Case{"region LIKE 'em%'", true},
                      Case{"region LIKE '%ea'", true},
                      Case{"region LIKE 'e_ea'", true},
                      Case{"region LIKE 'e__a'", true},
                      Case{"region LIKE 'us%'", false},
                      Case{"region NOT LIKE 'us%'", true},
                      Case{"region LIKE '%'", true},
                      Case{"region LIKE ''", false}));

INSTANTIATE_TEST_SUITE_P(
    HeaderFields, SelectorSweep,
    ::testing::Values(Case{"JMSPriority = 7", true},
                      Case{"JMSPriority > 8", false},
                      Case{"JMSDeliveryCount = 2", true},
                      Case{"JMSCorrelationID = 'CORR-1'", true},
                      Case{"JMSMessageID = 'ID-1'", true}));

INSTANTIATE_TEST_SUITE_P(
    NullHandling, SelectorSweep,
    ::testing::Values(Case{"missing IS NULL", true},
                      Case{"missing IS NOT NULL", false},
                      Case{"region IS NULL", false},
                      Case{"region IS NOT NULL", true},
                      // three-valued logic: UNKNOWN never matches...
                      Case{"missing = 5", false},
                      Case{"missing <> 5", false},
                      Case{"NOT (missing = 5)", false},
                      Case{"missing = 5 AND urgent", false},
                      // ...but can be absorbed
                      Case{"missing = 5 OR urgent", true},
                      Case{"missing = 5 AND NOT urgent", false}));

INSTANTIATE_TEST_SUITE_P(
    TypeMismatches, SelectorSweep,
    ::testing::Values(Case{"region = 5", false},
                      Case{"amount = 'emea'", false},
                      Case{"urgent = 'true'", false},
                      Case{"urgent > FALSE", false},   // bools don't order
                      Case{"region < 'zzz'", false}));  // strings: = <> only

TEST(SelectorTest, LikeEscape) {
  Message m;
  m.set_property("code", std::string("100%_done"));
  auto sel = Selector::parse("code LIKE '100!%!_done' ESCAPE '!'");
  ASSERT_TRUE(sel.is_ok());
  EXPECT_TRUE(sel.value().matches(m));
  auto plain = Selector::parse("code LIKE '100%'");
  EXPECT_TRUE(plain.value().matches(m));
}

TEST(SelectorTest, QuotedStringEscaping) {
  Message m;
  m.set_property("name", std::string("O'Brien"));
  auto sel = Selector::parse("name = 'O''Brien'");
  ASSERT_TRUE(sel.is_ok());
  EXPECT_TRUE(sel.value().matches(m));
}

TEST(SelectorTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(eval("region in ('emea') and urgent"));
  EXPECT_TRUE(eval("amount Between 1 AND 1000"));
}

TEST(SelectorTest, DivisionByZeroIsUnknown) {
  EXPECT_FALSE(eval("amount / 0 = 1"));
  EXPECT_FALSE(eval("amount / 0 <> 1"));
}

struct BadCase {
  const char* expr;
};
class SelectorErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(SelectorErrors, RejectsWithInvalidArgument) {
  auto sel = Selector::parse(GetParam().expr);
  ASSERT_FALSE(sel.is_ok()) << GetParam().expr;
  EXPECT_EQ(sel.status().code(), util::ErrorCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, SelectorErrors,
    ::testing::Values(BadCase{"amount ="}, BadCase{"= 5"},
                      BadCase{"(amount = 5"}, BadCase{"amount = 5)"},
                      BadCase{"amount IN 5"}, BadCase{"amount IN ()"},
                      BadCase{"region LIKE 5"},
                      BadCase{"amount BETWEEN 1 5"},
                      BadCase{"amount IS 5"},
                      BadCase{"'unterminated"}, BadCase{"@#$"}));

TEST(SelectorTest, ExpressionAccessor) {
  auto sel = Selector::parse("amount = 1");
  EXPECT_EQ(sel.value().expression(), "amount = 1");
}

}  // namespace
}  // namespace cmx::mq
