// Freelist arenas behind the small-message fast path: recycling must hand
// back usable blocks, the toggle must degrade to plain heap behaviour, and
// allocate/release pairs must stay correct when the toggle flips between
// them or when blocks cross threads (the consumer-releases-what-the-
// producer-allocated pattern of the queue and frame pools).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/arena.hpp"

namespace cmx::util {
namespace {

// Restores the toggle no matter how a test exits.
struct ArenaGuard {
  ~ArenaGuard() { set_arena_enabled(true); }
};

struct Widget {
  std::string bytes;
};

TEST(ArenaTest, ObjectPoolRecyclesWithStateIntact) {
  ArenaGuard guard;
  set_arena_enabled(true);
  bool recycled = false;
  Widget* w = ObjectPool<Widget>::get(&recycled);
  w->bytes.assign(1024, 'x');
  const std::size_t capacity = w->bytes.capacity();
  ObjectPool<Widget>::put(w);

  // The thread cache hands the same object straight back, capacity intact
  // (the property the frame pool's allocation-free re-encode relies on).
  Widget* again = ObjectPool<Widget>::get(&recycled);
  EXPECT_TRUE(recycled);
  EXPECT_EQ(again, w);
  EXPECT_GE(again->bytes.capacity(), capacity);
  again->bytes.clear();
  ObjectPool<Widget>::put(again);
}

TEST(ArenaTest, ObjectPoolDisabledIsPlainHeap) {
  ArenaGuard guard;
  set_arena_enabled(false);
  reset_arena_stats();
  bool recycled = true;
  Widget* w = ObjectPool<Widget>::get(&recycled);
  EXPECT_FALSE(recycled);
  ObjectPool<Widget>::put(w);  // plain delete — no shelving
  const ArenaStats stats = arena_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.recycled, 0u);
}

TEST(ArenaTest, StatsCountHitsMissesRecycles) {
  ArenaGuard guard;
  set_arena_enabled(true);
  reset_arena_stats();
  struct StatsProbe {
    int x = 0;
  };
  StatsProbe* a = ObjectPool<StatsProbe>::get();  // fresh type: miss
  ObjectPool<StatsProbe>::put(a);                 // recycled
  StatsProbe* b = ObjectPool<StatsProbe>::get();  // hit
  ObjectPool<StatsProbe>::put(b);
  const ArenaStats stats = arena_stats();
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.recycled, 2u);
}

TEST(ArenaTest, PoolAllocatorMapChurnRecyclesNodes) {
  ArenaGuard guard;
  set_arena_enabled(true);
  using Map = std::map<int, std::string, std::less<int>,
                       PoolAllocator<std::pair<const int, std::string>>>;
  reset_arena_stats();
  Map m;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 64; ++i) m[i] = "value-" + std::to_string(i);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(m[i], "value-" + std::to_string(i));
    m.clear();
  }
  const ArenaStats stats = arena_stats();
  // After round 1 every insert should be served from recycled nodes.
  EXPECT_GE(stats.hits, 64u * 6);
  EXPECT_GE(stats.recycled, 64u * 7);
}

TEST(ArenaTest, PoolAllocatorSurvivesToggleFlipBetweenAllocAndFree) {
  ArenaGuard guard;
  PoolAllocator<std::uint64_t> alloc;

  // Allocated while enabled, freed while disabled: the origin tag routes
  // the block to operator delete, not the (now bypassed) freelist.
  set_arena_enabled(true);
  std::uint64_t* a = alloc.allocate(1);
  *a = 1;
  set_arena_enabled(false);
  alloc.deallocate(a, 1);

  // Allocated while disabled, freed while enabled: shelving a fresh heap
  // block is fine — blocks are interchangeable once tagged poolable.
  std::uint64_t* b = alloc.allocate(1);
  *b = 2;
  set_arena_enabled(true);
  alloc.deallocate(b, 1);

  // Bulk allocations bypass the pool entirely in both states.
  std::uint64_t* bulk = alloc.allocate(16);
  bulk[15] = 3;
  alloc.deallocate(bulk, 16);
}

TEST(ArenaTest, CrossThreadReleaseIsSafe) {
  ArenaGuard guard;
  set_arena_enabled(true);
  // Producer threads acquire, consumer threads release — the queue/mover
  // split. Run enough churn that thread caches spill to the central list
  // and refill from it (TSan exercises the handoff).
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      using Map = std::map<int, int, std::less<int>,
                           PoolAllocator<std::pair<const int, int>>>;
      for (int round = 0; round < kRounds; ++round) {
        Widget* w = ObjectPool<Widget>::get();
        w->bytes.assign(128, static_cast<char>(round));
        std::thread release([w] {
          w->bytes.clear();
          ObjectPool<Widget>::put(w);
        });
        Map m;
        for (int i = 0; i < 16; ++i) m[i] = i * round;
        release.join();
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace cmx::util
