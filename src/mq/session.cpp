#include "mq/session.hpp"

#include "mq/queue_manager.hpp"
#include "mq/store.hpp"
#include "util/id.hpp"
#include "util/logging.hpp"

namespace cmx::mq {

Session::Session(QueueManager& qm, bool transacted)
    : qm_(qm), transacted_(transacted) {}

Session::~Session() {
  if (transacted_ && has_pending_work()) {
    CMX_DEBUG("mq.session") << "rolling back abandoned session";
    rollback();
  }
}

bool Session::has_pending_work() const {
  return !pending_puts_.empty() || !pending_gets_.empty();
}

util::Status Session::put(const QueueAddress& addr, Message msg) {
  if (!transacted_) {
    return qm_.put(addr, std::move(msg));
  }
  pending_puts_.emplace_back(addr, std::move(msg));
  return util::ok_status();
}

util::Status Session::put_all(
    std::vector<std::pair<QueueAddress, Message>> puts) {
  if (!transacted_) {
    return qm_.put_all(std::move(puts));
  }
  for (auto& put : puts) {
    pending_puts_.push_back(std::move(put));
  }
  return util::ok_status();
}

util::Result<Message> Session::get(const std::string& queue_name,
                                   util::TimeMs timeout_ms,
                                   const Selector* selector) {
  if (!transacted_) {
    return qm_.get(queue_name, timeout_ms, selector);
  }
  auto queue = qm_.find_queue(queue_name);
  if (queue == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "queue " + queue_name + " not found");
  }
  const util::TimeMs deadline =
      timeout_ms == util::kNoDeadline ? util::kNoDeadline
                                      : qm_.clock().now_ms() + timeout_ms;
  auto got = queue->get(deadline, selector);
  if (!got) return got.status();
  PendingGet pending{queue, queue_name, got.value().seq, got.value().msg};
  qm_.register_inflight(queue_name, pending.msg);
  pending_gets_.push_back(pending);
  return std::move(got).value().msg;
}

util::Status Session::commit() {
  if (!transacted_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "commit on non-transacted session");
  }
  // Order: puts become visible first, then the consumption of gets is made
  // durable. A crash in between yields redelivery (at-least-once), which is
  // the standard messaging-transaction guarantee. All puts go out as one
  // batch: one store append, all-or-nothing on recovery.
  if (!pending_puts_.empty()) {
    auto s = qm_.put_all(std::move(pending_puts_));
    pending_puts_.clear();
    if (!s) {
      CMX_WARN("mq.session") << "commit put failed: " << s.to_string();
      return s;
    }
  }

  std::vector<LogRecord> get_records;
  for (const auto& pending : pending_gets_) {
    if (pending.msg.persistent()) {
      get_records.push_back(LogRecord::get(pending.queue_name,
                                           pending.msg.id()));
    }
  }
  if (!get_records.empty()) {
    if (auto s = qm_.append_log_batch(get_records); !s) return s;
  }
  for (const auto& pending : pending_gets_) {
    qm_.unregister_inflight(pending.msg.id());
  }
  pending_gets_.clear();

  auto hooks = std::move(commit_hooks_);
  clear_hooks();
  for (auto& hook : hooks) hook();
  return util::ok_status();
}

util::Status Session::rollback() {
  if (!transacted_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "rollback on non-transacted session");
  }
  pending_puts_.clear();
  for (auto& pending : pending_gets_) {
    qm_.unregister_inflight(pending.msg.id());
    const auto& options = pending.queue->options();
    if (options.backout_threshold > 0 &&
        pending.msg.delivery_count() >= options.backout_threshold &&
        !options.backout_queue.empty()) {
      // Poison message: repeatedly rolled back. Move it to the backout
      // queue (durably: consume from the source, append to the target).
      qm_.ensure_queue(options.backout_queue).expect_ok("ensure backout");
      if (pending.msg.persistent()) {
        qm_.append_log_batch({LogRecord::get(pending.queue_name,
                                             pending.msg.id())})
            .expect_ok("log backout");
      }
      CMX_WARN("mq.session")
          << "backing out message " << pending.msg.id() << " from "
          << pending.queue_name << " after " << pending.msg.delivery_count()
          << " deliveries";
      qm_.put_local(options.backout_queue, std::move(pending.msg))
          .expect_ok("backout put");
      continue;
    }
    pending.queue->restore(pending.seq, std::move(pending.msg));
  }
  pending_gets_.clear();

  auto hooks = std::move(rollback_hooks_);
  clear_hooks();
  for (auto& hook : hooks) hook();
  return util::ok_status();
}

void Session::on_commit(std::function<void()> hook) {
  commit_hooks_.push_back(std::move(hook));
}

void Session::on_rollback(std::function<void()> hook) {
  rollback_hooks_.push_back(std::move(hook));
}

void Session::clear_hooks() {
  commit_hooks_.clear();
  rollback_hooks_.clear();
}

}  // namespace cmx::mq
