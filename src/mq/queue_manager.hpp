// QueueManager: the unit of deployment of the messaging substrate (the
// MQSeries "queue manager" role). Owns named queues, a persistent message
// store for crash recovery, and an attachment to a Network for
// store-and-forward delivery to remote queue managers.
//
// Concurrency (DESIGN.md §7): the name→queue map is striped across
// kShardCount shards, each with its own mutex, so puts/gets on different
// queues (application queues vs. DS.ACK.Q/DS.SLOG.Q) do not serialize.
// Each Queue carries its own lock for its contents; the in-flight registry
// and the network pointer have dedicated mutexes.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mq/message.hpp"
#include "mq/queue.hpp"
#include "mq/store.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::mq {

class Network;
class Session;

// Dead-letter queue for messages arriving for a nonexistent queue.
inline constexpr const char* kDeadLetterQueue = "SYSTEM.DLQ";
// Prefix of per-remote transmission queues managed by the network layer.
inline constexpr const char* kXmitQueuePrefix = "SYSTEM.XMIT.";
// Property carrying the final destination while a message sits on an
// transmission queue.
inline constexpr const char* kXmitDestProperty = "CMX_XMIT_DEST";

struct QueueManagerOptions {
  // Compact the store once this many records have been appended since the
  // last compaction.
  std::size_t compaction_threshold = 8192;
  // Store engine spec (see mq/store/registry.hpp), e.g. "memory" or
  // "segmented:/var/mq/node?sync=every_batch". Used only when no explicit
  // MessageStore instance is passed to the constructor; empty means
  // NullStore. A malformed spec aborts construction — silently running a
  // durable node without its store would be worse.
  std::string store;
};

class QueueManager {
 public:
  // A null `store` falls back to `options.store` (built via the registry),
  // then to NullStore (no durability).
  QueueManager(std::string name, util::Clock& clock,
               std::unique_ptr<MessageStore> store = nullptr,
               QueueManagerOptions options = {});
  ~QueueManager();

  QueueManager(const QueueManager&) = delete;
  QueueManager& operator=(const QueueManager&) = delete;

  const std::string& name() const { return name_; }
  util::Clock& clock() { return clock_; }

  // ---- queue administration -------------------------------------------
  util::Status create_queue(const std::string& queue_name,
                            QueueOptions options = {});
  // create_queue that tolerates kAlreadyExists.
  util::Status ensure_queue(const std::string& queue_name,
                            QueueOptions options = {});
  util::Status delete_queue(const std::string& queue_name);
  std::shared_ptr<Queue> find_queue(const std::string& queue_name) const;
  std::vector<std::string> queue_names() const;  // sorted

  // ---- messaging -------------------------------------------------------
  // Sends `msg` to a local queue (addr.qmgr empty or equal to name()) or
  // routes it through the attached network. Stamps id and put time.
  util::Status put(const QueueAddress& addr, Message msg);

  // Puts a group of messages with ONE store append for all persistent
  // records (group-commit friendly) and all-or-nothing recovery semantics.
  // Remote addresses are resolved to their local transmission queues so
  // they join the same batch. The whole batch is validated (queues exist,
  // nothing expired) before any side effect; on error nothing was put.
  util::Status put_all(std::vector<std::pair<QueueAddress, Message>> puts);

  // Destructive, auto-acknowledged get with a relative timeout.
  util::Result<Message> get(const std::string& queue_name,
                            util::TimeMs timeout_ms,
                            const Selector* selector = nullptr);

  // Non-blocking destructive get of up to `max_n` messages in one queue
  // lock acquisition, with ONE store append for all persistent removals
  // (the read-side counterpart of put_local_batch). Returns an empty
  // vector when the queue is empty, missing, or closed.
  std::vector<Message> get_batch(const std::string& queue_name,
                                 std::size_t max_n,
                                 const Selector* selector = nullptr);

  // Removes a specific message (by message id) from a local queue, logging
  // the removal of persistent messages. Used for compensation annihilation
  // (paper §2.6). Returns the removed message or kNotFound.
  util::Result<Message> remove_message(const std::string& queue_name,
                                       const std::string& msg_id);

  // Creates a session; transacted sessions group puts/gets atomically.
  std::unique_ptr<Session> create_session(bool transacted);

  // ---- network ----------------------------------------------------------
  void attach_network(Network* network);
  Network* network() const;

  // ---- durability --------------------------------------------------------
  // Replays the store to rebuild queue contents, chunk by chunk when the
  // engine supports chunked replay. Call once, before use.
  util::Status recover();
  // Forces a store compaction now, dispatched on the engine's capability
  // descriptor: self-compacting engines compact in place, snapshot-rewrite
  // engines get a flat snapshot, kNone engines are left alone.
  util::Status compact();
  // The capability descriptor of the underlying store engine.
  StoreCaps store_caps() const { return store_->caps(); }

  // Aggregate selector-waiter index counters across all queues (how many
  // puts probed a waiter index, waiters woken vs. skipped; DESIGN.md §12).
  SelectorIndex::Stats selector_waiter_stats() const;

  // Closes all queues (wakes blocked getters) and detaches the network.
  void shutdown();

  // ---- internal API (used by Session, Channel, Network) ------------------
  // Local put that bypasses routing. Stamps id/time, enforces expiry,
  // logs persistent messages unless `log` is false.
  util::Status put_local(const std::string& queue_name, Message msg,
                         bool log = true);
  // Batch form of put_local: one store append for all persistent records,
  // pre-validated so a failure leaves no partial state.
  util::Status put_local_batch(
      std::vector<std::pair<std::string, Message>> puts, bool log = true);
  // Appends session-commit records atomically.
  util::Status append_log_batch(const std::vector<LogRecord>& records);
  // In-flight registry: messages destructively read under an open
  // transaction. They are outside any queue but must survive compaction.
  void register_inflight(const std::string& queue_name, const Message& msg);
  void unregister_inflight(const std::string& msg_id);

 private:
  static constexpr std::size_t kShardCount = 16;
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<Queue>> queues;
  };

  Shard& shard_for(const std::string& queue_name) const;
  void apply_recovered_record(LogRecord& rec);
  util::Status put_local_impl(const std::string& queue_name, Message msg,
                              bool log);
  util::Status put_local_batch_impl(
      std::vector<std::pair<std::string, Message>>& puts, bool log);
  std::shared_ptr<Queue> make_queue(const std::string& queue_name,
                                    QueueOptions options);
  void maybe_compact();
  std::vector<LogRecord> snapshot() const;

  const std::string name_;
  util::Clock& clock_;
  std::unique_ptr<MessageStore> store_;
  const QueueManagerOptions options_;

  mutable std::array<Shard, kShardCount> shards_;
  mutable std::mutex inflight_mu_;
  std::map<std::string, std::pair<std::string, Message>> inflight_;
  mutable std::mutex network_mu_;
  Network* network_ = nullptr;
  std::atomic<bool> shut_down_{false};
};

}  // namespace cmx::mq
