// Compiled selectors and the enqueue-time property index (DESIGN.md §12).
//
// `CompiledSelector` analyzes a parsed selector tree and splits its
// top-level AND chain into (a) index-backed predicates — equality and
// numeric-range tests of one property against literals — and (b) a
// residual of everything else, kept as pointers into the original tree.
//
// `SelectorIndex` registers many compiled selectors and answers "which
// subscribers match this message?" in one pass: probe each indexed key
// once, count posting-list hits per subscriber, and run the (cheap)
// residual only for subscribers whose every indexed predicate hit.
// Subscribers with no indexable predicate fall back to a full interpretive
// evaluation, so the index is exactly as selective as `Selector::matches`
// — never more, never less.
//
// Soundness (three-valued logic): only conjuncts in positive top-level AND
// position are extracted. For such a conjunct, the whole expression can
// only be TRUE if the conjunct is TRUE, and an indexed predicate "hits"
// exactly when its conjunct evaluates to TRUE (absent property → UNKNOWN →
// no posting under any key → no hit). Integer literals with |v| >= 2^53
// are NOT indexed: postings are keyed by double, which would merge values
// the interpretive int64-exact comparison distinguishes.
//
// Thread-safety: none. Callers (Queue, TopicBroker) guard the index with
// their own mutex.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mq/message.hpp"
#include "mq/selector.hpp"

namespace cmx::mq {

namespace detail {
class SelectorNode;
}

// Process-wide A/B toggle for index-backed selector matching (matching the
// set_zero_copy_enabled / set_arena_enabled precedent). Default on; flip
// only from quiescent bench/test harness code.
bool selector_index_enabled();
void set_selector_index_enabled(bool on);

// One extractable conjunct: `key <op> literal(s)`.
struct IndexedPredicate {
  enum class Kind { kEq, kRange };
  // One equality alternative (IN lists produce several per predicate).
  struct EqValue {
    enum class Type { kBool, kNumber, kString };
    Type type = Type::kNumber;
    bool b = false;
    double num = 0;  // ints narrowed to double; guarded to |v| < 2^53
    std::string str;
  };

  std::string key;
  Kind kind = Kind::kEq;
  std::vector<EqValue> values;          // kEq: deduplicated alternatives
  double lo = 0, hi = 0;                // kRange: closed/open interval
  bool lo_strict = false, hi_strict = false;
  bool lo_unbounded = true, hi_unbounded = true;
};

// The analysis pass over one parsed selector. Holds shared ownership of
// the tree, so it stays valid after the source Selector is destroyed.
class CompiledSelector {
 public:
  // A null selector compiles to "matches everything" (no predicates, no
  // residual). `extra_eq` adds synthetic required string-equality
  // predicates not present in the expression (e.g. an exact topic).
  explicit CompiledSelector(
      const Selector* selector,
      std::vector<std::pair<std::string, std::string>> extra_eq = {});

  const std::vector<IndexedPredicate>& indexed() const { return indexed_; }
  bool indexable() const { return !indexed_.empty(); }

  // True iff every residual conjunct evaluates to TRUE. Combined with all
  // indexed predicates hitting, this is equivalent to Selector::matches.
  bool residual_matches(const Message& m) const;

  // Full interpretive evaluation of the original expression plus the
  // synthetic extras (the fallback arm for non-indexable selectors).
  bool matches(const Message& m) const;

 private:
  std::shared_ptr<const detail::SelectorNode> root_;  // may be null
  std::vector<IndexedPredicate> indexed_;
  std::vector<const detail::SelectorNode*> residual_;
  // Synthetic extras that could not be indexed never exist (extras are
  // always string-eq, always indexable), so extras need no residual arm.
};

// Counting posting-list index over registered compiled selectors.
class SelectorIndex {
 public:
  struct Stats {
    std::uint64_t probes = 0;          // collect_matches calls
    std::uint64_t index_hits = 0;      // indexed subscribers matched
    std::uint64_t index_skips = 0;     // indexed subscribers ruled out
                                       //   without evaluating anything
    std::uint64_t residual_evals = 0;  // residual runs on index survivors
    std::uint64_t fallback_evals = 0;  // full evals of non-indexable subs
  };

  // Registers subscriber `id` (caller-chosen, unique). The Selector, if
  // any, is only read during this call; the compiled form is self-owned.
  void add(std::uint64_t id, const Selector* selector,
           std::vector<std::pair<std::string, std::string>> extra_eq = {});
  void remove(std::uint64_t id);

  // Appends the ids of every registered subscriber whose selector matches
  // `m` (order unspecified). Exactly the set for which
  // Selector::matches(m) is true (and all extra_eq predicates hold).
  void collect_matches(const Message& m, std::vector<std::uint64_t>& out);

  std::size_t size() const { return by_id_.size(); }
  std::size_t indexed_subscribers() const { return indexed_count_; }
  const Stats& stats() const { return stats_; }
  // Registry of property keys currently backed by postings (sorted).
  std::vector<std::string> indexed_keys() const;

 private:
  struct Slot {
    std::uint64_t id = 0;
    bool live = false;
    std::uint32_t needed = 0;  // indexed predicates that must all hit
    std::uint32_t hits = 0;    // hits in the current probe epoch
    std::uint64_t epoch = 0;
    std::optional<CompiledSelector> sel;
  };

  struct RangeEntry {
    double lo, hi;
    bool lo_strict, hi_strict, lo_unbounded, hi_unbounded;
    std::uint32_t slot;
  };

  // Per-key postings. A message value of mismatched type simply probes
  // nothing (type-mismatched comparisons are UNKNOWN, never TRUE).
  struct KeyIndex {
    std::map<std::string, std::vector<std::uint32_t>, std::less<>> str_eq;
    std::map<double, std::vector<std::uint32_t>> num_eq;
    std::vector<std::uint32_t> bool_eq[2];
    std::vector<RangeEntry> ranges;
    std::size_t entries = 0;
  };

  void bump(std::uint32_t slot_idx);
  void unpost(std::uint32_t slot_idx, const IndexedPredicate& p);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_id_;
  std::vector<std::uint32_t> scan_;  // slots with needed == 0
  std::map<std::string, KeyIndex, std::less<>> keys_;
  std::size_t indexed_count_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> candidates_;  // scratch, reused across probes
  Stats stats_;
};

}  // namespace cmx::mq
