#include "mq/payload.hpp"

#include <atomic>

namespace cmx::mq {

namespace {
std::atomic<bool> g_zero_copy{true};
}  // namespace

bool zero_copy_enabled() {
  return g_zero_copy.load(std::memory_order_relaxed);
}

void set_zero_copy_enabled(bool on) {
  g_zero_copy.store(on, std::memory_order_relaxed);
}

std::shared_ptr<const std::string> Payload::copy_data() const {
  if (data_ == nullptr) return nullptr;
  if (zero_copy_enabled()) return data_;
  // Baseline arm of the A/B: behave like the seed's value body.
  return std::make_shared<const std::string>(*data_);
}

std::ostream& operator<<(std::ostream& os, const Payload& p) {
  return os << p.view();
}

}  // namespace cmx::mq
