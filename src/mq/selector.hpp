// JMS-style message selectors: a SQL-92-flavoured boolean expression over
// message properties and header fields, with three-valued logic (TRUE /
// FALSE / UNKNOWN, where references to absent properties yield UNKNOWN).
// A message matches iff the expression evaluates to TRUE.
//
// Supported grammar (case-insensitive keywords):
//   expr    := or
//   or      := and (OR and)*
//   and     := unary (AND unary)*
//   unary   := NOT unary | cmp
//   cmp     := sum ( (= | <> | < | <= | > | >=) sum
//                  | IS [NOT] NULL
//                  | [NOT] IN '(' literal (',' literal)* ')'
//                  | [NOT] LIKE string [ESCAPE string]
//                  | [NOT] BETWEEN sum AND sum )?
//   sum     := prod (('+' | '-') prod)*
//   prod    := atom (('*' | '/') atom)*
//   atom    := '-' atom | '(' expr ')' | ident | literal
//   literal := integer | float | 'string' | TRUE | FALSE
//
// Header fields are exposed as identifiers: JMSPriority (int),
// JMSDeliveryCount (int), JMSCorrelationID (string), JMSMessageID (string).
#pragma once

#include <memory>
#include <string>

#include "mq/message.hpp"
#include "util/status.hpp"

namespace cmx::mq {

namespace detail {
class SelectorNode;
}

// A compiled selector. Immutable and thread-safe after construction.
class Selector {
 public:
  Selector(Selector&&) noexcept;
  Selector& operator=(Selector&&) noexcept;
  ~Selector();

  // Compiles `expression`; returns kInvalidArgument with a position-tagged
  // message on syntax errors. An empty expression matches every message.
  static util::Result<Selector> parse(const std::string& expression);

  // True iff the expression evaluates to TRUE for this message.
  // Allocation-free: evaluation borrows string storage from the message
  // and from literal storage owned by the parsed tree.
  bool matches(const Message& message) const;

  const std::string& expression() const { return expression_; }

  // Canonical fully-parenthesized form of the parsed tree. Re-parsing it
  // yields an equivalent selector (used by the fuzz round-trip test and
  // for diagnostics).
  std::string canonical() const;

  // The parsed tree, for the compiled-selector analysis pass
  // (mq/selector_index.hpp). Shared ownership: a CompiledSelector keeps
  // the tree alive past the Selector it came from.
  const std::shared_ptr<const detail::SelectorNode>& root() const {
    return root_;
  }

 private:
  Selector(std::string expression,
           std::shared_ptr<const detail::SelectorNode> root);

  std::string expression_;
  std::shared_ptr<const detail::SelectorNode> root_;
};

}  // namespace cmx::mq
