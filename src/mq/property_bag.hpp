// Flat property storage for messages. The seed used a
// std::map<std::string, PropertyValue> — one red-black node allocation per
// property plus pointer-chasing on every selector lookup. Messages carry a
// handful of properties (the conditional-messaging control set is ~8), so a
// sorted vector with binary search beats the tree on every axis: one
// contiguous allocation, cache-friendly scans for encode/iteration, and
// O(log n) lookups without node hops. Keys are stored inline up to
// PropKey::kInlineCapacity bytes (every key the system itself generates
// fits), falling back to a heap string only for oversized application keys.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/arena.hpp"

namespace cmx::mq {

// Typed property values, as in JMS message properties.
using PropertyValue = std::variant<bool, std::int64_t, double, std::string>;

std::string property_to_string(const PropertyValue& v);

// Property key with inline storage for short keys. 30 inline bytes cover
// every system key (CMX_*, JMS*, SUB_*) and virtually all application keys
// without touching the heap.
class PropKey {
 public:
  static constexpr std::size_t kInlineCapacity = 30;

  PropKey() = default;
  explicit PropKey(std::string_view s) { assign(s); }

  PropKey(const PropKey& other) { assign(other.view()); }
  PropKey& operator=(const PropKey& other) {
    if (this != &other) assign(other.view());
    return *this;
  }
  PropKey(PropKey&&) noexcept = default;
  PropKey& operator=(PropKey&&) noexcept = default;

  std::string_view view() const {
    if (len_ == kHeapTag) return *heap_;
    return std::string_view(inline_, len_);
  }
  operator std::string_view() const { return view(); }

  bool inline_stored() const { return len_ != kHeapTag; }

  friend bool operator==(const PropKey& a, std::string_view b) {
    return a.view() == b;
  }
  friend bool operator<(const PropKey& a, const PropKey& b) {
    return a.view() < b.view();
  }

 private:
  static constexpr std::uint8_t kHeapTag = 0xFF;

  void assign(std::string_view s);

  std::uint8_t len_ = 0;  // kHeapTag => key lives in heap_
  char inline_[kInlineCapacity] = {};
  std::unique_ptr<std::string> heap_;
};

// Sorted flat map keyed by PropKey. Iteration order is the key's byte
// order, which also fixes the canonical encode order of message frames.
class PropertyBag {
 public:
  struct Entry {
    PropKey key;
    PropertyValue value;
  };
  // Messages carry 1–2 properties on the hot path (the transit address,
  // sometimes a kind tag), so the single-entry capacity that vector
  // allocates first is freelist-recycled via the pool allocator; larger
  // bags fall through to the heap like any bulk allocation.
  using EntryVec = std::vector<Entry, util::PoolAllocator<Entry>>;
  using const_iterator = EntryVec::const_iterator;

  const PropertyValue* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  // Overwrites an existing entry or inserts in sorted position.
  void set(std::string_view key, PropertyValue value);

  // Returns true when a matching entry was removed.
  bool erase(std::string_view key);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

 private:
  EntryVec::iterator lower_bound(std::string_view key);
  EntryVec::const_iterator lower_bound(std::string_view key) const;

  EntryVec entries_;  // sorted by key
};

}  // namespace cmx::mq
