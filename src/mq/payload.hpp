// Shared immutable message payload. A Payload is a refcounted handle to an
// immutable byte buffer: copying a Payload (and therefore copying a Message)
// bumps a reference count instead of duplicating the bytes, so a fan-out to
// N destinations, a channel duplication fault, and a store append all share
// ONE allocation. Mutation goes through detach()/set semantics (copy-on-
// write): the rare writer pays for a private copy, every reader stays
// zero-copy.
//
// A/B switch: set_zero_copy_enabled(false) restores the seed's deep-copy
// behaviour (every Payload copy duplicates the bytes, and Message stops
// memoizing encoded frames). It exists solely so bench_msg_path can measure
// the zero-copy core against the pre-change baseline inside one binary; do
// not disable it in production paths.
#pragma once

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

namespace cmx::mq {

// Process-wide A/B flag (default: zero-copy on). Read on every Payload copy
// with relaxed ordering; flip it only from quiescent bench harness code.
bool zero_copy_enabled();
void set_zero_copy_enabled(bool on);

class Payload {
 public:
  Payload() = default;
  explicit Payload(std::string bytes)
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<const std::string>(std::move(bytes))) {}
  explicit Payload(std::shared_ptr<const std::string> shared)
      : data_(std::move(shared)) {}

  Payload(const Payload& other) : data_(other.copy_data()) {}
  Payload& operator=(const Payload& other) {
    if (this != &other) data_ = other.copy_data();
    return *this;
  }
  Payload(Payload&&) noexcept = default;
  Payload& operator=(Payload&&) noexcept = default;

  const std::string& str() const { return data_ ? *data_ : empty_string(); }
  std::string_view view() const { return str(); }
  operator const std::string&() const { return str(); }

  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }

  // The underlying buffer, for callers that want to extend the sharing
  // (e.g. building several messages over one body).
  std::shared_ptr<const std::string> share() const { return data_; }

  // Introspection hooks for tests and allocation accounting.
  bool shares_with(const Payload& other) const {
    return data_ != nullptr && data_ == other.data_;
  }
  long use_count() const { return data_ ? data_.use_count() : 0; }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.view() == b.view();
  }
  friend bool operator==(const Payload& a, std::string_view b) {
    return a.view() == b;
  }

 private:
  static const std::string& empty_string();

  std::shared_ptr<const std::string> copy_data() const;

  std::shared_ptr<const std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Payload& p);

}  // namespace cmx::mq
