// Message payload with a two-arm memory model (DESIGN.md §9):
//
//  * Inline arm — bodies up to kInlineMax (64) bytes live inside the
//    Payload object itself, SSO-style: no heap allocation, no shared_ptr
//    control block. Copying is a memcpy. This is the shape of the
//    control-plane traffic (acks, rlog entries, outcome notifications)
//    that dominates at high fan-out.
//  * Shared arm — larger bodies are a refcounted handle to an immutable
//    byte buffer: copying a Payload (and therefore a Message) bumps a
//    reference count instead of duplicating the bytes, so a fan-out to N
//    destinations, a channel duplication fault, and a store append all
//    share ONE allocation. Mutation goes through set semantics (copy-on-
//    write): the rare writer pays for a private copy, every reader stays
//    zero-copy.
//
// Both arms present the same value semantics at the API boundary: view()
// is the body, copies never observe later mutation, share() hands out a
// shared buffer (materializing one for the inline arm on demand).
//
// A/B switches: set_zero_copy_enabled(false) restores the seed's
// deep-copy behaviour for the shared arm (and stops Message frame
// memoization); util::set_arena_enabled(false) disables the inline arm
// (every non-empty body heap-allocates, reproducing the PR 4 shape).
// They exist solely so bench_msg_path can measure the arms inside one
// binary; do not disable them in production paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "util/arena.hpp"

namespace cmx::mq {

// Process-wide A/B flag (default: zero-copy on). Read on every Payload copy
// with relaxed ordering; flip it only from quiescent bench harness code.
bool zero_copy_enabled();
void set_zero_copy_enabled(bool on);

class Payload {
 public:
  // Bodies at or below this size are stored inline (when the arena fast
  // path is enabled).
  static constexpr std::size_t kInlineMax = 64;

  Payload() = default;
  explicit Payload(std::string bytes) {
    if (bytes.size() <= kInlineMax && util::arena_enabled()) {
      set_inline(bytes);
    } else if (!bytes.empty()) {
      data_ = std::make_shared<const std::string>(std::move(bytes));
    }
  }
  explicit Payload(std::shared_ptr<const std::string> shared)
      : data_(std::move(shared)) {
    if (data_ != nullptr && data_->empty()) data_.reset();
  }

  // Copying constructor from borrowed bytes (the decode path): inline when
  // small, one shared allocation otherwise. Named to avoid overload
  // ambiguity with the std::string constructor.
  static Payload copy_of(std::string_view bytes) {
    Payload p;
    if (bytes.size() <= kInlineMax && util::arena_enabled()) {
      p.set_inline(bytes);
    } else if (!bytes.empty()) {
      p.data_ = std::make_shared<const std::string>(bytes);
    }
    return p;
  }

  Payload(const Payload& other) { assign_from(other); }
  Payload& operator=(const Payload& other) {
    if (this != &other) assign_from(other);
    return *this;
  }
  Payload(Payload&&) noexcept = default;
  Payload& operator=(Payload&&) noexcept = default;

  std::string_view view() const {
    return data_ != nullptr ? std::string_view(*data_)
                            : std::string_view(inline_bytes_, inline_size_);
  }

  std::size_t size() const {
    return data_ != nullptr ? data_->size() : inline_size_;
  }
  bool empty() const { return size() == 0; }

  // The underlying buffer, for callers that want to extend the sharing
  // (e.g. building several messages over one body). The inline arm has no
  // buffer to share and materializes one per call.
  std::shared_ptr<const std::string> share() const {
    if (data_ != nullptr || inline_size_ == 0) return data_;
    return std::make_shared<const std::string>(view());
  }

  // Introspection hooks for tests and allocation accounting.
  bool shares_with(const Payload& other) const {
    return data_ != nullptr && data_ == other.data_;
  }
  bool inline_stored() const { return data_ == nullptr && inline_size_ > 0; }
  long use_count() const { return data_ ? data_.use_count() : 0; }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.view() == b.view();
  }
  friend bool operator==(const Payload& a, std::string_view b) {
    return a.view() == b;
  }

 private:
  void set_inline(std::string_view bytes) {
    inline_size_ = static_cast<std::uint8_t>(bytes.size());
    if (!bytes.empty()) std::memcpy(inline_bytes_, bytes.data(), bytes.size());
  }

  void assign_from(const Payload& other) {
    if (other.data_ == nullptr) {
      data_.reset();
      inline_size_ = other.inline_size_;
      std::memcpy(inline_bytes_, other.inline_bytes_, other.inline_size_);
      return;
    }
    inline_size_ = 0;
    data_ = other.copy_data();
  }

  std::shared_ptr<const std::string> copy_data() const;

  // data_ == nullptr selects the inline arm (inline_size_ may be 0: the
  // empty payload). The arm is fixed at construction; copies preserve it.
  std::shared_ptr<const std::string> data_;
  std::uint8_t inline_size_ = 0;
  char inline_bytes_[kInlineMax];
};

std::ostream& operator<<(std::ostream& os, const Payload& p);

}  // namespace cmx::mq
