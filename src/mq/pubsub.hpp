// Publish/subscribe layer over the queue substrate: the "message broker"
// role the paper lists as the second mediation form ("message queues
// and/or publish/subscribe message brokers", §1). Subscriptions
// materialize as queues on the broker's queue manager, so everything else
// (persistence, transacted reads, selectors, conditional messaging)
// composes unchanged.
//
// Topics are hierarchical, '.'-separated ("market.emea.fx"). Subscription
// patterns support JMS-style wildcards:
//   *  matches exactly one level      ("market.*.fx")
//   #  matches zero or more trailing levels ("market.#")
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mq/message.hpp"
#include "mq/queue_manager.hpp"
#include "mq/selector.hpp"
#include "mq/selector_index.hpp"

namespace cmx::mq {

// Message property carrying the topic a message was published to.
inline constexpr const char* kTopicProperty = "CMX_TOPIC";
// Prefix of the backing queues created for subscriptions.
inline constexpr const char* kSubscriptionQueuePrefix = "SYSTEM.SUB.";
// Persistent registry of durable subscriptions (one message each), so a
// broker can be reconstructed over a recovered queue manager.
inline constexpr const char* kSubscriptionRegistryQueue = "SYSTEM.SUBS.META";

struct SubscriptionOptions {
  // Durable subscriptions keep messages persistent (survive a broker
  // restart via the queue manager's store); non-durable subscriptions
  // force their copies non-persistent.
  bool durable = false;
  // Optional selector: only matching messages are delivered.
  std::string selector;
  // Explicit name (for durable resubscription); generated when empty.
  std::string name;
};

struct SubscriptionInfo {
  std::string name;
  std::string pattern;
  std::string queue;  // backing queue on the broker's queue manager
  bool durable = false;
};

struct BrokerStats {
  std::uint64_t published = 0;
  std::uint64_t deliveries = 0;         // copies placed on subscriptions
  std::uint64_t unmatched_publishes = 0;  // no subscription matched
  // Subscriptions ruled out before delivery by the matching engine. In the
  // index arm this counts everything the index skipped (selector or exact
  // topic); in the interpretive arm, only selector misses on
  // topic-matching subscriptions.
  std::uint64_t selector_filtered = 0;
};

// True iff `topic` matches the subscription `pattern` (wildcards above).
bool topic_matches(const std::string& pattern, const std::string& topic);

class TopicBroker {
 public:
  explicit TopicBroker(QueueManager& qm);

  TopicBroker(const TopicBroker&) = delete;
  TopicBroker& operator=(const TopicBroker&) = delete;

  // Creates a subscription; returns its info (queue name is what a
  // consumer reads from). Fails on duplicate names or a bad selector.
  util::Result<SubscriptionInfo> subscribe(const std::string& pattern,
                                           SubscriptionOptions options = {});

  util::Status unsubscribe(const std::string& name);

  // Publishes: one copy per matching subscription. A publish that matches
  // nothing succeeds (and is counted) — pub/sub has no "queue not found".
  util::Status publish(const std::string& topic, Message msg);

  // Rebuilds durable subscriptions from the persistent registry after the
  // underlying queue manager was recovered. Non-durable subscriptions do
  // not survive (their queues were volatile). Call once, before use.
  util::Status recover();

  std::optional<SubscriptionInfo> find(const std::string& name) const;
  // Subscriptions whose pattern matches `topic` (what a conditional
  // publish fans out over).
  std::vector<SubscriptionInfo> matching(const std::string& topic) const;
  std::vector<SubscriptionInfo> subscriptions() const;

  BrokerStats stats() const;
  // Counters and key registry of the subscription index (publish-side
  // enqueue-time matching; DESIGN.md §12).
  SelectorIndex::Stats index_stats() const;
  std::vector<std::string> indexed_keys() const;
  QueueManager& queue_manager() { return qm_; }

 private:
  struct Subscription {
    SubscriptionInfo info;
    std::optional<Selector> selector;
    std::uint64_t index_id = 0;
  };

  // Registers `sub` in the index (caller holds mu_). Exact (wildcard-free)
  // patterns become a synthetic equality predicate on kTopicProperty, so
  // publishes to other topics skip the subscription without evaluating
  // anything; wildcard patterns are re-checked with topic_matches on
  // index survivors.
  void index_subscription_locked(Subscription& sub);

  QueueManager& qm_;
  mutable std::mutex mu_;
  std::map<std::string, Subscription> subs_;
  SelectorIndex index_;
  std::unordered_map<std::uint64_t, std::string> by_index_id_;
  std::uint64_t next_index_id_ = 1;
  std::vector<std::uint64_t> match_scratch_;
  BrokerStats stats_;
};

}  // namespace cmx::mq
