// Network: registry of queue managers plus the channels connecting them.
// QueueManager::put() with a remote address routes through here: the
// message is stamped with its final destination, persisted on the local
// transmission queue, and a Channel mover carries it to the remote side.
//
// Lifetime: the Network must be destroyed (or shutdown()) before the
// queue managers it references.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mq/channel.hpp"
#include "mq/message.hpp"
#include "mq/transport/transport_channel.hpp"
#include "util/status.hpp"

namespace cmx::mq {

class QueueManager;

class Network {
 public:
  Network() = default;
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a queue manager and attaches this network to it.
  void add(QueueManager& qm);

  QueueManager* find(const std::string& qmgr_name) const;

  // Options applied to channels created on demand by route().
  void set_default_channel_options(ChannelOptions options);

  // Explicitly creates (or reconfigures by recreating) the from→to channel.
  util::Status connect(const std::string& from, const std::string& to,
                       ChannelOptions options);

  // The from→to channel, or nullptr if it has not been created yet.
  Channel* channel(const std::string& from, const std::string& to) const;

  // Registers a REMOTE queue manager reachable over TCP (DESIGN.md §10):
  // creates a TransportChannel from `from` to `remote_name` at the
  // host:port in `options`. After this, puts addressed to
  // remote_name/<queue> route onto the transport channel's transmission
  // queue exactly like in-process remote puts — the destination being
  // another process is invisible above the network layer.
  util::Status add_remote(QueueManager& from, const std::string& remote_name,
                          transport::TransportChannelOptions options);

  // The from→to transport channel, or nullptr.
  transport::TransportChannel* transport_channel(const std::string& from,
                                                 const std::string& to) const;

  // Routes a message from `from` to a queue on a remote queue manager.
  // Creates the channel on demand. Called by QueueManager::put().
  util::Status route(QueueManager& from, const QueueAddress& addr,
                     Message msg);

  // Resolves a remote address to the name of the local transmission queue
  // feeding its channel, stamping the destination property on `msg` (no
  // put happens). Creates the channel on demand. Lets QueueManager::put_all
  // fold remote puts into the same local batch as local ones.
  util::Result<std::string> resolve(QueueManager& from,
                                    const QueueAddress& addr, Message& msg);

  // Stops all channel movers. Idempotent.
  void shutdown();

 private:
  Channel* channel_locked(const std::string& from, const std::string& to);

  mutable std::mutex mu_;
  std::map<std::string, QueueManager*> qms_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Channel>>
      channels_;
  // (from, to) → TCP channel; `to` here is a remote process, never a
  // member of qms_. Checked before qms_ in resolve().
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<transport::TransportChannel>>
      transport_channels_;
  ChannelOptions default_options_;
  bool shut_down_ = false;
};

}  // namespace cmx::mq
