#include "mq/property_bag.hpp"

#include <algorithm>
#include <cstring>

namespace cmx::mq {

std::string property_to_string(const PropertyValue& v) {
  struct Visitor {
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, v);
}

void PropKey::assign(std::string_view s) {
  if (s.size() <= kInlineCapacity) {
    std::memcpy(inline_, s.data(), s.size());
    len_ = static_cast<std::uint8_t>(s.size());
    heap_.reset();
    return;
  }
  heap_ = std::make_unique<std::string>(s);
  len_ = kHeapTag;
}

PropertyBag::EntryVec::iterator PropertyBag::lower_bound(
    std::string_view key) {
  return std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key.view() < k; });
}

PropertyBag::EntryVec::const_iterator PropertyBag::lower_bound(
    std::string_view key) const {
  return std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key.view() < k; });
}

const PropertyValue* PropertyBag::find(std::string_view key) const {
  auto it = lower_bound(key);
  if (it == entries_.end() || it->key.view() != key) return nullptr;
  return &it->value;
}

void PropertyBag::set(std::string_view key, PropertyValue value) {
  auto it = lower_bound(key);
  if (it != entries_.end() && it->key.view() == key) {
    it->value = std::move(value);
    return;
  }
  entries_.insert(it, Entry{PropKey(key), std::move(value)});
}

bool PropertyBag::erase(std::string_view key) {
  auto it = lower_bound(key);
  if (it == entries_.end() || it->key.view() != key) return false;
  entries_.erase(it);
  return true;
}

}  // namespace cmx::mq
