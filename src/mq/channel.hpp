// Channel: unidirectional store-and-forward link between two queue
// managers, modeled after MQSeries sender/receiver channels. Messages
// routed to a remote queue manager are first persisted on a local
// transmission queue (SYSTEM.XMIT.<remote>) and a mover thread transfers
// them, applying configurable latency/jitter and fault injection:
// non-persistent messages may be dropped, any message may be duplicated
// (at-least-once delivery), and the channel can be paused to simulate a
// network partition (messages accumulate on the transmission queue and
// flow again on resume — the substrate's "resilience under partial
// failure" the paper relies on).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mq/message.hpp"
#include "util/clock.hpp"
#include "util/random.hpp"

namespace cmx::mq {

class QueueManager;

struct ChannelOptions {
  util::TimeMs latency_ms = 0;       // base one-way latency
  util::TimeMs jitter_ms = 0;        // uniform extra [0, jitter]
  double drop_nonpersistent = 0.0;   // P(drop) for non-persistent messages
  double duplicate = 0.0;            // P(deliver twice)
  // Create the channel in the paused state (deterministic partition
  // setup: pause() on a running channel races its blocking dequeue and
  // can let one message through).
  bool start_paused = false;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  // Transit batching: after its blocking dequeue the mover drains up to
  // max_batch-1 further messages from the transmission queue and carries
  // them across in one hop — one latency sleep and one remote store append
  // for the whole batch. 1 restores strict message-at-a-time transfer.
  std::size_t max_batch = 16;
};

struct ChannelStats {
  std::uint64_t transferred = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dead_lettered = 0;
};

class Channel {
 public:
  Channel(QueueManager& from, QueueManager& to, ChannelOptions options);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const std::string& xmit_queue_name() const { return xmit_queue_; }
  const std::string& source() const;
  const std::string& destination() const;

  // Suspends/resumes transfers (partition simulation). Messages put while
  // paused wait on the transmission queue.
  void pause();
  void resume();
  bool paused() const { return paused_.load(); }

  // Stops the mover thread permanently and joins it.
  void stop();

  ChannelStats stats() const;

 private:
  // One message in transit, with routing/fault decisions already made.
  struct TransitItem {
    Message msg;
    std::string dest;
    QueueAddress addr;
    bool dup = false;
    bool conditional_data = false;
    util::TimeMs xmit_put_ms = 0;
  };

  void mover_loop();
  // Consumes the messages (moved out element-wise); the caller's vector
  // keeps its capacity for the next hop.
  void deliver_batch(std::vector<Message>& msgs);
  void deliver_one(TransitItem item);
  void record_delivered(const TransitItem& item);

  QueueManager& from_;
  QueueManager& to_;
  const ChannelOptions options_;
  const std::string xmit_queue_;
  util::Rng rng_;

  std::atomic<bool> paused_{false};
  std::atomic<bool> stopping_{false};
  mutable std::mutex mu_;  // guards stats_ and pause cv
  std::condition_variable pause_cv_;
  ChannelStats stats_;
  std::thread mover_;
};

}  // namespace cmx::mq
