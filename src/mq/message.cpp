#include "mq/message.hpp"

#include "util/codec.hpp"

namespace cmx::mq {

namespace {
constexpr std::uint32_t kMessageCodecVersion = 1;

enum class PropTag : std::uint8_t {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};
}  // namespace

std::string QueueAddress::to_string() const {
  if (qmgr.empty()) return queue;
  return qmgr + "/" + queue;
}

QueueAddress QueueAddress::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return QueueAddress("", text);
  return QueueAddress(text.substr(0, slash), text.substr(slash + 1));
}

std::string property_to_string(const PropertyValue& v) {
  struct Visitor {
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, v);
}

void Message::set_property(const std::string& key, PropertyValue value) {
  properties[key] = std::move(value);
}

bool Message::has_property(const std::string& key) const {
  return properties.count(key) > 0;
}

std::optional<std::string> Message::get_string(const std::string& key) const {
  auto it = properties.find(key);
  if (it == properties.end()) return std::nullopt;
  if (const auto* s = std::get_if<std::string>(&it->second)) return *s;
  return std::nullopt;
}

std::optional<std::int64_t> Message::get_int(const std::string& key) const {
  auto it = properties.find(key);
  if (it == properties.end()) return std::nullopt;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return *i;
  return std::nullopt;
}

std::optional<bool> Message::get_bool(const std::string& key) const {
  auto it = properties.find(key);
  if (it == properties.end()) return std::nullopt;
  if (const auto* b = std::get_if<bool>(&it->second)) return *b;
  return std::nullopt;
}

std::optional<double> Message::get_double(const std::string& key) const {
  auto it = properties.find(key);
  if (it == properties.end()) return std::nullopt;
  if (const auto* d = std::get_if<double>(&it->second)) return *d;
  return std::nullopt;
}

std::string Message::encode() const {
  util::BinaryWriter w;
  w.put_u32(kMessageCodecVersion);
  w.put_string(id);
  w.put_string(correlation_id);
  w.put_string(reply_to.qmgr);
  w.put_string(reply_to.queue);
  w.put_u8(static_cast<std::uint8_t>(priority));
  w.put_u8(static_cast<std::uint8_t>(persistence));
  w.put_i64(expiry_ms);
  w.put_i64(put_time_ms);
  w.put_u32(static_cast<std::uint32_t>(delivery_count));
  w.put_u32(static_cast<std::uint32_t>(properties.size()));
  for (const auto& [key, value] : properties) {
    w.put_string(key);
    if (const auto* b = std::get_if<bool>(&value)) {
      w.put_u8(static_cast<std::uint8_t>(PropTag::kBool));
      w.put_bool(*b);
    } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
      w.put_u8(static_cast<std::uint8_t>(PropTag::kInt));
      w.put_i64(*i);
    } else if (const auto* d = std::get_if<double>(&value)) {
      w.put_u8(static_cast<std::uint8_t>(PropTag::kDouble));
      w.put_f64(*d);
    } else {
      w.put_u8(static_cast<std::uint8_t>(PropTag::kString));
      w.put_string(std::get<std::string>(value));
    }
  }
  w.put_string(body);
  return w.take();
}

util::Result<Message> Message::decode(std::string_view data) {
  using util::ErrorCode;
  util::BinaryReader r(data);
  auto version = r.get_u32();
  if (!version) return version.status();
  if (version.value() != kMessageCodecVersion) {
    return util::make_error(ErrorCode::kIoError, "unknown message version");
  }
  Message m;
  auto read_str = [&](std::string& out) -> util::Status {
    auto s = r.get_string();
    if (!s) return s.status();
    out = std::move(s).value();
    return util::ok_status();
  };
  if (auto s = read_str(m.id); !s) return s;
  if (auto s = read_str(m.correlation_id); !s) return s;
  if (auto s = read_str(m.reply_to.qmgr); !s) return s;
  if (auto s = read_str(m.reply_to.queue); !s) return s;
  auto prio = r.get_u8();
  if (!prio) return prio.status();
  m.priority = prio.value();
  auto pers = r.get_u8();
  if (!pers) return pers.status();
  m.persistence = static_cast<Persistence>(pers.value());
  auto expiry = r.get_i64();
  if (!expiry) return expiry.status();
  m.expiry_ms = expiry.value();
  auto put_time = r.get_i64();
  if (!put_time) return put_time.status();
  m.put_time_ms = put_time.value();
  auto delivery = r.get_u32();
  if (!delivery) return delivery.status();
  m.delivery_count = static_cast<int>(delivery.value());

  auto prop_count = r.get_u32();
  if (!prop_count) return prop_count.status();
  for (std::uint32_t i = 0; i < prop_count.value(); ++i) {
    auto key = r.get_string();
    if (!key) return key.status();
    auto tag = r.get_u8();
    if (!tag) return tag.status();
    switch (static_cast<PropTag>(tag.value())) {
      case PropTag::kBool: {
        auto v = r.get_bool();
        if (!v) return v.status();
        m.properties[key.value()] = v.value();
        break;
      }
      case PropTag::kInt: {
        auto v = r.get_i64();
        if (!v) return v.status();
        m.properties[key.value()] = v.value();
        break;
      }
      case PropTag::kDouble: {
        auto v = r.get_f64();
        if (!v) return v.status();
        m.properties[key.value()] = v.value();
        break;
      }
      case PropTag::kString: {
        auto v = r.get_string();
        if (!v) return v.status();
        m.properties[key.value()] = std::move(v).value();
        break;
      }
      default:
        return util::make_error(ErrorCode::kIoError, "bad property tag");
    }
  }
  if (auto s = read_str(m.body); !s) return s;
  return m;
}

}  // namespace cmx::mq
