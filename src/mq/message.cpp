#include "mq/message.hpp"

#include <cstring>

#include "obs/registry.hpp"
#include "util/arena.hpp"
#include "util/codec.hpp"

namespace cmx::mq {

namespace {
// v2: properties split into a regular section (before the body) and a
// trailing transit section (after it), so transit-property changes can
// rewrite the frame tail without re-serializing the whole message.
constexpr std::uint32_t kMessageCodecVersion = 2;

// Recycled frames above this byte capacity are shrunk before pooling so a
// burst of jumbo messages cannot park megabytes in the freelists.
constexpr std::size_t kMaxRecycledFrameCapacity = 16 * 1024;

enum class PropTag : std::uint8_t {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

void encode_property(util::BinaryWriter& w, std::string_view key,
                     const PropertyValue& value) {
  w.put_string(key);
  if (const auto* b = std::get_if<bool>(&value)) {
    w.put_u8(static_cast<std::uint8_t>(PropTag::kBool));
    w.put_bool(*b);
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    w.put_u8(static_cast<std::uint8_t>(PropTag::kInt));
    w.put_i64(*i);
  } else if (const auto* d = std::get_if<double>(&value)) {
    w.put_u8(static_cast<std::uint8_t>(PropTag::kDouble));
    w.put_f64(*d);
  } else {
    w.put_u8(static_cast<std::uint8_t>(PropTag::kString));
    w.put_string(std::get<std::string>(value));
  }
}

// Writes the trailing transit section: count + entries whose keys carry the
// CMX_XMIT prefix, in bag (= byte) order.
void append_transit_section(util::BinaryWriter& w, const PropertyBag& props) {
  std::uint32_t count = 0;
  for (const auto& e : props) {
    if (Message::is_transit_key(e.key.view())) ++count;
  }
  w.put_u32(count);
  for (const auto& e : props) {
    if (Message::is_transit_key(e.key.view())) {
      encode_property(w, e.key.view(), e.value);
    }
  }
}
}  // namespace

std::string QueueAddress::to_string() const {
  if (qmgr.empty()) return queue;
  return qmgr + "/" + queue;
}

QueueAddress QueueAddress::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return QueueAddress("", text);
  return QueueAddress(text.substr(0, slash), text.substr(slash + 1));
}

void Message::set_delivery_count(int v) {
  delivery_count_ = v;
  if (frame_ == nullptr) return;
  EncodedFrame* f = writable_frame();
  const auto u = static_cast<std::uint32_t>(v);
  std::memcpy(f->bytes.data() + f->delivery_count_offset, &u, sizeof(u));
  CMX_OBS_COUNT("mq.msg.frame_cache_patches", 1);
}

void Message::set_property(const std::string& key, PropertyValue value) {
  properties_.set(key, std::move(value));
  if (frame_ == nullptr) return;
  if (is_transit_key(key)) {
    rebuild_transit_tail();
  } else {
    invalidate_frame();
  }
}

bool Message::erase_property(std::string_view key) {
  const bool erased = properties_.erase(key);
  if (erased && frame_ != nullptr) {
    if (is_transit_key(key)) {
      rebuild_transit_tail();
    } else {
      invalidate_frame();
    }
  }
  return erased;
}

bool Message::has_property(const std::string& key) const {
  return properties_.contains(key);
}

std::optional<std::string> Message::get_string(const std::string& key) const {
  const PropertyValue* v = properties_.find(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return std::nullopt;
}

std::optional<std::int64_t> Message::get_int(const std::string& key) const {
  const PropertyValue* v = properties_.find(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  return std::nullopt;
}

std::optional<bool> Message::get_bool(const std::string& key) const {
  const PropertyValue* v = properties_.find(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* b = std::get_if<bool>(v)) return *b;
  return std::nullopt;
}

std::optional<double> Message::get_double(const std::string& key) const {
  const PropertyValue* v = properties_.find(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* d = std::get_if<double>(v)) return *d;
  return std::nullopt;
}

std::shared_ptr<Message::EncodedFrame> Message::acquire_frame() {
  if (!util::arena_enabled()) return std::make_shared<EncodedFrame>();
  bool recycled = false;
  EncodedFrame* f = util::ObjectPool<EncodedFrame>::get(&recycled);
  if (recycled) {
    CMX_OBS_COUNT("mq.msg.arena_frame_hits", 1);
  } else {
    CMX_OBS_COUNT("mq.msg.arena_frame_misses", 1);
  }
  // The deleter recycles the frame with its byte capacity intact; the
  // pool allocator recycles the shared_ptr control block. Releases can
  // happen on any thread (consumer, mover, store) — the freelists behind
  // both are thread-safe.
  return std::shared_ptr<EncodedFrame>(
      f,
      [](EncodedFrame* p) {
        p->backing.reset();  // never pin a wire slab in the pool
        p->backing_offset = p->backing_size = 0;
        p->delivery_count_offset = p->transit_offset = 0;
        if (p->bytes.capacity() > kMaxRecycledFrameCapacity) {
          std::string().swap(p->bytes);
        } else {
          p->bytes.clear();
        }
        util::ObjectPool<EncodedFrame>::put(p);
      },
      util::PoolAllocator<EncodedFrame>{});
}

Message::EncodedFrame* Message::writable_frame() {
  // Copies of this message may share the frame; give ourselves a private
  // owned one before patching so their cached bytes stay valid (a
  // borrowed frame is materialized for the same reason: its backing slab
  // is shared with the whole receive batch).
  if (frame_.use_count() > 1 || frame_->borrowed()) {
    auto f = acquire_frame();
    const std::string_view src = frame_->view();
    f->bytes.assign(src.data(), src.size());
    f->delivery_count_offset = frame_->delivery_count_offset;
    f->transit_offset = frame_->transit_offset;
    frame_ = std::move(f);
  }
  return frame_.get();
}

void Message::rebuild_transit_tail() {
  EncodedFrame* f = writable_frame();
  f->bytes.resize(f->transit_offset);
  util::BinaryWriter w(f->bytes);  // appends the new tail in place
  append_transit_section(w, properties_);
  CMX_OBS_COUNT("mq.msg.frame_cache_patches", 1);
}

std::shared_ptr<Message::EncodedFrame> Message::build_frame() const {
  auto f = acquire_frame();
  util::BinaryWriter w(f->bytes);  // recycled capacity, zero realloc
  w.reserve(64 + id_.size() + correlation_id_.size() +
            reply_to_.qmgr.size() + reply_to_.queue.size() + body_.size() +
            properties_.size() * 48);
  w.put_u32(kMessageCodecVersion);
  w.put_string(id_);
  w.put_string(correlation_id_);
  w.put_string(reply_to_.qmgr);
  w.put_string(reply_to_.queue);
  w.put_u8(static_cast<std::uint8_t>(priority_));
  w.put_u8(static_cast<std::uint8_t>(persistence_));
  w.put_i64(expiry_ms_);
  w.put_i64(put_time_ms_);
  f->delivery_count_offset = w.size();
  w.put_u32(static_cast<std::uint32_t>(delivery_count_));

  std::uint32_t regular = 0;
  for (const auto& e : properties_) {
    if (!is_transit_key(e.key.view())) ++regular;
  }
  w.put_u32(regular);
  for (const auto& e : properties_) {
    if (!is_transit_key(e.key.view())) {
      encode_property(w, e.key.view(), e.value);
    }
  }
  w.put_string(body_.view());
  f->transit_offset = w.size();
  append_transit_section(w, properties_);
  CMX_OBS_COUNT("mq.msg.serializations", 1);
  return f;
}

void Message::memoize_frame(std::shared_ptr<EncodedFrame> f) const {
  if (frame_ever_built_) {
    CMX_OBS_COUNT("mq.msg.frame_cache_misses", 1);
  } else {
    CMX_OBS_COUNT("mq.msg.frame_cache_fills", 1);
  }
  frame_ = std::move(f);
  frame_ever_built_ = true;
}

std::shared_ptr<const std::string> Message::encoded_frame() const {
  if (frame_ != nullptr) {
    CMX_OBS_COUNT("mq.msg.frame_cache_hits", 1);
    if (frame_->borrowed()) {
      // The aliasing return needs a std::string holding exactly the
      // frame; swap in a private owned copy (copies of this message
      // keep the borrowed frame — only our handle changes).
      auto f = acquire_frame();
      const std::string_view src = frame_->view();
      f->bytes.assign(src.data(), src.size());
      f->delivery_count_offset = frame_->delivery_count_offset;
      f->transit_offset = frame_->transit_offset;
      frame_ = std::move(f);
    }
    return std::shared_ptr<const std::string>(frame_, &frame_->bytes);
  }
  auto f = build_frame();
  if (!zero_copy_enabled()) {
    // Baseline arm: no memoization, every encode re-serializes.
    return std::shared_ptr<const std::string>(f, &f->bytes);
  }
  memoize_frame(std::move(f));
  return std::shared_ptr<const std::string>(frame_, &frame_->bytes);
}

void Message::append_frame_to(util::BinaryWriter& w) const {
  if (frame_ != nullptr) {
    CMX_OBS_COUNT("mq.msg.frame_cache_hits", 1);
    w.put_string(frame_->view());
    return;
  }
  auto f = build_frame();
  if (!zero_copy_enabled()) {
    w.put_string(f->view());
    return;
  }
  memoize_frame(std::move(f));
  w.put_string(frame_->view());
}

std::string Message::encode() const {
  if (frame_ != nullptr) {
    CMX_OBS_COUNT("mq.msg.frame_cache_hits", 1);
    return std::string(frame_->view());
  }
  auto f = build_frame();
  if (!zero_copy_enabled()) return std::string(f->view());
  memoize_frame(std::move(f));
  return std::string(frame_->view());
}

util::Result<Message> Message::decode_impl(std::string_view data,
                                           DecodeOffsets& offsets) {
  using util::ErrorCode;
  util::BinaryReader r(data);
  auto version = r.get_u32();
  if (!version) return version.status();
  if (version.value() != kMessageCodecVersion) {
    return util::make_error(ErrorCode::kIoError, "unknown message version");
  }
  Message m;
  auto read_str = [&](std::string& out) -> util::Status {
    auto s = r.get_string();
    if (!s) return s.status();
    out = std::move(s).value();
    return util::ok_status();
  };
  if (auto s = read_str(m.id_); !s) return s;
  if (auto s = read_str(m.correlation_id_); !s) return s;
  if (auto s = read_str(m.reply_to_.qmgr); !s) return s;
  if (auto s = read_str(m.reply_to_.queue); !s) return s;
  auto prio = r.get_u8();
  if (!prio) return prio.status();
  m.priority_ = prio.value();
  auto pers = r.get_u8();
  if (!pers) return pers.status();
  m.persistence_ = static_cast<Persistence>(pers.value());
  auto expiry = r.get_i64();
  if (!expiry) return expiry.status();
  m.expiry_ms_ = expiry.value();
  auto put_time = r.get_i64();
  if (!put_time) return put_time.status();
  m.put_time_ms_ = put_time.value();
  offsets.delivery_count = r.position();
  auto delivery = r.get_u32();
  if (!delivery) return delivery.status();
  m.delivery_count_ = static_cast<int>(delivery.value());

  auto read_props = [&](std::uint32_t count) -> util::Status {
    for (std::uint32_t i = 0; i < count; ++i) {
      auto key = r.get_string();
      if (!key) return key.status();
      auto tag = r.get_u8();
      if (!tag) return tag.status();
      switch (static_cast<PropTag>(tag.value())) {
        case PropTag::kBool: {
          auto v = r.get_bool();
          if (!v) return v.status();
          m.properties_.set(key.value(), v.value());
          break;
        }
        case PropTag::kInt: {
          auto v = r.get_i64();
          if (!v) return v.status();
          m.properties_.set(key.value(), v.value());
          break;
        }
        case PropTag::kDouble: {
          auto v = r.get_f64();
          if (!v) return v.status();
          m.properties_.set(key.value(), v.value());
          break;
        }
        case PropTag::kString: {
          auto v = r.get_string();
          if (!v) return v.status();
          m.properties_.set(key.value(), std::move(v).value());
          break;
        }
        default:
          return util::make_error(ErrorCode::kIoError, "bad property tag");
      }
    }
    return util::ok_status();
  };

  auto regular_count = r.get_u32();
  if (!regular_count) return regular_count.status();
  if (auto s = read_props(regular_count.value()); !s) return s;
  auto body = r.get_view();
  if (!body) return body.status();
  // copy_of inlines small bodies in place — no temporary std::string.
  m.body_ = Payload::copy_of(body.value());
  offsets.transit = r.position();
  auto transit_count = r.get_u32();
  if (!transit_count) return transit_count.status();
  if (auto s = read_props(transit_count.value()); !s) return s;
  offsets.clean = r.at_end();
  return m;
}

util::Result<Message> Message::decode(std::string_view data,
                                      bool retain_frame) {
  DecodeOffsets off;
  auto res = decode_impl(data, off);
  if (!res) return res;
  Message m = std::move(res).value();
  if (retain_frame && zero_copy_enabled() && off.clean) {
    // Adopt the wire bytes as the memoized frame: a message crossing a
    // transport hop is decoded AND frame-primed in one pass, so the
    // receiving store append (and any onward hop) is served from the
    // cache instead of re-serializing — encode happens once end-to-end.
    auto f = acquire_frame();
    f->bytes.assign(data.data(), data.size());
    f->delivery_count_offset = off.delivery_count;
    f->transit_offset = off.transit;
    m.frame_ = std::move(f);
    m.frame_ever_built_ = true;
    CMX_OBS_COUNT("mq.msg.frame_adopted", 1);
  }
  return m;
}

util::Result<Message> Message::decode_shared(
    std::shared_ptr<const std::string> backing, std::size_t offset,
    std::size_t len) {
  if (backing == nullptr || offset > backing->size() ||
      len > backing->size() - offset) {
    return util::make_error(util::ErrorCode::kIoError,
                            "frame span outside backing buffer");
  }
  const std::string_view data(backing->data() + offset, len);
  if (len < kFrameAdoptMinBytes) {
    // Small frame inside a (possibly huge) batch slab: copy it out so the
    // message does not pin the slab alive (the frame-pinning fix).
    return decode(data, /*retain_frame=*/true);
  }
  DecodeOffsets off;
  auto res = decode_impl(data, off);
  if (!res) return res;
  Message m = std::move(res).value();
  if (zero_copy_enabled() && off.clean) {
    // Borrow the slab: one backing allocation serves every large frame
    // in the batch, refcounted until the last adopter releases it.
    auto f = acquire_frame();
    f->backing = std::move(backing);
    f->backing_offset = offset;
    f->backing_size = len;
    f->delivery_count_offset = off.delivery_count;
    f->transit_offset = off.transit;
    m.frame_ = std::move(f);
    m.frame_ever_built_ = true;
    CMX_OBS_COUNT("mq.msg.frame_adopted", 1);
  }
  return m;
}

}  // namespace cmx::mq
