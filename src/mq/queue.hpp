// A single message queue: priority-ordered (higher first), FIFO within a
// priority class, with lazy expiry, optional depth limit, selector-filtered
// destructive gets, and restore() support for transacted-session rollback
// (the message reappears at its original position, as MQSeries does).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mq/message.hpp"
#include "mq/selector.hpp"
#include "mq/selector_index.hpp"
#include "util/arena.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::mq {

struct QueueOptions {
  std::size_t max_depth = SIZE_MAX;  // put fails with kFailedPrecondition
  bool system = false;               // DS.* queues; informational marker
  // Poison-message handling (MQSeries "backout" semantics): when a
  // transacted session rolls back a message whose delivery count has
  // already reached this threshold, the message is moved to
  // `backout_queue` instead of being restored, so a message that
  // repeatedly fails processing cannot wedge its consumer forever.
  // 0 disables backout.
  int backout_threshold = 0;
  std::string backout_queue;
};

struct QueueStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t expired = 0;
  std::uint64_t restored = 0;  // rollback re-inserts
};

class Queue {
 public:
  // `on_discard` (may be empty) is invoked — under the queue lock — for
  // every message dropped due to expiry, so the owning queue manager can
  // log the removal of persistent messages.
  Queue(std::string name, QueueOptions options, util::Clock& clock,
        std::function<void(const Message&)> on_discard = {});

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  const std::string& name() const { return name_; }
  const QueueOptions& options() const { return options_; }

  struct GotMessage {
    std::uint64_t seq = 0;  // position token, used by restore()
    Message msg;
  };

  // Enqueues. Fails with kFailedPrecondition when the depth limit is hit,
  // kClosed after close().
  util::Status put(Message msg);

  // Destructive get of the highest-priority matching message. Blocks until
  // a match arrives or `deadline_ms` (absolute clock time) passes; returns
  // kTimeout then, kClosed if the queue is closed while waiting.
  util::Result<GotMessage> get(util::TimeMs deadline_ms,
                               const Selector* selector = nullptr);

  // Non-blocking get.
  std::optional<GotMessage> try_get(const Selector* selector = nullptr);

  // Non-blocking destructive get of up to `max_n` matching messages in
  // delivery order, under ONE lock acquisition — the read-side sibling of
  // the batched put path. Returns fewer (possibly zero) when the queue
  // holds fewer matches, and nothing after close().
  std::vector<GotMessage> try_get_batch(std::size_t max_n,
                                        const Selector* selector = nullptr);

  // Re-inserts a message at its original position (session rollback).
  void restore(std::uint64_t seq, Message msg);

  // Removes a specific message by message id (compensation annihilation).
  std::optional<Message> remove_by_id(const std::string& msg_id);

  bool contains_id(const std::string& msg_id) const;

  // Copies of all live (non-expired) messages, in delivery order. The
  // unbounded form copies the whole queue under the lock — recovery,
  // compaction snapshots and tests legitimately need a full scan, but
  // introspection / dump paths must use the bounded overload so a deep
  // queue cannot stall its manager.
  std::vector<Message> browse() const;

  // Copies at most `max_n` live messages in delivery order.
  std::vector<Message> browse(std::size_t max_n) const;

  // Resumable bounded browse: the cursor position survives between calls,
  // so a deep queue can be walked in chunks without ever holding the
  // queue lock for a full scan (the compaction snapshot path). Entries
  // consumed between chunks are simply not revisited; entries put behind
  // the cursor are missed — the same non-atomic-cut semantics the
  // snapshot already has across queues. A chunk may come back empty while
  // !done when it crossed only expired entries; loop on done, not on
  // emptiness.
  struct BrowseCursor {
    bool done = false;
    bool started = false;  // resume fields below are valid once true
    int inv_priority = 0;
    std::uint64_t seq = 0;
  };
  std::vector<Message> browse_chunk(BrowseCursor& cursor,
                                    std::size_t max_n) const;

  std::size_t depth() const;
  QueueStats stats() const;

  // Counters of the selector-waiter index: how often puts probed it, how
  // many waiters were woken vs. skipped without evaluating their selector
  // (DESIGN.md §12).
  SelectorIndex::Stats selector_waiter_stats() const;

  // Wakes all blocked getters with kClosed and rejects future puts.
  void close();
  bool closed() const;

  // Registers a callback invoked (outside the queue lock) after every
  // successful put/restore. Used by consumers that multiplex a queue with
  // their own timers (e.g. the conditional-messaging evaluation manager).
  void set_put_listener(std::function<void()> listener);

 private:
  // Delivery order key: lower compares first. Priority is inverted so the
  // map iterates highest priority first; seq preserves FIFO arrival order.
  struct OrderKey {
    int inv_priority;
    std::uint64_t seq;
    auto operator<=>(const OrderKey&) const = default;
  };

  // A blocked selector get. Each waiter has its own condition variable so
  // a put can wake exactly the waiters whose selector matches the new
  // message (index-probed once per put) instead of notify_all'ing every
  // selector consumer into a futile rescan. Lives on the waiting thread's
  // stack; registered in waiters_/waiter_index_ under mu_ for the
  // duration of one wait.
  struct SelectorWaiter {
    const Selector* selector = nullptr;
    std::condition_variable cv;
    bool wake = false;
  };

  void drop_expired_locked(util::TimeMs now_ms);
  std::optional<GotMessage> take_first_match_locked(const Selector* selector,
                                                    util::TimeMs now_ms);
  void wake_matching_waiters_locked(const Message& msg);
  util::Result<GotMessage> get_with_waiter_index(
      std::unique_lock<std::mutex>& lk, util::TimeMs deadline_ms,
      const Selector* selector);

  const std::string name_;
  const QueueOptions options_;
  util::Clock& clock_;
  std::function<void(const Message&)> on_discard_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::function<void()> put_listener_;
  // Entry nodes come from the util arena: a put_all/get_batch round over a
  // busy queue recycles its map nodes instead of hitting the heap per
  // message (the freelist is shared across queues, with thread caches).
  using EntryAllocator =
      util::PoolAllocator<std::pair<const OrderKey, Message>>;
  std::map<OrderKey, Message, std::less<OrderKey>, EntryAllocator> entries_;
  std::uint64_t next_seq_ = 1;
  bool closed_ = false;
  QueueStats stats_;

  // Selector-waiter registry (under mu_).
  std::unordered_map<std::uint64_t, SelectorWaiter*> waiters_;
  SelectorIndex waiter_index_;
  std::uint64_t next_waiter_id_ = 1;
  std::vector<std::uint64_t> waiter_match_scratch_;
};

}  // namespace cmx::mq
