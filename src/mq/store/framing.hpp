// Internal framing helpers shared by the store engines (not installed as
// public API): u32-length-prefixed record packing and the group-frame
// layout `u32 blob_len | u32 crc32c(blob) | blob` with
// blob = (u32 rec_len | rec)* that FileStore v2 and SegmentedLogStore
// bodies both use. DESIGN.md §7/§11 document the byte layouts.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "mq/store/backend.hpp"
#include "mq/store/crc.hpp"
#include "util/codec.hpp"

namespace cmx::mq::store_detail {

// Appends one u32-length-prefixed record to `blob`. The length is written
// after the record (whose size is unknown up front) by patching the
// placeholder — BinaryWriter's integer encoding is a native-order memcpy.
inline void append_prefixed_record(std::string& blob, const LogRecord& rec) {
  const std::size_t len_pos = blob.size();
  blob.append(4, '\0');
  util::BinaryWriter w(blob);
  rec.encode_into(w);
  const std::uint32_t len =
      static_cast<std::uint32_t>(blob.size() - len_pos - 4);
  std::memcpy(&blob[len_pos], &len, sizeof(len));
}

// Walks the record boundaries of a trusted length-prefixed blob: calls
// `fn(record_bytes)` for each record. Bounds checks guard against a
// mis-sized truncate only.
template <typename Fn>
void for_each_record(const std::string& blob, Fn&& fn) {
  std::size_t pos = 0;
  while (pos + 4 <= blob.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, blob.data() + pos, sizeof(len));
    pos += 4;
    if (pos + len > blob.size()) break;
    fn(std::string_view(blob.data() + pos, len));
    pos += len;
  }
}

// Appends one inner record frame (u32 length, record bytes) to a blob.
inline void append_inner(std::string& blob, const std::string& rec) {
  util::BinaryWriter header;
  header.put_u32(static_cast<std::uint32_t>(rec.size()));
  blob += header.take();
  blob += rec;
}

// Encodes `rec` straight into `blob` (length prefix back-patched), so the
// group staging paths touch no per-record temporary string.
inline void append_inner_record(std::string& blob, const LogRecord& rec) {
  util::BinaryWriter w(blob);
  const std::size_t len_at = blob.size();
  w.put_u32(0);  // placeholder; patched below
  const std::size_t body_at = blob.size();
  rec.encode_into(w);
  const auto len = static_cast<std::uint32_t>(blob.size() - body_at);
  std::memcpy(blob.data() + len_at, &len, sizeof(len));
}

// Seals a blob of inner frames into one group frame:
// u32 blob length, u32 crc32c(blob), blob. Built on the appender's thread
// so a commit thread has nothing to do but write.
inline std::string seal_frame(std::string_view blob) {
  util::BinaryWriter header;
  header.put_u32(static_cast<std::uint32_t>(blob.size()));
  header.put_u32(crc32c(blob));
  std::string out = header.take();
  out.reserve(out.size() + blob.size());
  out.append(blob);
  return out;
}

// Scans a byte range of sealed group frames, calling `fn(record)` for each
// decoded record. Stops at the first torn or corrupt frame — conservative:
// a CRC-valid frame with a malformed interior means a writer bug, not a
// torn write, and also stops the scan. Returns the byte offset of the
// first frame NOT consumed (== view.size() when the whole range parsed).
template <typename Fn>
std::size_t scan_group_frames(std::string_view view, Fn&& fn) {
  std::size_t pos = 0;
  while (pos + 8 <= view.size()) {
    util::BinaryReader header(view.substr(pos, 8));
    const std::uint32_t len = header.get_u32().value();
    const std::uint32_t crc = header.get_u32().value();
    if (pos + 8 + len > view.size()) break;  // torn tail
    const std::string_view blob = view.substr(pos + 8, len);
    if (crc32c(blob) != crc) break;  // corrupt tail
    std::vector<LogRecord> frame_records;
    std::size_t ip = 0;
    bool frame_ok = true;
    while (ip < blob.size()) {
      if (ip + 4 > blob.size()) {
        frame_ok = false;
        break;
      }
      util::BinaryReader inner(blob.substr(ip, 4));
      const std::uint32_t rec_len = inner.get_u32().value();
      if (ip + 4 + rec_len > blob.size()) {
        frame_ok = false;
        break;
      }
      auto rec = LogRecord::decode(blob.substr(ip + 4, rec_len));
      if (!rec) {
        frame_ok = false;
        break;
      }
      frame_records.push_back(std::move(rec).value());
      ip += 4 + rec_len;
    }
    if (!frame_ok) break;
    for (auto& rec : frame_records) fn(std::move(rec));
    pos += 8 + len;
  }
  return pos;
}

}  // namespace cmx::mq::store_detail
