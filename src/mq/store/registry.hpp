// String-keyed store factory: sessions, examples, benches and tests select
// engines by spec instead of hard-wired constructors (DESIGN.md §11).
//
// Spec grammar:   backend[:path][?key=value[&key=value]...]
//
//   null                          no durability
//   memory                        in-process log
//   file:/var/mq/node.log         flat log, default options
//   file:/var/mq/node.log?sync=every_batch&group_commit=0
//   segmented:/var/mq/node?segment_bytes=1048576&sync=interval
//
// Recognized keys: sync=none|every_batch|interval, sync_interval_ms=<ms>,
// group_commit=0|1 (file only), segment_bytes=<bytes> (segmented only).
// Unknown backends and unknown keys are errors — a typo must not silently
// change the durability of a node.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mq/store/backend.hpp"

namespace cmx::mq {

// A parsed store spec.
struct StoreSpec {
  std::string backend;
  std::string path;  // file path or segment directory; empty if unused
  std::map<std::string, std::string> params;
};

util::Result<StoreSpec> parse_store_spec(std::string_view spec);

class StoreRegistry {
 public:
  using Factory =
      std::function<util::Result<std::unique_ptr<MessageStore>>(
          const StoreSpec&)>;

  // The process-wide registry, pre-loaded with the built-in backends
  // ("null", "memory", "file", "segmented").
  static StoreRegistry& instance();

  // Registers (or replaces) a backend factory.
  void register_backend(const std::string& name, Factory factory);

  std::vector<std::string> backend_names() const;  // sorted

  util::Result<std::unique_ptr<MessageStore>> create(
      const StoreSpec& spec) const;

 private:
  std::map<std::string, Factory> factories_;
};

// Parses `spec` and builds the engine from the process-wide registry.
util::Result<std::unique_ptr<MessageStore>> make_store(std::string_view spec);

}  // namespace cmx::mq
