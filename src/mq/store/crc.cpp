#include "mq/store/crc.hpp"

#include <array>
#include <cstring>

namespace cmx::mq {

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------
// crc32c (Castagnoli). The group frame formats checksum a whole append
// call at once, so this sits on the producer hot path: use the SSE4.2
// crc32 instruction when available, slice-by-8 tables otherwise.
// ---------------------------------------------------------------------

namespace {
using Crc32cTables = std::array<std::array<std::uint32_t, 256>, 8>;

Crc32cTables make_crc32c_tables() {
  Crc32cTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

std::uint32_t crc32c_sw(std::string_view data) {
  static const Crc32cTables t = make_crc32c_tables();
  const auto le32 = [](const char* q) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(q[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(q[1])) << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(q[2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(q[3]))
            << 24);
  };
  std::uint32_t c = 0xFFFFFFFFu;
  const char* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = le32(p) ^ c;
    const std::uint32_t hi = le32(p + 4);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    c = t[0][(c ^ static_cast<unsigned char>(*p++)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::string_view data) {
  std::uint64_t c = 0xFFFFFFFFu;
  const char* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n--) {
    c32 = __builtin_ia32_crc32qi(c32, static_cast<unsigned char>(*p++));
  }
  return c32 ^ 0xFFFFFFFFu;
}
#endif
}  // namespace

std::uint32_t crc32c(std::string_view data) {
#if defined(__x86_64__)
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return crc32c_hw(data);
#endif
  return crc32c_sw(data);
}

}  // namespace cmx::mq
