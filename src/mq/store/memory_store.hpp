// In-memory log engine (registry key "memory").
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "mq/store/backend.hpp"

namespace cmx::mq {

// In-memory log with full replay/rewrite semantics: durability without the
// filesystem. Used to test recovery logic deterministically and to model
// "restart" by constructing a new QueueManager over the same MemoryStore.
class MemoryStore final : public MessageStore {
 public:
  StoreCaps caps() const override {
    StoreCaps caps;
    caps.backend = "memory";
    caps.compaction = CompactionMode::kSnapshotRewrite;
    return caps;
  }
  util::Status append(const LogRecord& record) override;
  util::Status append_batch(const std::vector<LogRecord>& records) override;
  util::Result<std::vector<LogRecord>> replay() override;
  util::Status rewrite(const std::vector<LogRecord>& snapshot) override;
  std::size_t appended_since_compaction() const override;

  // Test hook: drop the last `n` records, emulating a crash that lost a
  // log suffix (e.g. a torn batch).
  void truncate_tail(std::size_t n);

  std::size_t record_count() const;

 private:
  // Slab staging when the arena fast path is on: every record of an
  // append call (tx markers included) is encoded u32-length-prefixed
  // into one blob OUTSIDE the store mutex — a handful of allocations and
  // a short critical section per batch instead of one encode (and its
  // allocation) per record under the lock. Slabs are size-capped so a
  // huge batch stages as several heap-recyclable blobs rather than one
  // mmap-sized one. With the arena off (the A/B baseline) each record is
  // its own single-count chunk, encoded under the lock as the seed's
  // per-record vector did.
  struct Chunk {
    std::string blob;       // (u32 len | record bytes)*
    std::size_t count = 0;  // records in this chunk
  };

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;
  std::size_t total_records_ = 0;
  std::size_t appended_ = 0;
};

}  // namespace cmx::mq
