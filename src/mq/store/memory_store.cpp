#include "mq/store/memory_store.hpp"

#include <algorithm>

#include "mq/store/framing.hpp"
#include "util/arena.hpp"
#include "util/id.hpp"

namespace cmx::mq {

using store_detail::append_prefixed_record;
using store_detail::for_each_record;

util::Status MemoryStore::append(const LogRecord& record) {
  if (util::arena_enabled()) {
    // Slab path: encode outside the mutex so concurrent appenders (the
    // per-get consumption log, the channel mover's batches) serialize
    // only on the vector push, not on each other's serialization work.
    Chunk chunk;
    chunk.blob.reserve(4 + record.encoded_size_hint());
    append_prefixed_record(chunk.blob, record);
    chunk.count = 1;
    std::lock_guard<std::mutex> lk(mu_);
    chunks_.push_back(std::move(chunk));
    ++total_records_;
    ++appended_;
    return util::ok_status();
  }
  std::lock_guard<std::mutex> lk(mu_);
  Chunk chunk;
  append_prefixed_record(chunk.blob, record);
  chunk.count = 1;
  chunks_.push_back(std::move(chunk));
  ++total_records_;
  ++appended_;
  return util::ok_status();
}

util::Status MemoryStore::append_batch(const std::vector<LogRecord>& records) {
  const std::string tx_id = util::generate_id("tx");
  if (util::arena_enabled()) {
    // Slabs for the whole bracketed batch, encoded outside the mutex: a
    // handful of allocations and one short critical section instead of
    // n+2 encodes under the lock. Reserves are sized from the records
    // (exact when frames are memoized) so large-body batches don't
    // realloc-copy the blob per record — and each slab is capped near the
    // allocator's mmap threshold, because one giant blob per huge batch
    // would be a fresh mmap/munmap (page faults on every touch) instead
    // of a recycled heap block.
    constexpr std::size_t kSlabTarget = 96 * 1024;
    const LogRecord begin = LogRecord::tx_begin(tx_id);
    const LogRecord commit = LogRecord::tx_commit(tx_id);
    std::size_t remaining = 2 * (4 + begin.encoded_size_hint());
    for (const auto& rec : records) remaining += 4 + rec.encoded_size_hint();
    std::vector<Chunk> staged;
    Chunk cur;
    auto add = [&](const LogRecord& rec) {
      const std::size_t need = 4 + rec.encoded_size_hint();
      if (cur.count > 0 && cur.blob.size() + need > kSlabTarget) {
        staged.push_back(std::move(cur));
        cur = Chunk{};
      }
      if (cur.count == 0) {
        cur.blob.reserve(std::max(need, std::min(remaining, kSlabTarget)));
      }
      append_prefixed_record(cur.blob, rec);
      ++cur.count;
      remaining -= std::min(remaining, need);
    };
    add(begin);
    for (const auto& rec : records) add(rec);
    add(commit);
    staged.push_back(std::move(cur));
    std::lock_guard<std::mutex> lk(mu_);
    total_records_ += records.size() + 2;
    appended_ += records.size() + 2;
    for (auto& c : staged) chunks_.push_back(std::move(c));
    return util::ok_status();
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto push_one = [this](const LogRecord& rec) {
    Chunk chunk;
    append_prefixed_record(chunk.blob, rec);
    chunk.count = 1;
    chunks_.push_back(std::move(chunk));
    ++total_records_;
  };
  push_one(LogRecord::tx_begin(tx_id));
  for (const auto& rec : records) push_one(rec);
  push_one(LogRecord::tx_commit(tx_id));
  appended_ += records.size() + 2;
  return util::ok_status();
}

util::Result<std::vector<LogRecord>> MemoryStore::replay() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LogRecord> raw;
  raw.reserve(total_records_);
  bool torn = false;
  for (const auto& chunk : chunks_) {
    if (torn) break;
    for_each_record(chunk.blob, [&](std::string_view bytes) {
      if (torn) return;
      auto rec = LogRecord::decode(bytes);
      if (!rec) {
        torn = true;  // torn tail
        return;
      }
      raw.push_back(std::move(rec).value());
    });
  }
  return filter_committed_records(std::move(raw));
}

util::Status MemoryStore::rewrite(const std::vector<LogRecord>& snapshot) {
  if (util::arena_enabled()) {
    std::size_t bytes = 0;
    for (const auto& rec : snapshot) bytes += 4 + rec.encoded_size_hint();
    Chunk chunk;
    chunk.blob.reserve(bytes);
    for (const auto& rec : snapshot) append_prefixed_record(chunk.blob, rec);
    chunk.count = snapshot.size();
    std::lock_guard<std::mutex> lk(mu_);
    chunks_.clear();
    total_records_ = chunk.count;
    if (chunk.count > 0) chunks_.push_back(std::move(chunk));
    appended_ = 0;
    return util::ok_status();
  }
  std::lock_guard<std::mutex> lk(mu_);
  chunks_.clear();
  total_records_ = 0;
  for (const auto& rec : snapshot) {
    Chunk chunk;
    append_prefixed_record(chunk.blob, rec);
    chunk.count = 1;
    chunks_.push_back(std::move(chunk));
    ++total_records_;
  }
  appended_ = 0;
  return util::ok_status();
}

std::size_t MemoryStore::appended_since_compaction() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

void MemoryStore::truncate_tail(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  while (n > 0 && !chunks_.empty()) {
    Chunk& last = chunks_.back();
    if (last.count <= n) {
      n -= last.count;
      total_records_ -= last.count;
      chunks_.pop_back();
      continue;
    }
    // Partial cut inside a slab: keep the first count-n records.
    const std::size_t keep = last.count - n;
    std::size_t pos = 0;
    std::size_t seen = 0;
    for_each_record(last.blob, [&](std::string_view bytes) {
      if (seen < keep) {
        pos = static_cast<std::size_t>(bytes.data() + bytes.size() -
                                       last.blob.data());
        ++seen;
      }
    });
    last.blob.resize(pos);
    last.count = keep;
    total_records_ -= n;
    n = 0;
  }
}

std::size_t MemoryStore::record_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_records_;
}

}  // namespace cmx::mq
