#include "mq/store/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "mq/store/file_store.hpp"
#include "mq/store/memory_store.hpp"
#include "mq/store/segmented_store.hpp"

namespace cmx::mq {

namespace {

util::Status bad_spec(const std::string& what) {
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "store spec: " + what);
}

util::Result<SyncPolicy> parse_sync(const std::string& value) {
  if (value == "none") return SyncPolicy::kNone;
  if (value == "every_batch") return SyncPolicy::kEveryBatch;
  if (value == "interval") return SyncPolicy::kInterval;
  return bad_spec("unknown sync policy '" + value +
                  "' (none|every_batch|interval)");
}

util::Result<std::uint64_t> parse_uint(const std::string& key,
                                       const std::string& value) {
  if (value.empty()) return bad_spec(key + " needs a number");
  std::uint64_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return bad_spec(key + "=" + value + " not a number");
    const auto digit = static_cast<std::uint64_t>(c - '0');
    // Reject rather than silently wrap: an overflowed value would be
    // accepted as an arbitrary (wrapped) number.
    if (n > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return bad_spec(key + "=" + value + " overflows 64 bits");
    }
    n = n * 10 + digit;
  }
  return n;
}

util::Result<bool> parse_bool(const std::string& key,
                              const std::string& value) {
  if (value == "0" || value == "false") return false;
  if (value == "1" || value == "true") return true;
  return bad_spec(key + "=" + value + " not a boolean (0|1|true|false)");
}

// Consumes the keys a backend understands; anything left over is a typo.
util::Status reject_unknown_params(const StoreSpec& spec,
                                   std::initializer_list<const char*> known) {
  for (const auto& [key, value] : spec.params) {
    if (std::none_of(known.begin(), known.end(),
                     [&](const char* k) { return key == k; })) {
      return bad_spec("backend '" + spec.backend + "' does not understand '" +
                      key + "'");
    }
  }
  return util::ok_status();
}

util::Result<std::unique_ptr<MessageStore>> make_null(const StoreSpec& spec) {
  if (auto s = reject_unknown_params(spec, {}); !s) return s;
  return std::unique_ptr<MessageStore>(std::make_unique<NullStore>());
}

util::Result<std::unique_ptr<MessageStore>> make_memory(
    const StoreSpec& spec) {
  if (auto s = reject_unknown_params(spec, {}); !s) return s;
  return std::unique_ptr<MessageStore>(std::make_unique<MemoryStore>());
}

util::Result<std::unique_ptr<MessageStore>> make_file(const StoreSpec& spec) {
  if (spec.path.empty()) return bad_spec("file backend needs a path");
  if (auto s = reject_unknown_params(
          spec, {"sync", "sync_interval_ms", "group_commit"});
      !s) {
    return s;
  }
  FileStoreOptions options;
  if (auto it = spec.params.find("sync"); it != spec.params.end()) {
    auto sync = parse_sync(it->second);
    if (!sync) return sync.status();
    options.sync = sync.value();
  }
  if (auto it = spec.params.find("sync_interval_ms");
      it != spec.params.end()) {
    auto ms = parse_uint("sync_interval_ms", it->second);
    if (!ms) return ms.status();
    options.sync_interval_ms = static_cast<util::TimeMs>(ms.value());
  }
  if (auto it = spec.params.find("group_commit"); it != spec.params.end()) {
    auto gc = parse_bool("group_commit", it->second);
    if (!gc) return gc.status();
    options.group_commit = gc.value();
  }
  return std::unique_ptr<MessageStore>(
      std::make_unique<FileStore>(spec.path, options));
}

util::Result<std::unique_ptr<MessageStore>> make_segmented(
    const StoreSpec& spec) {
  if (spec.path.empty()) return bad_spec("segmented backend needs a directory");
  if (auto s = reject_unknown_params(
          spec, {"sync", "sync_interval_ms", "segment_bytes"});
      !s) {
    return s;
  }
  SegmentedStoreOptions options;
  if (auto it = spec.params.find("sync"); it != spec.params.end()) {
    auto sync = parse_sync(it->second);
    if (!sync) return sync.status();
    options.sync = sync.value();
  }
  if (auto it = spec.params.find("sync_interval_ms");
      it != spec.params.end()) {
    auto ms = parse_uint("sync_interval_ms", it->second);
    if (!ms) return ms.status();
    options.sync_interval_ms = static_cast<util::TimeMs>(ms.value());
  }
  if (auto it = spec.params.find("segment_bytes"); it != spec.params.end()) {
    auto bytes = parse_uint("segment_bytes", it->second);
    if (!bytes) return bytes.status();
    if (bytes.value() < 64) return bad_spec("segment_bytes too small");
    options.segment_bytes = static_cast<std::size_t>(bytes.value());
  }
  auto store = SegmentedLogStore::open(spec.path, options);
  if (!store) return store.status();
  return std::unique_ptr<MessageStore>(std::move(store).value());
}

}  // namespace

util::Result<StoreSpec> parse_store_spec(std::string_view spec) {
  StoreSpec out;
  std::string_view rest = spec;
  const std::size_t query_at = rest.find('?');
  std::string_view query;
  if (query_at != std::string_view::npos) {
    query = rest.substr(query_at + 1);
    rest = rest.substr(0, query_at);
  }
  const std::size_t colon_at = rest.find(':');
  if (colon_at == std::string_view::npos) {
    out.backend = std::string(rest);
  } else {
    out.backend = std::string(rest.substr(0, colon_at));
    out.path = std::string(rest.substr(colon_at + 1));
  }
  if (out.backend.empty()) return bad_spec("empty backend name");
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return bad_spec("parameter '" + std::string(pair) + "' needs a value");
    }
    out.params[std::string(pair.substr(0, eq))] =
        std::string(pair.substr(eq + 1));
  }
  return out;
}

StoreRegistry& StoreRegistry::instance() {
  static StoreRegistry* registry = [] {
    auto* r = new StoreRegistry();
    r->register_backend("null", make_null);
    r->register_backend("memory", make_memory);
    r->register_backend("file", make_file);
    r->register_backend("segmented", make_segmented);
    return r;
  }();
  return *registry;
}

void StoreRegistry::register_backend(const std::string& name,
                                     Factory factory) {
  factories_[name] = std::move(factory);
}

std::vector<std::string> StoreRegistry::backend_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

util::Result<std::unique_ptr<MessageStore>> StoreRegistry::create(
    const StoreSpec& spec) const {
  auto it = factories_.find(spec.backend);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& name : backend_names()) {
      if (!known.empty()) known += "|";
      known += name;
    }
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "unknown store backend '" + spec.backend +
                                "' (" + known + ")");
  }
  return it->second(spec);
}

util::Result<std::unique_ptr<MessageStore>> make_store(
    std::string_view spec) {
  auto parsed = parse_store_spec(spec);
  if (!parsed) return parsed.status();
  return StoreRegistry::instance().create(parsed.value());
}

}  // namespace cmx::mq
