// Checksums used by the durable log formats (DESIGN.md §7/§11).
#pragma once

#include <cstdint>
#include <string_view>

namespace cmx::mq {

// Computes the CRC32 (IEEE polynomial) of a byte range. Used by the legacy
// per-record frame format.
std::uint32_t crc32(std::string_view data);

// Computes the CRC32C (Castagnoli polynomial) of a byte range, using the
// SSE4.2 crc32 instruction when the CPU has it and a slice-by-8 table
// otherwise. Used by the group frame format (FileStore v2 outer frames,
// SegmentedLogStore segment headers and frames): one checksum per append
// call instead of per record.
std::uint32_t crc32c(std::string_view data);

}  // namespace cmx::mq
