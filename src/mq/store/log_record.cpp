#include "mq/store/backend.hpp"
#include "util/codec.hpp"

namespace cmx::mq {

// ---------------------------------------------------------------------
// LogRecord
// ---------------------------------------------------------------------

LogRecord LogRecord::queue_create(std::string queue_name) {
  LogRecord r;
  r.type = Type::kQueueCreate;
  r.queue = std::move(queue_name);
  return r;
}
LogRecord LogRecord::queue_delete(std::string queue_name) {
  LogRecord r;
  r.type = Type::kQueueDelete;
  r.queue = std::move(queue_name);
  return r;
}
LogRecord LogRecord::put(std::string queue_name, Message msg) {
  LogRecord r;
  r.type = Type::kPut;
  r.queue = std::move(queue_name);
  r.message = std::move(msg);
  return r;
}
LogRecord LogRecord::get(std::string queue_name, std::string message_id) {
  LogRecord r;
  r.type = Type::kGet;
  r.queue = std::move(queue_name);
  r.msg_id = std::move(message_id);
  return r;
}
LogRecord LogRecord::put_ref(const std::string& queue_name,
                             const Message& msg) {
  LogRecord r;
  r.type = Type::kPut;
  r.queue_ref = queue_name;
  r.message_ref = &msg;
  return r;
}
LogRecord LogRecord::get_ref(const std::string& queue_name,
                             std::string_view message_id) {
  LogRecord r;
  r.type = Type::kGet;
  r.queue_ref = queue_name;
  r.msg_id_ref = message_id;
  return r;
}
LogRecord LogRecord::tx_begin(std::string id) {
  LogRecord r;
  r.type = Type::kTxBegin;
  r.tx_id = std::move(id);
  return r;
}
LogRecord LogRecord::tx_commit(std::string id) {
  LogRecord r;
  r.type = Type::kTxCommit;
  r.tx_id = std::move(id);
  return r;
}

std::string LogRecord::encode() const {
  util::BinaryWriter w;
  encode_into(w);
  return w.take();
}

void LogRecord::encode_into(util::BinaryWriter& w) const {
  const std::string_view q = queue_name();
  const std::string_view id = message_id();
  w.reserve(17 + q.size() + id.size() + tx_id.size());
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_string(q);
  w.put_string(id);
  w.put_string(tx_id);
  if (type == Type::kPut) {
    // Serves the frame from the memo (borrowed frames included) without
    // materializing an intermediate string per record.
    msg().append_frame_to(w);
  } else {
    w.put_string("");
  }
}

util::Result<LogRecord> LogRecord::decode(std::string_view data) {
  util::BinaryReader r(data);
  auto type = r.get_u8();
  if (!type) return type.status();
  LogRecord rec;
  rec.type = static_cast<Type>(type.value());
  auto queue = r.get_string();
  if (!queue) return queue.status();
  rec.queue = std::move(queue).value();
  auto msg_id = r.get_string();
  if (!msg_id) return msg_id.status();
  rec.msg_id = std::move(msg_id).value();
  auto tx_id = r.get_string();
  if (!tx_id) return tx_id.status();
  rec.tx_id = std::move(tx_id).value();
  auto msg_bytes = r.get_string();
  if (!msg_bytes) return msg_bytes.status();
  if (rec.type == Type::kPut) {
    auto msg = Message::decode(msg_bytes.value());
    if (!msg) return msg.status();
    rec.message = std::move(msg).value();
  }
  return rec;
}

// ---------------------------------------------------------------------
// MessageStore defaults
// ---------------------------------------------------------------------

util::Result<std::vector<LogRecord>> MessageStore::replay_chunk(
    ReplayCursor& cursor) {
  cursor.done = true;
  return replay();
}

util::Status MessageStore::rewrite(const std::vector<LogRecord>&) {
  return util::make_error(
      util::ErrorCode::kFailedPrecondition,
      std::string(caps().backend) + " store does not take snapshot rewrites");
}

util::Status MessageStore::compact_self() {
  return util::make_error(
      util::ErrorCode::kFailedPrecondition,
      std::string(caps().backend) + " store is not self-compacting");
}

// ---------------------------------------------------------------------
// CommitFilter
// ---------------------------------------------------------------------

void CommitFilter::push(LogRecord record, std::vector<LogRecord>& out) {
  if (record.type == LogRecord::Type::kTxBegin) {
    stack_.push_back({std::move(record.tx_id), {}});
    return;
  }
  if (record.type == LogRecord::Type::kTxCommit) {
    if (stack_.empty() || stack_.back().id != record.tx_id) {
      // A commit without its matching begin: the log lost the batch
      // structure (e.g. a half-appended batch followed by new records).
      // Discard everything still open.
      stack_.clear();
      return;
    }
    OpenBatch committed = std::move(stack_.back());
    stack_.pop_back();
    auto& dest = stack_.empty() ? out : stack_.back().records;
    for (auto& b : committed.records) dest.push_back(std::move(b));
    return;
  }
  auto& dest = stack_.empty() ? out : stack_.back().records;
  dest.push_back(std::move(record));
}

std::vector<LogRecord> filter_committed_records(std::vector<LogRecord> raw) {
  CommitFilter filter;
  std::vector<LogRecord> out;
  out.reserve(raw.size());
  for (auto& rec : raw) filter.push(std::move(rec), out);
  filter.finish();
  return out;
}

}  // namespace cmx::mq
