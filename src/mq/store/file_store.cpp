#include "mq/store/file_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "mq/store/crc.hpp"
#include "mq/store/framing.hpp"
#include "obs/registry.hpp"
#include "util/codec.hpp"
#include "util/id.hpp"

namespace cmx::mq {

namespace {
// One legacy on-disk frame: u32 length, u32 crc32(payload), payload.
std::string frame(const std::string& payload) {
  util::BinaryWriter header;
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  header.put_u32(crc32(payload));
  return header.take() + payload;
}

// The group-commit (v2) log starts with this magic; replay uses it to tell
// the two formats apart.
constexpr char kMagic[8] = {'C', 'M', 'X', 'L', 'O', 'G', '2', '\n'};
constexpr std::size_t kMagicSize = sizeof(kMagic);

// Backpressure bound for write-behind (kNone) staging: an appender that
// finds this many bytes already staged waits for the commit thread to
// catch up instead of growing the buffer without limit.
constexpr std::size_t kMaxStagedBytes = 4u << 20;

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

using store_detail::append_inner;
using store_detail::append_inner_record;
using store_detail::scan_group_frames;
using store_detail::seal_frame;

FileStore::FileStore(std::string path, FileStoreOptions options)
    : path_(std::move(path)), options_(options) {
  open_for_append().expect_ok("FileStore open");
  last_sync_us_ = steady_us();
  if (options_.group_commit) {
    if (::lseek(fd_, 0, SEEK_END) == 0) {
      write_all(kMagic, kMagicSize).expect_ok("FileStore magic");
    }
    open_group_ = std::make_shared<Group>();
    commit_thread_ = std::thread([this] { commit_loop(); });
  }
}

FileStore::~FileStore() {
  if (options_.group_commit) {
    {
      std::lock_guard<std::mutex> lk(staging_mu_);
      stop_ = true;
    }
    // The commit thread drains every staged group before exiting, so a
    // clean shutdown persists all acknowledged write-behind records.
    staging_cv_.notify_all();
    done_cv_.notify_all();
    commit_thread_.join();
  }
  std::lock_guard<std::mutex> lk(io_mu_);
  if (fd_ >= 0) {
    // kInterval may owe a sync for the tail of the log; a clean shutdown
    // must not be less durable than the policy promises.
    if (options_.sync != SyncPolicy::kNone) ::fsync(fd_);
    ::close(fd_);
  }
}

util::Status FileStore::open_for_append() {
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + path_ + ": " + std::strerror(errno));
  }
  return util::ok_status();
}

util::Status FileStore::write_all(const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd_, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::make_error(util::ErrorCode::kIoError,
                              "write " + path_ + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return util::ok_status();
}

bool FileStore::sync_due_locked() {
  const std::uint64_t now = steady_us();
  const std::uint64_t interval_us =
      static_cast<std::uint64_t>(options_.sync_interval_ms) * 1000u;
  if (now - last_sync_us_ < interval_us) return false;
  last_sync_us_ = now;
  return true;
}

// Group-commit path: stages one sealed v2 frame for the commit thread.
// Under kNone (write-behind) the append is acknowledged as soon as the
// frame is staged — the only wait is backpressure when the staging buffer
// is full, and a previous background write failure surfaces here via the
// sticky status. Under kEveryBatch/kInterval the appender blocks on its
// group's commit ticket, so the acknowledgment follows the write (and,
// for kEveryBatch, the fsync).
util::Status FileStore::append_frame(std::string frame_bytes,
                                     std::size_t records) {
  const bool wait_for_commit = options_.sync != SyncPolicy::kNone;
  std::shared_ptr<Group> group;
  bool was_empty = false;
  {
    std::unique_lock<std::mutex> lk(staging_mu_);
    done_cv_.wait(lk, [&] {
      return stop_ || open_group_->bytes.size() < kMaxStagedBytes;
    });
    if (stop_) {
      return util::make_error(util::ErrorCode::kClosed,
                              "store " + path_ + " is shutting down");
    }
    if (!sticky_) return sticky_;
    group = open_group_;
    was_empty = group->bytes.empty();
    group->bytes += frame_bytes;
    group->records += records;
  }
  // The commit thread only sleeps on an empty open group, so only the
  // empty -> non-empty transition needs a wake.
  if (was_empty) staging_cv_.notify_one();
  if (!wait_for_commit) return util::ok_status();
  std::unique_lock<std::mutex> lk(staging_mu_);
  done_cv_.wait(lk, [&] { return group->done; });
  return group->status;
}

// Legacy per-record path (group_commit=false), kept bit-faithful to the
// pre-group-commit implementation as the A/B baseline for
// bench_store_commit: encode, frame and write happen on the caller's
// thread under the io mutex, one ::write per record.
util::Status FileStore::append_legacy(const LogRecord* const* records,
                                      std::size_t n) {
  std::lock_guard<std::mutex> lk(io_mu_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string bytes = frame(records[i]->encode());
    if (auto s = write_all(bytes.data(), bytes.size()); !s) return s;
  }
  if (options_.sync == SyncPolicy::kEveryBatch ||
      (options_.sync == SyncPolicy::kInterval && sync_due_locked())) {
    if (auto s = sync_fd_locked(); !s) return s;
  }
  appended_.fetch_add(n, std::memory_order_relaxed);
  CMX_OBS_COUNT("store.appends", n);
  return util::ok_status();
}

// fsync with its result checked: under kEveryBatch an acknowledged append
// promises stable storage, so a failed sync must surface as an IO error —
// on Linux the dirty pages may already be dropped after the failure.
util::Status FileStore::sync_fd_locked() {
  if (::fsync(fd_) != 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "fsync " + path_ + ": " + std::strerror(errno));
  }
  CMX_OBS_COUNT("store.fsyncs", 1);
  return util::ok_status();
}

// The commit thread: swaps out the open group and writes all of its frames
// with one ::write. A crash mid-write tears at most a suffix of frames —
// each appender's call is a self-contained checksummed frame, so replay
// keeps every fully-written call and drops torn ones whole.
void FileStore::commit_loop() {
  std::unique_lock<std::mutex> lk(staging_mu_);
  while (true) {
    staging_cv_.wait(lk, [&] { return stop_ || !open_group_->bytes.empty(); });
    if (open_group_->bytes.empty()) break;  // stop_ and fully drained
    std::shared_ptr<Group> group = std::move(open_group_);
    open_group_ = std::make_shared<Group>();
    commit_inflight_ = true;
    lk.unlock();

    util::Status status = util::ok_status();
    {
      std::lock_guard<std::mutex> io(io_mu_);
      status = write_all(group->bytes.data(), group->bytes.size());
      if (status && (options_.sync == SyncPolicy::kEveryBatch ||
                     (options_.sync == SyncPolicy::kInterval &&
                      sync_due_locked()))) {
        status = sync_fd_locked();
      }
    }
    if (status) {
      appended_.fetch_add(group->records, std::memory_order_relaxed);
      CMX_OBS_COUNT("store.appends", group->records);
      CMX_OBS_COUNT("store.group_commits", 1);
      CMX_OBS_RECORD("store.group_records", group->records);
    }

    lk.lock();
    commit_inflight_ = false;
    group->done = true;
    group->status = status;
    if (!status && sticky_) sticky_ = status;
    done_cv_.notify_all();
  }
}

void FileStore::drain_staging() {
  if (!options_.group_commit) return;
  std::unique_lock<std::mutex> lk(staging_mu_);
  staging_cv_.notify_one();
  done_cv_.wait(lk, [&] {
    return open_group_->bytes.empty() && !commit_inflight_;
  });
}

util::Status FileStore::append(const LogRecord& record) {
  const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
  util::Status s;
  if (options_.group_commit) {
    // Encoding and checksumming happen here, on the appender's thread —
    // the commit thread only writes.
    std::string blob;
    append_inner_record(blob, record);
    s = append_frame(seal_frame(blob), 1);
  } else {
    const LogRecord* r = &record;
    s = append_legacy(&r, 1);
  }
  if (s && obs::enabled()) {
    // With group commit this includes the wait for the commit thread —
    // i.e. the latency an appender actually observes.
    CMX_OBS_RECORD("store.append_us", obs::now_us() - t0);
  }
  return s;
}

util::Status FileStore::append_batch(const std::vector<LogRecord>& records) {
  const LogRecord begin = LogRecord::tx_begin(util::generate_id("tx"));
  const LogRecord commit = LogRecord::tx_commit(begin.tx_id);
  if (!options_.group_commit) {
    std::vector<const LogRecord*> ptrs;
    ptrs.reserve(records.size() + 2);
    ptrs.push_back(&begin);
    for (const auto& rec : records) ptrs.push_back(&rec);
    ptrs.push_back(&commit);
    return append_legacy(ptrs.data(), ptrs.size());
  }
  // The whole batch — markers included, for parity with MemoryStore and
  // the shared replay filter — is one outer frame, so a torn batch drops
  // as a unit at the frame level too. Size the blob up front so staging a
  // batch of large bodies doesn't realloc-copy per record.
  std::size_t bytes = 2 * (4 + begin.encoded_size_hint());
  for (const auto& rec : records) bytes += 4 + rec.encoded_size_hint();
  std::string blob;
  blob.reserve(bytes);
  append_inner_record(blob, begin);
  for (const auto& rec : records) {
    append_inner_record(blob, rec);
  }
  append_inner_record(blob, commit);
  return append_frame(seal_frame(blob), records.size() + 2);
}

util::Result<std::vector<LogRecord>> FileStore::replay() {
  // Replay must observe every acknowledged record, including write-behind
  // ones still in the staging buffer.
  drain_staging();
  std::lock_guard<std::mutex> lk(io_mu_);
  const int rfd = ::open(path_.c_str(), O_RDONLY);
  if (rfd < 0) {
    if (errno == ENOENT) return std::vector<LogRecord>{};
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + path_ + ": " + std::strerror(errno));
  }
  std::string content;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(rfd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(rfd);
      return util::make_error(util::ErrorCode::kIoError,
                              "read " + path_ + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  ::close(rfd);

  std::vector<LogRecord> raw;
  const std::string_view view(content);
  if (view.size() >= kMagicSize &&
      std::memcmp(view.data(), kMagic, kMagicSize) == 0) {
    // v2 (group-commit) format: a sequence of outer frames, each holding
    // the inner-framed records of one append call. A torn or corrupt
    // outer frame ends replay — nothing after it was acknowledged before
    // anything in it.
    scan_group_frames(view.substr(kMagicSize),
                      [&](LogRecord rec) { raw.push_back(std::move(rec)); });
  } else {
    // Legacy format: one frame per record.
    std::size_t pos = 0;
    while (pos + 8 <= view.size()) {
      util::BinaryReader header(view.substr(pos, 8));
      const std::uint32_t len = header.get_u32().value();
      const std::uint32_t crc = header.get_u32().value();
      if (pos + 8 + len > view.size()) break;  // torn tail
      const std::string_view payload = view.substr(pos + 8, len);
      if (crc32(payload) != crc) break;  // corrupt tail
      auto rec = LogRecord::decode(payload);
      if (!rec) break;
      raw.push_back(std::move(rec).value());
      pos += 8 + len;
    }
  }
  return filter_committed_records(std::move(raw));
}

util::Status FileStore::rewrite(const std::vector<LogRecord>& snapshot) {
  // Flush barrier: every record acknowledged before this call must reach
  // the old log before the snapshot replaces it — a write-behind record
  // held in staging across the rename would otherwise land in the NEW log
  // and duplicate the snapshot's state. Groups staged after the drain
  // commit to the new log (their appenders were acknowledged after the
  // snapshot was taken, so they are legitimately on top of it).
  drain_staging();
  // Holding io_mu_ across the whole rewrite blocks the commit thread, so
  // no group can be written to the old fd after the rename.
  std::lock_guard<std::mutex> lk(io_mu_);
  const std::string tmp = path_ + ".compact";
  const int tfd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (tfd < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + tmp + ": " + std::strerror(errno));
  }
  const int old_fd = fd_;
  fd_ = tfd;
  util::Status status = util::ok_status();
  if (options_.group_commit) {
    // v2 snapshot: magic plus one outer frame holding every record.
    status = write_all(kMagic, kMagicSize);
    if (status && !snapshot.empty()) {
      std::string blob;
      for (const auto& rec : snapshot) {
        append_inner(blob, rec.encode());
      }
      const std::string bytes = seal_frame(blob);
      status = write_all(bytes.data(), bytes.size());
    }
  } else {
    for (const auto& rec : snapshot) {
      const std::string bytes = frame(rec.encode());
      status = write_all(bytes.data(), bytes.size());
      if (!status) break;
    }
  }
  if (status) {
    if (::fsync(tfd) != 0) {
      status = util::make_error(util::ErrorCode::kIoError,
                                "fsync " + tmp + ": " + std::strerror(errno));
    }
  }
  if (status) {
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      status = util::make_error(util::ErrorCode::kIoError,
                                "rename: " + std::string(std::strerror(errno)));
    }
  }
  if (!status) {
    // Keep writing to the original log; discard the partial compaction.
    fd_ = old_fd;
    ::close(tfd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(old_fd);
  // fd_ (== tfd) now refers to the renamed file; keep appending to it.
  appended_.store(0, std::memory_order_relaxed);
  return util::ok_status();
}

std::size_t FileStore::appended_since_compaction() const {
  return appended_.load(std::memory_order_relaxed);
}

}  // namespace cmx::mq
