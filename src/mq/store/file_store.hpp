// Flat-log file engine (registry key "file").
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mq/store/backend.hpp"

namespace cmx::mq {

struct FileStoreOptions {
  SyncPolicy sync = SyncPolicy::kNone;
  util::TimeMs sync_interval_ms = 50;  // kInterval only
  // Group commit: producers stage encoded records and block on a commit
  // ticket; a dedicated commit thread coalesces all pending records into
  // one write (+ at most one fsync) and releases every waiter at once.
  // false = the legacy path: one ::write per record on the caller's
  // thread, serialized by the io mutex (kept for A/B benchmarking).
  bool group_commit = true;
};

// File-backed log.
//
// Group-commit format (group_commit=true): the file starts with an 8-byte
// magic; each append()/append_batch() call contributes ONE frame
//   u32 blob_len | u32 crc32c(blob) | blob,   blob = (u32 rec_len | rec)*
// so a call — in particular a whole tx-marked batch — is torn or kept as a
// unit, and the checksum is computed once per call (hardware CRC32C where
// available) instead of once per record. The commit thread coalesces all
// staged frames into one ::write. Replay stops at the first truncated or
// corrupt frame.
//
// Legacy format (group_commit=false): the pre-group-commit layout, one
// frame `u32 len | u32 crc32(payload) | payload` per record, no magic,
// written synchronously on the appender's thread under the io mutex. Kept
// as the A/B baseline for bench_store_commit. replay() detects the format
// by the magic, but a single file must not mix the two (do not reopen a
// log with the other mode).
class FileStore final : public MessageStore {
 public:
  explicit FileStore(std::string path, FileStoreOptions options = {});
  ~FileStore() override;

  StoreCaps caps() const override {
    StoreCaps caps;
    caps.backend = "file";
    caps.durable = true;
    caps.supports_group_commit = options_.group_commit;
    caps.compaction = CompactionMode::kSnapshotRewrite;
    caps.sync = options_.sync;
    return caps;
  }
  util::Status append(const LogRecord& record) override;
  util::Status append_batch(const std::vector<LogRecord>& records) override;
  util::Result<std::vector<LogRecord>> replay() override;
  util::Status rewrite(const std::vector<LogRecord>& snapshot) override;
  std::size_t appended_since_compaction() const override;

  const std::string& path() const { return path_; }
  const FileStoreOptions& options() const { return options_; }

 private:
  // A commit group: the frames staged by every appender that arrived while
  // the previous group was being written. kEveryBatch/kInterval appenders
  // block until `done`; kNone appenders are acknowledged at staging time.
  struct Group {
    std::string bytes;        // concatenated per-appender frames
    std::size_t records = 0;  // logical record count (for compaction)
    bool done = false;
    util::Status status = util::ok_status();
  };

  util::Status append_frame(std::string frame_bytes, std::size_t records);
  util::Status append_legacy(const LogRecord* const* records, std::size_t n);
  util::Status write_all(const char* data, std::size_t size);
  util::Status sync_fd_locked();
  util::Status open_for_append();
  void commit_loop();
  // Blocks until everything staged so far has reached the file, so that
  // replay()/rewrite()/~FileStore observe every acknowledged record.
  void drain_staging();
  bool sync_due_locked();

  const std::string path_;
  const FileStoreOptions options_;

  // Lock hierarchy (see DESIGN.md §7): staging_mu_ and io_mu_ are leaves of
  // the system-wide order and are never held together by producers; the
  // commit thread takes staging_mu_, releases it, then takes io_mu_.
  std::mutex staging_mu_;  // guards open_group_, stop_, sticky_, done flags
  std::condition_variable staging_cv_;  // wakes the commit thread
  std::condition_variable done_cv_;     // wakes appenders / drainers
  std::shared_ptr<Group> open_group_;
  bool commit_inflight_ = false;  // commit thread is writing a group
  bool stop_ = false;
  // First write failure under write-behind: later appends report it
  // instead of acknowledging records that can no longer be persisted.
  util::Status sticky_ = util::ok_status();

  mutable std::mutex io_mu_;  // guards fd_ and all file operations
  int fd_ = -1;
  std::atomic<std::size_t> appended_{0};
  std::uint64_t last_sync_us_ = 0;  // commit thread / io_mu_ only

  std::thread commit_thread_;  // unstarted when !options_.group_commit
};

}  // namespace cmx::mq
