// Segmented-log engine (registry key "segmented").
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mq/store/backend.hpp"

namespace cmx::mq {

struct SegmentedStoreOptions {
  SyncPolicy sync = SyncPolicy::kNone;
  util::TimeMs sync_interval_ms = 50;  // kInterval only
  // Roll to a new segment once the active one reaches this many bytes.
  // A single frame larger than the limit still fits (alone) in a segment.
  std::size_t segment_bytes = 4u << 20;
};

// Log-structured store over a DIRECTORY of fixed-size segment files
// (`seg-NNNNNNNN.seg`), the scale-oriented alternative to FileStore's one
// flat log. Differences that matter at size (DESIGN.md §11):
//
//  - Bounded recovery I/O: replay streams segment-by-segment through
//    replay_chunk() (caps().supports_chunked_replay) instead of slurping
//    one unbounded file.
//  - Compaction without a flat rewrite (CompactionMode::kSelfCompacting):
//    a fully dead sealed segment is unlinked whole; a partially dead one is
//    squashed IN PLACE (live records rewritten to `<seg>.compact`, fsynced,
//    renamed over the original), which preserves global record order — no
//    snapshot of every queue, no copy-forward reordering, and compaction
//    cost is proportional to dead data, not total data.
//
// On-disk format: every segment starts with a 24-byte CRC'd header
//   char[8] magic "CMXSEG1\n" | u64 segment index | u32 reserved |
//   u32 crc32c(previous 20 bytes)
// followed by group frames identical to FileStore v2 bodies:
//   u32 blob_len | u32 crc32c(blob) | blob,  blob = (u32 rec_len | rec)*.
// Each append()/append_batch() call is ONE frame, wholly inside one
// segment, so a torn call drops as a unit (§7 torn-group tolerance).
//
// Durability: writes are synchronous on the appender's thread under the io
// mutex (no commit thread — caps().supports_group_commit is false).
// SyncPolicy::kEveryBatch fsyncs before acknowledging; kInterval fsyncs at
// most once per interval, plus when sealing a segment and at shutdown;
// kNone leaves the page cache to the OS. The first write failure is sticky:
// later appends report it instead of acknowledging unpersistable records.
//
// Recovery is conservative: opening the store rebuilds the in-memory live
// index by scanning segments in index order and STOPS at the first
// corruption (bad header, bad frame CRC, torn frame) — the rest of that
// segment and every later segment are ignored, so a recovered node never
// trusts records that were acknowledged after lost ones. New appends
// always go to a fresh segment (never a reopened one).
//
// Compaction retains load-bearing gets: a get whose consumed put lives in
// a PINNED segment (one that is never squashed, see Segment::boundary_clean)
// must itself survive squash/retirement — dropping it would let the put
// replay as live after a restart, redelivering an acknowledged message.
// Each segment tracks such cross-segment gets (Segment::ext_gets) and only
// sheds one once the put's bytes are provably gone from disk.
class SegmentedLogStore final : public MessageStore {
 public:
  // Opens (creating if needed) the segment directory and rebuilds the live
  // index. I/O failures — unwritable dir, path is a file, unreadable
  // segment — come back as kIoError instead of aborting, so registry specs
  // with a bad path fail cleanly.
  static util::Result<std::unique_ptr<SegmentedLogStore>> open(
      std::string dir, SegmentedStoreOptions options = {});
  ~SegmentedLogStore() override;

  StoreCaps caps() const override {
    StoreCaps caps;
    caps.backend = "segmented";
    caps.durable = true;
    caps.supports_chunked_replay = true;
    caps.compaction = CompactionMode::kSelfCompacting;
    caps.sync = options_.sync;
    return caps;
  }
  util::Status append(const LogRecord& record) override;
  util::Status append_batch(const std::vector<LogRecord>& records) override;
  util::Result<std::vector<LogRecord>> replay() override;
  util::Result<std::vector<LogRecord>> replay_chunk(
      ReplayCursor& cursor) override;
  util::Status compact_self() override;
  std::size_t appended_since_compaction() const override;

  const std::string& dir() const { return dir_; }
  const SegmentedStoreOptions& options() const { return options_; }

  // Introspection for tests and tooling.
  std::size_t segment_count() const;
  std::vector<std::string> segment_files() const;  // sorted by index
  std::size_t live_put_count() const;

 private:
  // A committed get whose consumed put lives in ANOTHER segment. While the
  // put's bytes may still be on disk (its home segment is pinned), this get
  // is load-bearing: squash re-emits it and retirement is refused.
  struct ExtGet {
    std::uint64_t target_seg = 0;  // segment holding the consumed put
    std::string queue;
    std::string id;
  };
  struct Segment {
    std::uint64_t index = 0;
    std::string path;
    std::size_t live_puts = 0;      // committed puts not yet consumed
    std::size_t meta_records = 0;   // committed queue create/delete records
    std::size_t total_records = 0;  // committed records ever attributed here
    // Committed queue create/delete records of this segment, in order —
    // kept in memory (metadata is rare) so squash can re-emit them without
    // re-deriving commit status from the file.
    std::vector<std::pair<LogRecord::Type, std::string>> meta;
    // Cross-segment gets attributed here; pruned during compaction once
    // their target put's bytes are gone (same-segment gets need no entry:
    // put and get vanish together in one squash/retire).
    std::vector<ExtGet> ext_gets;
    // False when an unbalanced tx marker touched this segment (a manually
    // appended batch spanning segments, or a torn tail): its records'
    // commit status cannot be judged segment-locally, so it is never
    // squashed or retired.
    bool boundary_clean = true;
  };
  struct LiveRef {
    std::uint64_t seg = 0;
    std::string queue;
  };
  struct ScanState;  // replay cursor payload

  SegmentedLogStore(std::string dir, SegmentedStoreOptions options);

  util::Status open_dir_and_rebuild();
  util::Status create_segment_locked(std::uint64_t index);
  util::Status roll_segment_locked();
  util::Status write_frame_locked(std::string_view frame);
  util::Status write_all_locked(const char* data, std::size_t size);
  util::Status sync_fd_locked(int fd, const std::string& what);
  util::Status sync_dir_locked();
  void apply_committed_locked(const LogRecord& record, std::uint64_t seg);
  Segment* find_segment_locked(std::uint64_t index);
  bool sync_due_locked();
  bool ext_get_load_bearing_locked(const ExtGet& get);
  util::Status squash_segment_locked(Segment& seg);

  const std::string dir_;
  const SegmentedStoreOptions options_;

  // One mutex guards everything: the segment table, the live index, and
  // all file I/O. Appends are synchronous, so there is no staging state and
  // no second lock (contrast FileStore's staging_mu_/io_mu_ pair).
  mutable std::mutex mu_;
  std::vector<Segment> segments_;  // ascending by index; back() is active
  int fd_ = -1;                    // active segment, O_APPEND
  int dir_fd_ = -1;                // segment directory, for durable renames
  std::size_t active_bytes_ = 0;   // bytes written to the active segment
  std::unordered_map<std::string, LiveRef> live_;  // msg id -> live put
  std::unordered_set<std::string> existing_queues_;
  std::size_t open_marker_depth_ = 0;  // manually appended, unmatched begins
  std::size_t appended_ = 0;
  std::uint64_t last_sync_us_ = 0;
  util::Status sticky_ = util::ok_status();
};

}  // namespace cmx::mq
