// Storage-backend facade: the write-ahead-log interface behind a queue
// manager's "reliable" delivery guarantee, UCSB-style — one interface,
// many engines (DESIGN.md §11). Every persistent put/get and every queue
// create/delete is appended as a LogRecord; recovery replays the log to
// rebuild queue contents after a crash/restart.
//
// Batches (used by transacted sessions) are bracketed by kTxBegin/kTxCommit
// markers; replay discards records of a batch whose commit marker never made
// it to disk, so a torn commit leaves the pre-transaction state. Markers
// nest, and the durable engines additionally frame each append call as a
// single checksummed unit, so a torn group drops as a whole.
//
// Durability contract (DESIGN.md §7): append()/append_batch() returning OK
// means the record reached the log *by the engine's sync policy* — see
// SyncPolicy below and each engine's header. Engines advertise what they
// can do through StoreCaps; callers that drive compaction or replay MUST
// dispatch on the descriptor instead of assuming the flat-log shape.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mq/message.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::mq {

struct LogRecord {
  enum class Type : std::uint8_t {
    kQueueCreate = 0,
    kQueueDelete = 1,
    kPut = 2,     // message enqueued on `queue`
    kGet = 3,     // message `msg_id` consumed from `queue`
    kTxBegin = 4,  // start of an atomic batch `tx_id`
    kTxCommit = 5,
  };

  Type type = Type::kPut;
  std::string queue;
  std::string msg_id;  // kGet only
  std::string tx_id;   // kTxBegin/kTxCommit only
  Message message;     // kPut only

  // Encode-only borrows: when set, encode() reads the queue name, message
  // id, or message from the referenced storage instead of the owned fields
  // above, so the hot batch paths build records without copying a Message
  // (or its id string) per record. A borrowed record is valid ONLY until
  // the MessageStore::append*() call it is passed to returns — stores
  // encode eagerly and never retain LogRecords.
  std::string_view queue_ref = {};    // data() == nullptr => use `queue`
  std::string_view msg_id_ref = {};   // data() == nullptr => use `msg_id`
  const Message* message_ref = nullptr;  // nullptr => use `message`

  static LogRecord queue_create(std::string queue_name);
  static LogRecord queue_delete(std::string queue_name);
  static LogRecord put(std::string queue_name, Message msg);
  static LogRecord get(std::string queue_name, std::string message_id);
  // Borrowing variants of put/get for the batch append paths.
  static LogRecord put_ref(const std::string& queue_name, const Message& msg);
  static LogRecord get_ref(const std::string& queue_name,
                           std::string_view message_id);
  static LogRecord tx_begin(std::string id);
  static LogRecord tx_commit(std::string id);

  // Borrow-resolving accessors: the value regardless of whether this
  // record owns its fields or borrows them. MessageStore implementations
  // that inspect records must use these, not the raw fields — the batch
  // paths pass borrowed records whose owned fields are empty.
  std::string_view queue_name() const {
    return queue_ref.data() != nullptr ? queue_ref : std::string_view(queue);
  }
  std::string_view message_id() const {
    return msg_id_ref.data() != nullptr ? msg_id_ref : std::string_view(msg_id);
  }
  const Message& msg() const {
    return message_ref != nullptr ? *message_ref : message;
  }

  std::string encode() const;
  // Upper-ballpark encoded size (exact when the message frame is
  // memoized), for pre-reserving slab buffers so staging a batch of
  // large bodies doesn't realloc-copy the blob per record.
  std::size_t encoded_size_hint() const {
    std::size_t n =
        17 + queue_name().size() + message_id().size() + tx_id.size();
    if (type == Type::kPut) n += msg().frame_size_hint();
    return n;
  }
  // Appends the encoded record to `w` in place — the group-commit staging
  // path serializes every record of a batch into one blob with no
  // per-record temporaries.
  void encode_into(util::BinaryWriter& w) const;
  static util::Result<LogRecord> decode(std::string_view data);
};

// How an engine wants compaction driven. The queue manager dispatches on
// this instead of unconditionally calling rewrite() — a segmented engine
// retires dead segments itself and never materializes a flat snapshot.
enum class CompactionMode : std::uint8_t {
  kNone = 0,             // nothing to compact (NullStore)
  kSnapshotRewrite = 1,  // caller builds a snapshot and calls rewrite()
  kSelfCompacting = 2,   // engine compacts in place via compact_self()
};

// What an OK append acknowledges (DESIGN.md §7 spells out exactly what
// each policy guarantees after a crash).
enum class SyncPolicy : std::uint8_t {
  // No fsync. For write-behind engines (FileStore group commit) the append
  // is acknowledged once staged; for synchronous engines (SegmentedLogStore)
  // once the bytes reached the OS page cache. A machine crash may lose an
  // acknowledged suffix of the log; replay drops it cleanly.
  kNone = 0,
  // The acknowledgment follows an fsync: an acknowledged append is on
  // stable storage. Concurrent producers share one fsync where the engine
  // supports group commit.
  kEveryBatch = 1,
  // The append is written (process-crash safe) before acknowledgment;
  // fsync happens at most once per sync interval and once at shutdown,
  // bounding machine-crash loss to the interval.
  kInterval = 2,
};

// Engine capability descriptor. `backend` matches the registry key the
// engine was (or would be) created under.
struct StoreCaps {
  const char* backend = "unknown";
  // Replay after a process restart over the same path sees the data (the
  // engine is file-backed). MemoryStore replays within one process only.
  bool durable = false;
  // append()/append_batch() coalesce concurrent producers into shared
  // write/fsync groups (a dedicated commit thread or equivalent).
  bool supports_group_commit = false;
  // replay_chunk() streams bounded chunks instead of materializing the
  // whole log; recovery should use it when present.
  bool supports_chunked_replay = false;
  CompactionMode compaction = CompactionMode::kSnapshotRewrite;
  // The effective ack policy of this instance (not a capability per se,
  // but callers comparing engines "at equal durability" read it here).
  SyncPolicy sync = SyncPolicy::kNone;
};

class MessageStore {
 public:
  virtual ~MessageStore() = default;

  // What this engine can do; see StoreCaps. Callers must dispatch
  // compaction and replay shape on the descriptor.
  virtual StoreCaps caps() const { return StoreCaps{}; }

  // Appends one record. OK means the record is acknowledged per the
  // engine's sync policy (see the durability contract above) — it does
  // NOT universally imply the bytes hit the platter.
  virtual util::Status append(const LogRecord& record) = 0;

  // Appends a group of records that must be applied all-or-nothing on
  // recovery. Implementations bracket them with tx markers.
  virtual util::Status append_batch(const std::vector<LogRecord>& records) = 0;

  // Reads back every committed record, in order. Tolerates a torn tail
  // (stops at the first corrupt/truncated record). Engines may return a
  // *normalized* stream — e.g. consumed puts elided — as long as applying
  // it reproduces the same queue state in the same per-queue order.
  virtual util::Result<std::vector<LogRecord>> replay() = 0;

  // Chunked replay (caps().supports_chunked_replay): streams the log in
  // bounded chunks — segment by segment for SegmentedLogStore — so
  // recovery never materializes the whole log at once. Call until
  // `cursor.done`; a default-constructed cursor starts a fresh pass. The
  // default implementation delegates to replay() in one chunk.
  struct ReplayCursor {
    bool done = false;
    std::shared_ptr<void> state;  // engine-owned scan state
  };
  virtual util::Result<std::vector<LogRecord>> replay_chunk(
      ReplayCursor& cursor);

  // Replaces the log with the given snapshot. Only meaningful for
  // CompactionMode::kSnapshotRewrite engines; the default refuses, so
  // self-compacting engines are never forced through the flat-log path.
  virtual util::Status rewrite(const std::vector<LogRecord>& snapshot);

  // In-place compaction for CompactionMode::kSelfCompacting engines
  // (segment retirement / copy-forward). The default refuses.
  virtual util::Status compact_self();

  // Records appended since the last compaction (rewrite()/compact_self())
  // or construction; the queue manager uses this to trigger compaction.
  virtual std::size_t appended_since_compaction() const = 0;
};

// Discards everything; "recovery" finds an empty log. For tests and for
// benchmarks isolating in-memory behaviour.
class NullStore final : public MessageStore {
 public:
  StoreCaps caps() const override {
    StoreCaps caps;
    caps.backend = "null";
    caps.compaction = CompactionMode::kNone;
    return caps;
  }
  util::Status append(const LogRecord&) override { return util::ok_status(); }
  util::Status append_batch(const std::vector<LogRecord>&) override {
    return util::ok_status();
  }
  util::Result<std::vector<LogRecord>> replay() override {
    return std::vector<LogRecord>{};
  }
  util::Status rewrite(const std::vector<LogRecord>&) override {
    return util::ok_status();
  }
  std::size_t appended_since_compaction() const override { return 0; }
};

// Streaming commit-marker filter shared by the engines' replay paths:
// drops records belonging to batches without a commit marker. Markers may
// nest (e.g. a store layered over another batching store): an inner batch
// only survives if every enclosing batch also committed, so a torn outer
// batch is dropped as a unit. Chunked replays keep one CommitFilter alive
// across chunks, because marker pairs may span chunk (segment) boundaries.
class CommitFilter {
 public:
  // Feeds one record; records that became committed are appended to `out`.
  void push(LogRecord record, std::vector<LogRecord>& out);
  // End of log: batches still open at the tail are uncommitted (torn) and
  // are discarded.
  void finish() { stack_.clear(); }

 private:
  struct OpenBatch {
    std::string id;
    std::vector<LogRecord> records;
  };
  std::vector<OpenBatch> stack_;
};

// Batch convenience over CommitFilter for engines that materialize the
// whole raw record stream before filtering.
std::vector<LogRecord> filter_committed_records(std::vector<LogRecord> raw);

}  // namespace cmx::mq
