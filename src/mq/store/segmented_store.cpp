#include "mq/store/segmented_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "mq/store/crc.hpp"
#include "mq/store/framing.hpp"
#include "obs/registry.hpp"
#include "util/codec.hpp"
#include "util/id.hpp"

namespace cmx::mq {

namespace {

constexpr char kSegMagic[8] = {'C', 'M', 'X', 'S', 'E', 'G', '1', '\n'};
constexpr std::size_t kSegHeaderSize = 24;

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string segment_path(const std::string& dir, std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08llu.seg",
                static_cast<unsigned long long>(index));
  return dir + "/" + name;
}

// seg-NNNNNNNN.seg -> index; false for anything else (including an index
// that overflows u64 — such a name was never written by this store).
bool parse_segment_name(const std::string& name, std::uint64_t& index) {
  if (name.size() < 9 || name.compare(0, 4, "seg-") != 0) return false;
  if (name.compare(name.size() - 4, 4, ".seg") != 0) return false;
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return false;
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  index = value;
  return true;
}

std::string encode_segment_header(std::uint64_t index) {
  util::BinaryWriter w;
  w.reserve(kSegHeaderSize);
  for (char c : kSegMagic) w.put_u8(static_cast<std::uint8_t>(c));
  w.put_u64(index);
  w.put_u32(0);  // reserved
  std::string bytes = w.take();
  util::BinaryWriter crc;
  crc.put_u32(crc32c(std::string_view(bytes.data(), 20)));
  return bytes + crc.take();
}

bool header_valid(std::string_view content, std::uint64_t expected_index) {
  if (content.size() < kSegHeaderSize) return false;
  if (std::memcmp(content.data(), kSegMagic, sizeof(kSegMagic)) != 0) {
    return false;
  }
  util::BinaryReader r(content.substr(sizeof(kSegMagic)));
  const std::uint64_t index = r.get_u64().value();
  r.get_u32().value();  // reserved
  const std::uint32_t crc = r.get_u32().value();
  if (crc32c(content.substr(0, 20)) != crc) return false;
  return index == expected_index;
}

util::Status read_file(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::make_error(errno == ENOENT ? util::ErrorCode::kNotFound
                                            : util::ErrorCode::kIoError,
                            "open " + path + ": " + std::strerror(errno));
  }
  out.clear();
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return util::make_error(util::ErrorCode::kIoError,
                              "read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return util::ok_status();
}

}  // namespace

using store_detail::append_inner_record;
using store_detail::scan_group_frames;
using store_detail::seal_frame;

struct SegmentedLogStore::ScanState {
  std::vector<std::pair<std::uint64_t, std::string>> files;
  std::size_t next = 0;
  CommitFilter filter;
  bool stopped = false;
};

SegmentedLogStore::SegmentedLogStore(std::string dir,
                                     SegmentedStoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

util::Result<std::unique_ptr<SegmentedLogStore>> SegmentedLogStore::open(
    std::string dir, SegmentedStoreOptions options) {
  std::unique_ptr<SegmentedLogStore> store(
      new SegmentedLogStore(std::move(dir), options));
  if (auto s = store->open_dir_and_rebuild(); !s) return s;
  store->last_sync_us_ = steady_us();
  return store;
}

SegmentedLogStore::~SegmentedLogStore() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) {
    // kInterval may owe a sync for the tail; a clean shutdown must not be
    // less durable than the policy promises. Failure here has no caller to
    // report to; replay tolerates the torn tail either way.
    if (options_.sync != SyncPolicy::kNone) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
    dir_fd_ = -1;
  }
}

SegmentedLogStore::Segment* SegmentedLogStore::find_segment_locked(
    std::uint64_t index) {
  for (auto& seg : segments_) {
    if (seg.index == index) return &seg;
  }
  return nullptr;
}

void SegmentedLogStore::apply_committed_locked(const LogRecord& record,
                                               std::uint64_t seg_index) {
  Segment* seg = find_segment_locked(seg_index);
  if (seg == nullptr) return;
  switch (record.type) {
    case LogRecord::Type::kPut: {
      std::string id(record.msg().id());
      // First occurrence wins: a duplicate id (hand-built log, replayed
      // copy) must not double-count liveness.
      if (live_.count(id) > 0) break;
      seg->live_puts++;
      seg->total_records++;
      live_.emplace(std::move(id),
                    LiveRef{seg_index, std::string(record.queue_name())});
      break;
    }
    case LogRecord::Type::kGet: {
      seg->total_records++;
      auto it = live_.find(std::string(record.message_id()));
      if (it == live_.end()) break;
      if (it->second.seg != seg_index) {
        // The consumed put's bytes live in another segment. Until they are
        // provably gone this get is load-bearing: dropping it while the
        // put's segment stays pinned would resurrect the put on replay.
        seg->ext_gets.push_back(ExtGet{it->second.seg, it->second.queue,
                                       std::string(record.message_id())});
      }
      if (Segment* home = find_segment_locked(it->second.seg)) {
        home->live_puts--;
      }
      live_.erase(it);
      break;
    }
    case LogRecord::Type::kQueueCreate: {
      std::string q(record.queue_name());
      existing_queues_.insert(q);
      seg->meta_records++;
      seg->total_records++;
      seg->meta.emplace_back(record.type, std::move(q));
      break;
    }
    case LogRecord::Type::kQueueDelete: {
      const std::string q(record.queue_name());
      existing_queues_.erase(q);
      seg->meta_records++;
      seg->total_records++;
      seg->meta.emplace_back(record.type, q);
      // The delete kills every live message of the queue wherever it sits.
      for (auto it = live_.begin(); it != live_.end();) {
        if (it->second.queue == q) {
          if (Segment* home = find_segment_locked(it->second.seg)) {
            home->live_puts--;
          }
          it = live_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    case LogRecord::Type::kTxBegin:
    case LogRecord::Type::kTxCommit:
      break;  // markers are handled by the callers
  }
}

util::Status SegmentedLogStore::open_dir_and_rebuild() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return util::make_error(util::ErrorCode::kIoError,
                            "mkdir " + dir_ + ": " + ec.message());
  }
  dir_fd_ = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd_ < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + dir_ + ": " + std::strerror(errno));
  }
  // Enumerate segments; drop orphan squash temporaries (a crash between
  // writing `.compact` and the rename leaves the original authoritative).
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::uint64_t max_index = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 8 &&
        name.compare(name.size() - 8, 8, ".compact") == 0) {
      ::unlink(entry.path().c_str());
      continue;
    }
    std::uint64_t index = 0;
    if (!parse_segment_name(name, index)) continue;
    found.emplace_back(index, entry.path().string());
    max_index = std::max(max_index, index);
  }
  if (ec) {
    return util::make_error(util::ErrorCode::kIoError,
                            "scan " + dir_ + ": " + ec.message());
  }
  std::sort(found.begin(), found.end());

  // Rebuild the live index, scanning segments in order through a commit
  // filter that attributes each record to its physical segment (a batch's
  // records stay attributed to where their bytes live, even when its
  // commit marker lands in a later segment).
  struct Pending {
    std::string id;
    std::uint64_t begin_seg;
    std::vector<std::pair<LogRecord, std::uint64_t>> records;
  };
  std::vector<Pending> stack;
  auto mark_unclean = [&](std::uint64_t from, std::uint64_t to) {
    for (auto& seg : segments_) {
      if (seg.index >= from && seg.index <= to) seg.boundary_clean = false;
    }
  };
  auto feed = [&](LogRecord rec, std::uint64_t seg_index) {
    if (rec.type == LogRecord::Type::kTxBegin) {
      stack.push_back({std::move(rec.tx_id), seg_index, {}});
      return;
    }
    if (rec.type == LogRecord::Type::kTxCommit) {
      if (stack.empty() || stack.back().id != rec.tx_id) {
        for (const auto& p : stack) mark_unclean(p.begin_seg, seg_index);
        stack.clear();
        return;
      }
      Pending committed = std::move(stack.back());
      stack.pop_back();
      if (committed.begin_seg != seg_index) {
        mark_unclean(committed.begin_seg, seg_index);
      }
      if (stack.empty()) {
        for (auto& [r, s] : committed.records) apply_committed_locked(r, s);
      } else {
        auto& parent = stack.back().records;
        for (auto& item : committed.records) {
          parent.push_back(std::move(item));
        }
      }
      return;
    }
    if (stack.empty()) {
      apply_committed_locked(rec, seg_index);
    } else {
      stack.back().records.emplace_back(std::move(rec), seg_index);
    }
  };

  std::size_t stop_at = found.size();
  for (std::size_t i = 0; i < found.size(); ++i) {
    const auto& [index, path] = found[i];
    std::string content;
    if (auto s = read_file(path, content); !s) return s;
    if (!header_valid(content, index)) {
      // Conservative stop: nothing at or after a corrupt header can be
      // trusted (later records were acknowledged after the lost ones).
      stop_at = i;
      break;
    }
    Segment seg;
    seg.index = index;
    seg.path = path;
    if (!stack.empty()) seg.boundary_clean = false;
    segments_.push_back(std::move(seg));
    const std::string body = content.substr(kSegHeaderSize);
    const std::size_t consumed = scan_group_frames(
        body, [&](LogRecord rec) { feed(std::move(rec), index); });
    if (consumed < body.size()) {
      // Torn tail inside this segment: keep the committed prefix, cut the
      // tear so future opens scan cleanly, and trust nothing after it.
      segments_.back().boundary_clean = false;
      if (::truncate(path.c_str(),
                     static_cast<off_t>(kSegHeaderSize + consumed)) != 0) {
        return util::make_error(
            util::ErrorCode::kIoError,
            "truncate " + path + ": " + std::strerror(errno));
      }
      stop_at = i + 1;
      break;
    }
  }
  // Batches still open at the end of the scan are uncommitted: drop them
  // and pin their segments (their bytes hold records replay will skip).
  for (const auto& p : stack) {
    mark_unclean(p.begin_seg, segments_.empty() ? p.begin_seg
                                                : segments_.back().index);
  }
  stack.clear();
  // Quarantine everything after the stop point: were those segments left
  // in place, records appended from now on (always to a fresh, higher
  // index) would sit behind the corruption and be silently dropped by the
  // conservative stop on the NEXT open.
  for (std::size_t i = stop_at; i < found.size(); ++i) {
    const std::string& path = found[i].second;
    const std::string bad = path + ".bad";
    if (::rename(path.c_str(), bad.c_str()) != 0) {
      return util::make_error(util::ErrorCode::kIoError,
                              "rename " + path + ": " + std::strerror(errno));
    }
  }
  return create_segment_locked(max_index + 1);
}

util::Status SegmentedLogStore::create_segment_locked(std::uint64_t index) {
  const std::string path = segment_path(dir_, index);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + path + ": " + std::strerror(errno));
  }
  fd_ = fd;
  if (options_.sync != SyncPolicy::kNone) {
    // The new segment's directory entry must be durable before any frame
    // in it is acknowledged as synced — an fsync'd frame in an unlinked
    // file is not on stable storage.
    if (auto s = sync_dir_locked(); !s) return s;
  }
  const std::string header = encode_segment_header(index);
  if (auto s = write_all_locked(header.data(), header.size()); !s) return s;
  Segment seg;
  seg.index = index;
  seg.path = path;
  seg.boundary_clean = open_marker_depth_ == 0;
  segments_.push_back(std::move(seg));
  active_bytes_ = kSegHeaderSize;
  CMX_OBS_COUNT("store.segments_created", 1);
  return util::ok_status();
}

util::Status SegmentedLogStore::roll_segment_locked() {
  if (options_.sync != SyncPolicy::kNone) {
    if (auto s = sync_fd_locked(fd_, segments_.back().path); !s) return s;
  }
  ::close(fd_);
  fd_ = -1;
  if (open_marker_depth_ > 0) segments_.back().boundary_clean = false;
  return create_segment_locked(segments_.back().index + 1);
}

util::Status SegmentedLogStore::sync_fd_locked(int fd,
                                               const std::string& what) {
  // An fsync failure means acknowledged bytes may never reach stable
  // storage (and Linux may have dropped the dirty pages already), so it
  // must surface as an IO error instead of a silent acknowledgment.
  if (::fsync(fd) != 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "fsync " + what + ": " + std::strerror(errno));
  }
  CMX_OBS_COUNT("store.fsyncs", 1);
  return util::ok_status();
}

util::Status SegmentedLogStore::sync_dir_locked() {
  if (::fsync(dir_fd_) != 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "fsync " + dir_ + ": " + std::strerror(errno));
  }
  return util::ok_status();
}

util::Status SegmentedLogStore::write_all_locked(const char* data,
                                                 std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd_, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::make_error(util::ErrorCode::kIoError,
                              "write " + segments_.back().path + ": " +
                                  std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return util::ok_status();
}

bool SegmentedLogStore::sync_due_locked() {
  const std::uint64_t now = steady_us();
  const std::uint64_t interval_us =
      static_cast<std::uint64_t>(options_.sync_interval_ms) * 1000u;
  if (now - last_sync_us_ < interval_us) return false;
  last_sync_us_ = now;
  return true;
}

util::Status SegmentedLogStore::write_frame_locked(std::string_view frame) {
  // Roll first so the frame lands wholly inside one segment — a torn call
  // must drop as a unit, and replay treats segments as independent scans.
  if (active_bytes_ > kSegHeaderSize &&
      active_bytes_ + frame.size() > options_.segment_bytes) {
    if (auto s = roll_segment_locked(); !s) {
      sticky_ = s;
      return s;
    }
  }
  if (auto s = write_all_locked(frame.data(), frame.size()); !s) {
    // Sticky: the log can no longer accept acknowledged records.
    sticky_ = s;
    return s;
  }
  active_bytes_ += frame.size();
  if (options_.sync == SyncPolicy::kEveryBatch ||
      (options_.sync == SyncPolicy::kInterval && sync_due_locked())) {
    if (auto s = sync_fd_locked(fd_, segments_.back().path); !s) {
      sticky_ = s;
      return s;
    }
  }
  return util::ok_status();
}

util::Status SegmentedLogStore::append(const LogRecord& record) {
  const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
  std::string blob;
  blob.reserve(4 + record.encoded_size_hint());
  append_inner_record(blob, record);
  const std::string frame = seal_frame(blob);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!sticky_) return sticky_;
    if (auto s = write_frame_locked(frame); !s) return s;
    const std::uint64_t active = segments_.back().index;
    if (record.type == LogRecord::Type::kTxBegin) {
      ++open_marker_depth_;
      segments_.back().boundary_clean = false;
    } else if (record.type == LogRecord::Type::kTxCommit) {
      if (open_marker_depth_ > 0) --open_marker_depth_;
      segments_.back().boundary_clean = false;
    } else {
      if (open_marker_depth_ > 0) {
        // Inside a manually bracketed batch the record's commit status is
        // unknowable segment-locally; count it live (conservative) and
        // pin the segment against squash/retirement.
        segments_.back().boundary_clean = false;
      }
      apply_committed_locked(record, active);
    }
    ++appended_;
  }
  CMX_OBS_COUNT("store.appends", 1);
  if (obs::enabled()) {
    CMX_OBS_RECORD("store.append_us", obs::now_us() - t0);
  }
  return util::ok_status();
}

util::Status SegmentedLogStore::append_batch(
    const std::vector<LogRecord>& records) {
  const LogRecord begin = LogRecord::tx_begin(util::generate_id("tx"));
  const LogRecord commit = LogRecord::tx_commit(begin.tx_id);
  // The whole batch — markers included — is one sealed frame, wholly in
  // one segment, so it tears as a unit and never spans a boundary.
  std::size_t bytes = 2 * (4 + begin.encoded_size_hint());
  for (const auto& rec : records) bytes += 4 + rec.encoded_size_hint();
  std::string blob;
  blob.reserve(bytes);
  append_inner_record(blob, begin);
  for (const auto& rec : records) append_inner_record(blob, rec);
  append_inner_record(blob, commit);
  const std::string frame = seal_frame(blob);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!sticky_) return sticky_;
    if (auto s = write_frame_locked(frame); !s) return s;
    const std::uint64_t active = segments_.back().index;
    if (open_marker_depth_ > 0) segments_.back().boundary_clean = false;
    for (const auto& rec : records) apply_committed_locked(rec, active);
    appended_ += records.size() + 2;
  }
  CMX_OBS_COUNT("store.appends", records.size() + 2);
  return util::ok_status();
}

util::Result<std::vector<LogRecord>> SegmentedLogStore::replay_chunk(
    ReplayCursor& cursor) {
  std::lock_guard<std::mutex> lk(mu_);
  auto* state = static_cast<ScanState*>(cursor.state.get());
  if (state == nullptr) {
    auto fresh = std::make_shared<ScanState>();
    for (const auto& seg : segments_) {
      fresh->files.emplace_back(seg.index, seg.path);
    }
    cursor.state = fresh;
    state = fresh.get();
  }
  std::vector<LogRecord> out;
  while (out.empty() && !state->stopped && state->next < state->files.size()) {
    const auto& [index, path] = state->files[state->next++];
    std::string content;
    if (auto s = read_file(path, content); !s) {
      // A segment retired by a concurrent compaction held only dead
      // records; skip it.
      if (s.code() == util::ErrorCode::kNotFound) continue;
      return s;
    }
    if (!header_valid(content, index)) {
      state->stopped = true;  // defensive; rebuild validated these
      break;
    }
    const std::string body = content.substr(kSegHeaderSize);
    const std::size_t consumed = scan_group_frames(body, [&](LogRecord rec) {
      state->filter.push(std::move(rec), out);
    });
    if (consumed < body.size()) state->stopped = true;  // torn tail
  }
  if (state->stopped || state->next >= state->files.size()) {
    state->filter.finish();  // open batches at the tail are uncommitted
    cursor.done = true;
  }
  return out;
}

util::Result<std::vector<LogRecord>> SegmentedLogStore::replay() {
  std::vector<LogRecord> all;
  ReplayCursor cursor;
  while (!cursor.done) {
    auto chunk = replay_chunk(cursor);
    if (!chunk) return chunk.status();
    auto records = std::move(chunk).value();
    if (all.empty()) {
      all = std::move(records);
    } else {
      for (auto& rec : records) all.push_back(std::move(rec));
    }
  }
  return all;
}

// True while the consumed put's bytes may still be on disk. A pinned (or
// still-active) home segment is never squashed, so its dead put would
// replay as live if this get disappeared. A clean sealed home has a lower
// index than the get's segment, so compact_self already retired or
// squashed it — its dead puts are gone — and a vanished home was retired
// outright.
bool SegmentedLogStore::ext_get_load_bearing_locked(const ExtGet& get) {
  Segment* home = find_segment_locked(get.target_seg);
  if (home == nullptr) return false;
  if (home == &segments_.back()) return true;  // active: never compacted
  return !home->boundary_clean;
}

util::Status SegmentedLogStore::squash_segment_locked(Segment& seg) {
  std::string content;
  if (auto s = read_file(seg.path, content); !s) return s;
  if (!header_valid(content, seg.index)) {
    return util::make_error(util::ErrorCode::kIoError,
                            "squash: bad header in " + seg.path);
  }
  // Meta records first, then live puts, then load-bearing gets, each group
  // in original order. Safe reordering: a live put's queue is never
  // deleted later in this segment (the delete would have killed it), so
  // moving creates/deletes ahead of it cannot change the replayed state;
  // a kept get's target was live when the get applied, so any same-segment
  // queue delete preceding it originally would have killed the target
  // first — moving the delete ahead of the get turns the get into a no-op
  // on an already-dead message, the same final state.
  std::vector<LogRecord> keep;
  keep.reserve(seg.meta.size() + seg.live_puts + seg.ext_gets.size());
  for (const auto& [type, queue] : seg.meta) {
    keep.push_back(type == LogRecord::Type::kQueueCreate
                       ? LogRecord::queue_create(queue)
                       : LogRecord::queue_delete(queue));
  }
  scan_group_frames(content.substr(kSegHeaderSize), [&](LogRecord rec) {
    if (rec.type != LogRecord::Type::kPut) return;
    auto it = live_.find(rec.msg().id());
    if (it == live_.end() || it->second.seg != seg.index) return;
    keep.push_back(std::move(rec));
  });
  for (const auto& get : seg.ext_gets) {
    keep.push_back(LogRecord::get(get.queue, get.id));
  }

  std::string blob;
  for (const auto& rec : keep) append_inner_record(blob, rec);
  std::string bytes = encode_segment_header(seg.index);
  if (!keep.empty()) bytes += seal_frame(blob);

  const std::string tmp = seg.path + ".compact";
  const int tfd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (tfd < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + tmp + ": " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(tfd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(tfd);
      ::unlink(tmp.c_str());
      return util::make_error(util::ErrorCode::kIoError,
                              "write " + tmp + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (auto s = sync_fd_locked(tfd, tmp); !s) {
    ::close(tfd);
    ::unlink(tmp.c_str());
    return s;
  }
  ::close(tfd);
  // The rename is the commit point: a crash before it leaves the original
  // authoritative (the orphan .compact is unlinked on open); after it the
  // squashed segment is in place with the same index and order position.
  if (::rename(tmp.c_str(), seg.path.c_str()) != 0) {
    const auto s = util::make_error(
        util::ErrorCode::kIoError,
        "rename " + tmp + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return s;
  }
  // Make the rename durable before compaction moves on: later segments'
  // pruning decisions assume this segment's dead puts are gone from disk,
  // so the removal must not be reorderable past their own drops.
  if (auto s = sync_dir_locked(); !s) return s;
  seg.total_records =
      seg.meta_records + seg.live_puts + seg.ext_gets.size();
  CMX_OBS_COUNT("store.segments_squashed", 1);
  return util::ok_status();
}

util::Status SegmentedLogStore::compact_self() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!sticky_) return sticky_;
  // Sealed segments only — the active one is still being appended.
  // Ascending order matters: a get's target segment has a lower index, so
  // by the time a get's segment is considered its clean targets have
  // already been retired or squashed (durably — see the dir fsyncs).
  for (std::size_t i = 0; i + 1 < segments_.size();) {
    Segment& seg = segments_[i];
    if (!seg.boundary_clean) {
      ++i;
      continue;
    }
    auto& gets = seg.ext_gets;
    gets.erase(std::remove_if(gets.begin(), gets.end(),
                              [&](const ExtGet& get) {
                                return !ext_get_load_bearing_locked(get);
                              }),
               gets.end());
    if (seg.live_puts == 0 && seg.meta_records == 0 && gets.empty()) {
      // Whole-segment retirement: nothing in it affects replayed state.
      ::unlink(seg.path.c_str());
      // Durable before moving on, for the same reason as squash's rename:
      // drops in later segments assume this one's bytes are gone.
      if (auto s = sync_dir_locked(); !s) return s;
      segments_.erase(segments_.begin() + static_cast<std::ptrdiff_t>(i));
      CMX_OBS_COUNT("store.segments_retired", 1);
      continue;
    }
    if (seg.live_puts + seg.meta_records + gets.size() < seg.total_records) {
      if (auto s = squash_segment_locked(seg); !s) return s;
    }
    ++i;
  }
  appended_ = 0;
  return util::ok_status();
}

std::size_t SegmentedLogStore::appended_since_compaction() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

std::size_t SegmentedLogStore::segment_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return segments_.size();
}

std::vector<std::string> SegmentedLogStore::segment_files() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> paths;
  paths.reserve(segments_.size());
  for (const auto& seg : segments_) paths.push_back(seg.path);
  return paths;
}

std::size_t SegmentedLogStore::live_put_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.size();
}

}  // namespace cmx::mq
