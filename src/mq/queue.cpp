#include "mq/queue.hpp"

#include <algorithm>

namespace cmx::mq {

Queue::Queue(std::string name, QueueOptions options, util::Clock& clock,
             std::function<void(const Message&)> on_discard)
    : name_(std::move(name)),
      options_(options),
      clock_(clock),
      on_discard_(std::move(on_discard)) {}

void Queue::set_put_listener(std::function<void()> listener) {
  std::lock_guard<std::mutex> lk(mu_);
  put_listener_ = std::move(listener);
}

util::Status Queue::put(Message msg) {
  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      return util::make_error(util::ErrorCode::kClosed,
                              "queue " + name_ + " is closed");
    }
    drop_expired_locked(clock_.now_ms());
    if (entries_.size() >= options_.max_depth) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "queue " + name_ + " is full");
    }
    const int prio =
        std::clamp(msg.priority(), kMinPriority, kMaxPriority);
    auto it = entries_
                  .emplace(OrderKey{kMaxPriority - prio, next_seq_++},
                           std::move(msg))
                  .first;
    ++stats_.puts;
    listener = put_listener_;
    wake_matching_waiters_locked(it->second);
  }
  cv_.notify_all();
  if (listener) listener();
  return util::ok_status();
}

void Queue::drop_expired_locked(util::TimeMs now_ms) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expired(now_ms)) {
      ++stats_.expired;
      if (on_discard_) on_discard_(it->second);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Queue::GotMessage> Queue::take_first_match_locked(
    const Selector* selector, util::TimeMs now_ms) {
  drop_expired_locked(now_ms);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (selector != nullptr && !selector->matches(it->second)) continue;
    GotMessage got{it->first.seq, std::move(it->second)};
    got.msg.note_delivery();
    entries_.erase(it);
    ++stats_.gets;
    return got;
  }
  return std::nullopt;
}

util::Result<Queue::GotMessage> Queue::get(util::TimeMs deadline_ms,
                                           const Selector* selector) {
  std::unique_lock<std::mutex> lk(mu_);
  if (selector != nullptr && selector_index_enabled()) {
    return get_with_waiter_index(lk, deadline_ms, selector);
  }
  // Shared-cv arm: non-selector gets (every put can satisfy them, so the
  // shared notify_all is exact) and the interpretive A/B baseline.
  std::optional<GotMessage> got;
  const auto ready = [&] {
    if (closed_) return true;
    got = take_first_match_locked(selector, clock_.now_ms());
    return got.has_value();
  };
  clock_.wait_until(lk, cv_, deadline_ms, ready);
  if (got.has_value()) return std::move(*got);
  if (closed_) {
    return util::make_error(util::ErrorCode::kClosed,
                            "queue " + name_ + " is closed");
  }
  return util::make_error(util::ErrorCode::kTimeout,
                          "no message on " + name_ + " before deadline");
}

// Selector gets park on their own cv, registered in the waiter index, so
// puts of non-matching messages never wake them (the selective-consumer
// path; DESIGN.md §12). No lost wakeups: registration, the queue scan, and
// put's index probe all happen under mu_.
util::Result<Queue::GotMessage> Queue::get_with_waiter_index(
    std::unique_lock<std::mutex>& lk, util::TimeMs deadline_ms,
    const Selector* selector) {
  for (;;) {
    if (auto got = take_first_match_locked(selector, clock_.now_ms())) {
      return std::move(*got);
    }
    if (closed_) {
      return util::make_error(util::ErrorCode::kClosed,
                              "queue " + name_ + " is closed");
    }
    if (clock_.now_ms() >= deadline_ms) {
      return util::make_error(util::ErrorCode::kTimeout,
                              "no message on " + name_ + " before deadline");
    }
    SelectorWaiter waiter;
    waiter.selector = selector;
    const std::uint64_t id = next_waiter_id_++;
    waiters_.emplace(id, &waiter);
    waiter_index_.add(id, selector);
    clock_.wait_until(lk, waiter.cv, deadline_ms,
                      [&] { return waiter.wake || closed_; });
    waiter_index_.remove(id);
    waiters_.erase(id);
  }
}

void Queue::wake_matching_waiters_locked(const Message& msg) {
  if (waiters_.empty()) return;
  if (!selector_index_enabled()) {
    // Toggle flipped while waiters were parked: wake everyone, correctness
    // over selectivity.
    for (auto& [id, waiter] : waiters_) {
      waiter->wake = true;
      waiter->cv.notify_one();
    }
    return;
  }
  waiter_match_scratch_.clear();
  waiter_index_.collect_matches(msg, waiter_match_scratch_);
  for (std::uint64_t id : waiter_match_scratch_) {
    auto it = waiters_.find(id);
    if (it == waiters_.end()) continue;
    // Notifying under mu_ is deliberate: the waiter's cv lives on its
    // stack and can only be destroyed after the waiter reacquires mu_.
    it->second->wake = true;
    it->second->cv.notify_one();
  }
}

std::optional<Queue::GotMessage> Queue::try_get(const Selector* selector) {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return std::nullopt;
  return take_first_match_locked(selector, clock_.now_ms());
}

std::vector<Queue::GotMessage> Queue::try_get_batch(std::size_t max_n,
                                                    const Selector* selector) {
  std::vector<GotMessage> out;
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_ || max_n == 0) return out;
  drop_expired_locked(clock_.now_ms());
  // One allocation for the drain: Message is a wide object (inline payload
  // arm included), so letting the vector double would memmove the whole
  // batch several times over.
  out.reserve(std::min(max_n, entries_.size()));
  for (auto it = entries_.begin();
       it != entries_.end() && out.size() < max_n;) {
    if (selector != nullptr && !selector->matches(it->second)) {
      ++it;
      continue;
    }
    GotMessage got{it->first.seq, std::move(it->second)};
    got.msg.note_delivery();
    it = entries_.erase(it);
    ++stats_.gets;
    out.push_back(std::move(got));
  }
  return out;
}

void Queue::restore(std::uint64_t seq, Message msg) {
  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return;
    const int prio = std::clamp(msg.priority(), kMinPriority, kMaxPriority);
    auto it = entries_
                  .emplace(OrderKey{kMaxPriority - prio, seq},
                           std::move(msg))
                  .first;
    ++stats_.restored;
    listener = put_listener_;
    wake_matching_waiters_locked(it->second);
  }
  cv_.notify_all();
  if (listener) listener();
}

std::optional<Message> Queue::remove_by_id(const std::string& msg_id) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.id() == msg_id) {
      Message msg = std::move(it->second);
      entries_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

bool Queue::contains_id(const std::string& msg_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, msg] : entries_) {
    if (msg.id() == msg_id) return true;
  }
  return false;
}

std::vector<Message> Queue::browse() const { return browse(SIZE_MAX); }

std::vector<Message> Queue::browse(std::size_t max_n) const {
  std::lock_guard<std::mutex> lk(mu_);
  const util::TimeMs now = clock_.now_ms();
  std::vector<Message> out;
  out.reserve(std::min(max_n, entries_.size()));
  for (const auto& [key, msg] : entries_) {
    if (out.size() >= max_n) break;
    if (!msg.expired(now)) out.push_back(msg);
  }
  return out;
}

std::vector<Message> Queue::browse_chunk(BrowseCursor& cursor,
                                         std::size_t max_n) const {
  std::vector<Message> out;
  if (cursor.done || max_n == 0) return out;
  std::lock_guard<std::mutex> lk(mu_);
  const util::TimeMs now = clock_.now_ms();
  auto it = cursor.started
                ? entries_.upper_bound(OrderKey{cursor.inv_priority, cursor.seq})
                : entries_.begin();
  out.reserve(std::min(max_n, entries_.size()));
  for (; it != entries_.end() && out.size() < max_n; ++it) {
    cursor.started = true;
    cursor.inv_priority = it->first.inv_priority;
    cursor.seq = it->first.seq;
    if (!it->second.expired(now)) out.push_back(it->second);
  }
  if (it == entries_.end()) cursor.done = true;
  return out;
}

std::size_t Queue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

QueueStats Queue::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

SelectorIndex::Stats Queue::selector_waiter_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return waiter_index_.stats();
}

void Queue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    for (auto& [id, waiter] : waiters_) waiter->cv.notify_one();
  }
  cv_.notify_all();
}

bool Queue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

}  // namespace cmx::mq
