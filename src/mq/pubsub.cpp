#include "mq/pubsub.hpp"

#include "util/id.hpp"
#include "util/logging.hpp"

namespace cmx::mq {

namespace {

std::vector<std::string> split_levels(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto dot = s.find('.', start);
    if (dot == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, dot - start));
    start = dot + 1;
  }
}

}  // namespace

bool topic_matches(const std::string& pattern, const std::string& topic) {
  const auto p = split_levels(pattern);
  const auto t = split_levels(topic);
  std::size_t i = 0;
  for (; i < p.size(); ++i) {
    if (p[i] == "#") {
      // '#' must be the last pattern level; matches any remainder
      return i + 1 == p.size();
    }
    if (i >= t.size()) return false;
    if (p[i] == "*") continue;
    if (p[i] != t[i]) return false;
  }
  return i == t.size();
}

TopicBroker::TopicBroker(QueueManager& qm) : qm_(qm) {
  qm_.ensure_queue(kSubscriptionRegistryQueue,
                   QueueOptions{.max_depth = SIZE_MAX, .system = true})
      .expect_ok("ensure subscription registry");
}

util::Status TopicBroker::recover() {
  auto registry = qm_.find_queue(kSubscriptionRegistryQueue);
  if (registry == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no subscription registry queue");
  }
  std::size_t recovered = 0;
  for (const auto& msg : registry->browse()) {
    Subscription sub;
    sub.info.name = msg.get_string("SUB_NAME").value_or("");
    sub.info.pattern = msg.get_string("SUB_PATTERN").value_or("");
    sub.info.queue = msg.get_string("SUB_QUEUE").value_or("");
    sub.info.durable = true;
    const auto selector_text = msg.get_string("SUB_SELECTOR").value_or("");
    if (sub.info.name.empty() || sub.info.pattern.empty() ||
        sub.info.queue.empty()) {
      CMX_WARN("mq.broker") << "skipping malformed subscription record";
      continue;
    }
    if (!selector_text.empty()) {
      auto selector = Selector::parse(selector_text);
      if (!selector) {
        CMX_WARN("mq.broker") << "skipping subscription " << sub.info.name
                              << ": " << selector.status().to_string();
        continue;
      }
      sub.selector = std::move(selector).value();
    }
    // The backing queue itself was recovered by the queue manager (it is
    // created durably); ensure it in case the store was compacted oddly.
    qm_.ensure_queue(sub.info.queue, QueueOptions{.max_depth = SIZE_MAX,
                                                  .system = true})
        .expect_ok("ensure subscription queue");
    std::lock_guard<std::mutex> lk(mu_);
    if (subs_.count(sub.info.name) == 0) {
      Subscription& stored = subs_[sub.info.name] = std::move(sub);
      index_subscription_locked(stored);
      ++recovered;
    }
  }
  CMX_INFO("mq.broker") << "recovered " << recovered
                        << " durable subscriptions";
  return util::ok_status();
}

util::Result<SubscriptionInfo> TopicBroker::subscribe(
    const std::string& pattern, SubscriptionOptions options) {
  if (pattern.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "empty topic pattern");
  }
  Subscription sub;
  sub.info.name =
      options.name.empty() ? util::generate_id("sub") : options.name;
  sub.info.pattern = pattern;
  sub.info.queue = std::string(kSubscriptionQueuePrefix) + sub.info.name;
  sub.info.durable = options.durable;
  if (!options.selector.empty()) {
    auto selector = Selector::parse(options.selector);
    if (!selector) return selector.status();
    sub.selector = std::move(selector).value();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (subs_.count(sub.info.name) > 0) {
      return util::make_error(util::ErrorCode::kAlreadyExists,
                              "subscription " + sub.info.name + " exists");
    }
  }
  if (auto s = qm_.ensure_queue(sub.info.queue,
                                QueueOptions{.max_depth = SIZE_MAX,
                                             .system = true});
      !s) {
    return s;
  }
  if (options.durable) {
    // Record the subscription persistently so recover() can rebuild it.
    Message record;
    record.set_property("SUB_NAME", sub.info.name);
    record.set_property("SUB_PATTERN", sub.info.pattern);
    record.set_property("SUB_QUEUE", sub.info.queue);
    record.set_property("SUB_SELECTOR", options.selector);
    record.set_persistence(Persistence::kPersistent);
    if (auto s = qm_.put_local(kSubscriptionRegistryQueue, std::move(record));
        !s) {
      return s;
    }
  }
  SubscriptionInfo info = sub.info;
  std::lock_guard<std::mutex> lk(mu_);
  Subscription& stored = subs_[info.name] = std::move(sub);
  index_subscription_locked(stored);
  return info;
}

void TopicBroker::index_subscription_locked(Subscription& sub) {
  sub.index_id = next_index_id_++;
  std::vector<std::pair<std::string, std::string>> extra_eq;
  if (sub.info.pattern.find('*') == std::string::npos &&
      sub.info.pattern.find('#') == std::string::npos) {
    extra_eq.emplace_back(kTopicProperty, sub.info.pattern);
  }
  index_.add(sub.index_id,
             sub.selector.has_value() ? &*sub.selector : nullptr,
             std::move(extra_eq));
  by_index_id_[sub.index_id] = sub.info.name;
}

util::Status TopicBroker::unsubscribe(const std::string& name) {
  std::string queue;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = subs_.find(name);
    if (it == subs_.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "no subscription " + name);
    }
    queue = it->second.info.queue;
    durable = it->second.info.durable;
    index_.remove(it->second.index_id);
    by_index_id_.erase(it->second.index_id);
    subs_.erase(it);
  }
  if (durable) {
    auto selector = Selector::parse("SUB_NAME = '" + name + "'");
    selector.status().expect_ok("registry selector");
    qm_.get(kSubscriptionRegistryQueue, 0, &selector.value());
  }
  return qm_.delete_queue(queue);
}

util::Status TopicBroker::publish(const std::string& topic, Message msg) {
  if (topic.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument, "empty topic");
  }
  msg.set_property(kTopicProperty, topic);
  // Collect matching subscriptions under the lock; deliver outside it.
  struct Target {
    std::string queue;
    bool durable;
  };
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.published;
    if (selector_index_enabled()) {
      // Index arm: one probe finds the subscriptions whose selector (and,
      // for exact patterns, topic) matches; only wildcard patterns still
      // need the per-subscription topic_matches re-check.
      match_scratch_.clear();
      index_.collect_matches(msg, match_scratch_);
      stats_.selector_filtered += subs_.size() - match_scratch_.size();
      for (std::uint64_t id : match_scratch_) {
        auto nit = by_index_id_.find(id);
        if (nit == by_index_id_.end()) continue;
        const Subscription& sub = subs_.at(nit->second);
        if (!topic_matches(sub.info.pattern, topic)) continue;
        targets.push_back(Target{sub.info.queue, sub.info.durable});
      }
    } else {
      for (const auto& [name, sub] : subs_) {
        if (!topic_matches(sub.info.pattern, topic)) continue;
        if (sub.selector.has_value() && !sub.selector->matches(msg)) {
          ++stats_.selector_filtered;
          continue;
        }
        targets.push_back(Target{sub.info.queue, sub.info.durable});
      }
    }
    if (targets.empty()) {
      ++stats_.unmatched_publishes;
      return util::ok_status();
    }
  }
  for (const auto& target : targets) {
    Message copy = msg;
    copy.set_id("");  // each delivery is its own standard message
    if (!target.durable) {
      copy.set_persistence(Persistence::kNonPersistent);
    }
    if (auto s = qm_.put_local(target.queue, std::move(copy)); !s) {
      CMX_WARN("mq.broker") << "delivery to " << target.queue
                            << " failed: " << s.to_string();
      return s;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.deliveries;
  }
  return util::ok_status();
}

std::optional<SubscriptionInfo> TopicBroker::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = subs_.find(name);
  if (it == subs_.end()) return std::nullopt;
  return it->second.info;
}

std::vector<SubscriptionInfo> TopicBroker::matching(
    const std::string& topic) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SubscriptionInfo> out;
  for (const auto& [name, sub] : subs_) {
    if (topic_matches(sub.info.pattern, topic)) out.push_back(sub.info);
  }
  return out;
}

std::vector<SubscriptionInfo> TopicBroker::subscriptions() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SubscriptionInfo> out;
  out.reserve(subs_.size());
  for (const auto& [name, sub] : subs_) out.push_back(sub.info);
  return out;
}

BrokerStats TopicBroker::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

SelectorIndex::Stats TopicBroker::index_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.stats();
}

std::vector<std::string> TopicBroker::indexed_keys() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.indexed_keys();
}

}  // namespace cmx::mq
