#include "mq/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <mutex>

#include "obs/registry.hpp"
#include "util/codec.hpp"
#include "util/id.hpp"

namespace cmx::mq {

// ---------------------------------------------------------------------
// LogRecord
// ---------------------------------------------------------------------

LogRecord LogRecord::queue_create(std::string queue_name) {
  LogRecord r;
  r.type = Type::kQueueCreate;
  r.queue = std::move(queue_name);
  return r;
}
LogRecord LogRecord::queue_delete(std::string queue_name) {
  LogRecord r;
  r.type = Type::kQueueDelete;
  r.queue = std::move(queue_name);
  return r;
}
LogRecord LogRecord::put(std::string queue_name, Message msg) {
  LogRecord r;
  r.type = Type::kPut;
  r.queue = std::move(queue_name);
  r.message = std::move(msg);
  return r;
}
LogRecord LogRecord::get(std::string queue_name, std::string message_id) {
  LogRecord r;
  r.type = Type::kGet;
  r.queue = std::move(queue_name);
  r.msg_id = std::move(message_id);
  return r;
}
LogRecord LogRecord::tx_begin(std::string id) {
  LogRecord r;
  r.type = Type::kTxBegin;
  r.tx_id = std::move(id);
  return r;
}
LogRecord LogRecord::tx_commit(std::string id) {
  LogRecord r;
  r.type = Type::kTxCommit;
  r.tx_id = std::move(id);
  return r;
}

std::string LogRecord::encode() const {
  util::BinaryWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_string(queue);
  w.put_string(msg_id);
  w.put_string(tx_id);
  if (type == Type::kPut) {
    w.put_string(message.encode());
  } else {
    w.put_string("");
  }
  return w.take();
}

util::Result<LogRecord> LogRecord::decode(std::string_view data) {
  util::BinaryReader r(data);
  auto type = r.get_u8();
  if (!type) return type.status();
  LogRecord rec;
  rec.type = static_cast<Type>(type.value());
  auto queue = r.get_string();
  if (!queue) return queue.status();
  rec.queue = std::move(queue).value();
  auto msg_id = r.get_string();
  if (!msg_id) return msg_id.status();
  rec.msg_id = std::move(msg_id).value();
  auto tx_id = r.get_string();
  if (!tx_id) return tx_id.status();
  rec.tx_id = std::move(tx_id).value();
  auto msg_bytes = r.get_string();
  if (!msg_bytes) return msg_bytes.status();
  if (rec.type == Type::kPut) {
    auto msg = Message::decode(msg_bytes.value());
    if (!msg) return msg.status();
    rec.message = std::move(msg).value();
  }
  return rec;
}

// ---------------------------------------------------------------------
// crc32
// ---------------------------------------------------------------------

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------
// Batch filtering shared by MemoryStore and FileStore replay: drop records
// belonging to batches without a commit marker.
// ---------------------------------------------------------------------

namespace {
std::vector<LogRecord> filter_committed(std::vector<LogRecord> raw) {
  std::vector<LogRecord> out;
  out.reserve(raw.size());
  std::vector<LogRecord> batch;
  bool in_batch = false;
  std::string batch_id;
  for (auto& rec : raw) {
    if (rec.type == LogRecord::Type::kTxBegin) {
      // A new begin while a batch is open means the previous batch never
      // committed: discard it.
      batch.clear();
      in_batch = true;
      batch_id = rec.tx_id;
      continue;
    }
    if (rec.type == LogRecord::Type::kTxCommit) {
      if (in_batch && rec.tx_id == batch_id) {
        for (auto& b : batch) out.push_back(std::move(b));
      }
      batch.clear();
      in_batch = false;
      continue;
    }
    if (in_batch) {
      batch.push_back(std::move(rec));
    } else {
      out.push_back(std::move(rec));
    }
  }
  // An open batch at the tail is an uncommitted (torn) batch: discard.
  return out;
}
}  // namespace

// ---------------------------------------------------------------------
// MemoryStore
// ---------------------------------------------------------------------

util::Status MemoryStore::append(const LogRecord& record) {
  std::lock_guard<std::mutex> lk(mu_);
  records_.push_back(record.encode());
  ++appended_;
  return util::ok_status();
}

util::Status MemoryStore::append_batch(const std::vector<LogRecord>& records) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string tx_id = util::generate_id("batch");
  records_.push_back(LogRecord::tx_begin(tx_id).encode());
  for (const auto& rec : records) {
    records_.push_back(rec.encode());
  }
  records_.push_back(LogRecord::tx_commit(tx_id).encode());
  appended_ += records.size() + 2;
  return util::ok_status();
}

util::Result<std::vector<LogRecord>> MemoryStore::replay() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LogRecord> raw;
  raw.reserve(records_.size());
  for (const auto& bytes : records_) {
    auto rec = LogRecord::decode(bytes);
    if (!rec) break;  // torn tail
    raw.push_back(std::move(rec).value());
  }
  return filter_committed(std::move(raw));
}

util::Status MemoryStore::rewrite(const std::vector<LogRecord>& snapshot) {
  std::lock_guard<std::mutex> lk(mu_);
  records_.clear();
  for (const auto& rec : snapshot) {
    records_.push_back(rec.encode());
  }
  appended_ = 0;
  return util::ok_status();
}

std::size_t MemoryStore::appended_since_compaction() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

void MemoryStore::truncate_tail(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t keep = records_.size() > n ? records_.size() - n : 0;
  records_.resize(keep);
}

std::size_t MemoryStore::record_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

// ---------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------

FileStore::FileStore(std::string path) : path_(std::move(path)) {
  open_for_append().expect_ok("FileStore open");
}

FileStore::~FileStore() {
  if (fd_ >= 0) ::close(fd_);
}

util::Status FileStore::open_for_append() {
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + path_ + ": " + std::strerror(errno));
  }
  return util::ok_status();
}

util::Status FileStore::append_encoded(const std::string& payload) {
  util::BinaryWriter frame;
  frame.put_u32(static_cast<std::uint32_t>(payload.size()));
  frame.put_u32(crc32(payload));
  std::string bytes = frame.take() + payload;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::make_error(util::ErrorCode::kIoError,
                              "write " + path_ + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return util::ok_status();
}

util::Status FileStore::append(const LogRecord& record) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
  auto s = append_encoded(record.encode());
  if (s) {
    ++appended_;
    if (obs::enabled()) {
      CMX_OBS_RECORD("store.append_us", obs::now_us() - t0);
      CMX_OBS_COUNT("store.appends", 1);
    }
  }
  return s;
}

util::Status FileStore::append_batch(const std::vector<LogRecord>& records) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string tx_id = util::generate_id("batch");
  if (auto s = append_encoded(LogRecord::tx_begin(tx_id).encode()); !s) {
    return s;
  }
  for (const auto& rec : records) {
    if (auto s = append_encoded(rec.encode()); !s) return s;
  }
  if (auto s = append_encoded(LogRecord::tx_commit(tx_id).encode()); !s) {
    return s;
  }
  appended_ += records.size() + 2;
  CMX_OBS_COUNT("store.appends", records.size() + 2);
  return util::ok_status();
}

util::Result<std::vector<LogRecord>> FileStore::replay() {
  std::lock_guard<std::mutex> lk(mu_);
  const int rfd = ::open(path_.c_str(), O_RDONLY);
  if (rfd < 0) {
    if (errno == ENOENT) return std::vector<LogRecord>{};
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + path_ + ": " + std::strerror(errno));
  }
  std::string content;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(rfd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(rfd);
      return util::make_error(util::ErrorCode::kIoError,
                              "read " + path_ + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  ::close(rfd);

  std::vector<LogRecord> raw;
  std::size_t pos = 0;
  while (pos + 8 <= content.size()) {
    util::BinaryReader header(std::string_view(content).substr(pos, 8));
    const std::uint32_t len = header.get_u32().value();
    const std::uint32_t crc = header.get_u32().value();
    if (pos + 8 + len > content.size()) break;  // torn tail
    const std::string_view payload =
        std::string_view(content).substr(pos + 8, len);
    if (crc32(payload) != crc) break;  // corrupt tail
    auto rec = LogRecord::decode(payload);
    if (!rec) break;
    raw.push_back(std::move(rec).value());
    pos += 8 + len;
  }
  return filter_committed(std::move(raw));
}

util::Status FileStore::rewrite(const std::vector<LogRecord>& snapshot) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string tmp = path_ + ".compact";
  const int tfd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (tfd < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + tmp + ": " + std::strerror(errno));
  }
  const int old_fd = fd_;
  fd_ = tfd;
  util::Status status = util::ok_status();
  for (const auto& rec : snapshot) {
    status = append_encoded(rec.encode());
    if (!status) break;
  }
  if (status) {
    ::fsync(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      status = util::make_error(util::ErrorCode::kIoError,
                                "rename: " + std::string(std::strerror(errno)));
    }
  }
  if (!status) {
    // Keep writing to the original log; discard the partial compaction.
    fd_ = old_fd;
    ::close(tfd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(old_fd);
  // fd_ (== tfd) now refers to the renamed file; keep appending to it.
  appended_ = 0;
  return util::ok_status();
}

std::size_t FileStore::appended_since_compaction() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

}  // namespace cmx::mq
