#include "mq/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

#include "obs/registry.hpp"
#include "util/arena.hpp"
#include "util/codec.hpp"
#include "util/id.hpp"

namespace cmx::mq {

// ---------------------------------------------------------------------
// LogRecord
// ---------------------------------------------------------------------

LogRecord LogRecord::queue_create(std::string queue_name) {
  LogRecord r;
  r.type = Type::kQueueCreate;
  r.queue = std::move(queue_name);
  return r;
}
LogRecord LogRecord::queue_delete(std::string queue_name) {
  LogRecord r;
  r.type = Type::kQueueDelete;
  r.queue = std::move(queue_name);
  return r;
}
LogRecord LogRecord::put(std::string queue_name, Message msg) {
  LogRecord r;
  r.type = Type::kPut;
  r.queue = std::move(queue_name);
  r.message = std::move(msg);
  return r;
}
LogRecord LogRecord::get(std::string queue_name, std::string message_id) {
  LogRecord r;
  r.type = Type::kGet;
  r.queue = std::move(queue_name);
  r.msg_id = std::move(message_id);
  return r;
}
LogRecord LogRecord::put_ref(const std::string& queue_name,
                             const Message& msg) {
  LogRecord r;
  r.type = Type::kPut;
  r.queue_ref = queue_name;
  r.message_ref = &msg;
  return r;
}
LogRecord LogRecord::get_ref(const std::string& queue_name,
                             std::string_view message_id) {
  LogRecord r;
  r.type = Type::kGet;
  r.queue_ref = queue_name;
  r.msg_id_ref = message_id;
  return r;
}
LogRecord LogRecord::tx_begin(std::string id) {
  LogRecord r;
  r.type = Type::kTxBegin;
  r.tx_id = std::move(id);
  return r;
}
LogRecord LogRecord::tx_commit(std::string id) {
  LogRecord r;
  r.type = Type::kTxCommit;
  r.tx_id = std::move(id);
  return r;
}

std::string LogRecord::encode() const {
  util::BinaryWriter w;
  encode_into(w);
  return w.take();
}

void LogRecord::encode_into(util::BinaryWriter& w) const {
  const std::string_view q = queue_name();
  const std::string_view id = message_id();
  w.reserve(17 + q.size() + id.size() + tx_id.size());
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_string(q);
  w.put_string(id);
  w.put_string(tx_id);
  if (type == Type::kPut) {
    // Serves the frame from the memo (borrowed frames included) without
    // materializing an intermediate string per record.
    msg().append_frame_to(w);
  } else {
    w.put_string("");
  }
}

util::Result<LogRecord> LogRecord::decode(std::string_view data) {
  util::BinaryReader r(data);
  auto type = r.get_u8();
  if (!type) return type.status();
  LogRecord rec;
  rec.type = static_cast<Type>(type.value());
  auto queue = r.get_string();
  if (!queue) return queue.status();
  rec.queue = std::move(queue).value();
  auto msg_id = r.get_string();
  if (!msg_id) return msg_id.status();
  rec.msg_id = std::move(msg_id).value();
  auto tx_id = r.get_string();
  if (!tx_id) return tx_id.status();
  rec.tx_id = std::move(tx_id).value();
  auto msg_bytes = r.get_string();
  if (!msg_bytes) return msg_bytes.status();
  if (rec.type == Type::kPut) {
    auto msg = Message::decode(msg_bytes.value());
    if (!msg) return msg.status();
    rec.message = std::move(msg).value();
  }
  return rec;
}

// ---------------------------------------------------------------------
// crc32
// ---------------------------------------------------------------------

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------
// crc32c (Castagnoli). The group-commit frame format checksums a whole
// append call at once, so this sits on the producer hot path: use the
// SSE4.2 crc32 instruction when available, slice-by-8 tables otherwise.
// ---------------------------------------------------------------------

namespace {
using Crc32cTables = std::array<std::array<std::uint32_t, 256>, 8>;

Crc32cTables make_crc32c_tables() {
  Crc32cTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

std::uint32_t crc32c_sw(std::string_view data) {
  static const Crc32cTables t = make_crc32c_tables();
  const auto le32 = [](const char* q) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(q[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(q[1])) << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(q[2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(q[3]))
            << 24);
  };
  std::uint32_t c = 0xFFFFFFFFu;
  const char* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = le32(p) ^ c;
    const std::uint32_t hi = le32(p + 4);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    c = t[0][(c ^ static_cast<unsigned char>(*p++)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::string_view data) {
  std::uint64_t c = 0xFFFFFFFFu;
  const char* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n--) {
    c32 = __builtin_ia32_crc32qi(c32, static_cast<unsigned char>(*p++));
  }
  return c32 ^ 0xFFFFFFFFu;
}
#endif
}  // namespace

std::uint32_t crc32c(std::string_view data) {
#if defined(__x86_64__)
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return crc32c_hw(data);
#endif
  return crc32c_sw(data);
}

// ---------------------------------------------------------------------
// Batch filtering shared by MemoryStore and FileStore replay: drop records
// belonging to batches without a commit marker. Markers may nest (e.g. a
// store layered over another batching store): an inner batch only survives
// if every enclosing batch also committed, so a torn outer batch is
// dropped as a unit.
// ---------------------------------------------------------------------

namespace {
std::vector<LogRecord> filter_committed(std::vector<LogRecord> raw) {
  std::vector<LogRecord> out;
  out.reserve(raw.size());
  struct OpenBatch {
    std::string id;
    std::vector<LogRecord> records;
  };
  std::vector<OpenBatch> stack;
  for (auto& rec : raw) {
    if (rec.type == LogRecord::Type::kTxBegin) {
      stack.push_back({rec.tx_id, {}});
      continue;
    }
    if (rec.type == LogRecord::Type::kTxCommit) {
      if (stack.empty() || stack.back().id != rec.tx_id) {
        // A commit without its matching begin: the log lost the batch
        // structure (e.g. a half-appended batch followed by new records).
        // Discard everything still open.
        stack.clear();
        continue;
      }
      OpenBatch committed = std::move(stack.back());
      stack.pop_back();
      auto& dest = stack.empty() ? out : stack.back().records;
      for (auto& b : committed.records) dest.push_back(std::move(b));
      continue;
    }
    auto& dest = stack.empty() ? out : stack.back().records;
    dest.push_back(std::move(rec));
  }
  // Batches still open at the tail are uncommitted (torn): discard.
  return out;
}
}  // namespace

// ---------------------------------------------------------------------
// MemoryStore
// ---------------------------------------------------------------------

namespace {

// Appends one u32-length-prefixed record to `blob`. The length is written
// after the record (whose size is unknown up front) by patching the
// placeholder — BinaryWriter's integer encoding is a native-order memcpy.
void append_prefixed_record(std::string& blob, const LogRecord& rec) {
  const std::size_t len_pos = blob.size();
  blob.append(4, '\0');
  util::BinaryWriter w(blob);
  rec.encode_into(w);
  const std::uint32_t len =
      static_cast<std::uint32_t>(blob.size() - len_pos - 4);
  std::memcpy(&blob[len_pos], &len, sizeof(len));
}

// Walks the record boundaries of a chunk blob: calls `fn(record_bytes)`
// for each record. The framing is trusted (we wrote it); bounds checks
// guard against a mis-sized truncate only.
template <typename Fn>
void for_each_record(const std::string& blob, Fn&& fn) {
  std::size_t pos = 0;
  while (pos + 4 <= blob.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, blob.data() + pos, sizeof(len));
    pos += 4;
    if (pos + len > blob.size()) break;
    fn(std::string_view(blob.data() + pos, len));
    pos += len;
  }
}

}  // namespace

util::Status MemoryStore::append(const LogRecord& record) {
  if (util::arena_enabled()) {
    // Slab path: encode outside the mutex so concurrent appenders (the
    // per-get consumption log, the channel mover's batches) serialize
    // only on the vector push, not on each other's serialization work.
    Chunk chunk;
    chunk.blob.reserve(4 + record.encoded_size_hint());
    append_prefixed_record(chunk.blob, record);
    chunk.count = 1;
    std::lock_guard<std::mutex> lk(mu_);
    chunks_.push_back(std::move(chunk));
    ++total_records_;
    ++appended_;
    return util::ok_status();
  }
  std::lock_guard<std::mutex> lk(mu_);
  Chunk chunk;
  append_prefixed_record(chunk.blob, record);
  chunk.count = 1;
  chunks_.push_back(std::move(chunk));
  ++total_records_;
  ++appended_;
  return util::ok_status();
}

util::Status MemoryStore::append_batch(const std::vector<LogRecord>& records) {
  const std::string tx_id = util::generate_id("tx");
  if (util::arena_enabled()) {
    // Slabs for the whole bracketed batch, encoded outside the mutex: a
    // handful of allocations and one short critical section instead of
    // n+2 encodes under the lock. Reserves are sized from the records
    // (exact when frames are memoized) so large-body batches don't
    // realloc-copy the blob per record — and each slab is capped near the
    // allocator's mmap threshold, because one giant blob per huge batch
    // would be a fresh mmap/munmap (page faults on every touch) instead
    // of a recycled heap block.
    constexpr std::size_t kSlabTarget = 96 * 1024;
    const LogRecord begin = LogRecord::tx_begin(tx_id);
    const LogRecord commit = LogRecord::tx_commit(tx_id);
    std::size_t remaining = 2 * (4 + begin.encoded_size_hint());
    for (const auto& rec : records) remaining += 4 + rec.encoded_size_hint();
    std::vector<Chunk> staged;
    Chunk cur;
    auto add = [&](const LogRecord& rec) {
      const std::size_t need = 4 + rec.encoded_size_hint();
      if (cur.count > 0 && cur.blob.size() + need > kSlabTarget) {
        staged.push_back(std::move(cur));
        cur = Chunk{};
      }
      if (cur.count == 0) {
        cur.blob.reserve(std::max(need, std::min(remaining, kSlabTarget)));
      }
      append_prefixed_record(cur.blob, rec);
      ++cur.count;
      remaining -= std::min(remaining, need);
    };
    add(begin);
    for (const auto& rec : records) add(rec);
    add(commit);
    staged.push_back(std::move(cur));
    std::lock_guard<std::mutex> lk(mu_);
    total_records_ += records.size() + 2;
    appended_ += records.size() + 2;
    for (auto& c : staged) chunks_.push_back(std::move(c));
    return util::ok_status();
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto push_one = [this](const LogRecord& rec) {
    Chunk chunk;
    append_prefixed_record(chunk.blob, rec);
    chunk.count = 1;
    chunks_.push_back(std::move(chunk));
    ++total_records_;
  };
  push_one(LogRecord::tx_begin(tx_id));
  for (const auto& rec : records) push_one(rec);
  push_one(LogRecord::tx_commit(tx_id));
  appended_ += records.size() + 2;
  return util::ok_status();
}

util::Result<std::vector<LogRecord>> MemoryStore::replay() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LogRecord> raw;
  raw.reserve(total_records_);
  bool torn = false;
  for (const auto& chunk : chunks_) {
    if (torn) break;
    for_each_record(chunk.blob, [&](std::string_view bytes) {
      if (torn) return;
      auto rec = LogRecord::decode(bytes);
      if (!rec) {
        torn = true;  // torn tail
        return;
      }
      raw.push_back(std::move(rec).value());
    });
  }
  return filter_committed(std::move(raw));
}

util::Status MemoryStore::rewrite(const std::vector<LogRecord>& snapshot) {
  if (util::arena_enabled()) {
    std::size_t bytes = 0;
    for (const auto& rec : snapshot) bytes += 4 + rec.encoded_size_hint();
    Chunk chunk;
    chunk.blob.reserve(bytes);
    for (const auto& rec : snapshot) append_prefixed_record(chunk.blob, rec);
    chunk.count = snapshot.size();
    std::lock_guard<std::mutex> lk(mu_);
    chunks_.clear();
    total_records_ = chunk.count;
    if (chunk.count > 0) chunks_.push_back(std::move(chunk));
    appended_ = 0;
    return util::ok_status();
  }
  std::lock_guard<std::mutex> lk(mu_);
  chunks_.clear();
  total_records_ = 0;
  for (const auto& rec : snapshot) {
    Chunk chunk;
    append_prefixed_record(chunk.blob, rec);
    chunk.count = 1;
    chunks_.push_back(std::move(chunk));
    ++total_records_;
  }
  appended_ = 0;
  return util::ok_status();
}

std::size_t MemoryStore::appended_since_compaction() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

void MemoryStore::truncate_tail(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  while (n > 0 && !chunks_.empty()) {
    Chunk& last = chunks_.back();
    if (last.count <= n) {
      n -= last.count;
      total_records_ -= last.count;
      chunks_.pop_back();
      continue;
    }
    // Partial cut inside a slab: keep the first count-n records.
    const std::size_t keep = last.count - n;
    std::size_t pos = 0;
    std::size_t seen = 0;
    for_each_record(last.blob, [&](std::string_view bytes) {
      if (seen < keep) {
        pos = static_cast<std::size_t>(bytes.data() + bytes.size() -
                                       last.blob.data());
        ++seen;
      }
    });
    last.blob.resize(pos);
    last.count = keep;
    total_records_ -= n;
    n = 0;
  }
}

std::size_t MemoryStore::record_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_records_;
}

// ---------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------

namespace {
// One legacy on-disk frame: u32 length, u32 crc32(payload), payload.
std::string frame(const std::string& payload) {
  util::BinaryWriter header;
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  header.put_u32(crc32(payload));
  return header.take() + payload;
}

// The group-commit (v2) log starts with this magic; replay uses it to tell
// the two formats apart.
constexpr char kMagic[8] = {'C', 'M', 'X', 'L', 'O', 'G', '2', '\n'};
constexpr std::size_t kMagicSize = sizeof(kMagic);

// Backpressure bound for write-behind (kNone) staging: an appender that
// finds this many bytes already staged waits for the commit thread to
// catch up instead of growing the buffer without limit.
constexpr std::size_t kMaxStagedBytes = 4u << 20;

// Appends one inner record frame (u32 length, record bytes) to a blob.
void append_inner(std::string& blob, const std::string& rec) {
  util::BinaryWriter header;
  header.put_u32(static_cast<std::uint32_t>(rec.size()));
  blob += header.take();
  blob += rec;
}

// Encodes `rec` straight into `blob` (length prefix back-patched), so the
// group-commit staging path touches no per-record temporary string.
void append_inner_record(std::string& blob, const LogRecord& rec) {
  util::BinaryWriter w(blob);
  const std::size_t len_at = blob.size();
  w.put_u32(0);  // placeholder; patched below
  const std::size_t body_at = blob.size();
  rec.encode_into(w);
  const auto len = static_cast<std::uint32_t>(blob.size() - body_at);
  std::memcpy(blob.data() + len_at, &len, sizeof(len));
}

// Seals a blob of inner frames into one v2 outer frame:
// u32 blob length, u32 crc32c(blob), blob. Built on the appender's thread
// so the commit thread has nothing to do but write.
std::string seal_frame(std::string_view blob) {
  util::BinaryWriter header;
  header.put_u32(static_cast<std::uint32_t>(blob.size()));
  header.put_u32(crc32c(blob));
  std::string out = header.take();
  out.reserve(out.size() + blob.size());
  out.append(blob);
  return out;
}

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

FileStore::FileStore(std::string path, FileStoreOptions options)
    : path_(std::move(path)), options_(options) {
  open_for_append().expect_ok("FileStore open");
  last_sync_us_ = steady_us();
  if (options_.group_commit) {
    if (::lseek(fd_, 0, SEEK_END) == 0) {
      write_all(kMagic, kMagicSize).expect_ok("FileStore magic");
    }
    open_group_ = std::make_shared<Group>();
    commit_thread_ = std::thread([this] { commit_loop(); });
  }
}

FileStore::~FileStore() {
  if (options_.group_commit) {
    {
      std::lock_guard<std::mutex> lk(staging_mu_);
      stop_ = true;
    }
    // The commit thread drains every staged group before exiting, so a
    // clean shutdown persists all acknowledged write-behind records.
    staging_cv_.notify_all();
    done_cv_.notify_all();
    commit_thread_.join();
  }
  std::lock_guard<std::mutex> lk(io_mu_);
  if (fd_ >= 0) {
    // kInterval may owe a sync for the tail of the log; a clean shutdown
    // must not be less durable than the policy promises.
    if (options_.sync != SyncPolicy::kNone) ::fsync(fd_);
    ::close(fd_);
  }
}

util::Status FileStore::open_for_append() {
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + path_ + ": " + std::strerror(errno));
  }
  return util::ok_status();
}

util::Status FileStore::write_all(const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd_, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::make_error(util::ErrorCode::kIoError,
                              "write " + path_ + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return util::ok_status();
}

bool FileStore::sync_due_locked() {
  const std::uint64_t now = steady_us();
  const std::uint64_t interval_us =
      static_cast<std::uint64_t>(options_.sync_interval_ms) * 1000u;
  if (now - last_sync_us_ < interval_us) return false;
  last_sync_us_ = now;
  return true;
}

// Group-commit path: stages one sealed v2 frame for the commit thread.
// Under kNone (write-behind) the append is acknowledged as soon as the
// frame is staged — the only wait is backpressure when the staging buffer
// is full, and a previous background write failure surfaces here via the
// sticky status. Under kEveryBatch/kInterval the appender blocks on its
// group's commit ticket, so the acknowledgment follows the write (and,
// for kEveryBatch, the fsync).
util::Status FileStore::append_frame(std::string frame_bytes,
                                     std::size_t records) {
  const bool wait_for_commit = options_.sync != SyncPolicy::kNone;
  std::shared_ptr<Group> group;
  bool was_empty = false;
  {
    std::unique_lock<std::mutex> lk(staging_mu_);
    done_cv_.wait(lk, [&] {
      return stop_ || open_group_->bytes.size() < kMaxStagedBytes;
    });
    if (stop_) {
      return util::make_error(util::ErrorCode::kClosed,
                              "store " + path_ + " is shutting down");
    }
    if (!sticky_) return sticky_;
    group = open_group_;
    was_empty = group->bytes.empty();
    group->bytes += frame_bytes;
    group->records += records;
  }
  // The commit thread only sleeps on an empty open group, so only the
  // empty -> non-empty transition needs a wake.
  if (was_empty) staging_cv_.notify_one();
  if (!wait_for_commit) return util::ok_status();
  std::unique_lock<std::mutex> lk(staging_mu_);
  done_cv_.wait(lk, [&] { return group->done; });
  return group->status;
}

// Legacy per-record path (group_commit=false), kept bit-faithful to the
// pre-group-commit implementation as the A/B baseline for
// bench_store_commit: encode, frame and write happen on the caller's
// thread under the io mutex, one ::write per record.
util::Status FileStore::append_legacy(const LogRecord* const* records,
                                      std::size_t n) {
  std::lock_guard<std::mutex> lk(io_mu_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string bytes = frame(records[i]->encode());
    if (auto s = write_all(bytes.data(), bytes.size()); !s) return s;
  }
  if (options_.sync == SyncPolicy::kEveryBatch ||
      (options_.sync == SyncPolicy::kInterval && sync_due_locked())) {
    ::fsync(fd_);
    CMX_OBS_COUNT("store.fsyncs", 1);
  }
  appended_.fetch_add(n, std::memory_order_relaxed);
  CMX_OBS_COUNT("store.appends", n);
  return util::ok_status();
}

// The commit thread: swaps out the open group and writes all of its frames
// with one ::write. A crash mid-write tears at most a suffix of frames —
// each appender's call is a self-contained checksummed frame, so replay
// keeps every fully-written call and drops torn ones whole.
void FileStore::commit_loop() {
  std::unique_lock<std::mutex> lk(staging_mu_);
  while (true) {
    staging_cv_.wait(lk, [&] { return stop_ || !open_group_->bytes.empty(); });
    if (open_group_->bytes.empty()) break;  // stop_ and fully drained
    std::shared_ptr<Group> group = std::move(open_group_);
    open_group_ = std::make_shared<Group>();
    commit_inflight_ = true;
    lk.unlock();

    util::Status status = util::ok_status();
    {
      std::lock_guard<std::mutex> io(io_mu_);
      status = write_all(group->bytes.data(), group->bytes.size());
      if (status && (options_.sync == SyncPolicy::kEveryBatch ||
                     (options_.sync == SyncPolicy::kInterval &&
                      sync_due_locked()))) {
        ::fsync(fd_);
        CMX_OBS_COUNT("store.fsyncs", 1);
      }
    }
    if (status) {
      appended_.fetch_add(group->records, std::memory_order_relaxed);
      CMX_OBS_COUNT("store.appends", group->records);
      CMX_OBS_COUNT("store.group_commits", 1);
      CMX_OBS_RECORD("store.group_records", group->records);
    }

    lk.lock();
    commit_inflight_ = false;
    group->done = true;
    group->status = status;
    if (!status && sticky_) sticky_ = status;
    done_cv_.notify_all();
  }
}

void FileStore::drain_staging() {
  if (!options_.group_commit) return;
  std::unique_lock<std::mutex> lk(staging_mu_);
  staging_cv_.notify_one();
  done_cv_.wait(lk, [&] {
    return open_group_->bytes.empty() && !commit_inflight_;
  });
}

util::Status FileStore::append(const LogRecord& record) {
  const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
  util::Status s;
  if (options_.group_commit) {
    // Encoding and checksumming happen here, on the appender's thread —
    // the commit thread only writes.
    std::string blob;
    append_inner_record(blob, record);
    s = append_frame(seal_frame(blob), 1);
  } else {
    const LogRecord* r = &record;
    s = append_legacy(&r, 1);
  }
  if (s && obs::enabled()) {
    // With group commit this includes the wait for the commit thread —
    // i.e. the latency an appender actually observes.
    CMX_OBS_RECORD("store.append_us", obs::now_us() - t0);
  }
  return s;
}

util::Status FileStore::append_batch(const std::vector<LogRecord>& records) {
  const LogRecord begin = LogRecord::tx_begin(util::generate_id("tx"));
  const LogRecord commit = LogRecord::tx_commit(begin.tx_id);
  if (!options_.group_commit) {
    std::vector<const LogRecord*> ptrs;
    ptrs.reserve(records.size() + 2);
    ptrs.push_back(&begin);
    for (const auto& rec : records) ptrs.push_back(&rec);
    ptrs.push_back(&commit);
    return append_legacy(ptrs.data(), ptrs.size());
  }
  // The whole batch — markers included, for parity with MemoryStore and
  // the shared replay filter — is one outer frame, so a torn batch drops
  // as a unit at the frame level too. Size the blob up front so staging a
  // batch of large bodies doesn't realloc-copy per record.
  std::size_t bytes = 2 * (4 + begin.encoded_size_hint());
  for (const auto& rec : records) bytes += 4 + rec.encoded_size_hint();
  std::string blob;
  blob.reserve(bytes);
  append_inner_record(blob, begin);
  for (const auto& rec : records) {
    append_inner_record(blob, rec);
  }
  append_inner_record(blob, commit);
  return append_frame(seal_frame(blob), records.size() + 2);
}

util::Result<std::vector<LogRecord>> FileStore::replay() {
  // Replay must observe every acknowledged record, including write-behind
  // ones still in the staging buffer.
  drain_staging();
  std::lock_guard<std::mutex> lk(io_mu_);
  const int rfd = ::open(path_.c_str(), O_RDONLY);
  if (rfd < 0) {
    if (errno == ENOENT) return std::vector<LogRecord>{};
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + path_ + ": " + std::strerror(errno));
  }
  std::string content;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(rfd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(rfd);
      return util::make_error(util::ErrorCode::kIoError,
                              "read " + path_ + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  ::close(rfd);

  std::vector<LogRecord> raw;
  const std::string_view view(content);
  if (view.size() >= kMagicSize &&
      std::memcmp(view.data(), kMagic, kMagicSize) == 0) {
    // v2 (group-commit) format: a sequence of outer frames, each holding
    // the inner-framed records of one append call. A torn or corrupt
    // outer frame ends replay — nothing after it was acknowledged before
    // anything in it.
    std::size_t pos = kMagicSize;
    while (pos + 8 <= view.size()) {
      util::BinaryReader header(view.substr(pos, 8));
      const std::uint32_t len = header.get_u32().value();
      const std::uint32_t crc = header.get_u32().value();
      if (pos + 8 + len > view.size()) break;  // torn tail
      const std::string_view blob = view.substr(pos + 8, len);
      if (crc32c(blob) != crc) break;  // corrupt tail
      std::vector<LogRecord> frame_records;
      std::size_t ip = 0;
      bool frame_ok = true;
      while (ip < blob.size()) {
        if (ip + 4 > blob.size()) {
          frame_ok = false;
          break;
        }
        util::BinaryReader inner(blob.substr(ip, 4));
        const std::uint32_t rec_len = inner.get_u32().value();
        if (ip + 4 + rec_len > blob.size()) {
          frame_ok = false;
          break;
        }
        auto rec = LogRecord::decode(blob.substr(ip + 4, rec_len));
        if (!rec) {
          frame_ok = false;
          break;
        }
        frame_records.push_back(std::move(rec).value());
        ip += 4 + rec_len;
      }
      // A CRC-valid frame with a malformed interior means a writer bug,
      // not a torn write; stop conservatively rather than skip it.
      if (!frame_ok) break;
      for (auto& rec : frame_records) raw.push_back(std::move(rec));
      pos += 8 + len;
    }
  } else {
    // Legacy format: one frame per record.
    std::size_t pos = 0;
    while (pos + 8 <= view.size()) {
      util::BinaryReader header(view.substr(pos, 8));
      const std::uint32_t len = header.get_u32().value();
      const std::uint32_t crc = header.get_u32().value();
      if (pos + 8 + len > view.size()) break;  // torn tail
      const std::string_view payload = view.substr(pos + 8, len);
      if (crc32(payload) != crc) break;  // corrupt tail
      auto rec = LogRecord::decode(payload);
      if (!rec) break;
      raw.push_back(std::move(rec).value());
      pos += 8 + len;
    }
  }
  return filter_committed(std::move(raw));
}

util::Status FileStore::rewrite(const std::vector<LogRecord>& snapshot) {
  // Flush barrier: every record acknowledged before this call must reach
  // the old log before the snapshot replaces it — a write-behind record
  // held in staging across the rename would otherwise land in the NEW log
  // and duplicate the snapshot's state. Groups staged after the drain
  // commit to the new log (their appenders were acknowledged after the
  // snapshot was taken, so they are legitimately on top of it).
  drain_staging();
  // Holding io_mu_ across the whole rewrite blocks the commit thread, so
  // no group can be written to the old fd after the rename.
  std::lock_guard<std::mutex> lk(io_mu_);
  const std::string tmp = path_ + ".compact";
  const int tfd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (tfd < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            "open " + tmp + ": " + std::strerror(errno));
  }
  const int old_fd = fd_;
  fd_ = tfd;
  util::Status status = util::ok_status();
  if (options_.group_commit) {
    // v2 snapshot: magic plus one outer frame holding every record.
    status = write_all(kMagic, kMagicSize);
    if (status && !snapshot.empty()) {
      std::string blob;
      for (const auto& rec : snapshot) {
        append_inner(blob, rec.encode());
      }
      const std::string bytes = seal_frame(blob);
      status = write_all(bytes.data(), bytes.size());
    }
  } else {
    for (const auto& rec : snapshot) {
      const std::string bytes = frame(rec.encode());
      status = write_all(bytes.data(), bytes.size());
      if (!status) break;
    }
  }
  if (status) {
    ::fsync(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      status = util::make_error(util::ErrorCode::kIoError,
                                "rename: " + std::string(std::strerror(errno)));
    }
  }
  if (!status) {
    // Keep writing to the original log; discard the partial compaction.
    fd_ = old_fd;
    ::close(tfd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(old_fd);
  // fd_ (== tfd) now refers to the renamed file; keep appending to it.
  appended_.store(0, std::memory_order_relaxed);
  return util::ok_status();
}

std::size_t FileStore::appended_since_compaction() const {
  return appended_.load(std::memory_order_relaxed);
}

}  // namespace cmx::mq
