#include "mq/selector.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "mq/selector_ast.hpp"

namespace cmx::mq {
namespace detail {

// ---------------------------------------------------------------------
// Tokenizer + recursive-descent parser (the AST lives in selector_ast.hpp)
// ---------------------------------------------------------------------

struct Token {
  enum class Kind {
    kEnd,
    kIdent,
    kKeyword,
    kInt,
    kFloat,
    kString,
    kOp,  // = <> < <= > >= ( ) , + - * /
  } kind = Kind::kEnd;
  std::string text;      // keyword/op text (keywords upper-cased)
  std::int64_t int_val = 0;
  double float_val = 0;
  std::size_t pos = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& input) : input_(input) { advance(); }

  util::Result<NodePtr> parse() {
    auto expr = parse_or();
    if (!expr) return expr;
    if (cur_.kind != Token::Kind::kEnd) {
      return error("unexpected trailing input");
    }
    return expr;
  }

 private:
  util::Status error_status(const std::string& what) const {
    return util::make_error(
        util::ErrorCode::kInvalidArgument,
        "selector: " + what + " at position " + std::to_string(cur_.pos));
  }
  util::Result<NodePtr> error(const std::string& what) const {
    return error_status(what);
  }

  bool is_keyword(const char* kw) const {
    return cur_.kind == Token::Kind::kKeyword && cur_.text == kw;
  }
  bool is_op(const char* op) const {
    return cur_.kind == Token::Kind::kOp && cur_.text == op;
  }
  bool accept_keyword(const char* kw) {
    if (!is_keyword(kw)) return false;
    advance();
    return true;
  }
  bool accept_op(const char* op) {
    if (!is_op(op)) return false;
    advance();
    return true;
  }

  util::Result<NodePtr> parse_or() {
    auto left = parse_and();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (accept_keyword("OR")) {
      auto right = parse_and();
      if (!right) return right;
      node = std::make_unique<OrNode>(std::move(node),
                                      std::move(right).value());
    }
    return node;
  }

  util::Result<NodePtr> parse_and() {
    auto left = parse_unary();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (accept_keyword("AND")) {
      auto right = parse_unary();
      if (!right) return right;
      node = std::make_unique<AndNode>(std::move(node),
                                       std::move(right).value());
    }
    return node;
  }

  util::Result<NodePtr> parse_unary() {
    if (accept_keyword("NOT")) {
      auto child = parse_unary();
      if (!child) return child;
      return NodePtr(std::make_unique<NotNode>(std::move(child).value()));
    }
    return parse_cmp();
  }

  util::Result<NodePtr> parse_cmp() {
    auto left = parse_sum();
    if (!left) return left;
    NodePtr node = std::move(left).value();

    static constexpr std::pair<const char*, CmpOp> kOps[] = {
        {"<>", CmpOp::kNe}, {"<=", CmpOp::kLe}, {">=", CmpOp::kGe},
        {"=", CmpOp::kEq},  {"<", CmpOp::kLt},  {">", CmpOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (is_op(text)) {
        advance();
        auto right = parse_sum();
        if (!right) return right;
        return NodePtr(std::make_unique<CmpNode>(std::move(node), op,
                                                 std::move(right).value()));
      }
    }

    if (accept_keyword("IS")) {
      const bool negated = accept_keyword("NOT");
      if (!accept_keyword("NULL")) return error("expected NULL after IS");
      return NodePtr(std::make_unique<IsNullNode>(std::move(node), negated));
    }

    bool negated = false;
    if (is_keyword("NOT")) {
      // lookahead: NOT IN / NOT LIKE / NOT BETWEEN
      advance();
      negated = true;
    }
    if (accept_keyword("IN")) {
      if (!accept_op("(")) return error("expected ( after IN");
      std::vector<OwnedValue> items;
      while (true) {
        auto lit = parse_literal_value();
        if (!lit) return lit.status();
        items.push_back(std::move(lit).value());
        if (accept_op(",")) continue;
        if (accept_op(")")) break;
        return error("expected , or ) in IN list");
      }
      return NodePtr(std::make_unique<InNode>(std::move(node),
                                              std::move(items), negated));
    }
    if (accept_keyword("LIKE")) {
      if (cur_.kind != Token::Kind::kString) {
        return error("expected string pattern after LIKE");
      }
      std::string pattern = cur_.text;
      advance();
      char escape = '\0';
      if (accept_keyword("ESCAPE")) {
        if (cur_.kind != Token::Kind::kString || cur_.text.size() != 1) {
          return error("ESCAPE requires a single-character string");
        }
        escape = cur_.text[0];
        advance();
      }
      return NodePtr(std::make_unique<LikeNode>(
          std::move(node), std::move(pattern), escape, negated));
    }
    if (accept_keyword("BETWEEN")) {
      auto lo = parse_sum();
      if (!lo) return lo;
      if (!accept_keyword("AND")) return error("expected AND in BETWEEN");
      auto hi = parse_sum();
      if (!hi) return hi;
      return NodePtr(std::make_unique<BetweenNode>(
          std::move(node), std::move(lo).value(), std::move(hi).value(),
          negated));
    }
    if (negated) {
      // we consumed NOT but found no IN/LIKE/BETWEEN: treat as logical NOT
      return NodePtr(std::make_unique<NotNode>(std::move(node)));
    }
    return node;
  }

  util::Result<NodePtr> parse_sum() {
    auto left = parse_prod();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (true) {
      if (accept_op("+")) {
        auto right = parse_prod();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kAdd,
                                           std::move(right).value());
      } else if (accept_op("-")) {
        auto right = parse_prod();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kSub,
                                           std::move(right).value());
      } else {
        return node;
      }
    }
  }

  util::Result<NodePtr> parse_prod() {
    auto left = parse_atom();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (true) {
      if (accept_op("*")) {
        auto right = parse_atom();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kMul,
                                           std::move(right).value());
      } else if (accept_op("/")) {
        auto right = parse_atom();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kDiv,
                                           std::move(right).value());
      } else {
        return node;
      }
    }
  }

  util::Result<NodePtr> parse_atom() {
    if (accept_op("-")) {
      auto child = parse_atom();
      if (!child) return child;
      return NodePtr(std::make_unique<ArithNode>(std::move(child).value(),
                                                 ArithOp::kNeg, nullptr));
    }
    if (accept_op("(")) {
      auto inner = parse_or();
      if (!inner) return inner;
      if (!accept_op(")")) return error("expected )");
      return inner;
    }
    if (cur_.kind == Token::Kind::kIdent) {
      auto node = std::make_unique<IdentNode>(cur_.text);
      advance();
      return NodePtr(std::move(node));
    }
    auto lit = parse_literal_value();
    if (!lit) return lit.status();
    return NodePtr(std::make_unique<LiteralNode>(std::move(lit).value()));
  }

  util::Result<OwnedValue> parse_literal_value() {
    switch (cur_.kind) {
      case Token::Kind::kInt: {
        OwnedValue v = OwnedValue::of(cur_.int_val);
        advance();
        return v;
      }
      case Token::Kind::kFloat: {
        OwnedValue v = OwnedValue::of(cur_.float_val);
        advance();
        return v;
      }
      case Token::Kind::kString: {
        OwnedValue v = OwnedValue::of(cur_.text);
        advance();
        return v;
      }
      case Token::Kind::kKeyword:
        if (cur_.text == "TRUE") {
          advance();
          return OwnedValue::of(true);
        }
        if (cur_.text == "FALSE") {
          advance();
          return OwnedValue::of(false);
        }
        [[fallthrough]];
      default:
        return error_status("expected literal");
    }
  }

  void advance() {
    skip_ws();
    cur_ = Token{};
    cur_.pos = pos_;
    if (pos_ >= input_.size()) {
      cur_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '$' ||
              input_[pos_] == '.')) {
        ++pos_;
      }
      std::string word = input_.substr(start, pos_ - start);
      std::string upper = word;
      for (auto& ch : upper) ch = char(std::toupper(unsigned(ch)));
      static const char* kKeywords[] = {"AND",  "OR",   "NOT",     "IS",
                                        "NULL", "IN",   "LIKE",    "ESCAPE",
                                        "TRUE", "FALSE", "BETWEEN"};
      for (const char* kw : kKeywords) {
        if (upper == kw) {
          cur_.kind = Token::Kind::kKeyword;
          cur_.text = upper;
          return;
        }
      }
      cur_.kind = Token::Kind::kIdent;
      cur_.text = std::move(word);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      bool is_float = false;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.')) {
        if (input_[pos_] == '.') is_float = true;
        ++pos_;
      }
      const std::string num = input_.substr(start, pos_ - start);
      if (is_float) {
        cur_.kind = Token::Kind::kFloat;
        cur_.float_val = std::strtod(num.c_str(), nullptr);
      } else {
        cur_.kind = Token::Kind::kInt;
        cur_.int_val = std::strtoll(num.c_str(), nullptr, 10);
      }
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < input_.size()) {
        if (input_[pos_] == '\'') {
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
            out += '\'';  // doubled quote escape
            pos_ += 2;
            continue;
          }
          ++pos_;
          cur_.kind = Token::Kind::kString;
          cur_.text = std::move(out);
          return;
        }
        out += input_[pos_++];
      }
      // unterminated string: surface as END so the parser errors out
      cur_.kind = Token::Kind::kEnd;
      return;
    }
    // operators (two-char first)
    static const char* kTwoChar[] = {"<>", "<=", ">="};
    for (const char* op : kTwoChar) {
      if (input_.compare(pos_, 2, op) == 0) {
        cur_.kind = Token::Kind::kOp;
        cur_.text = op;
        pos_ += 2;
        return;
      }
    }
    static const char kOneChar[] = "=<>(),+-*/";
    for (char op : std::string_view(kOneChar)) {
      if (c == op) {
        cur_.kind = Token::Kind::kOp;
        cur_.text = std::string(1, c);
        ++pos_;
        return;
      }
    }
    // unrecognized character: stop tokenizing; parser reports the error
    cur_.kind = Token::Kind::kEnd;
    pos_ = input_.size();
  }

  void skip_ws() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  Token cur_;
};

}  // namespace detail

Selector::Selector(std::string expression,
                   std::shared_ptr<const detail::SelectorNode> root)
    : expression_(std::move(expression)), root_(std::move(root)) {}

Selector::Selector(Selector&&) noexcept = default;
Selector& Selector::operator=(Selector&&) noexcept = default;
Selector::~Selector() = default;

util::Result<Selector> Selector::parse(const std::string& expression) {
  bool blank = true;
  for (char c : expression) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      blank = false;
      break;
    }
  }
  if (blank) {
    return Selector(expression, std::make_shared<detail::TrueNode>());
  }
  detail::Parser parser(expression);
  auto root = parser.parse();
  if (!root) return root.status();
  return Selector(expression, std::shared_ptr<const detail::SelectorNode>(
                                  std::move(root).value()));
}

bool Selector::matches(const Message& message) const {
  const detail::Value v = root_->eval(message);
  return v.kind == detail::Value::Kind::kBool && v.b;
}

std::string Selector::canonical() const {
  std::ostringstream os;
  root_->print(os);
  return os.str();
}

}  // namespace cmx::mq
