#include "mq/selector.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>
#include <variant>
#include <vector>

namespace cmx::mq {
namespace detail {

// ---------------------------------------------------------------------
// Three-valued runtime values. Unknown arises from absent properties and
// propagates through comparisons and arithmetic per SQL-92 rules.
// ---------------------------------------------------------------------

enum class Tri { kFalse, kTrue, kUnknown };

inline Tri tri_not(Tri t) {
  switch (t) {
    case Tri::kTrue:
      return Tri::kFalse;
    case Tri::kFalse:
      return Tri::kTrue;
    default:
      return Tri::kUnknown;
  }
}
inline Tri tri_and(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kUnknown;
}
inline Tri tri_or(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}
inline Tri tri_of(bool b) { return b ? Tri::kTrue : Tri::kFalse; }

// Unknown | bool | number | string (numbers unified as double for
// comparison; exact int64 kept for equality of large values).
struct Value {
  enum class Kind { kUnknown, kBool, kInt, kDouble, kString } kind =
      Kind::kUnknown;
  bool b = false;
  std::int64_t i = 0;
  double d = 0;
  std::string s;

  static Value unknown() { return Value{}; }
  static Value of(bool v) {
    Value x;
    x.kind = Kind::kBool;
    x.b = v;
    return x;
  }
  static Value of(std::int64_t v) {
    Value x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  }
  static Value of(double v) {
    Value x;
    x.kind = Kind::kDouble;
    x.d = v;
    return x;
  }
  static Value of(std::string v) {
    Value x;
    x.kind = Kind::kString;
    x.s = std::move(v);
    return x;
  }

  bool is_unknown() const { return kind == Kind::kUnknown; }
  bool is_numeric() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }
  double as_double() const { return kind == Kind::kInt ? double(i) : d; }
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kNeg };

Tri compare(const Value& a, CmpOp op, const Value& b) {
  if (a.is_unknown() || b.is_unknown()) return Tri::kUnknown;
  // Type-mismatched comparisons are UNKNOWN per JMS (they never match).
  if (a.kind == Value::Kind::kBool || b.kind == Value::Kind::kBool) {
    if (a.kind != Value::Kind::kBool || b.kind != Value::Kind::kBool) {
      return Tri::kUnknown;
    }
    if (op == CmpOp::kEq) return tri_of(a.b == b.b);
    if (op == CmpOp::kNe) return tri_of(a.b != b.b);
    return Tri::kUnknown;  // ordering of booleans is not defined
  }
  if (a.kind == Value::Kind::kString || b.kind == Value::Kind::kString) {
    if (a.kind != Value::Kind::kString || b.kind != Value::Kind::kString) {
      return Tri::kUnknown;
    }
    if (op == CmpOp::kEq) return tri_of(a.s == b.s);
    if (op == CmpOp::kNe) return tri_of(a.s != b.s);
    return Tri::kUnknown;  // JMS: strings support only = and <>
  }
  // numeric vs numeric
  if (a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt) {
    switch (op) {
      case CmpOp::kEq:
        return tri_of(a.i == b.i);
      case CmpOp::kNe:
        return tri_of(a.i != b.i);
      case CmpOp::kLt:
        return tri_of(a.i < b.i);
      case CmpOp::kLe:
        return tri_of(a.i <= b.i);
      case CmpOp::kGt:
        return tri_of(a.i > b.i);
      case CmpOp::kGe:
        return tri_of(a.i >= b.i);
    }
  }
  const double x = a.as_double();
  const double y = b.as_double();
  switch (op) {
    case CmpOp::kEq:
      return tri_of(x == y);
    case CmpOp::kNe:
      return tri_of(x != y);
    case CmpOp::kLt:
      return tri_of(x < y);
    case CmpOp::kLe:
      return tri_of(x <= y);
    case CmpOp::kGt:
      return tri_of(x > y);
    case CmpOp::kGe:
      return tri_of(x >= y);
  }
  return Tri::kUnknown;
}

// LIKE with % (any run) and _ (any one char), optional escape character.
bool like_match(const std::string& text, const std::string& pattern,
                char escape, std::size_t ti = 0, std::size_t pi = 0) {
  while (pi < pattern.size()) {
    const char pc = pattern[pi];
    if (escape != '\0' && pc == escape && pi + 1 < pattern.size()) {
      if (ti >= text.size() || text[ti] != pattern[pi + 1]) return false;
      ++ti;
      pi += 2;
      continue;
    }
    if (pc == '%') {
      // Try every possible consumption length.
      for (std::size_t skip = 0; ti + skip <= text.size(); ++skip) {
        if (like_match(text, pattern, escape, ti + skip, pi + 1)) return true;
      }
      return false;
    }
    if (pc == '_') {
      if (ti >= text.size()) return false;
      ++ti;
      ++pi;
      continue;
    }
    if (ti >= text.size() || text[ti] != pc) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

class SelectorNode {
 public:
  virtual ~SelectorNode() = default;
  virtual Value eval(const Message& m) const = 0;
};

using NodePtr = std::unique_ptr<SelectorNode>;

Tri as_tri(const Value& v) {
  if (v.kind == Value::Kind::kBool) return tri_of(v.b);
  return Tri::kUnknown;
}
Value tri_value(Tri t) {
  if (t == Tri::kUnknown) return Value::unknown();
  return Value::of(t == Tri::kTrue);
}

class LiteralNode final : public SelectorNode {
 public:
  explicit LiteralNode(Value v) : value_(std::move(v)) {}
  Value eval(const Message&) const override { return value_; }

 private:
  Value value_;
};

class IdentNode final : public SelectorNode {
 public:
  explicit IdentNode(std::string name) : name_(std::move(name)) {}
  Value eval(const Message& m) const override {
    if (name_ == "JMSPriority") return Value::of(std::int64_t{m.priority()});
    if (name_ == "JMSDeliveryCount") {
      return Value::of(std::int64_t{m.delivery_count()});
    }
    if (name_ == "JMSCorrelationID") return Value::of(m.correlation_id());
    if (name_ == "JMSMessageID") return Value::of(m.id());
    const PropertyValue* v = m.properties().find(name_);
    if (v == nullptr) return Value::unknown();
    if (const auto* b = std::get_if<bool>(v)) return Value::of(*b);
    if (const auto* i = std::get_if<std::int64_t>(v)) {
      return Value::of(*i);
    }
    if (const auto* d = std::get_if<double>(v)) {
      return Value::of(*d);
    }
    return Value::of(std::get<std::string>(*v));
  }

 private:
  std::string name_;
};

class NotNode final : public SelectorNode {
 public:
  explicit NotNode(NodePtr child) : child_(std::move(child)) {}
  Value eval(const Message& m) const override {
    return tri_value(tri_not(as_tri(child_->eval(m))));
  }

 private:
  NodePtr child_;
};

class AndNode final : public SelectorNode {
 public:
  AndNode(NodePtr l, NodePtr r) : l_(std::move(l)), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    const Tri left = as_tri(l_->eval(m));
    if (left == Tri::kFalse) return Value::of(false);
    return tri_value(tri_and(left, as_tri(r_->eval(m))));
  }

 private:
  NodePtr l_, r_;
};

class OrNode final : public SelectorNode {
 public:
  OrNode(NodePtr l, NodePtr r) : l_(std::move(l)), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    const Tri left = as_tri(l_->eval(m));
    if (left == Tri::kTrue) return Value::of(true);
    return tri_value(tri_or(left, as_tri(r_->eval(m))));
  }

 private:
  NodePtr l_, r_;
};

class CmpNode final : public SelectorNode {
 public:
  CmpNode(NodePtr l, CmpOp op, NodePtr r)
      : l_(std::move(l)), op_(op), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    return tri_value(compare(l_->eval(m), op_, r_->eval(m)));
  }

 private:
  NodePtr l_;
  CmpOp op_;
  NodePtr r_;
};

class ArithNode final : public SelectorNode {
 public:
  ArithNode(NodePtr l, ArithOp op, NodePtr r)
      : l_(std::move(l)), op_(op), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    const Value a = l_->eval(m);
    if (op_ == ArithOp::kNeg) {
      if (a.kind == Value::Kind::kInt) return Value::of(-a.i);
      if (a.kind == Value::Kind::kDouble) return Value::of(-a.d);
      return Value::unknown();
    }
    const Value b = r_->eval(m);
    if (!a.is_numeric() || !b.is_numeric()) return Value::unknown();
    if (a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt &&
        op_ != ArithOp::kDiv) {
      switch (op_) {
        case ArithOp::kAdd:
          return Value::of(a.i + b.i);
        case ArithOp::kSub:
          return Value::of(a.i - b.i);
        case ArithOp::kMul:
          return Value::of(a.i * b.i);
        default:
          break;
      }
    }
    const double x = a.as_double();
    const double y = b.as_double();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::of(x + y);
      case ArithOp::kSub:
        return Value::of(x - y);
      case ArithOp::kMul:
        return Value::of(x * y);
      case ArithOp::kDiv:
        return y == 0 ? Value::unknown() : Value::of(x / y);
      case ArithOp::kNeg:
        break;
    }
    return Value::unknown();
  }

 private:
  NodePtr l_;
  ArithOp op_;
  NodePtr r_;
};

class IsNullNode final : public SelectorNode {
 public:
  IsNullNode(NodePtr child, bool negated)
      : child_(std::move(child)), negated_(negated) {}
  Value eval(const Message& m) const override {
    const bool is_null = child_->eval(m).is_unknown();
    return Value::of(negated_ ? !is_null : is_null);
  }

 private:
  NodePtr child_;
  bool negated_;
};

class InNode final : public SelectorNode {
 public:
  InNode(NodePtr child, std::vector<Value> items, bool negated)
      : child_(std::move(child)), items_(std::move(items)), negated_(negated) {}
  Value eval(const Message& m) const override {
    const Value v = child_->eval(m);
    if (v.is_unknown()) return Value::unknown();
    for (const auto& item : items_) {
      if (compare(v, CmpOp::kEq, item) == Tri::kTrue) {
        return Value::of(!negated_);
      }
    }
    return Value::of(negated_);
  }

 private:
  NodePtr child_;
  std::vector<Value> items_;
  bool negated_;
};

class LikeNode final : public SelectorNode {
 public:
  LikeNode(NodePtr child, std::string pattern, char escape, bool negated)
      : child_(std::move(child)),
        pattern_(std::move(pattern)),
        escape_(escape),
        negated_(negated) {}
  Value eval(const Message& m) const override {
    const Value v = child_->eval(m);
    if (v.is_unknown()) return Value::unknown();
    if (v.kind != Value::Kind::kString) return Value::unknown();
    const bool hit = like_match(v.s, pattern_, escape_);
    return Value::of(negated_ ? !hit : hit);
  }

 private:
  NodePtr child_;
  std::string pattern_;
  char escape_;
  bool negated_;
};

class BetweenNode final : public SelectorNode {
 public:
  BetweenNode(NodePtr child, NodePtr lo, NodePtr hi, bool negated)
      : child_(std::move(child)),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        negated_(negated) {}
  Value eval(const Message& m) const override {
    const Value v = child_->eval(m);
    const Tri in_range = tri_and(compare(v, CmpOp::kGe, lo_->eval(m)),
                                 compare(v, CmpOp::kLe, hi_->eval(m)));
    const Tri result = negated_ ? tri_not(in_range) : in_range;
    return tri_value(result);
  }

 private:
  NodePtr child_, lo_, hi_;
  bool negated_;
};

// ---------------------------------------------------------------------
// Tokenizer + recursive-descent parser
// ---------------------------------------------------------------------

struct Token {
  enum class Kind {
    kEnd,
    kIdent,
    kKeyword,
    kInt,
    kFloat,
    kString,
    kOp,  // = <> < <= > >= ( ) , + - * /
  } kind = Kind::kEnd;
  std::string text;      // keyword/op text (keywords upper-cased)
  std::int64_t int_val = 0;
  double float_val = 0;
  std::size_t pos = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& input) : input_(input) { advance(); }

  util::Result<NodePtr> parse() {
    auto expr = parse_or();
    if (!expr) return expr;
    if (cur_.kind != Token::Kind::kEnd) {
      return error("unexpected trailing input");
    }
    return expr;
  }

 private:
  util::Status error_status(const std::string& what) const {
    return util::make_error(
        util::ErrorCode::kInvalidArgument,
        "selector: " + what + " at position " + std::to_string(cur_.pos));
  }
  util::Result<NodePtr> error(const std::string& what) const {
    return error_status(what);
  }

  bool is_keyword(const char* kw) const {
    return cur_.kind == Token::Kind::kKeyword && cur_.text == kw;
  }
  bool is_op(const char* op) const {
    return cur_.kind == Token::Kind::kOp && cur_.text == op;
  }
  bool accept_keyword(const char* kw) {
    if (!is_keyword(kw)) return false;
    advance();
    return true;
  }
  bool accept_op(const char* op) {
    if (!is_op(op)) return false;
    advance();
    return true;
  }

  util::Result<NodePtr> parse_or() {
    auto left = parse_and();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (accept_keyword("OR")) {
      auto right = parse_and();
      if (!right) return right;
      node = std::make_unique<OrNode>(std::move(node),
                                      std::move(right).value());
    }
    return node;
  }

  util::Result<NodePtr> parse_and() {
    auto left = parse_unary();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (accept_keyword("AND")) {
      auto right = parse_unary();
      if (!right) return right;
      node = std::make_unique<AndNode>(std::move(node),
                                       std::move(right).value());
    }
    return node;
  }

  util::Result<NodePtr> parse_unary() {
    if (accept_keyword("NOT")) {
      auto child = parse_unary();
      if (!child) return child;
      return NodePtr(std::make_unique<NotNode>(std::move(child).value()));
    }
    return parse_cmp();
  }

  util::Result<NodePtr> parse_cmp() {
    auto left = parse_sum();
    if (!left) return left;
    NodePtr node = std::move(left).value();

    static constexpr std::pair<const char*, CmpOp> kOps[] = {
        {"<>", CmpOp::kNe}, {"<=", CmpOp::kLe}, {">=", CmpOp::kGe},
        {"=", CmpOp::kEq},  {"<", CmpOp::kLt},  {">", CmpOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (is_op(text)) {
        advance();
        auto right = parse_sum();
        if (!right) return right;
        return NodePtr(std::make_unique<CmpNode>(std::move(node), op,
                                                 std::move(right).value()));
      }
    }

    if (accept_keyword("IS")) {
      const bool negated = accept_keyword("NOT");
      if (!accept_keyword("NULL")) return error("expected NULL after IS");
      return NodePtr(std::make_unique<IsNullNode>(std::move(node), negated));
    }

    bool negated = false;
    if (is_keyword("NOT")) {
      // lookahead: NOT IN / NOT LIKE / NOT BETWEEN
      advance();
      negated = true;
    }
    if (accept_keyword("IN")) {
      if (!accept_op("(")) return error("expected ( after IN");
      std::vector<Value> items;
      while (true) {
        auto lit = parse_literal_value();
        if (!lit) return lit.status();
        items.push_back(std::move(lit).value());
        if (accept_op(",")) continue;
        if (accept_op(")")) break;
        return error("expected , or ) in IN list");
      }
      return NodePtr(std::make_unique<InNode>(std::move(node),
                                              std::move(items), negated));
    }
    if (accept_keyword("LIKE")) {
      if (cur_.kind != Token::Kind::kString) {
        return error("expected string pattern after LIKE");
      }
      std::string pattern = cur_.text;
      advance();
      char escape = '\0';
      if (accept_keyword("ESCAPE")) {
        if (cur_.kind != Token::Kind::kString || cur_.text.size() != 1) {
          return error("ESCAPE requires a single-character string");
        }
        escape = cur_.text[0];
        advance();
      }
      return NodePtr(std::make_unique<LikeNode>(
          std::move(node), std::move(pattern), escape, negated));
    }
    if (accept_keyword("BETWEEN")) {
      auto lo = parse_sum();
      if (!lo) return lo;
      if (!accept_keyword("AND")) return error("expected AND in BETWEEN");
      auto hi = parse_sum();
      if (!hi) return hi;
      return NodePtr(std::make_unique<BetweenNode>(
          std::move(node), std::move(lo).value(), std::move(hi).value(),
          negated));
    }
    if (negated) {
      // we consumed NOT but found no IN/LIKE/BETWEEN: treat as logical NOT
      return NodePtr(std::make_unique<NotNode>(std::move(node)));
    }
    return node;
  }

  util::Result<NodePtr> parse_sum() {
    auto left = parse_prod();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (true) {
      if (accept_op("+")) {
        auto right = parse_prod();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kAdd,
                                           std::move(right).value());
      } else if (accept_op("-")) {
        auto right = parse_prod();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kSub,
                                           std::move(right).value());
      } else {
        return node;
      }
    }
  }

  util::Result<NodePtr> parse_prod() {
    auto left = parse_atom();
    if (!left) return left;
    NodePtr node = std::move(left).value();
    while (true) {
      if (accept_op("*")) {
        auto right = parse_atom();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kMul,
                                           std::move(right).value());
      } else if (accept_op("/")) {
        auto right = parse_atom();
        if (!right) return right;
        node = std::make_unique<ArithNode>(std::move(node), ArithOp::kDiv,
                                           std::move(right).value());
      } else {
        return node;
      }
    }
  }

  util::Result<NodePtr> parse_atom() {
    if (accept_op("-")) {
      auto child = parse_atom();
      if (!child) return child;
      return NodePtr(std::make_unique<ArithNode>(std::move(child).value(),
                                                 ArithOp::kNeg, nullptr));
    }
    if (accept_op("(")) {
      auto inner = parse_or();
      if (!inner) return inner;
      if (!accept_op(")")) return error("expected )");
      return inner;
    }
    if (cur_.kind == Token::Kind::kIdent) {
      auto node = std::make_unique<IdentNode>(cur_.text);
      advance();
      return NodePtr(std::move(node));
    }
    auto lit = parse_literal_value();
    if (!lit) return lit.status();
    return NodePtr(std::make_unique<LiteralNode>(std::move(lit).value()));
  }

  util::Result<Value> parse_literal_value() {
    switch (cur_.kind) {
      case Token::Kind::kInt: {
        Value v = Value::of(cur_.int_val);
        advance();
        return v;
      }
      case Token::Kind::kFloat: {
        Value v = Value::of(cur_.float_val);
        advance();
        return v;
      }
      case Token::Kind::kString: {
        Value v = Value::of(cur_.text);
        advance();
        return v;
      }
      case Token::Kind::kKeyword:
        if (cur_.text == "TRUE") {
          advance();
          return Value::of(true);
        }
        if (cur_.text == "FALSE") {
          advance();
          return Value::of(false);
        }
        [[fallthrough]];
      default:
        return error_status("expected literal");
    }
  }

  void advance() {
    skip_ws();
    cur_ = Token{};
    cur_.pos = pos_;
    if (pos_ >= input_.size()) {
      cur_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '$' ||
              input_[pos_] == '.')) {
        ++pos_;
      }
      std::string word = input_.substr(start, pos_ - start);
      std::string upper = word;
      for (auto& ch : upper) ch = char(std::toupper(unsigned(ch)));
      static const char* kKeywords[] = {"AND",  "OR",   "NOT",     "IS",
                                        "NULL", "IN",   "LIKE",    "ESCAPE",
                                        "TRUE", "FALSE", "BETWEEN"};
      for (const char* kw : kKeywords) {
        if (upper == kw) {
          cur_.kind = Token::Kind::kKeyword;
          cur_.text = upper;
          return;
        }
      }
      cur_.kind = Token::Kind::kIdent;
      cur_.text = std::move(word);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      bool is_float = false;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.')) {
        if (input_[pos_] == '.') is_float = true;
        ++pos_;
      }
      const std::string num = input_.substr(start, pos_ - start);
      if (is_float) {
        cur_.kind = Token::Kind::kFloat;
        cur_.float_val = std::strtod(num.c_str(), nullptr);
      } else {
        cur_.kind = Token::Kind::kInt;
        cur_.int_val = std::strtoll(num.c_str(), nullptr, 10);
      }
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < input_.size()) {
        if (input_[pos_] == '\'') {
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
            out += '\'';  // doubled quote escape
            pos_ += 2;
            continue;
          }
          ++pos_;
          cur_.kind = Token::Kind::kString;
          cur_.text = std::move(out);
          return;
        }
        out += input_[pos_++];
      }
      // unterminated string: surface as END so the parser errors out
      cur_.kind = Token::Kind::kEnd;
      return;
    }
    // operators (two-char first)
    static const char* kTwoChar[] = {"<>", "<=", ">="};
    for (const char* op : kTwoChar) {
      if (input_.compare(pos_, 2, op) == 0) {
        cur_.kind = Token::Kind::kOp;
        cur_.text = op;
        pos_ += 2;
        return;
      }
    }
    static const char kOneChar[] = "=<>(),+-*/";
    for (char op : std::string_view(kOneChar)) {
      if (c == op) {
        cur_.kind = Token::Kind::kOp;
        cur_.text = std::string(1, c);
        ++pos_;
        return;
      }
    }
    // unrecognized character: stop tokenizing; parser reports the error
    cur_.kind = Token::Kind::kEnd;
    pos_ = input_.size();
  }

  void skip_ws() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  Token cur_;
};

// Always-true node used for the empty selector.
class TrueNode final : public SelectorNode {
 public:
  Value eval(const Message&) const override { return Value::of(true); }
};

}  // namespace detail

Selector::Selector(std::string expression,
                   std::shared_ptr<const detail::SelectorNode> root)
    : expression_(std::move(expression)), root_(std::move(root)) {}

Selector::Selector(Selector&&) noexcept = default;
Selector& Selector::operator=(Selector&&) noexcept = default;
Selector::~Selector() = default;

util::Result<Selector> Selector::parse(const std::string& expression) {
  bool blank = true;
  for (char c : expression) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      blank = false;
      break;
    }
  }
  if (blank) {
    return Selector(expression, std::make_shared<detail::TrueNode>());
  }
  detail::Parser parser(expression);
  auto root = parser.parse();
  if (!root) return root.status();
  return Selector(expression, std::shared_ptr<const detail::SelectorNode>(
                                  std::move(root).value()));
}

bool Selector::matches(const Message& message) const {
  const detail::Value v = root_->eval(message);
  return v.kind == detail::Value::Kind::kBool && v.b;
}

}  // namespace cmx::mq
