// Persistent message store: the write-ahead log behind a queue manager's
// "reliable" delivery guarantee. Every persistent put/get and every queue
// create/delete is appended as a record; recovery replays the log to
// rebuild queue contents after a crash/restart.
//
// Batches (used by transacted sessions) are bracketed by kTxBegin/kTxCommit
// markers; replay discards records of a batch whose commit marker never made
// it to disk, so a torn commit leaves the pre-transaction state. Markers
// nest, and FileStore's group-commit format additionally frames each append
// call as a single checksummed unit, so a torn group drops as a whole.
//
// Durability contract (DESIGN.md §7): append()/append_batch() returning OK
// means the record reached the log *by the store's sync policy* — for
// FileStore under SyncPolicy::kEveryBatch the acknowledgment follows the
// fsync; under kInterval it guarantees the record is in the OS page cache
// (a process crash preserves it, a machine crash may not); under kNone it
// only guarantees the record is staged — the store drains the staging
// buffer on clean shutdown, replay, and compaction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mq/message.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::mq {

struct LogRecord {
  enum class Type : std::uint8_t {
    kQueueCreate = 0,
    kQueueDelete = 1,
    kPut = 2,     // message enqueued on `queue`
    kGet = 3,     // message `msg_id` consumed from `queue`
    kTxBegin = 4,  // start of an atomic batch `tx_id`
    kTxCommit = 5,
  };

  Type type = Type::kPut;
  std::string queue;
  std::string msg_id;  // kGet only
  std::string tx_id;   // kTxBegin/kTxCommit only
  Message message;     // kPut only

  // Encode-only borrows: when set, encode() reads the queue name, message
  // id, or message from the referenced storage instead of the owned fields
  // above, so the hot batch paths build records without copying a Message
  // (or its id string) per record. A borrowed record is valid ONLY until
  // the MessageStore::append*() call it is passed to returns — stores
  // encode eagerly and never retain LogRecords.
  std::string_view queue_ref = {};    // data() == nullptr => use `queue`
  std::string_view msg_id_ref = {};   // data() == nullptr => use `msg_id`
  const Message* message_ref = nullptr;  // nullptr => use `message`

  static LogRecord queue_create(std::string queue_name);
  static LogRecord queue_delete(std::string queue_name);
  static LogRecord put(std::string queue_name, Message msg);
  static LogRecord get(std::string queue_name, std::string message_id);
  // Borrowing variants of put/get for the batch append paths.
  static LogRecord put_ref(const std::string& queue_name, const Message& msg);
  static LogRecord get_ref(const std::string& queue_name,
                           std::string_view message_id);
  static LogRecord tx_begin(std::string id);
  static LogRecord tx_commit(std::string id);

  // Borrow-resolving accessors: the value regardless of whether this
  // record owns its fields or borrows them. MessageStore implementations
  // that inspect records must use these, not the raw fields — the batch
  // paths pass borrowed records whose owned fields are empty.
  std::string_view queue_name() const {
    return queue_ref.data() != nullptr ? queue_ref : std::string_view(queue);
  }
  std::string_view message_id() const {
    return msg_id_ref.data() != nullptr ? msg_id_ref : std::string_view(msg_id);
  }
  const Message& msg() const {
    return message_ref != nullptr ? *message_ref : message;
  }

  std::string encode() const;
  // Upper-ballpark encoded size (exact when the message frame is
  // memoized), for pre-reserving slab buffers so staging a batch of
  // large bodies doesn't realloc-copy the blob per record.
  std::size_t encoded_size_hint() const {
    std::size_t n =
        17 + queue_name().size() + message_id().size() + tx_id.size();
    if (type == Type::kPut) n += msg().frame_size_hint();
    return n;
  }
  // Appends the encoded record to `w` in place — the group-commit staging
  // path serializes every record of a batch into one blob with no
  // per-record temporaries.
  void encode_into(util::BinaryWriter& w) const;
  static util::Result<LogRecord> decode(std::string_view data);
};

class MessageStore {
 public:
  virtual ~MessageStore() = default;

  // Appends one record. OK means the record is acknowledged per the
  // implementation's sync policy (see the durability contract above) —
  // it does NOT universally imply the bytes hit the platter.
  virtual util::Status append(const LogRecord& record) = 0;

  // Appends a group of records that must be applied all-or-nothing on
  // recovery. Implementations bracket them with tx markers.
  virtual util::Status append_batch(const std::vector<LogRecord>& records) = 0;

  // Reads back every committed record, in order. Tolerates a torn tail
  // (stops at the first corrupt/truncated record).
  virtual util::Result<std::vector<LogRecord>> replay() = 0;

  // Replaces the log with the given snapshot (compaction).
  virtual util::Status rewrite(const std::vector<LogRecord>& snapshot) = 0;

  // Records appended since the last rewrite()/construction; the queue
  // manager uses this to trigger compaction.
  virtual std::size_t appended_since_compaction() const = 0;
};

// Discards everything; "recovery" finds an empty log. For tests and for
// benchmarks isolating in-memory behaviour.
class NullStore final : public MessageStore {
 public:
  util::Status append(const LogRecord&) override { return util::ok_status(); }
  util::Status append_batch(const std::vector<LogRecord>&) override {
    return util::ok_status();
  }
  util::Result<std::vector<LogRecord>> replay() override {
    return std::vector<LogRecord>{};
  }
  util::Status rewrite(const std::vector<LogRecord>&) override {
    return util::ok_status();
  }
  std::size_t appended_since_compaction() const override { return 0; }
};

// In-memory log with full replay/rewrite semantics: durability without the
// filesystem. Used to test recovery logic deterministically and to model
// "restart" by constructing a new QueueManager over the same MemoryStore.
class MemoryStore final : public MessageStore {
 public:
  util::Status append(const LogRecord& record) override;
  util::Status append_batch(const std::vector<LogRecord>& records) override;
  util::Result<std::vector<LogRecord>> replay() override;
  util::Status rewrite(const std::vector<LogRecord>& snapshot) override;
  std::size_t appended_since_compaction() const override;

  // Test hook: drop the last `n` records, emulating a crash that lost a
  // log suffix (e.g. a torn batch).
  void truncate_tail(std::size_t n);

  std::size_t record_count() const;

 private:
  // Slab staging when the arena fast path is on: every record of an
  // append call (tx markers included) is encoded u32-length-prefixed
  // into one blob OUTSIDE the store mutex — a handful of allocations and
  // a short critical section per batch instead of one encode (and its
  // allocation) per record under the lock. Slabs are size-capped so a
  // huge batch stages as several heap-recyclable blobs rather than one
  // mmap-sized one. With the arena off (the A/B baseline) each record is
  // its own single-count chunk, encoded under the lock as the seed's
  // per-record vector did.
  struct Chunk {
    std::string blob;       // (u32 len | record bytes)*
    std::size_t count = 0;  // records in this chunk
  };

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;
  std::size_t total_records_ = 0;
  std::size_t appended_ = 0;
};

// What an OK append acknowledges (DESIGN.md §7 spells out exactly what
// each policy guarantees after a crash).
enum class SyncPolicy : std::uint8_t {
  // Write-behind (the default): the append is acknowledged once staged;
  // the commit thread writes groups in the background and the store drains
  // on clean shutdown/replay/compaction. No fsync. A machine crash — or a
  // hard kill before the staging buffer drains — may lose an acknowledged
  // suffix of the log; replay drops it cleanly.
  kNone = 0,
  // The append blocks on its commit ticket; the commit thread fsyncs once
  // per group BEFORE releasing the group's waiters. An acknowledged append
  // is on stable storage; N concurrent producers share one fsync.
  kEveryBatch = 1,
  // The append blocks until its group is written (process-crash safe);
  // fsync happens at most once per `sync_interval_ms` and once at
  // shutdown, bounding machine-crash loss to the interval.
  kInterval = 2,
};

struct FileStoreOptions {
  SyncPolicy sync = SyncPolicy::kNone;
  util::TimeMs sync_interval_ms = 50;  // kInterval only
  // Group commit: producers stage encoded records and block on a commit
  // ticket; a dedicated commit thread coalesces all pending records into
  // one write (+ at most one fsync) and releases every waiter at once.
  // false = the legacy path: one ::write per record on the caller's
  // thread, serialized by the io mutex (kept for A/B benchmarking).
  bool group_commit = true;
};

// File-backed log.
//
// Group-commit format (group_commit=true): the file starts with an 8-byte
// magic; each append()/append_batch() call contributes ONE frame
//   u32 blob_len | u32 crc32c(blob) | blob,   blob = (u32 rec_len | rec)*
// so a call — in particular a whole tx-marked batch — is torn or kept as a
// unit, and the checksum is computed once per call (hardware CRC32C where
// available) instead of once per record. The commit thread coalesces all
// staged frames into one ::write. Replay stops at the first truncated or
// corrupt frame.
//
// Legacy format (group_commit=false): the pre-group-commit layout, one
// frame `u32 len | u32 crc32(payload) | payload` per record, no magic,
// written synchronously on the appender's thread under the io mutex. Kept
// as the A/B baseline for bench_store_commit. replay() detects the format
// by the magic, but a single file must not mix the two (do not reopen a
// log with the other mode).
class FileStore final : public MessageStore {
 public:
  explicit FileStore(std::string path, FileStoreOptions options = {});
  ~FileStore() override;

  util::Status append(const LogRecord& record) override;
  util::Status append_batch(const std::vector<LogRecord>& records) override;
  util::Result<std::vector<LogRecord>> replay() override;
  util::Status rewrite(const std::vector<LogRecord>& snapshot) override;
  std::size_t appended_since_compaction() const override;

  const std::string& path() const { return path_; }
  const FileStoreOptions& options() const { return options_; }

 private:
  // A commit group: the frames staged by every appender that arrived while
  // the previous group was being written. kEveryBatch/kInterval appenders
  // block until `done`; kNone appenders are acknowledged at staging time.
  struct Group {
    std::string bytes;        // concatenated per-appender frames
    std::size_t records = 0;  // logical record count (for compaction)
    bool done = false;
    util::Status status = util::ok_status();
  };

  util::Status append_frame(std::string frame_bytes, std::size_t records);
  util::Status append_legacy(const LogRecord* const* records, std::size_t n);
  util::Status write_all(const char* data, std::size_t size);
  util::Status open_for_append();
  void commit_loop();
  // Blocks until everything staged so far has reached the file, so that
  // replay()/rewrite()/~FileStore observe every acknowledged record.
  void drain_staging();
  bool sync_due_locked();

  const std::string path_;
  const FileStoreOptions options_;

  // Lock hierarchy (see DESIGN.md §7): staging_mu_ and io_mu_ are leaves of
  // the system-wide order and are never held together by producers; the
  // commit thread takes staging_mu_, releases it, then takes io_mu_.
  std::mutex staging_mu_;  // guards open_group_, stop_, sticky_, done flags
  std::condition_variable staging_cv_;  // wakes the commit thread
  std::condition_variable done_cv_;     // wakes appenders / drainers
  std::shared_ptr<Group> open_group_;
  bool commit_inflight_ = false;  // commit thread is writing a group
  bool stop_ = false;
  // First write failure under write-behind: later appends report it
  // instead of acknowledging records that can no longer be persisted.
  util::Status sticky_ = util::ok_status();

  mutable std::mutex io_mu_;  // guards fd_ and all file operations
  int fd_ = -1;
  std::atomic<std::size_t> appended_{0};
  std::uint64_t last_sync_us_ = 0;  // commit thread / io_mu_ only

  std::thread commit_thread_;  // unstarted when !options_.group_commit
};

// Computes the CRC32 (IEEE polynomial) of a byte range. Used by the legacy
// per-record frame format.
std::uint32_t crc32(std::string_view data);

// Computes the CRC32C (Castagnoli polynomial) of a byte range, using the
// SSE4.2 crc32 instruction when the CPU has it and a slice-by-8 table
// otherwise. Used by the group-commit frame format: one checksum per
// append call instead of per record.
std::uint32_t crc32c(std::string_view data);

}  // namespace cmx::mq
