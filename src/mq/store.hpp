// Compatibility umbrella for the store subsystem. The storage layer lives
// in src/mq/store/ (DESIGN.md §11):
//   store/backend.hpp   MessageStore interface, StoreCaps, LogRecord,
//                       NullStore, CommitFilter
//   store/memory_store  in-process log ("memory")
//   store/file_store    flat group-commit log ("file")
//   store/segmented_store  segment files + self-compaction ("segmented")
//   store/registry      spec-string factory, e.g. "file:/p?sync=every_batch"
//   store/crc           crc32 / crc32c
// Include the specific headers in new code; this umbrella keeps the many
// existing `#include "mq/store.hpp"` sites building unchanged.
#pragma once

#include "mq/store/backend.hpp"        // IWYU pragma: export
#include "mq/store/crc.hpp"            // IWYU pragma: export
#include "mq/store/file_store.hpp"     // IWYU pragma: export
#include "mq/store/memory_store.hpp"   // IWYU pragma: export
#include "mq/store/registry.hpp"       // IWYU pragma: export
#include "mq/store/segmented_store.hpp"  // IWYU pragma: export
