// Persistent message store: the write-ahead log behind a queue manager's
// "reliable" delivery guarantee. Every persistent put/get and every queue
// create/delete is appended as a record; recovery replays the log to
// rebuild queue contents after a crash/restart.
//
// Batches (used by transacted sessions) are bracketed by kTxBegin/kTxCommit
// markers; replay discards records of a batch whose commit marker never
// made it to disk, so a torn commit leaves the pre-transaction state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mq/message.hpp"
#include "util/status.hpp"

namespace cmx::mq {

struct LogRecord {
  enum class Type : std::uint8_t {
    kQueueCreate = 0,
    kQueueDelete = 1,
    kPut = 2,     // message enqueued on `queue`
    kGet = 3,     // message `msg_id` consumed from `queue`
    kTxBegin = 4,  // start of an atomic batch `tx_id`
    kTxCommit = 5,
  };

  Type type = Type::kPut;
  std::string queue;
  std::string msg_id;  // kGet only
  std::string tx_id;   // kTxBegin/kTxCommit only
  Message message;     // kPut only

  static LogRecord queue_create(std::string queue_name);
  static LogRecord queue_delete(std::string queue_name);
  static LogRecord put(std::string queue_name, Message msg);
  static LogRecord get(std::string queue_name, std::string message_id);
  static LogRecord tx_begin(std::string id);
  static LogRecord tx_commit(std::string id);

  std::string encode() const;
  static util::Result<LogRecord> decode(std::string_view data);
};

class MessageStore {
 public:
  virtual ~MessageStore() = default;

  // Appends one record durably (fsync policy is implementation-defined).
  virtual util::Status append(const LogRecord& record) = 0;

  // Appends a group of records that must be applied all-or-nothing on
  // recovery. Implementations bracket them with tx markers.
  virtual util::Status append_batch(const std::vector<LogRecord>& records) = 0;

  // Reads back every committed record, in order. Tolerates a torn tail
  // (stops at the first corrupt/truncated record).
  virtual util::Result<std::vector<LogRecord>> replay() = 0;

  // Replaces the log with the given snapshot (compaction).
  virtual util::Status rewrite(const std::vector<LogRecord>& snapshot) = 0;

  // Records appended since the last rewrite()/construction; the queue
  // manager uses this to trigger compaction.
  virtual std::size_t appended_since_compaction() const = 0;
};

// Discards everything; "recovery" finds an empty log. For tests and for
// benchmarks isolating in-memory behaviour.
class NullStore final : public MessageStore {
 public:
  util::Status append(const LogRecord&) override { return util::ok_status(); }
  util::Status append_batch(const std::vector<LogRecord>&) override {
    return util::ok_status();
  }
  util::Result<std::vector<LogRecord>> replay() override {
    return std::vector<LogRecord>{};
  }
  util::Status rewrite(const std::vector<LogRecord>&) override {
    return util::ok_status();
  }
  std::size_t appended_since_compaction() const override { return 0; }
};

// In-memory log with full replay/rewrite semantics: durability without the
// filesystem. Used to test recovery logic deterministically and to model
// "restart" by constructing a new QueueManager over the same MemoryStore.
class MemoryStore final : public MessageStore {
 public:
  util::Status append(const LogRecord& record) override;
  util::Status append_batch(const std::vector<LogRecord>& records) override;
  util::Result<std::vector<LogRecord>> replay() override;
  util::Status rewrite(const std::vector<LogRecord>& snapshot) override;
  std::size_t appended_since_compaction() const override;

  // Test hook: drop the last `n` records, emulating a crash that lost a
  // log suffix (e.g. a torn batch).
  void truncate_tail(std::size_t n);

  std::size_t record_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> records_;  // encoded
  std::size_t appended_ = 0;
};

// File-backed log. Record framing: u32 length, u32 crc32(payload), payload.
// Replay stops at the first frame that is truncated or fails its checksum.
class FileStore final : public MessageStore {
 public:
  explicit FileStore(std::string path);
  ~FileStore() override;

  util::Status append(const LogRecord& record) override;
  util::Status append_batch(const std::vector<LogRecord>& records) override;
  util::Result<std::vector<LogRecord>> replay() override;
  util::Status rewrite(const std::vector<LogRecord>& snapshot) override;
  std::size_t appended_since_compaction() const override;

  const std::string& path() const { return path_; }

 private:
  util::Status append_encoded(const std::string& payload);
  util::Status open_for_append();

  std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::size_t appended_ = 0;
};

// Computes the CRC32 (IEEE polynomial) of a byte range.
std::uint32_t crc32(std::string_view data);

}  // namespace cmx::mq
