// Thin POSIX TCP wrappers for the transport layer: RAII fd ownership,
// connect with timeout, listen on an (optionally ephemeral) port, and
// blocking send/recv helpers that loop over partial transfers. Everything
// above this file works in terms of whole frames; everything below it is
// bytes and errno.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace cmx::mq::transport {

// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

// Connects to host:port with a bounded wait (non-blocking connect +
// poll). The returned fd is blocking, with TCP_NODELAY set — the
// transport batches frames itself, so Nagle only adds latency.
util::Result<Fd> tcp_connect(const std::string& host, std::uint16_t port,
                             std::int64_t timeout_ms);

// Binds and listens on host:port. port 0 binds an ephemeral port; read it
// back with local_port().
util::Result<Fd> tcp_listen(const std::string& host, std::uint16_t port,
                            int backlog);

util::Result<std::uint16_t> local_port(int fd);

util::Status set_nonblocking(int fd, bool on);

// Blocking write of the whole buffer (loops over partial writes / EINTR).
util::Status send_all(int fd, const char* data, std::size_t size);

// Blocking read of up to `size` bytes honouring SO_RCVTIMEO if set.
// Returns 0 on orderly peer close.
util::Result<std::size_t> recv_some(int fd, char* data, std::size_t size);

util::Status set_recv_timeout(int fd, std::int64_t timeout_ms);

}  // namespace cmx::mq::transport
