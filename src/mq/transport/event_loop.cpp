#include "mq/transport/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cmx::mq::transport {

namespace {
util::Status errno_error(const std::string& what) {
  return util::make_error(util::ErrorCode::kIoError,
                          what + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!epoll_.valid()) {
    init_status_ = errno_error("epoll_create1");
    return;
  }
  if (!wake_.valid()) {
    init_status_ = errno_error("eventfd");
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) != 0) {
    init_status_ = errno_error("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() { stop(); }

void EventLoop::start() {
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lk(posts_mu_);
    if (stopping_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stopping_ = true;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_.get(), &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
}

util::Status EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return errno_error("epoll_ctl(add)");
  }
  callbacks_[fd] = std::move(callback);
  return util::ok_status();
}

util::Status EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return errno_error("epoll_ctl(mod)");
  }
  return util::ok_status();
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(posts_mu_);
    posts_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_.get(), &one, sizeof(one));
}

void EventLoop::drain_posts() {
  std::vector<std::function<void()>> posts;
  {
    std::lock_guard<std::mutex> lk(posts_mu_);
    posts.swap(posts_);
  }
  for (auto& fn : posts) fn();
}

void EventLoop::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    {
      std::lock_guard<std::mutex> lk(posts_mu_);
      if (stopping_) break;
    }
    const int n = ::epoll_wait(epoll_.get(), events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; stop() will still join cleanly
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_.get()) {
        std::uint64_t drained;
        while (::read(wake_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // The callback may remove(fd) (connection close) — look it up fresh
      // and copy the handle so an erase inside the call stays safe.
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      Callback cb = it->second;
      cb(events[i].events);
    }
    drain_posts();
  }
  drain_posts();
}

}  // namespace cmx::mq::transport
