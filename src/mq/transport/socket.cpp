#include "mq/transport/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cmx::mq::transport {

namespace {

util::Status errno_error(const std::string& what) {
  return util::make_error(util::ErrorCode::kIoError,
                          what + ": " + std::strerror(errno));
}

util::Result<sockaddr_in> make_addr(const std::string& host,
                                    std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only: cluster/bench peers are addressed explicitly
  // (127.0.0.1 or a LAN address); name resolution is the caller's job.
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

util::Result<Fd> tcp_connect(const std::string& host, std::uint16_t port,
                             std::int64_t timeout_ms) {
  auto addr = make_addr(host, port);
  if (!addr) return addr.status();
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_error("socket");
  if (auto s = set_nonblocking(fd.get(), true); !s) return s;
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr.value()),
                     sizeof(sockaddr_in));
  if (rc != 0 && errno != EINPROGRESS) return errno_error("connect");
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 0) {
      return util::make_error(util::ErrorCode::kTimeout,
                              "connect to " + host + " timed out");
    }
    if (rc < 0) return errno_error("poll(connect)");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return errno_error("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return util::make_error(util::ErrorCode::kUnavailable,
                              "connect to " + host + ": " +
                                  std::strerror(err));
    }
  }
  if (auto s = set_nonblocking(fd.get(), false); !s) return s;
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

util::Result<Fd> tcp_listen(const std::string& host, std::uint16_t port,
                            int backlog) {
  auto addr = make_addr(host, port);
  if (!addr) return addr.status();
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_error("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr.value()),
             sizeof(sockaddr_in)) != 0) {
    return errno_error("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return errno_error("listen");
  return fd;
}

util::Result<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

util::Status set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_error("fcntl(F_GETFL)");
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) return errno_error("fcntl(F_SETFL)");
  return util::ok_status();
}

util::Status send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that vanished mid-send yields EPIPE instead of
    // killing the process with SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return util::ok_status();
}

util::Result<std::size_t> recv_some(int fd, char* data, std::size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return util::make_error(util::ErrorCode::kTimeout, "recv timed out");
    }
    return errno_error("recv");
  }
}

util::Status set_recv_timeout(int fd, std::int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return errno_error("setsockopt(SO_RCVTIMEO)");
  }
  return util::ok_status();
}

}  // namespace cmx::mq::transport
