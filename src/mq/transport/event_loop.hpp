// Single-threaded epoll event loop: the connection fan-in engine of the
// receiving side of the transport (DESIGN.md §10). One loop thread
// multiplexes the listen socket plus every accepted connection —
// thousands of mostly-idle senders cost one epoll_wait, which is the
// MigratoryData shape (millions of reliable clients on one node) in
// miniature.
//
// Threading contract: callbacks run on the loop thread; add/modify/remove
// may only be called from the loop thread (i.e. from inside a callback)
// or before start(). Other threads interact through post(), which
// enqueues a closure and wakes the loop via an eventfd, and stop(), which
// is safe from any thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "mq/transport/socket.hpp"
#include "util/status.hpp"

namespace cmx::mq::transport {

class EventLoop {
 public:
  // `events` is an EPOLLIN/EPOLLOUT/... bitmask as delivered by epoll.
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  util::Status valid() const { return init_status_; }

  // Starts the loop thread. Call once.
  void start();
  // Wakes the loop, drains pending posts, and joins the thread. Idempotent,
  // safe from any thread (not from a callback).
  void stop();

  // fd registration (loop thread or pre-start only; see contract above).
  util::Status add(int fd, std::uint32_t events, Callback callback);
  util::Status modify(int fd, std::uint32_t events);
  void remove(int fd);

  // Runs `fn` on the loop thread, after the current epoll_wait returns.
  void post(std::function<void()> fn);

 private:
  void run();
  void drain_posts();

  Fd epoll_;
  Fd wake_;  // eventfd: post()/stop() write, loop reads
  util::Status init_status_;
  std::map<int, Callback> callbacks_;  // loop thread only (after start)
  std::mutex posts_mu_;
  std::vector<std::function<void()>> posts_;
  bool stopping_ = false;  // posts_mu_
  std::thread thread_;
};

}  // namespace cmx::mq::transport
