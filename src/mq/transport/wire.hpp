// Wire protocol for the TCP channel transport (docs/PROTOCOL.md is the
// normative byte-level spec; this header is its implementation).
//
// Every unit on the wire is a length-prefixed frame
//
//   u32 frame_len | u8 frame_type | payload        (little-endian)
//
// where frame_len counts the type byte plus the payload. A connection
// starts with a HELLO/WELCOME handshake (magic check + version
// negotiation + sequence resume), after which the sender streams MSGBATCH
// frames — each carrying a run of consecutively-numbered v2 message
// frames, the exact bytes the encode memo already holds — and the
// receiver answers with cumulative ACK frames. Sequence numbers are
// per-channel and survive reconnects: the WELCOME's last_delivered_seq
// tells a reconnecting sender where to resume, and the receiver drops
// (but still acks) any message at or below it, which is what makes
// delivery exactly-once across a dropped connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace cmx::mq::transport {

// "CMXW" — first four payload bytes of every HELLO.
inline constexpr std::uint32_t kWireMagic = 0x57584D43u;
// Inclusive version range this implementation speaks. Negotiation picks
// min(max_a, max_b) if that lies in both ranges, else the connection is
// refused with kVersionMismatch.
inline constexpr std::uint16_t kWireVersionMin = 1;
inline constexpr std::uint16_t kWireVersionMax = 1;
// Upper bound on frame_len accepted from a peer; anything larger is a
// protocol error (protects against garbage lengths allocating gigabytes).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 0x01,    // client → server, first frame on a connection
  kWelcome = 0x02,  // server → client, handshake accept
  kMsgBatch = 0x03, // client → server, consecutive run of messages
  kAck = 0x04,      // server → client, cumulative delivery acknowledgment
  kClose = 0x05,    // either direction, final frame (code + reason)
};

enum class CloseCode : std::uint16_t {
  kNormal = 0,           // orderly shutdown
  kProtocolError = 1,    // malformed/unexpected frame
  kVersionMismatch = 2,  // no overlapping protocol version
  kBadMagic = 3,         // HELLO did not start with kWireMagic
  kShuttingDown = 4,     // peer is going away; retry later
  kInternalError = 5,    // receiver-side failure applying a batch
};

struct HelloFrame {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version_min = kWireVersionMin;
  std::uint16_t version_max = kWireVersionMax;
  // Identity of the dedupe/ack state on the receiver: one sequence-number
  // stream exists per channel_id. The sender channel uses
  // "<source_qmgr>-><destination_qmgr>".
  std::string channel_id;
  std::string source_qmgr;
};

struct WelcomeFrame {
  std::uint16_t version = kWireVersionMax;  // the negotiated version
  std::string receiver_qmgr;
  // Highest sequence number this receiver has delivered for channel_id
  // (0 = none). The sender must not resend anything at or below it and
  // may treat those messages as acknowledged.
  std::uint64_t last_delivered_seq = 0;
};

// MSGBATCH payload = header + `count` entries of (u32 len | message frame).
// Entry i carries sequence number first_seq + i.
struct MsgBatchHeader {
  std::uint64_t first_seq = 0;
  std::uint32_t count = 0;
};

struct AckFrame {
  // Cumulative: every sequence number <= acked_seq has been delivered
  // (or deliberately discarded: duplicate, expired, dead-lettered).
  std::uint64_t acked_seq = 0;
};

struct CloseFrame {
  CloseCode code = CloseCode::kNormal;
  std::string reason;
};

// ---- frame encoding ------------------------------------------------------
// Each encoder appends one complete frame (length prefix included) to
// `out`, so call sites can coalesce several frames into one socket write.
void append_hello(std::string& out, const HelloFrame& hello);
void append_welcome(std::string& out, const WelcomeFrame& welcome);
void append_ack(std::string& out, const AckFrame& ack);
void append_close(std::string& out, const CloseFrame& close);
// The batch encoder is split so the caller can stream message frames in
// without building an intermediate vector: begin_msg_batch returns the
// offset of the frame_len field, add_batch_message appends one entry, and
// end_msg_batch patches frame_len and count.
std::size_t begin_msg_batch(std::string& out, std::uint64_t first_seq);
void add_batch_message(std::string& out, std::string_view message_frame);
void end_msg_batch(std::string& out, std::size_t frame_offset,
                   std::uint32_t count);
// Scatter-gather variant: appends a COMPLETE MSGBATCH header (frame_len
// already final — no patching) for a batch whose entries total
// `entries_bytes` on the wire (per entry: u32 len + frame bytes). The
// caller then queues the entries themselves as separate iovec segments
// referencing the memoized frames, instead of copying them into `out`.
void append_msg_batch_header(std::string& out, std::uint64_t first_seq,
                             std::uint32_t count, std::size_t entries_bytes);

// ---- frame decoding ------------------------------------------------------
util::Result<HelloFrame> decode_hello(std::string_view payload);
util::Result<WelcomeFrame> decode_welcome(std::string_view payload);
util::Result<AckFrame> decode_ack(std::string_view payload);
util::Result<CloseFrame> decode_close(std::string_view payload);
// Decodes the batch header and leaves `entries` pointing at the
// (u32 len | message frame)* run; iterate with next_batch_message.
util::Result<MsgBatchHeader> decode_msg_batch_header(
    std::string_view payload, std::string_view& entries);
util::Result<std::string_view> next_batch_message(std::string_view& entries);

// Incremental frame parser over a byte stream. Feed raw socket reads with
// append(); next() yields complete frames (payload views remain valid
// until the next append()/compact()). A frame_len above kMaxFrameBytes
// poisons the parser — a stream desync is unrecoverable, the connection
// must be dropped.
class FrameParser {
 public:
  struct Frame {
    FrameType type;
    std::string_view payload;
  };

  void append(std::string_view bytes);

  // kFrame: `frame` is set. kNeedMore: wait for bytes. kError: poisoned.
  enum class Result { kFrame, kNeedMore, kError };
  Result next(Frame& frame);

  // Drops consumed bytes. Call between drain passes, never while payload
  // views from next() are still live.
  void compact();

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace cmx::mq::transport
