#include "mq/transport/wire.hpp"

#include <cstring>

#include "util/codec.hpp"

namespace cmx::mq::transport {

namespace {

// Appends the u32 frame_len | u8 type prefix for a payload already encoded
// in `w`, then the payload itself.
void append_frame(std::string& out, FrameType type,
                  const util::BinaryWriter& w) {
  util::BinaryWriter prefix;
  prefix.put_u32(static_cast<std::uint32_t>(1 + w.size()));
  prefix.put_u8(static_cast<std::uint8_t>(type));
  out += prefix.data();
  out += w.data();
}

void patch_u32(std::string& out, std::size_t offset, std::uint32_t v) {
  std::memcpy(out.data() + offset, &v, sizeof(v));
}

}  // namespace

void append_hello(std::string& out, const HelloFrame& hello) {
  util::BinaryWriter w;
  w.put_u32(hello.magic);
  w.put_u32(static_cast<std::uint32_t>(hello.version_min) |
            (static_cast<std::uint32_t>(hello.version_max) << 16));
  w.put_string(hello.channel_id);
  w.put_string(hello.source_qmgr);
  append_frame(out, FrameType::kHello, w);
}

void append_welcome(std::string& out, const WelcomeFrame& welcome) {
  util::BinaryWriter w;
  w.put_u32(welcome.version);  // u16 value carried in a u32 field
  w.put_string(welcome.receiver_qmgr);
  w.put_u64(welcome.last_delivered_seq);
  append_frame(out, FrameType::kWelcome, w);
}

void append_ack(std::string& out, const AckFrame& ack) {
  util::BinaryWriter w;
  w.put_u64(ack.acked_seq);
  append_frame(out, FrameType::kAck, w);
}

void append_close(std::string& out, const CloseFrame& close) {
  util::BinaryWriter w;
  w.put_u32(static_cast<std::uint32_t>(close.code));
  w.put_string(close.reason);
  append_frame(out, FrameType::kClose, w);
}

std::size_t begin_msg_batch(std::string& out, std::uint64_t first_seq) {
  const std::size_t frame_offset = out.size();
  util::BinaryWriter w;
  w.put_u32(0);  // frame_len, patched by end_msg_batch
  w.put_u8(static_cast<std::uint8_t>(FrameType::kMsgBatch));
  w.put_u64(first_seq);
  w.put_u32(0);  // count, patched by end_msg_batch
  out += w.data();
  return frame_offset;
}

void add_batch_message(std::string& out, std::string_view message_frame) {
  util::BinaryWriter len;
  len.put_u32(static_cast<std::uint32_t>(message_frame.size()));
  out += len.data();
  out.append(message_frame.data(), message_frame.size());
}

void append_msg_batch_header(std::string& out, std::uint64_t first_seq,
                             std::uint32_t count, std::size_t entries_bytes) {
  util::BinaryWriter w(out);
  // frame_len = type (1) + first_seq (8) + count (4) + the entries.
  w.put_u32(static_cast<std::uint32_t>(13 + entries_bytes));
  w.put_u8(static_cast<std::uint8_t>(FrameType::kMsgBatch));
  w.put_u64(first_seq);
  w.put_u32(count);
}

void end_msg_batch(std::string& out, std::size_t frame_offset,
                   std::uint32_t count) {
  // frame_len covers everything after the length field itself.
  patch_u32(out, frame_offset,
            static_cast<std::uint32_t>(out.size() - frame_offset - 4));
  // count sits after frame_len (4) + type (1) + first_seq (8).
  patch_u32(out, frame_offset + 13, count);
}

util::Result<HelloFrame> decode_hello(std::string_view payload) {
  util::BinaryReader r(payload);
  HelloFrame h;
  auto magic = r.get_u32();
  if (!magic) return magic.status();
  h.magic = magic.value();
  auto versions = r.get_u32();
  if (!versions) return versions.status();
  h.version_min = static_cast<std::uint16_t>(versions.value() & 0xFFFF);
  h.version_max = static_cast<std::uint16_t>(versions.value() >> 16);
  auto channel = r.get_string();
  if (!channel) return channel.status();
  h.channel_id = std::move(channel).value();
  auto source = r.get_string();
  if (!source) return source.status();
  h.source_qmgr = std::move(source).value();
  return h;
}

util::Result<WelcomeFrame> decode_welcome(std::string_view payload) {
  util::BinaryReader r(payload);
  WelcomeFrame w;
  auto version = r.get_u32();
  if (!version) return version.status();
  w.version = static_cast<std::uint16_t>(version.value());
  auto qmgr = r.get_string();
  if (!qmgr) return qmgr.status();
  w.receiver_qmgr = std::move(qmgr).value();
  auto seq = r.get_u64();
  if (!seq) return seq.status();
  w.last_delivered_seq = seq.value();
  return w;
}

util::Result<AckFrame> decode_ack(std::string_view payload) {
  util::BinaryReader r(payload);
  auto seq = r.get_u64();
  if (!seq) return seq.status();
  return AckFrame{seq.value()};
}

util::Result<CloseFrame> decode_close(std::string_view payload) {
  util::BinaryReader r(payload);
  CloseFrame c;
  auto code = r.get_u32();
  if (!code) return code.status();
  c.code = static_cast<CloseCode>(code.value());
  auto reason = r.get_string();
  if (!reason) return reason.status();
  c.reason = std::move(reason).value();
  return c;
}

util::Result<MsgBatchHeader> decode_msg_batch_header(
    std::string_view payload, std::string_view& entries) {
  util::BinaryReader r(payload);
  MsgBatchHeader h;
  auto seq = r.get_u64();
  if (!seq) return seq.status();
  h.first_seq = seq.value();
  auto count = r.get_u32();
  if (!count) return count.status();
  h.count = count.value();
  entries = payload.substr(12);  // past first_seq (8) + count (4)
  return h;
}

util::Result<std::string_view> next_batch_message(std::string_view& entries) {
  if (entries.size() < 4) {
    return util::make_error(util::ErrorCode::kIoError,
                            "truncated batch entry length");
  }
  std::uint32_t len;
  std::memcpy(&len, entries.data(), sizeof(len));
  if (entries.size() - 4 < len) {
    return util::make_error(util::ErrorCode::kIoError,
                            "truncated batch entry");
  }
  std::string_view frame = entries.substr(4, len);
  entries.remove_prefix(4 + len);
  return frame;
}

void FrameParser::append(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

FrameParser::Result FrameParser::next(Frame& frame) {
  if (poisoned_) return Result::kError;
  if (buf_.size() - pos_ < 5) return Result::kNeedMore;
  std::uint32_t frame_len;
  std::memcpy(&frame_len, buf_.data() + pos_, sizeof(frame_len));
  if (frame_len < 1 || frame_len > kMaxFrameBytes) {
    poisoned_ = true;
    return Result::kError;
  }
  if (buf_.size() - pos_ - 4 < frame_len) return Result::kNeedMore;
  frame.type = static_cast<FrameType>(buf_[pos_ + 4]);
  frame.payload = std::string_view(buf_).substr(pos_ + 5, frame_len - 1);
  pos_ += 4 + frame_len;
  return Result::kFrame;
}

void FrameParser::compact() {
  if (pos_ == 0) return;
  buf_.erase(0, pos_);
  pos_ = 0;
}

}  // namespace cmx::mq::transport
