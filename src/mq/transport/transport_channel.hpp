// TransportChannel: the socket-backed sibling of mq::Channel — the sending
// half of a unidirectional queue-manager-to-queue-manager link over TCP
// (DESIGN.md §10, docs/PROTOCOL.md).
//
// Like the in-process channel it owns the local transmission queue
// SYSTEM.XMIT.<remote> and a mover thread; unlike it, the mover speaks the
// wire protocol: it drains the transmission queue in batches, ships each
// message's memoized v2 encode frame inside MSGBATCH frames (the hot path
// serializes a message exactly once end-to-end, on the sending side), and
// keeps every sent-but-unacknowledged message in a retransmit window.
//
// Reliability (the §7 ack contract extended across processes):
//  * A message's consumption from the transmission queue is logged to the
//    local store only when the receiver's cumulative ACK covers it — so a
//    sender crash re-drives unacked messages from durable state on
//    recovery (at-least-once across crashes).
//  * Across a DROPPED CONNECTION delivery is exactly-once: sequence
//    numbers survive the reconnect, the handshake's last_delivered_seq
//    trims the window, and the receiver discards (but re-acks) anything
//    it has already delivered.
//  * Backpressure: when `window` messages are unacknowledged the mover
//    stops draining, and traffic accumulates on the (persistent)
//    transmission queue exactly as it does during an in-process pause.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mq/message.hpp"
#include "mq/transport/socket.hpp"
#include "mq/transport/wire.hpp"

namespace cmx::mq {
class QueueManager;
}

namespace cmx::mq::transport {

// Deterministic fault hooks for the transport test suite (0 = disabled).
struct TransportFaultOptions {
  // Caps every ::send call to this many bytes, forcing the partial-write
  // resume path on each flush.
  std::size_t max_write_bytes = 0;
  // Hard-closes the socket (once) as soon as this many payload bytes have
  // been written on the connection — a mid-frame disconnect when the
  // threshold lands inside a frame, a post-batch/pre-ack disconnect when
  // it lands on a frame boundary.
  std::uint64_t disconnect_after_bytes = 0;
};

struct TransportChannelOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  // Messages per MSGBATCH frame (mirrors ChannelOptions::max_batch).
  std::size_t max_batch = 64;
  // Maximum sent-but-unacked messages before the mover stops draining the
  // transmission queue (retransmit-buffer bound and flow control in one).
  std::size_t window = 1024;
  util::TimeMs connect_timeout_ms = 5000;
  // Reconnect backoff: doubles from `reconnect_backoff_ms` up to
  // `max_reconnect_backoff_ms` on consecutive failures.
  util::TimeMs reconnect_backoff_ms = 50;
  util::TimeMs max_reconnect_backoff_ms = 2000;
  bool start_paused = false;
  TransportFaultOptions fault;
};

struct TransportChannelStats {
  std::uint64_t sent = 0;           // messages written to the socket
  std::uint64_t acked = 0;          // messages covered by cumulative acks
  std::uint64_t retransmitted = 0;  // resends after a reconnect
  std::uint64_t reconnects = 0;     // connections established after the 1st
  std::uint64_t batches = 0;        // MSGBATCH frames written
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class TransportChannel {
 public:
  TransportChannel(QueueManager& from, std::string remote_qmgr,
                   TransportChannelOptions options);
  ~TransportChannel();

  TransportChannel(const TransportChannel&) = delete;
  TransportChannel& operator=(const TransportChannel&) = delete;

  const std::string& xmit_queue_name() const { return xmit_queue_; }
  const std::string& destination() const { return remote_; }

  // Suspends/resumes draining of the transmission queue (the in-process
  // channel's partition simulation; the TCP connection stays up).
  void pause();
  void resume();
  bool paused() const { return paused_.load(); }

  bool connected() const { return connected_.load(); }

  // Stops the mover permanently (best-effort CLOSE frame, then joins).
  // Unacked in-flight messages stay durable in the local store: their
  // consumption was never logged, so recovery re-drives them.
  void stop();

  TransportChannelStats stats() const;

  // Blocks until `count` messages have been acked in total, or the
  // timeout elapses. Returns whether the target was reached. Used by the
  // bench producer for closed-loop pacing and by tests.
  bool wait_for_acked(std::uint64_t count, util::TimeMs timeout_ms) const;

 private:
  struct Pending {
    std::uint64_t seq = 0;
    Message msg;          // shares the memoized frame; cheap to hold
    bool persistent = false;
    std::uint64_t send_us = 0;  // last (re)transmission, for ack RTT
  };

  // One element of the scatter-gather output queue: either bytes owned by
  // the segment (frame headers and entry length prefixes, all SSO-small)
  // or a reference to a message's memoized encode frame, kept alive by the
  // aliased shared_ptr — the frame bytes go to the socket straight from
  // the encode memo, never copied into an output buffer.
  struct OutSeg {
    std::string own;
    std::shared_ptr<const std::string> frame;  // when set, own is unused
    std::string_view view() const {
      return frame != nullptr ? std::string_view(*frame)
                              : std::string_view(own);
    }
  };

  void mover_loop();
  // Connects + handshakes, trimming/retransmitting the pending window.
  // Returns false when stop() interrupted the retry loop.
  bool connect_and_handshake();
  // Drains the transmission queue into outq_ while window space remains.
  void pump_queue();
  // Queues one MSGBATCH frame: complete header upfront (entry sizes are
  // known from the frames), then per entry a length prefix and a zero-copy
  // reference to the frame bytes.
  void queue_batch(std::uint64_t first_seq,
                   const std::vector<std::shared_ptr<const std::string>>&
                       frames);
  // Appends owned bytes to the output queue, coalescing into the previous
  // owned segment where possible.
  void queue_bytes(std::string_view bytes);
  // Non-blocking scatter-gather flush of outq_; false = connection died.
  bool flush_out();
  // Non-blocking read + ACK/CLOSE processing; false = connection died.
  bool read_frames();
  void complete_acked(std::uint64_t acked_seq);
  void on_disconnect();
  void wake();

  QueueManager& from_;
  const std::string remote_;
  const TransportChannelOptions options_;
  const std::string xmit_queue_;
  const std::string channel_id_;

  // Mover-thread-only connection state.
  Fd sock_;
  std::deque<OutSeg> outq_;  // segments queued for the socket
  std::size_t out_off_ = 0;  // bytes of outq_.front() already sent
  FrameParser parser_;       // inbound ACK/CLOSE stream
  std::deque<Pending> pending_;  // consecutive seqs, oldest first
  std::uint64_t next_seq_ = 1;
  std::uint64_t bytes_written_ = 0;  // lifetime, for the disconnect fault
  bool fault_disconnect_armed_ = false;
  bool ever_connected_ = false;

  Fd wake_event_;  // eventfd: queue puts / stop / resume wake the poll
  std::atomic<bool> paused_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};

  mutable std::mutex mu_;  // stats_, acked_total_, stop cv
  mutable std::condition_variable cv_;
  TransportChannelStats stats_;
  std::uint64_t acked_total_ = 0;

  std::thread mover_;
};

}  // namespace cmx::mq::transport
