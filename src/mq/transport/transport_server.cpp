#include "mq/transport/transport_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "mq/queue_manager.hpp"
#include "obs/registry.hpp"
#include "util/logging.hpp"

namespace cmx::mq::transport {

namespace {
constexpr const char* kLog = "transport.server";
}

TransportServer::TransportServer(QueueManager& to,
                                 TransportServerOptions options)
    : to_(to), options_(std::move(options)) {}

TransportServer::~TransportServer() { stop(); }

util::Status TransportServer::start() {
  if (started_) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "transport server already started");
  }
  if (auto s = loop_.valid(); !s) return s;
  auto listener = tcp_listen(options_.host, options_.port, options_.backlog);
  if (!listener) return listener.status();
  listener_ = std::move(listener).value();
  auto port = local_port(listener_.get());
  if (!port) return port.status();
  port_ = port.value();
  if (auto s = set_nonblocking(listener_.get(), true); !s) return s;
  if (auto s = loop_.add(listener_.get(), EPOLLIN,
                         [this](std::uint32_t ev) { on_accept(ev); });
      !s) {
    return s;
  }
  loop_.start();
  started_ = true;
  CMX_INFO(kLog) << to_.name() << " listening on " << options_.host << ":"
                 << port_;
  return util::ok_status();
}

void TransportServer::stop() {
  if (!started_) return;
  loop_.stop();  // joins the loop thread; conns_ is now ours to touch
  for (auto& [fd, conn] : conns_) {
    CloseFrame close{CloseCode::kShuttingDown, "server stopping"};
    conn->out.clear();
    append_close(conn->out, close);
    // Best-effort: the fd is non-blocking, a full send buffer just drops
    // the courtesy CLOSE (the sender survives an abrupt close anyway).
    (void)::send(fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
  }
  conns_.clear();
  listener_.reset();
  started_ = false;
}

TransportServerStats TransportServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::uint64_t TransportServer::last_delivered_seq(
    const std::string& channel_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = channels_.find(channel_id);
  return it == channels_.end() ? 0 : it->second;
}

void TransportServer::on_accept(std::uint32_t /*events*/) {
  while (true) {
    int cfd = ::accept(listener_.get(), nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept failure
    }
    (void)set_nonblocking(cfd, true);
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(cfd);
    if (auto s = loop_.add(
            cfd, EPOLLIN, [this, cfd](std::uint32_t ev) { on_conn_event(cfd, ev); });
        !s) {
      CMX_WARN(kLog) << "epoll add failed: " << s.message();
      continue;  // conn's Fd closes cfd
    }
    conns_[cfd] = std::move(conn);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.connections_accepted;
  }
}

void TransportServer::on_conn_event(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    drop_conn(fd);
    return;
  }
  if ((events & EPOLLIN) != 0) {
    char buf[65536];
    while (true) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          stats_.bytes_received += static_cast<std::uint64_t>(n);
        }
        conn.parser.append(std::string_view(buf, static_cast<std::size_t>(n)));
        FrameParser::Frame frame;
        while (true) {
          auto r = conn.parser.next(frame);
          if (r == FrameParser::Result::kNeedMore) break;
          if (r == FrameParser::Result::kError) {
            close_with(conn, CloseCode::kProtocolError, "bad frame length");
            drop_conn(fd);
            return;
          }
          if (!process_frame(conn, frame)) {
            drop_conn(fd);
            return;
          }
        }
        conn.parser.compact();
        continue;
      }
      if (n == 0) {  // orderly peer close
        drop_conn(fd);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_conn(fd);
      return;
    }
  }
  flush_conn(conn);
}

bool TransportServer::process_frame(Conn& conn,
                                    const FrameParser::Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      return handle_hello(conn, frame.payload);
    case FrameType::kMsgBatch:
      return handle_msg_batch(conn, frame.payload);
    case FrameType::kClose:
      return false;  // peer is done; no reply owed
    default:
      close_with(conn, CloseCode::kProtocolError, "unexpected frame type");
      return false;
  }
}

bool TransportServer::handle_hello(Conn& conn, std::string_view payload) {
  if (conn.handshaken) {
    close_with(conn, CloseCode::kProtocolError, "duplicate HELLO");
    return false;
  }
  auto hello = decode_hello(payload);
  if (!hello) {
    close_with(conn, CloseCode::kProtocolError, "malformed HELLO");
    return false;
  }
  if (hello.value().magic != kWireMagic) {
    close_with(conn, CloseCode::kBadMagic, "bad magic");
    return false;
  }
  const std::uint16_t lo =
      std::max(kWireVersionMin, hello.value().version_min);
  const std::uint16_t hi =
      std::min(kWireVersionMax, hello.value().version_max);
  if (lo > hi) {
    close_with(conn, CloseCode::kVersionMismatch, "no common version");
    return false;
  }
  conn.channel_id = hello.value().channel_id;
  conn.handshaken = true;
  WelcomeFrame welcome;
  welcome.version = hi;
  welcome.receiver_qmgr = to_.name();
  {
    std::lock_guard<std::mutex> lk(mu_);
    welcome.last_delivered_seq = channels_[conn.channel_id];
  }
  append_welcome(conn.out, welcome);
  CMX_DEBUG(kLog) << "handshake " << conn.channel_id << " resume_seq="
                  << welcome.last_delivered_seq;
  return true;
}

bool TransportServer::handle_msg_batch(Conn& conn, std::string_view payload) {
  if (!conn.handshaken) {
    close_with(conn, CloseCode::kProtocolError, "MSGBATCH before HELLO");
    return false;
  }
  std::string_view entries;
  auto header = decode_msg_batch_header(payload, entries);
  if (!header) {
    close_with(conn, CloseCode::kProtocolError, "malformed MSGBATCH");
    return false;
  }
  std::uint64_t last;
  {
    std::lock_guard<std::mutex> lk(mu_);
    last = channels_[conn.channel_id];
  }

  struct Item {
    std::uint64_t seq = 0;
    std::string dest;
    QueueAddress addr;
    Message msg;
  };
  std::vector<Item> live;
  live.reserve(header.value().count);
  std::uint64_t duplicates = 0;
  std::uint64_t expired = 0;
  const util::TimeMs now = to_.clock().now_ms();
  // One shared slab for the whole batch, created lazily on the first large
  // entry: big frames borrow spans of it (decode_shared) instead of each
  // copying their bytes, so a 64-message batch of 4 KiB frames costs one
  // allocation, not 64. Small frames still copy out — a tiny message must
  // not pin the slab (Message::kFrameAdoptMinBytes).
  std::shared_ptr<const std::string> slab;
  for (std::uint32_t i = 0; i < header.value().count; ++i) {
    auto entry = next_batch_message(entries);
    if (!entry) {
      close_with(conn, CloseCode::kProtocolError, "truncated MSGBATCH");
      return false;
    }
    const std::uint64_t seq = header.value().first_seq + i;
    if (seq <= last) {
      // Retransmit of something already delivered before the last
      // disconnect: discard, but the cumulative ACK below still covers
      // it — this is the exactly-once half of the reconnect contract.
      ++duplicates;
      continue;
    }
    util::Result<Message> decoded = [&] {
      if (entry.value().size() >= Message::kFrameAdoptMinBytes &&
          zero_copy_enabled()) {
        if (slab == nullptr) {
          slab = std::make_shared<const std::string>(payload);
        }
        const auto off =
            static_cast<std::size_t>(entry.value().data() - payload.data());
        return Message::decode_shared(slab, off, entry.value().size());
      }
      return Message::decode(entry.value(), /*retain_frame=*/true);
    }();
    if (!decoded) {
      close_with(conn, CloseCode::kProtocolError, "bad message frame");
      return false;
    }
    Item item;
    item.seq = seq;
    item.msg = std::move(decoded).value();
    item.dest = item.msg.get_string(kXmitDestProperty).value_or("");
    item.msg.erase_property(kXmitDestProperty);
    item.addr = QueueAddress::parse(item.dest);
    if (item.msg.expired(now)) {
      ++expired;  // weeded out exactly like the in-process channel
      continue;
    }
    live.push_back(std::move(item));
  }

  // Every sequence number in the batch is now accounted for (delivered,
  // duplicate, or expired) unless delivery fails partway below.
  std::uint64_t new_last = header.value().count == 0
                               ? last
                               : header.value().first_seq +
                                     header.value().count - 1;
  std::uint64_t delivered = 0;
  std::uint64_t dead_lettered = 0;
  bool hard_fail = false;

  if (!live.empty()) {
    std::vector<std::pair<std::string, Message>> puts;
    puts.reserve(live.size());
    for (const auto& item : live) puts.emplace_back(item.addr.queue, item.msg);
    if (to_.put_local_batch(std::move(puts))) {
      delivered = live.size();
    } else {
      // Batch prevalidation failed (e.g. an unknown destination queue):
      // message-at-a-time fallback, advancing the ack horizon only over
      // sequences actually handled so a hard failure is retried by the
      // sender rather than silently dropped.
      new_last = last;
      for (auto& item : live) {
        Message copy = item.msg;  // shares the frame; kept for the DLQ
        auto s = to_.put_local(item.addr.queue, std::move(item.msg));
        if (!s && s.code() == util::ErrorCode::kNotFound) {
          to_.ensure_queue(kDeadLetterQueue).expect_ok("ensure DLQ");
          copy.set_property(kXmitDestProperty, item.dest);
          to_.put_local(kDeadLetterQueue, std::move(copy));
          ++dead_lettered;
          new_last = item.seq;
          continue;
        }
        if (!s) {
          hard_fail = true;
          break;
        }
        ++delivered;
        new_last = item.seq;
      }
      if (!hard_fail && header.value().count > 0) {
        // Trailing duplicates/expired entries after the last live one are
        // handled too; extend the horizon back to the batch end.
        new_last = header.value().first_seq + header.value().count - 1;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (new_last > channels_[conn.channel_id]) {
      channels_[conn.channel_id] = new_last;
    }
    ++stats_.batches;
    ++stats_.acks_sent;
    stats_.delivered += delivered;
    stats_.duplicates_suppressed += duplicates;
    stats_.expired += expired;
    stats_.dead_lettered += dead_lettered;
  }
  CMX_OBS_COUNT("transport.delivered", delivered);
  if (duplicates > 0) CMX_OBS_COUNT("transport.duplicates", duplicates);
  AckFrame ack;
  ack.acked_seq = new_last;
  append_ack(conn.out, ack);
  if (hard_fail) {
    close_with(conn, CloseCode::kInternalError, "delivery failed");
    return false;
  }
  return true;
}

void TransportServer::close_with(Conn& conn, CloseCode code,
                                 std::string_view reason) {
  CMX_WARN(kLog) << "closing " << conn.channel_id << ": " << reason
                 << " (code " << static_cast<int>(code) << ")";
  CloseFrame close{code, std::string(reason)};
  append_close(conn.out, close);
  flush_conn(conn);  // best-effort; the caller drops the connection next
}

void TransportServer::flush_conn(Conn& conn) {
  while (!conn.out.empty()) {
    ssize_t n = ::send(conn.fd.get(), conn.out.data(), conn.out.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        (void)loop_.modify(conn.fd.get(), EPOLLIN | EPOLLOUT);
      }
      return;
    }
    return;  // send failed; the read side will notice the dead peer
  }
  if (conn.want_write) {
    conn.want_write = false;
    (void)loop_.modify(conn.fd.get(), EPOLLIN);
  }
}

void TransportServer::drop_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  loop_.remove(fd);
  conns_.erase(it);  // Fd destructor closes the socket
}

}  // namespace cmx::mq::transport
