// TransportServer: the receiving half of the TCP channel transport — the
// connection fan-in side of DESIGN.md §10. One epoll EventLoop thread
// multiplexes the listen socket and every accepted sender connection;
// inbound MSGBATCH frames are decoded straight into the local
// QueueManager with put_local_batch, and each batch is answered with a
// cumulative ACK.
//
// Exactly-once across reconnects: the server keeps one
// last_delivered_seq per channel_id, OUTLIVING the connection that
// carried it. A reconnecting sender learns it from the WELCOME frame;
// any retransmitted message at or below it is discarded here (but still
// covered by the cumulative ACK), so a message crosses into the
// destination queue exactly once no matter how often the connection
// drops mid-flight.
//
// Zero-copy on the receive path: message frames are decoded with
// retain_frame=true, so the bytes that arrived on the wire become the
// decoded message's memoized encode frame — the persistent store append
// on this side reuses them instead of re-serializing (the transit-tail
// patch for CMX_XMIT_DEST removal only rewrites the trailing section).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "mq/transport/event_loop.hpp"
#include "mq/transport/socket.hpp"
#include "mq/transport/wire.hpp"
#include "util/status.hpp"

namespace cmx::mq {
class QueueManager;
}

namespace cmx::mq::transport {

struct TransportServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read the actual one back with port().
  std::uint16_t port = 0;
  int backlog = 64;
};

struct TransportServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t batches = 0;            // MSGBATCH frames processed
  std::uint64_t delivered = 0;          // messages put to local queues
  std::uint64_t duplicates_suppressed = 0;  // seq <= last_delivered drops
  std::uint64_t expired = 0;            // weeded out before delivery
  std::uint64_t dead_lettered = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t bytes_received = 0;
};

class TransportServer {
 public:
  TransportServer(QueueManager& to, TransportServerOptions options = {});
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  // Binds, listens, and starts the event loop thread.
  util::Status start();
  // Stops the loop and closes every connection. Dedupe state is retained
  // until destruction so tests can inspect it after a stop.
  void stop();

  // The bound port (valid after start(); resolves an ephemeral bind).
  std::uint16_t port() const { return port_; }

  TransportServerStats stats() const;
  // Highest sequence delivered for a channel (0 = never heard from it).
  std::uint64_t last_delivered_seq(const std::string& channel_id) const;

 private:
  struct Conn {
    Fd fd;
    FrameParser parser;
    std::string out;  // pending WELCOME/ACK/CLOSE bytes (partial writes)
    bool handshaken = false;
    bool want_write = false;  // EPOLLOUT currently registered
    std::string channel_id;
  };

  void on_accept(std::uint32_t events);
  void on_conn_event(int fd, std::uint32_t events);
  // Returns false when the connection must be dropped (close already sent
  // or peer gone).
  bool process_frame(Conn& conn, const FrameParser::Frame& frame);
  bool handle_hello(Conn& conn, std::string_view payload);
  bool handle_msg_batch(Conn& conn, std::string_view payload);
  // Queues a CLOSE frame and tears the connection down after a
  // best-effort flush.
  void close_with(Conn& conn, CloseCode code, std::string_view reason);
  void flush_conn(Conn& conn);
  void drop_conn(int fd);

  QueueManager& to_;
  const TransportServerOptions options_;
  EventLoop loop_;
  Fd listener_;
  std::uint16_t port_ = 0;
  bool started_ = false;

  // Loop-thread-only after start().
  std::map<int, std::unique_ptr<Conn>> conns_;

  mutable std::mutex mu_;  // stats_, channels_
  TransportServerStats stats_;
  // channel_id -> highest delivered sequence; survives reconnects.
  std::map<std::string, std::uint64_t> channels_;
};

}  // namespace cmx::mq::transport
