#include "mq/transport/transport_channel.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mq/queue_manager.hpp"
#include "obs/registry.hpp"
#include "util/logging.hpp"

namespace cmx::mq::transport {

TransportChannel::TransportChannel(QueueManager& from, std::string remote_qmgr,
                                   TransportChannelOptions options)
    : from_(from),
      remote_(std::move(remote_qmgr)),
      options_(std::move(options)),
      xmit_queue_(std::string(kXmitQueuePrefix) + remote_),
      channel_id_(from.name() + "->" + remote_),
      wake_event_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  paused_.store(options_.start_paused);
  fault_disconnect_armed_ = options_.fault.disconnect_after_bytes > 0;
  from_.ensure_queue(xmit_queue_, QueueOptions{.max_depth = SIZE_MAX,
                                               .system = true})
      .expect_ok("create xmit queue");
  // Wake the mover's poll whenever a message lands on the transmission
  // queue — the transport equivalent of the in-process mover's blocking
  // dequeue.
  if (auto queue = from_.find_queue(xmit_queue_)) {
    queue->set_put_listener([this] { wake(); });
  }
  mover_ = std::thread([this] { mover_loop(); });
}

TransportChannel::~TransportChannel() { stop(); }

void TransportChannel::pause() { paused_.store(true); }

void TransportChannel::resume() {
  paused_.store(false);
  wake();
}

void TransportChannel::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_event_.get(), &one, sizeof(one));
}

void TransportChannel::stop() {
  if (stopping_.exchange(true)) {
    if (mover_.joinable()) mover_.join();
    return;
  }
  // Drop the wake closure (it captures `this`) and close the transmission
  // queue, mirroring Channel::stop: future puts are rejected, messages
  // already on it stay persisted (recoverable).
  if (auto queue = from_.find_queue(xmit_queue_)) {
    queue->set_put_listener({});
    queue->close();
  }
  cv_.notify_all();
  wake();
  if (mover_.joinable()) mover_.join();
}

TransportChannelStats TransportChannel::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool TransportChannel::wait_for_acked(std::uint64_t count,
                                      util::TimeMs timeout_ms) const {
  std::unique_lock<std::mutex> lk(mu_);
  const auto pred = [&] { return acked_total_ >= count || stopping_.load(); };
  if (timeout_ms == util::kNoDeadline) {
    cv_.wait(lk, pred);
  } else {
    cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), pred);
  }
  return acked_total_ >= count;
}

void TransportChannel::mover_loop() {
  while (!stopping_.load()) {
    if (!sock_.valid()) {
      if (!connect_and_handshake()) break;
    }
    pump_queue();
    if (!flush_out()) {
      on_disconnect();
      continue;
    }
    pollfd pfds[2];
    pfds[0] = {sock_.get(),
               static_cast<short>(POLLIN | (outq_.empty() ? 0 : POLLOUT)), 0};
    pfds[1] = {wake_event_.get(), POLLIN, 0};
    const int n = ::poll(pfds, 2, 1000);
    if (n < 0 && errno != EINTR) break;
    if (pfds[1].revents & POLLIN) {
      std::uint64_t drained;
      while (::read(wake_event_.get(), &drained, sizeof(drained)) > 0) {
      }
    }
    if (pfds[0].revents & (POLLERR | POLLHUP)) {
      on_disconnect();
      continue;
    }
    if (pfds[0].revents & POLLIN) {
      if (!read_frames()) {
        on_disconnect();
        continue;
      }
    }
  }
  if (sock_.valid()) {
    // Best-effort orderly close; the socket may be gone, which is fine.
    std::string bye;
    append_close(bye, CloseFrame{CloseCode::kNormal, "channel stop"});
    [[maybe_unused]] ssize_t n =
        ::send(sock_.get(), bye.data(), bye.size(), MSG_NOSIGNAL);
    sock_.reset();
  }
  connected_.store(false);
}

bool TransportChannel::connect_and_handshake() {
  util::TimeMs backoff = options_.reconnect_backoff_ms;
  while (!stopping_.load()) {
    auto fd = tcp_connect(options_.host, options_.port,
                          options_.connect_timeout_ms);
    if (fd) {
      Fd sock = std::move(fd).value();
      HelloFrame hello;
      hello.channel_id = channel_id_;
      hello.source_qmgr = from_.name();
      std::string bytes;
      append_hello(bytes, hello);
      bool ok = send_all(sock.get(), bytes.data(), bytes.size()).is_ok();
      WelcomeFrame welcome;
      if (ok) {
        ok = false;
        set_recv_timeout(sock.get(), options_.connect_timeout_ms)
            .expect_ok("set handshake timeout");
        FrameParser parser;
        char buf[4096];
        while (true) {
          FrameParser::Frame frame;
          const auto r = parser.next(frame);
          if (r == FrameParser::Result::kError) break;
          if (r == FrameParser::Result::kFrame) {
            if (frame.type == FrameType::kWelcome) {
              if (auto w = decode_welcome(frame.payload)) {
                welcome = std::move(w).value();
                ok = welcome.version >= kWireVersionMin &&
                     welcome.version <= kWireVersionMax;
              }
            } else if (frame.type == FrameType::kClose) {
              if (auto c = decode_close(frame.payload)) {
                CMX_WARN("mq.transport")
                    << channel_id_ << " handshake refused (code "
                    << static_cast<int>(c.value().code) << "): "
                    << c.value().reason;
              }
            }
            break;  // exactly one frame decides the handshake
          }
          auto got = recv_some(sock.get(), buf, sizeof(buf));
          if (!got || got.value() == 0) break;
          parser.append(std::string_view(buf, got.value()));
        }
      }
      if (ok) {
        sock_ = std::move(sock);
        set_nonblocking(sock_.get(), true).expect_ok("nonblocking socket");
        outq_.clear();
        out_off_ = 0;
        parser_ = FrameParser{};
        // The receiver has already delivered everything up to
        // last_delivered_seq — complete those locally instead of
        // resending, then retransmit the rest of the window in order.
        complete_acked(welcome.last_delivered_seq);
        if (!pending_.empty()) {
          std::size_t i = 0;
          std::vector<std::shared_ptr<const std::string>> frames;
          while (i < pending_.size()) {
            const std::size_t n =
                std::min(options_.max_batch, pending_.size() - i);
            const std::uint64_t first_seq = pending_[i].seq;
            frames.clear();
            frames.reserve(n);
            for (std::size_t k = 0; k < n; ++k, ++i) {
              pending_[i].send_us = obs::now_us();
              frames.push_back(pending_[i].msg.encoded_frame());
            }
            queue_batch(first_seq, frames);
          }
          CMX_OBS_COUNT("transport.retransmitted", pending_.size());
          std::lock_guard<std::mutex> lk(mu_);
          stats_.retransmitted += pending_.size();
        }
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (ever_connected_) ++stats_.reconnects;
        }
        if (ever_connected_) CMX_OBS_COUNT("transport.reconnects", 1);
        ever_connected_ = true;
        connected_.store(true);
        return true;
      }
    }
    // Interruptible backoff: stop() notifies cv_.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::milliseconds(backoff),
                 [&] { return stopping_.load(); });
    backoff = std::min(backoff * 2, options_.max_reconnect_backoff_ms);
  }
  return false;
}

void TransportChannel::pump_queue() {
  if (paused_.load()) return;
  auto queue = from_.find_queue(xmit_queue_);
  if (queue == nullptr) return;
  std::uint64_t pumped = 0;
  std::vector<std::shared_ptr<const std::string>> frames;
  while (pending_.size() < options_.window) {
    const std::size_t room =
        std::min(options_.max_batch, options_.window - pending_.size());
    auto batch = queue->try_get_batch(room);
    if (batch.empty()) break;
    const std::uint64_t first_seq = next_seq_;
    frames.clear();
    frames.reserve(batch.size());
    for (auto& got : batch) {
      Pending p;
      p.seq = next_seq_++;
      p.persistent = got.msg.persistent();
      p.send_us = obs::now_us();
      frames.push_back(got.msg.encoded_frame());
      p.msg = std::move(got.msg);
      pending_.push_back(std::move(p));
    }
    queue_batch(first_seq, frames);
    pumped += batch.size();
    std::lock_guard<std::mutex> lk(mu_);
    stats_.sent += batch.size();
    ++stats_.batches;
  }
  if (pumped > 0) {
    CMX_OBS_COUNT("mq.get", pumped);
    CMX_OBS_COUNT("transport.sent", pumped);
  }
}

void TransportChannel::queue_bytes(std::string_view bytes) {
  // Coalesce small owned runs (header + adjacent length prefix) into one
  // segment; appending to the front segment is safe with out_off_ since
  // the sent prefix is untouched.
  if (!outq_.empty() && outq_.back().frame == nullptr) {
    outq_.back().own.append(bytes.data(), bytes.size());
    return;
  }
  OutSeg seg;
  seg.own.assign(bytes.data(), bytes.size());
  outq_.push_back(std::move(seg));
}

void TransportChannel::queue_batch(
    std::uint64_t first_seq,
    const std::vector<std::shared_ptr<const std::string>>& frames) {
  std::size_t entries_bytes = 0;
  for (const auto& f : frames) entries_bytes += 4 + f->size();
  std::string header;
  append_msg_batch_header(header, first_seq,
                          static_cast<std::uint32_t>(frames.size()),
                          entries_bytes);
  queue_bytes(header);
  for (const auto& f : frames) {
    const auto len = static_cast<std::uint32_t>(f->size());
    char prefix[sizeof(len)];
    std::memcpy(prefix, &len, sizeof(len));
    queue_bytes(std::string_view(prefix, sizeof(prefix)));
    OutSeg seg;
    seg.frame = f;
    outq_.push_back(std::move(seg));
  }
}

bool TransportChannel::flush_out() {
  constexpr int kMaxIov = 64;
  while (!outq_.empty()) {
    // Byte cap for this write: the fault hooks bound it so partial-write
    // and mid-frame-disconnect points stay deterministic.
    std::size_t cap = SIZE_MAX;
    if (options_.fault.max_write_bytes > 0) {
      cap = options_.fault.max_write_bytes;
    }
    if (fault_disconnect_armed_) {
      const std::uint64_t left =
          options_.fault.disconnect_after_bytes - bytes_written_;
      cap = std::min<std::uint64_t>(cap, left);
    }
    iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t gathered = 0;
    for (auto it = outq_.begin();
         it != outq_.end() && iovcnt < kMaxIov && gathered < cap; ++it) {
      std::string_view v = it->view();
      if (it == outq_.begin()) v.remove_prefix(out_off_);
      const std::size_t take = std::min(v.size(), cap - gathered);
      if (take == 0) continue;
      iov[iovcnt].iov_base = const_cast<char*>(v.data());
      iov[iovcnt].iov_len = take;
      ++iovcnt;
      gathered += take;
    }
    if (iovcnt == 0) return true;
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t w = ::sendmsg(sock_.get(), &mh, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // POLLOUT
      return false;
    }
    bytes_written_ += static_cast<std::uint64_t>(w);
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.bytes_sent += static_cast<std::uint64_t>(w);
    }
    // Pop fully-written segments; a partial segment advances out_off_.
    std::size_t left = static_cast<std::size_t>(w);
    while (left > 0) {
      const std::size_t remain = outq_.front().view().size() - out_off_;
      if (left >= remain) {
        left -= remain;
        outq_.pop_front();
        out_off_ = 0;
      } else {
        out_off_ += left;
        left = 0;
      }
    }
    if (fault_disconnect_armed_ &&
        bytes_written_ >= options_.fault.disconnect_after_bytes) {
      fault_disconnect_armed_ = false;  // fires once
      return false;  // caller treats it as a dropped connection
    }
  }
  return true;
}

bool TransportChannel::read_frames() {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(sock_.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) return false;  // peer closed
    parser_.append(std::string_view(buf, static_cast<std::size_t>(n)));
    std::lock_guard<std::mutex> lk(mu_);
    stats_.bytes_received += static_cast<std::uint64_t>(n);
  }
  while (true) {
    FrameParser::Frame frame;
    const auto r = parser_.next(frame);
    if (r == FrameParser::Result::kNeedMore) break;
    if (r == FrameParser::Result::kError) return false;
    switch (frame.type) {
      case FrameType::kAck: {
        auto ack = decode_ack(frame.payload);
        if (!ack) return false;
        complete_acked(ack.value().acked_seq);
        break;
      }
      case FrameType::kClose: {
        if (auto c = decode_close(frame.payload)) {
          CMX_INFO("mq.transport")
              << channel_id_ << " peer closed (code "
              << static_cast<int>(c.value().code) << "): "
              << c.value().reason;
        }
        return false;
      }
      default:
        return false;  // protocol violation; drop the connection
    }
  }
  parser_.compact();
  return true;
}

void TransportChannel::complete_acked(std::uint64_t acked_seq) {
  std::vector<LogRecord> records;
  std::uint64_t newly = 0;
  const bool obs_on = obs::enabled();
  const std::uint64_t now_us = obs_on ? obs::now_us() : 0;
  while (!pending_.empty() && pending_.front().seq <= acked_seq) {
    Pending& p = pending_.front();
    if (p.persistent) {
      records.push_back(LogRecord::get(xmit_queue_, p.msg.id()));
    }
    if (obs_on) {
      CMX_OBS_RECORD("transport.ack_rtt_us", now_us - p.send_us);
    }
    pending_.pop_front();
    ++newly;
  }
  if (newly == 0) return;
  // The deferred consumption log (the §7 ack contract across processes):
  // only now that the receiver has acknowledged delivery do we record the
  // messages as consumed from the transmission queue. A crash before this
  // point re-drives them from durable state on recovery.
  if (!records.empty()) {
    if (auto s = from_.append_log_batch(records); !s) {
      CMX_WARN("mq.transport")
          << channel_id_ << " consume log failed: " << s.to_string();
    }
  }
  CMX_OBS_COUNT("transport.acked", newly);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.acked += newly;
    acked_total_ += newly;
  }
  cv_.notify_all();
}

void TransportChannel::on_disconnect() {
  sock_.reset();
  // Unsent segments die with the connection — the reconnect handshake
  // rebuilds the batch stream from pending_ (retransmit window), and the
  // frame references dropped here release their encode memos.
  outq_.clear();
  out_off_ = 0;
  parser_ = FrameParser{};
  connected_.store(false);
}

}  // namespace cmx::mq::transport
