#include "mq/channel.hpp"

#include "mq/queue_manager.hpp"
#include "obs/lifecycle.hpp"
#include "util/logging.hpp"

namespace cmx::mq {

Channel::Channel(QueueManager& from, QueueManager& to, ChannelOptions options)
    : from_(from),
      to_(to),
      options_(options),
      xmit_queue_(std::string(kXmitQueuePrefix) + to.name()),
      rng_(options.seed) {
  paused_.store(options.start_paused);
  from_.ensure_queue(xmit_queue_, QueueOptions{.max_depth = SIZE_MAX,
                                               .system = true})
      .expect_ok("create xmit queue");
  mover_ = std::thread([this] { mover_loop(); });
}

Channel::~Channel() { stop(); }

const std::string& Channel::source() const { return from_.name(); }
const std::string& Channel::destination() const { return to_.name(); }

void Channel::pause() { paused_.store(true); }

void Channel::resume() {
  paused_.store(false);
  pause_cv_.notify_all();
}

void Channel::stop() {
  if (stopping_.exchange(true)) {
    if (mover_.joinable()) mover_.join();
    return;
  }
  // Close the transmission queue: wakes the mover's blocking get with
  // kClosed. Messages still on it stay persisted (recoverable).
  if (auto queue = from_.find_queue(xmit_queue_)) queue->close();
  pause_cv_.notify_all();
  if (mover_.joinable()) mover_.join();
}

ChannelStats Channel::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Channel::mover_loop() {
  while (!stopping_.load()) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      pause_cv_.wait(lk, [&] { return !paused_.load() || stopping_.load(); });
    }
    if (stopping_.load()) break;
    auto got = from_.get(xmit_queue_, util::kNoDeadline);
    if (!got) {
      if (got.code() == util::ErrorCode::kClosed) break;
      continue;
    }
    deliver(std::move(got).value());
  }
}

void Channel::deliver(Message msg) {
  util::TimeMs delay = options_.latency_ms;
  if (options_.jitter_ms > 0) delay += rng_.uniform(0, options_.jitter_ms);
  if (delay > 0) from_.clock().sleep_ms(delay);

  if (!msg.persistent() && rng_.chance(options_.drop_nonpersistent)) {
    CMX_OBS_COUNT("channel.dropped", 1);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.dropped;
    return;
  }
  const bool duplicate = rng_.chance(options_.duplicate);

  const std::string dest =
      msg.get_string(kXmitDestProperty).value_or("");
  msg.properties.erase(kXmitDestProperty);
  const QueueAddress addr = QueueAddress::parse(dest);

  // Transit latency: put on the local transmission queue -> delivered to
  // the remote queue manager, on the shared clock. The lifecycle stage is
  // recorded only for conditional data messages (the cm layer's CMX_KIND
  // contract), so acks and compensations crossing back don't pollute it.
  const bool obs_on = obs::enabled();
  const util::TimeMs xmit_put_ms = msg.put_time_ms;
  const bool conditional_data =
      obs_on && msg.get_string("CMX_KIND").value_or("") == "data";

  Message copy = msg;  // kept for duplication / dead-lettering
  auto s = to_.put_local(addr.queue, std::move(msg));
  if (!s && s.code() == util::ErrorCode::kNotFound) {
    // Unknown destination queue at the remote side: dead-letter it, with
    // the intended destination recorded for an operator to inspect.
    to_.ensure_queue(kDeadLetterQueue).expect_ok("ensure DLQ");
    copy.set_property(kXmitDestProperty, dest);
    to_.put_local(kDeadLetterQueue, std::move(copy));
    CMX_OBS_COUNT("channel.dead_lettered", 1);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.dead_lettered;
    return;
  }
  if (!s) return;  // remote shutting down; message is lost from this hop
  if (obs_on) {
    const std::uint64_t transit_us =
        obs::ms_delta_us(to_.clock().now_ms() - xmit_put_ms);
    CMX_OBS_COUNT("channel.transferred", 1);
    CMX_OBS_RECORD("channel.transit_us", transit_us);
    if (conditional_data) {
      obs::trace_stage(obs::Stage::kChannelTransit, transit_us);
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.transferred;
  }
  if (duplicate && to_.put_local(addr.queue, std::move(copy))) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.duplicated;
  }
}

}  // namespace cmx::mq
