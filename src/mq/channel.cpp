#include "mq/channel.hpp"

#include <algorithm>

#include "mq/queue_manager.hpp"
#include "obs/lifecycle.hpp"
#include "util/logging.hpp"

namespace cmx::mq {

Channel::Channel(QueueManager& from, QueueManager& to, ChannelOptions options)
    : from_(from),
      to_(to),
      options_(options),
      xmit_queue_(std::string(kXmitQueuePrefix) + to.name()),
      rng_(options.seed) {
  paused_.store(options.start_paused);
  from_.ensure_queue(xmit_queue_, QueueOptions{.max_depth = SIZE_MAX,
                                               .system = true})
      .expect_ok("create xmit queue");
  mover_ = std::thread([this] { mover_loop(); });
}

Channel::~Channel() { stop(); }

const std::string& Channel::source() const { return from_.name(); }
const std::string& Channel::destination() const { return to_.name(); }

void Channel::pause() { paused_.store(true); }

void Channel::resume() {
  paused_.store(false);
  pause_cv_.notify_all();
}

void Channel::stop() {
  if (stopping_.exchange(true)) {
    if (mover_.joinable()) mover_.join();
    return;
  }
  // Close the transmission queue: wakes the mover's blocking get with
  // kClosed. Messages still on it stay persisted (recoverable).
  if (auto queue = from_.find_queue(xmit_queue_)) queue->close();
  pause_cv_.notify_all();
  if (mover_.joinable()) mover_.join();
}

ChannelStats Channel::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Channel::mover_loop() {
  // Hoisted out of the loop so steady-state iterations reuse capacity
  // instead of allocating fresh vectors per hop.
  std::vector<Message> batch;
  std::vector<LogRecord> get_records;
  while (!stopping_.load()) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      pause_cv_.wait(lk, [&] { return !paused_.load() || stopping_.load(); });
    }
    if (stopping_.load()) break;
    auto got = from_.get(xmit_queue_, util::kNoDeadline);
    if (!got) {
      if (got.code() == util::ErrorCode::kClosed) break;
      continue;
    }
    if (paused_.load()) {
      // A pause() that landed while the mover was blocked in the dequeue
      // must still stop traffic: hold the message until resume instead of
      // letting it slip across the partition.
      std::unique_lock<std::mutex> lk(mu_);
      pause_cv_.wait(lk, [&] { return !paused_.load() || stopping_.load(); });
      if (stopping_.load()) break;  // lost from this hop, like any stop
                                    // with a message in transit
    }
    // Per-hop drain cap: also the reserve that keeps `batch` elements
    // stable while borrowed get-records below view their ids.
    const std::size_t cap = std::min<std::size_t>(options_.max_batch, 1024);
    batch.clear();
    batch.reserve(cap);
    batch.push_back(std::move(got).value());
    // Drain whatever else is already waiting (up to max_batch) so a backlog
    // crosses in one hop: one latency sleep, one batched consumption log,
    // one remote store append. Never drain while paused, so a pause takes
    // effect at the next message boundary.
    if (options_.max_batch > 1 && !paused_.load()) {
      auto queue = from_.find_queue(xmit_queue_);
      get_records.clear();
      while (queue && batch.size() < cap) {
        auto extra = queue->try_get();
        if (!extra.has_value()) break;
        // Move first, then borrow: the get-record views the id in place —
        // the reserve above keeps `batch` elements stable until the
        // append_log_batch below encodes them.
        batch.push_back(std::move(extra->msg));
        if (batch.back().persistent()) {
          get_records.push_back(
              LogRecord::get_ref(xmit_queue_, batch.back().id()));
        }
      }
      if (!get_records.empty()) {
        from_.append_log_batch(get_records).expect_ok("log xmit drain");
      }
      CMX_OBS_COUNT("mq.get", batch.size() - 1);
    }
    deliver_batch(batch);
  }
}

void Channel::deliver_batch(std::vector<Message>& msgs) {
  util::TimeMs delay = options_.latency_ms;
  if (options_.jitter_ms > 0) delay += rng_.uniform(0, options_.jitter_ms);
  if (delay > 0) from_.clock().sleep_ms(delay);

  const bool obs_on = obs::enabled();
  std::vector<TransitItem> items;
  items.reserve(msgs.size());
  for (auto& msg : msgs) {
    if (!msg.persistent() && rng_.chance(options_.drop_nonpersistent)) {
      CMX_OBS_COUNT("channel.dropped", 1);
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.dropped;
      continue;
    }
    TransitItem item;
    item.dup = rng_.chance(options_.duplicate);
    item.dest = msg.get_string(kXmitDestProperty).value_or("");
    msg.erase_property(kXmitDestProperty);
    item.addr = QueueAddress::parse(item.dest);
    // Transit latency: put on the local transmission queue -> delivered to
    // the remote queue manager, on the shared clock. The lifecycle stage is
    // recorded only for conditional data messages (the cm layer's CMX_KIND
    // contract), so acks and compensations crossing back don't pollute it.
    item.xmit_put_ms = msg.put_time_ms();
    item.conditional_data =
        obs_on && msg.get_string("CMX_KIND").value_or("") == "data";
    item.msg = std::move(msg);
    items.push_back(std::move(item));
  }
  if (items.empty()) return;

  // A message that expired in transit would fail the whole batch's
  // prevalidation; weed it out here, as the per-message path's put_local
  // would have.
  const util::TimeMs now = to_.clock().now_ms();
  std::erase_if(items,
                [now](const TransitItem& i) { return i.msg.expired(now); });
  if (items.empty()) return;

  std::vector<std::pair<std::string, Message>> puts;
  puts.reserve(items.size());
  for (const auto& item : items) {
    puts.emplace_back(item.addr.queue, item.msg);
  }
  if (auto s = to_.put_local_batch(std::move(puts)); !s) {
    // Batch prevalidation failed (e.g. an unknown destination queue that
    // must be dead-lettered): fall back to message-at-a-time delivery,
    // which handles the per-message outcomes.
    for (auto& item : items) deliver_one(std::move(item));
    return;
  }
  for (auto& item : items) record_delivered(item);
  for (auto& item : items) {
    if (item.dup && to_.put_local(item.addr.queue, std::move(item.msg))) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.duplicated;
    }
  }
}

void Channel::deliver_one(TransitItem item) {
  Message copy = item.msg;  // kept for duplication / dead-lettering
  auto s = to_.put_local(item.addr.queue, std::move(item.msg));
  if (!s && s.code() == util::ErrorCode::kNotFound) {
    // Unknown destination queue at the remote side: dead-letter it, with
    // the intended destination recorded for an operator to inspect.
    to_.ensure_queue(kDeadLetterQueue).expect_ok("ensure DLQ");
    copy.set_property(kXmitDestProperty, item.dest);
    to_.put_local(kDeadLetterQueue, std::move(copy));
    CMX_OBS_COUNT("channel.dead_lettered", 1);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.dead_lettered;
    return;
  }
  if (!s) return;  // remote shutting down; message is lost from this hop
  record_delivered(item);
  if (item.dup && to_.put_local(item.addr.queue, std::move(copy))) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.duplicated;
  }
}

void Channel::record_delivered(const TransitItem& item) {
  if (obs::enabled()) {
    const std::uint64_t transit_us =
        obs::ms_delta_us(to_.clock().now_ms() - item.xmit_put_ms);
    CMX_OBS_COUNT("channel.transferred", 1);
    CMX_OBS_RECORD("channel.transit_us", transit_us);
    if (item.conditional_data) {
      obs::trace_stage(obs::Stage::kChannelTransit, transit_us);
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.transferred;
}

}  // namespace cmx::mq
