// Session: the unit of (optionally transacted) interaction with a queue
// manager, mirroring JMS transacted sessions / MQSeries syncpoints.
//
// Transacted semantics (the substrate behaviour §2.4 of the paper builds
// its processing acknowledgments on):
//   * put()  — buffered; the message is only sent on commit().
//   * get()  — destructive immediately (invisible to other consumers), but
//              rollback() restores the message to its original queue
//              position with an incremented delivery count.
//   * commit() — sends buffered puts, durably logs the consumption of
//              persistent gets (one atomic batch), then runs commit hooks.
//   * rollback() — discards buffered puts, restores gets, runs rollback
//              hooks.
//
// The conditional-messaging receiver registers its "processing
// acknowledgment" emission as a commit hook, which is exactly the paper's
// rule that a transactional read is acknowledged iff the transaction
// commits.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mq/message.hpp"
#include "mq/queue.hpp"
#include "util/status.hpp"

namespace cmx::mq {

class QueueManager;

class Session {
 public:
  Session(QueueManager& qm, bool transacted);
  // An open transacted session with work is rolled back on destruction.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool transacted() const { return transacted_; }
  // True if a transacted session has uncommitted work.
  bool has_pending_work() const;

  // Sends (transacted: buffers) a message.
  util::Status put(const QueueAddress& addr, Message msg);

  // Sends (transacted: buffers) a group of messages. Non-transacted, the
  // group is delivered through one store append (group-commit friendly)
  // with all-or-nothing recovery semantics; transacted, it simply joins
  // the session's pending puts.
  util::Status put_all(std::vector<std::pair<QueueAddress, Message>> puts);

  // Receives a message; under a transacted session the read is provisional
  // until commit.
  util::Result<Message> get(const std::string& queue_name,
                            util::TimeMs timeout_ms,
                            const Selector* selector = nullptr);

  // No-ops (returning kFailedPrecondition) on non-transacted sessions.
  util::Status commit();
  util::Status rollback();

  // Hooks run after a successful commit / after a rollback, then cleared.
  // Used by the conditional messaging layer for ack emission.
  void on_commit(std::function<void()> hook);
  void on_rollback(std::function<void()> hook);

 private:
  struct PendingGet {
    std::shared_ptr<Queue> queue;
    std::string queue_name;
    std::uint64_t seq = 0;
    Message msg;
  };

  void clear_hooks();

  QueueManager& qm_;
  const bool transacted_;
  std::vector<std::pair<QueueAddress, Message>> pending_puts_;
  std::vector<PendingGet> pending_gets_;
  std::vector<std::function<void()>> commit_hooks_;
  std::vector<std::function<void()>> rollback_hooks_;
};

}  // namespace cmx::mq
