#include "mq/network.hpp"

#include "mq/queue_manager.hpp"
#include "util/logging.hpp"

namespace cmx::mq {

Network::~Network() { shutdown(); }

void Network::add(QueueManager& qm) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    qms_[qm.name()] = &qm;
  }
  qm.attach_network(this);
}

QueueManager* Network::find(const std::string& qmgr_name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = qms_.find(qmgr_name);
  return it == qms_.end() ? nullptr : it->second;
}

void Network::set_default_channel_options(ChannelOptions options) {
  std::lock_guard<std::mutex> lk(mu_);
  default_options_ = options;
}

util::Status Network::connect(const std::string& from, const std::string& to,
                              ChannelOptions options) {
  std::lock_guard<std::mutex> lk(mu_);
  auto from_it = qms_.find(from);
  auto to_it = qms_.find(to);
  if (from_it == qms_.end() || to_it == qms_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown queue manager in connect(" + from +
                                ", " + to + ")");
  }
  auto key = std::make_pair(from, to);
  auto existing = channels_.find(key);
  if (existing != channels_.end()) {
    existing->second->stop();
    channels_.erase(existing);
  }
  channels_[key] =
      std::make_unique<Channel>(*from_it->second, *to_it->second, options);
  return util::ok_status();
}

Channel* Network::channel(const std::string& from,
                          const std::string& to) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = channels_.find(std::make_pair(from, to));
  return it == channels_.end() ? nullptr : it->second.get();
}

util::Status Network::add_remote(QueueManager& from,
                                 const std::string& remote_name,
                                 transport::TransportChannelOptions options) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shut_down_) {
    return util::make_error(util::ErrorCode::kClosed, "network shut down");
  }
  auto key = std::make_pair(from.name(), remote_name);
  if (transport_channels_.count(key) != 0) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "transport channel " + from.name() + " -> " +
                                remote_name + " already exists");
  }
  transport_channels_[key] = std::make_unique<transport::TransportChannel>(
      from, remote_name, std::move(options));
  return util::ok_status();
}

transport::TransportChannel* Network::transport_channel(
    const std::string& from, const std::string& to) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = transport_channels_.find(std::make_pair(from, to));
  return it == transport_channels_.end() ? nullptr : it->second.get();
}

Channel* Network::channel_locked(const std::string& from,
                                 const std::string& to) {
  auto key = std::make_pair(from, to);
  auto it = channels_.find(key);
  if (it != channels_.end()) return it->second.get();
  auto from_it = qms_.find(from);
  auto to_it = qms_.find(to);
  if (from_it == qms_.end() || to_it == qms_.end()) return nullptr;
  auto channel =
      std::make_unique<Channel>(*from_it->second, *to_it->second,
                                default_options_);
  Channel* raw = channel.get();
  channels_[key] = std::move(channel);
  return raw;
}

util::Status Network::route(QueueManager& from, const QueueAddress& addr,
                            Message msg) {
  auto xmit = resolve(from, addr, msg);
  if (!xmit) return xmit.status();
  return from.put_local(std::move(xmit).value(), std::move(msg));
}

util::Result<std::string> Network::resolve(QueueManager& from,
                                           const QueueAddress& addr,
                                           Message& msg) {
  Channel* channel;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shut_down_) {
      return util::make_error(util::ErrorCode::kClosed, "network shut down");
    }
    // A TCP-attached remote takes precedence: it is by definition not a
    // member of qms_ (it lives in another process).
    auto transport_it =
        transport_channels_.find(std::make_pair(from.name(), addr.qmgr));
    if (transport_it != transport_channels_.end()) {
      msg.set_property(kXmitDestProperty, addr.to_string());
      return transport_it->second->xmit_queue_name();
    }
    if (qms_.count(addr.qmgr) == 0) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "unknown queue manager " + addr.qmgr);
    }
    channel = channel_locked(from.name(), addr.qmgr);
  }
  if (channel == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no channel " + from.name() + " -> " + addr.qmgr);
  }
  msg.set_property(kXmitDestProperty, addr.to_string());
  return channel->xmit_queue_name();
}

void Network::shutdown() {
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Channel>>
      channels;
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<transport::TransportChannel>>
      transport_channels;
  std::map<std::string, QueueManager*> qms;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    channels.swap(channels_);
    transport_channels.swap(transport_channels_);
    qms.swap(qms_);
  }
  for (auto& [key, channel] : channels) channel->stop();
  for (auto& [key, channel] : transport_channels) channel->stop();
  for (auto& [name, qm] : qms) qm->attach_network(nullptr);
}

}  // namespace cmx::mq
