// Selector AST: the parsed form of a JMS-style message selector
// (mq/selector.hpp documents the grammar). Split out of selector.cpp so the
// compiled-selector analysis pass (mq/selector_index.hpp) can walk the tree
// without re-parsing.
//
// Evaluation is allocation-free: `Value` carries strings as
// std::string_view borrows — into the message's property storage (stable
// for the duration of `eval`) or into literal storage owned by the node
// itself (`OwnedValue`). A Value must not outlive the message/node it was
// produced from.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "mq/message.hpp"

namespace cmx::mq::detail {

// ---------------------------------------------------------------------
// Three-valued runtime values. Unknown arises from absent properties and
// propagates through comparisons and arithmetic per SQL-92 rules.
// ---------------------------------------------------------------------

enum class Tri { kFalse, kTrue, kUnknown };

inline Tri tri_not(Tri t) {
  switch (t) {
    case Tri::kTrue:
      return Tri::kFalse;
    case Tri::kFalse:
      return Tri::kTrue;
    default:
      return Tri::kUnknown;
  }
}
inline Tri tri_and(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kUnknown;
}
inline Tri tri_or(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}
inline Tri tri_of(bool b) { return b ? Tri::kTrue : Tri::kFalse; }

// Unknown | bool | number | string (numbers unified as double for
// comparison; exact int64 kept for equality of large values). Strings are
// borrowed views; see the header comment for lifetime rules.
struct Value {
  enum class Kind { kUnknown, kBool, kInt, kDouble, kString } kind =
      Kind::kUnknown;
  bool b = false;
  std::int64_t i = 0;
  double d = 0;
  std::string_view s;

  static Value unknown() { return Value{}; }
  static Value of(bool v) {
    Value x;
    x.kind = Kind::kBool;
    x.b = v;
    return x;
  }
  static Value of(std::int64_t v) {
    Value x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  }
  static Value of(double v) {
    Value x;
    x.kind = Kind::kDouble;
    x.d = v;
    return x;
  }
  static Value of(std::string_view v) {
    Value x;
    x.kind = Kind::kString;
    x.s = v;
    return x;
  }

  bool is_unknown() const { return kind == Kind::kUnknown; }
  bool is_numeric() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }
  double as_double() const { return kind == Kind::kInt ? double(i) : d; }
};

// A literal value that owns its string storage. Nodes hold OwnedValue and
// hand out borrowing `view()`s during evaluation.
struct OwnedValue {
  Value::Kind kind = Value::Kind::kUnknown;
  bool b = false;
  std::int64_t i = 0;
  double d = 0;
  std::string s;

  static OwnedValue of(bool v) {
    OwnedValue x;
    x.kind = Value::Kind::kBool;
    x.b = v;
    return x;
  }
  static OwnedValue of(std::int64_t v) {
    OwnedValue x;
    x.kind = Value::Kind::kInt;
    x.i = v;
    return x;
  }
  static OwnedValue of(double v) {
    OwnedValue x;
    x.kind = Value::Kind::kDouble;
    x.d = v;
    return x;
  }
  static OwnedValue of(std::string v) {
    OwnedValue x;
    x.kind = Value::Kind::kString;
    x.s = std::move(v);
    return x;
  }

  // Valid while this OwnedValue is alive and its `s` is not mutated.
  Value view() const {
    Value v;
    v.kind = kind;
    v.b = b;
    v.i = i;
    v.d = d;
    if (kind == Value::Kind::kString) v.s = s;
    return v;
  }
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kNeg };

inline Tri compare(const Value& a, CmpOp op, const Value& b) {
  if (a.is_unknown() || b.is_unknown()) return Tri::kUnknown;
  // Type-mismatched comparisons are UNKNOWN per JMS (they never match).
  if (a.kind == Value::Kind::kBool || b.kind == Value::Kind::kBool) {
    if (a.kind != Value::Kind::kBool || b.kind != Value::Kind::kBool) {
      return Tri::kUnknown;
    }
    if (op == CmpOp::kEq) return tri_of(a.b == b.b);
    if (op == CmpOp::kNe) return tri_of(a.b != b.b);
    return Tri::kUnknown;  // ordering of booleans is not defined
  }
  if (a.kind == Value::Kind::kString || b.kind == Value::Kind::kString) {
    if (a.kind != Value::Kind::kString || b.kind != Value::Kind::kString) {
      return Tri::kUnknown;
    }
    if (op == CmpOp::kEq) return tri_of(a.s == b.s);
    if (op == CmpOp::kNe) return tri_of(a.s != b.s);
    return Tri::kUnknown;  // JMS: strings support only = and <>
  }
  // numeric vs numeric
  if (a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt) {
    switch (op) {
      case CmpOp::kEq:
        return tri_of(a.i == b.i);
      case CmpOp::kNe:
        return tri_of(a.i != b.i);
      case CmpOp::kLt:
        return tri_of(a.i < b.i);
      case CmpOp::kLe:
        return tri_of(a.i <= b.i);
      case CmpOp::kGt:
        return tri_of(a.i > b.i);
      case CmpOp::kGe:
        return tri_of(a.i >= b.i);
    }
  }
  const double x = a.as_double();
  const double y = b.as_double();
  switch (op) {
    case CmpOp::kEq:
      return tri_of(x == y);
    case CmpOp::kNe:
      return tri_of(x != y);
    case CmpOp::kLt:
      return tri_of(x < y);
    case CmpOp::kLe:
      return tri_of(x <= y);
    case CmpOp::kGt:
      return tri_of(x > y);
    case CmpOp::kGe:
      return tri_of(x >= y);
  }
  return Tri::kUnknown;
}

// LIKE with % (any run) and _ (any one char), optional escape character.
inline bool like_match(std::string_view text, std::string_view pattern,
                       char escape, std::size_t ti = 0, std::size_t pi = 0) {
  while (pi < pattern.size()) {
    const char pc = pattern[pi];
    if (escape != '\0' && pc == escape && pi + 1 < pattern.size()) {
      if (ti >= text.size() || text[ti] != pattern[pi + 1]) return false;
      ++ti;
      pi += 2;
      continue;
    }
    if (pc == '%') {
      // Try every possible consumption length.
      for (std::size_t skip = 0; ti + skip <= text.size(); ++skip) {
        if (like_match(text, pattern, escape, ti + skip, pi + 1)) return true;
      }
      return false;
    }
    if (pc == '_') {
      if (ti >= text.size()) return false;
      ++ti;
      ++pi;
      continue;
    }
    if (ti >= text.size() || text[ti] != pc) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

// Resolves an identifier against a message: JMS header fields first, then
// the property bag. Shared by IdentNode::eval and the property-index probe
// so both see exactly the same view of the message.
inline Value lookup_ident(const Message& m, std::string_view name) {
  if (name == "JMSPriority") return Value::of(std::int64_t{m.priority()});
  if (name == "JMSDeliveryCount") {
    return Value::of(std::int64_t{m.delivery_count()});
  }
  if (name == "JMSCorrelationID") {
    return Value::of(std::string_view(m.correlation_id()));
  }
  if (name == "JMSMessageID") return Value::of(std::string_view(m.id()));
  const PropertyValue* v = m.properties().find(name);
  if (v == nullptr) return Value::unknown();
  if (const auto* b = std::get_if<bool>(v)) return Value::of(*b);
  if (const auto* i = std::get_if<std::int64_t>(v)) return Value::of(*i);
  if (const auto* d = std::get_if<double>(v)) return Value::of(*d);
  return Value::of(std::string_view(std::get<std::string>(*v)));
}

// Canonical-form literal printers. Doubles keep a decimal point (or get a
// trailing ".0") so a re-parse preserves the numeric kind; magnitudes that
// %.17g would print in exponent form (which the tokenizer does not accept)
// fall back to full-digit %.1f.
inline void print_string_literal(std::ostream& os, std::string_view s) {
  os << '\'';
  for (char c : s) {
    if (c == '\'') os << "''";
    os << c;
  }
  os << '\'';
}

inline void print_double_literal(std::ostream& os, double v) {
  if (std::isinf(v)) {
    // Not producible by the tokenizer's digit strings short of overflow;
    // print an overflowing digit string so strtod round-trips to inf.
    os << '1';
    for (int k = 0; k < 400; ++k) os << '0';
    os << ".0";
    return;
  }
  char buf[1600];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  if (std::strpbrk(buf, "eE") == nullptr) {
    os << buf;
    if (std::strchr(buf, '.') == nullptr) os << ".0";
    return;
  }
  // Exponent form is not in the selector grammar; fall back to fixed
  // notation with enough fractional digits that strtod recovers the exact
  // same double (tiny magnitudes may need hundreds of them).
  for (int prec = 17; prec <= 1080; prec += 60) {
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
}

inline void print_value(std::ostream& os, const OwnedValue& v) {
  switch (v.kind) {
    case Value::Kind::kBool:
      os << (v.b ? "TRUE" : "FALSE");
      break;
    case Value::Kind::kInt:
      os << v.i;
      break;
    case Value::Kind::kDouble:
      print_double_literal(os, v.d);
      break;
    case Value::Kind::kString:
      print_string_literal(os, v.s);
      break;
    case Value::Kind::kUnknown:
      os << "NULL";  // never produced by the parser
      break;
  }
}

// ---------------------------------------------------------------------
// AST nodes. Each node knows how to evaluate itself against a message and
// how to print itself in canonical (fully parenthesized) form that
// re-parses to an equivalent tree.
// ---------------------------------------------------------------------

enum class NodeKind {
  kLiteral,
  kIdent,
  kNot,
  kAnd,
  kOr,
  kCmp,
  kArith,
  kIsNull,
  kIn,
  kLike,
  kBetween,
  kTrue,
};

class SelectorNode {
 public:
  virtual ~SelectorNode() = default;
  virtual Value eval(const Message& m) const = 0;
  virtual NodeKind kind() const = 0;
  virtual void print(std::ostream& os) const = 0;
};

using NodePtr = std::unique_ptr<SelectorNode>;

inline Tri as_tri(const Value& v) {
  if (v.kind == Value::Kind::kBool) return tri_of(v.b);
  return Tri::kUnknown;
}
inline Value tri_value(Tri t) {
  if (t == Tri::kUnknown) return Value::unknown();
  return Value::of(t == Tri::kTrue);
}

class LiteralNode final : public SelectorNode {
 public:
  explicit LiteralNode(OwnedValue v) : value_(std::move(v)) {}
  Value eval(const Message&) const override { return value_.view(); }
  NodeKind kind() const override { return NodeKind::kLiteral; }
  void print(std::ostream& os) const override { print_value(os, value_); }
  const OwnedValue& value() const { return value_; }

 private:
  OwnedValue value_;
};

class IdentNode final : public SelectorNode {
 public:
  explicit IdentNode(std::string name) : name_(std::move(name)) {}
  Value eval(const Message& m) const override {
    return lookup_ident(m, name_);
  }
  NodeKind kind() const override { return NodeKind::kIdent; }
  void print(std::ostream& os) const override { os << name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class NotNode final : public SelectorNode {
 public:
  explicit NotNode(NodePtr child) : child_(std::move(child)) {}
  Value eval(const Message& m) const override {
    return tri_value(tri_not(as_tri(child_->eval(m))));
  }
  NodeKind kind() const override { return NodeKind::kNot; }
  void print(std::ostream& os) const override {
    os << "(NOT ";
    child_->print(os);
    os << ')';
  }
  const SelectorNode* child() const { return child_.get(); }

 private:
  NodePtr child_;
};

class AndNode final : public SelectorNode {
 public:
  AndNode(NodePtr l, NodePtr r) : l_(std::move(l)), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    const Tri left = as_tri(l_->eval(m));
    if (left == Tri::kFalse) return Value::of(false);
    return tri_value(tri_and(left, as_tri(r_->eval(m))));
  }
  NodeKind kind() const override { return NodeKind::kAnd; }
  void print(std::ostream& os) const override {
    os << '(';
    l_->print(os);
    os << " AND ";
    r_->print(os);
    os << ')';
  }
  const SelectorNode* left() const { return l_.get(); }
  const SelectorNode* right() const { return r_.get(); }

 private:
  NodePtr l_, r_;
};

class OrNode final : public SelectorNode {
 public:
  OrNode(NodePtr l, NodePtr r) : l_(std::move(l)), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    const Tri left = as_tri(l_->eval(m));
    if (left == Tri::kTrue) return Value::of(true);
    return tri_value(tri_or(left, as_tri(r_->eval(m))));
  }
  NodeKind kind() const override { return NodeKind::kOr; }
  void print(std::ostream& os) const override {
    os << '(';
    l_->print(os);
    os << " OR ";
    r_->print(os);
    os << ')';
  }
  const SelectorNode* left() const { return l_.get(); }
  const SelectorNode* right() const { return r_.get(); }

 private:
  NodePtr l_, r_;
};

class CmpNode final : public SelectorNode {
 public:
  CmpNode(NodePtr l, CmpOp op, NodePtr r)
      : l_(std::move(l)), op_(op), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    return tri_value(compare(l_->eval(m), op_, r_->eval(m)));
  }
  NodeKind kind() const override { return NodeKind::kCmp; }
  void print(std::ostream& os) const override {
    static constexpr const char* kOpText[] = {"=", "<>", "<", "<=", ">", ">="};
    os << '(';
    l_->print(os);
    os << ' ' << kOpText[int(op_)] << ' ';
    r_->print(os);
    os << ')';
  }
  CmpOp op() const { return op_; }
  const SelectorNode* left() const { return l_.get(); }
  const SelectorNode* right() const { return r_.get(); }

 private:
  NodePtr l_;
  CmpOp op_;
  NodePtr r_;
};

class ArithNode final : public SelectorNode {
 public:
  ArithNode(NodePtr l, ArithOp op, NodePtr r)
      : l_(std::move(l)), op_(op), r_(std::move(r)) {}
  Value eval(const Message& m) const override {
    const Value a = l_->eval(m);
    if (op_ == ArithOp::kNeg) {
      if (a.kind == Value::Kind::kInt) return Value::of(-a.i);
      if (a.kind == Value::Kind::kDouble) return Value::of(-a.d);
      return Value::unknown();
    }
    const Value b = r_->eval(m);
    if (!a.is_numeric() || !b.is_numeric()) return Value::unknown();
    if (a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt &&
        op_ != ArithOp::kDiv) {
      switch (op_) {
        case ArithOp::kAdd:
          return Value::of(a.i + b.i);
        case ArithOp::kSub:
          return Value::of(a.i - b.i);
        case ArithOp::kMul:
          return Value::of(a.i * b.i);
        default:
          break;
      }
    }
    const double x = a.as_double();
    const double y = b.as_double();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::of(x + y);
      case ArithOp::kSub:
        return Value::of(x - y);
      case ArithOp::kMul:
        return Value::of(x * y);
      case ArithOp::kDiv:
        return y == 0 ? Value::unknown() : Value::of(x / y);
      case ArithOp::kNeg:
        break;
    }
    return Value::unknown();
  }
  NodeKind kind() const override { return NodeKind::kArith; }
  void print(std::ostream& os) const override {
    if (op_ == ArithOp::kNeg) {
      os << "(-";
      l_->print(os);
      os << ')';
      return;
    }
    static constexpr char kOpText[] = {'+', '-', '*', '/'};
    os << '(';
    l_->print(os);
    os << ' ' << kOpText[int(op_)] << ' ';
    r_->print(os);
    os << ')';
  }
  ArithOp op() const { return op_; }
  const SelectorNode* left() const { return l_.get(); }
  const SelectorNode* right() const { return r_.get(); }

 private:
  NodePtr l_;
  ArithOp op_;
  NodePtr r_;
};

class IsNullNode final : public SelectorNode {
 public:
  IsNullNode(NodePtr child, bool negated)
      : child_(std::move(child)), negated_(negated) {}
  Value eval(const Message& m) const override {
    const bool is_null = child_->eval(m).is_unknown();
    return Value::of(negated_ ? !is_null : is_null);
  }
  NodeKind kind() const override { return NodeKind::kIsNull; }
  void print(std::ostream& os) const override {
    os << '(';
    child_->print(os);
    os << (negated_ ? " IS NOT NULL" : " IS NULL") << ')';
  }
  const SelectorNode* child() const { return child_.get(); }
  bool negated() const { return negated_; }

 private:
  NodePtr child_;
  bool negated_;
};

class InNode final : public SelectorNode {
 public:
  InNode(NodePtr child, std::vector<OwnedValue> items, bool negated)
      : child_(std::move(child)), items_(std::move(items)), negated_(negated) {}
  Value eval(const Message& m) const override {
    const Value v = child_->eval(m);
    if (v.is_unknown()) return Value::unknown();
    for (const auto& item : items_) {
      if (compare(v, CmpOp::kEq, item.view()) == Tri::kTrue) {
        return Value::of(!negated_);
      }
    }
    return Value::of(negated_);
  }
  NodeKind kind() const override { return NodeKind::kIn; }
  void print(std::ostream& os) const override {
    os << '(';
    child_->print(os);
    os << (negated_ ? " NOT IN (" : " IN (");
    for (std::size_t k = 0; k < items_.size(); ++k) {
      if (k > 0) os << ", ";
      print_value(os, items_[k]);
    }
    os << "))";
  }
  const SelectorNode* child() const { return child_.get(); }
  const std::vector<OwnedValue>& items() const { return items_; }
  bool negated() const { return negated_; }

 private:
  NodePtr child_;
  std::vector<OwnedValue> items_;
  bool negated_;
};

class LikeNode final : public SelectorNode {
 public:
  LikeNode(NodePtr child, std::string pattern, char escape, bool negated)
      : child_(std::move(child)),
        pattern_(std::move(pattern)),
        escape_(escape),
        negated_(negated) {}
  Value eval(const Message& m) const override {
    const Value v = child_->eval(m);
    if (v.is_unknown()) return Value::unknown();
    if (v.kind != Value::Kind::kString) return Value::unknown();
    const bool hit = like_match(v.s, pattern_, escape_);
    return Value::of(negated_ ? !hit : hit);
  }
  NodeKind kind() const override { return NodeKind::kLike; }
  void print(std::ostream& os) const override {
    os << '(';
    child_->print(os);
    os << (negated_ ? " NOT LIKE " : " LIKE ");
    print_string_literal(os, pattern_);
    if (escape_ != '\0') {
      os << " ESCAPE ";
      print_string_literal(os, std::string_view(&escape_, 1));
    }
    os << ')';
  }
  const SelectorNode* child() const { return child_.get(); }
  bool negated() const { return negated_; }

 private:
  NodePtr child_;
  std::string pattern_;
  char escape_;
  bool negated_;
};

class BetweenNode final : public SelectorNode {
 public:
  BetweenNode(NodePtr child, NodePtr lo, NodePtr hi, bool negated)
      : child_(std::move(child)),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        negated_(negated) {}
  Value eval(const Message& m) const override {
    const Value v = child_->eval(m);
    const Tri in_range = tri_and(compare(v, CmpOp::kGe, lo_->eval(m)),
                                 compare(v, CmpOp::kLe, hi_->eval(m)));
    const Tri result = negated_ ? tri_not(in_range) : in_range;
    return tri_value(result);
  }
  NodeKind kind() const override { return NodeKind::kBetween; }
  void print(std::ostream& os) const override {
    os << '(';
    child_->print(os);
    os << (negated_ ? " NOT BETWEEN " : " BETWEEN ");
    lo_->print(os);
    os << " AND ";
    hi_->print(os);
    os << ')';
  }
  const SelectorNode* child() const { return child_.get(); }
  const SelectorNode* lo() const { return lo_.get(); }
  const SelectorNode* hi() const { return hi_.get(); }
  bool negated() const { return negated_; }

 private:
  NodePtr child_, lo_, hi_;
  bool negated_;
};

// Always-true node used for the empty selector.
class TrueNode final : public SelectorNode {
 public:
  Value eval(const Message&) const override { return Value::of(true); }
  NodeKind kind() const override { return NodeKind::kTrue; }
  void print(std::ostream& os) const override { os << "TRUE"; }
};

}  // namespace cmx::mq::detail
