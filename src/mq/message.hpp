// Standard message model of the reliable-messaging substrate: the role
// MQSeries/JMS messages play in the paper. A message has a header (id,
// correlation id, reply-to, priority, persistence, expiry), a free-form
// property bag (used by the conditional messaging layer for its control
// information, and by selectors), and an opaque body.
//
// Zero-copy core (DESIGN.md §9):
//  * The body is a shared immutable Payload — copying a Message shares the
//    body allocation instead of duplicating it, so fan-out, channel
//    duplication and store staging all reference one buffer.
//  * Properties live in a flat sorted vector (PropertyBag) with inline
//    short-key storage instead of a std::map.
//  * encode() memoizes its result: the first serialization caches the
//    frame; later encodes of the same (or a copied) message reuse it.
//    Mutators keep the cache coherent — delivery-count bumps and
//    transit-property (CMX_XMIT*) changes patch the cached bytes in
//    place, every other mutation invalidates the cache. This is why all
//    fields sit behind accessors: an unmediated write could desynchronize
//    the cached frame from the message state.
//
// Like std::string, a Message is externally synchronized: concurrent reads
// of one instance are safe only if no thread mutates or encodes it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "mq/payload.hpp"
#include "mq/property_bag.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::util {
class BinaryWriter;
}

namespace cmx::mq {

// "queue manager / queue" pair addressing a queue anywhere in the network.
struct QueueAddress {
  std::string qmgr;   // owning queue manager; empty means "local"
  std::string queue;  // queue name within that manager

  QueueAddress() = default;
  QueueAddress(std::string qmgr_name, std::string queue_name)
      : qmgr(std::move(qmgr_name)), queue(std::move(queue_name)) {}

  bool empty() const { return queue.empty(); }
  std::string to_string() const;           // "qmgr/queue" or "queue"
  static QueueAddress parse(const std::string& text);

  friend bool operator==(const QueueAddress& a, const QueueAddress& b) {
    return a.qmgr == b.qmgr && a.queue == b.queue;
  }
  friend auto operator<=>(const QueueAddress& a, const QueueAddress& b) {
    if (auto c = a.qmgr <=> b.qmgr; c != 0) return c;
    return a.queue <=> b.queue;
  }
};

enum class Persistence : std::uint8_t {
  kNonPersistent = 0,  // survives in memory only; lost on restart
  kPersistent = 1,     // logged to the queue manager's message store
};

constexpr int kMinPriority = 0;
constexpr int kMaxPriority = 9;
constexpr int kDefaultPriority = 4;

class Message {
 public:
  Message() = default;
  explicit Message(std::string body_bytes) : body_(std::move(body_bytes)) {}
  explicit Message(Payload body) : body_(std::move(body)) {}

  // -- header ---------------------------------------------------------
  // Header setters are no-ops when the value is unchanged: re-stamping a
  // field with what it already holds (a common pattern on multi-hop paths)
  // must not discard the cached frame.
  const std::string& id() const { return id_; }
  void set_id(std::string v) {
    if (v == id_) return;
    id_ = std::move(v);
    invalidate_frame();
  }

  const std::string& correlation_id() const { return correlation_id_; }
  void set_correlation_id(std::string v) {
    if (v == correlation_id_) return;
    correlation_id_ = std::move(v);
    invalidate_frame();
  }

  const QueueAddress& reply_to() const { return reply_to_; }
  void set_reply_to(QueueAddress v) {
    if (v == reply_to_) return;
    reply_to_ = std::move(v);
    invalidate_frame();
  }

  int priority() const { return priority_; }
  void set_priority(int v) {
    if (v == priority_) return;
    priority_ = v;
    invalidate_frame();
  }

  Persistence persistence() const { return persistence_; }
  void set_persistence(Persistence v) {
    if (v == persistence_) return;
    persistence_ = v;
    invalidate_frame();
  }
  bool persistent() const { return persistence_ == Persistence::kPersistent; }

  util::TimeMs expiry_ms() const { return expiry_ms_; }
  void set_expiry_ms(util::TimeMs v) {
    if (v == expiry_ms_) return;
    expiry_ms_ = v;
    invalidate_frame();
  }
  bool expired(util::TimeMs now_ms) const { return now_ms >= expiry_ms_; }

  util::TimeMs put_time_ms() const { return put_time_ms_; }
  void set_put_time_ms(util::TimeMs v) {
    if (v == put_time_ms_) return;
    put_time_ms_ = v;
    invalidate_frame();
  }

  int delivery_count() const { return delivery_count_; }
  // Both delivery-count mutators re-patch the cached frame in place (the
  // count is a fixed-width field at a recorded offset), so a queue get —
  // which bumps the count on every delivery — does not cost a
  // re-serialization.
  void set_delivery_count(int v);
  void note_delivery() { set_delivery_count(delivery_count_ + 1); }

  // -- application content ---------------------------------------------
  std::string_view body() const { return body_.view(); }
  std::size_t body_size() const { return body_.size(); }
  const Payload& payload() const { return body_; }
  void set_body(std::string bytes) {
    body_ = Payload(std::move(bytes));
    invalidate_frame();
  }
  void set_body(Payload p) {
    body_ = std::move(p);
    invalidate_frame();
  }

  const PropertyBag& properties() const { return properties_; }

  // Property helpers. Setters overwrite; typed getters return nullopt when
  // the property is absent or has a different type. Mutating a transit
  // property (key prefixed CMX_XMIT) patches the cached frame's trailing
  // transit section; any other property mutation invalidates the cache.
  void set_property(const std::string& key, PropertyValue value);
  bool erase_property(std::string_view key);
  bool has_property(const std::string& key) const;
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;

  // Binary round-trip used by the message store and channel transport.
  // encode() returns a copy of the frame; encoded_frame() returns the
  // memoized buffer itself (shared with this message and its copies).
  std::string encode() const;
  std::shared_ptr<const std::string> encoded_frame() const;
  // Zero-cost view of the memoized frame bytes; empty when no frame is
  // cached. Valid while this message lives unmutated — the scatter-gather
  // transport and the store's append path read frames through this
  // instead of the allocating encoded_frame() handle.
  std::string_view frame_view() const {
    return frame_ != nullptr ? frame_->view() : std::string_view{};
  }
  // Appends the frame bytes (length-prefixed) to `w`, serving from the
  // memo when present — the store's LogRecord path, which must not
  // materialize a borrowed frame just to copy it into the log buffer.
  void append_frame_to(util::BinaryWriter& w) const;
  // Sizing hint for pre-reserving encode buffers: exact when a frame is
  // memoized (the hot put path primes it first), a body-based estimate
  // otherwise. Never serializes.
  std::size_t frame_size_hint() const {
    if (frame_ != nullptr) return frame_->view().size();
    return body_.size() + id_.size() + 96;
  }
  // `retain_frame` memoizes `data` itself as the decoded message's encode
  // frame (when zero-copy is enabled), so a message arriving off the wire
  // is never re-serialized for the receiving store — decode is the
  // mirror of the sender's encode-once path. Offsets for the patchable
  // fields are recorded during the parse.
  static util::Result<Message> decode(std::string_view data,
                                      bool retain_frame = false);

  // Frames at or above this size, decoded from a shared wire buffer,
  // borrow the buffer instead of copying; smaller frames are copied out
  // so a tiny message cannot pin a large MSGBATCH slab alive.
  static constexpr std::size_t kFrameAdoptMinBytes = 1024;

  // decode(retain_frame=true) over a message frame at
  // [offset, offset + len) of `backing`: large frames alias the backing
  // buffer (one slab serves the whole batch), small ones copy out per
  // kFrameAdoptMinBytes. The receiving transport's MSGBATCH path.
  static util::Result<Message> decode_shared(
      std::shared_ptr<const std::string> backing, std::size_t offset,
      std::size_t len);

  // True when an encoded frame is currently memoized (test/obs hook).
  bool frame_cached() const { return frame_ != nullptr; }
  // True when the cached frame borrows an external backing buffer
  // (test hook for the slab-adoption path).
  bool frame_borrowed() const {
    return frame_ != nullptr && frame_->borrowed();
  }

  // Transit properties ride in a trailing frame section so the channel can
  // strip them at the remote hop without re-serializing the message.
  static bool is_transit_key(std::string_view key) {
    return key.starts_with("CMX_XMIT");
  }

 private:
  // Two representations: owned (`bytes`) or borrowed (a span of `backing`,
  // the receive-side slab-adoption arm). Frames are pooled — see
  // acquire_frame() — so `bytes` keeps its capacity across reuse.
  struct EncodedFrame {
    std::string bytes;
    std::shared_ptr<const std::string> backing;
    std::size_t backing_offset = 0;
    std::size_t backing_size = 0;
    std::size_t delivery_count_offset = 0;  // u32, little-endian
    std::size_t transit_offset = 0;         // start of trailing section

    bool borrowed() const { return backing != nullptr; }
    std::string_view view() const {
      return borrowed() ? std::string_view(backing->data() + backing_offset,
                                           backing_size)
                        : std::string_view(bytes);
    }
  };

  // Frames and their shared_ptr control blocks come from util arenas
  // (recycled state: cleared bytes with capacity intact, no backing).
  // Plain make_shared when the arena is disabled.
  static std::shared_ptr<EncodedFrame> acquire_frame();

  void invalidate_frame() { frame_.reset(); }
  // Clones the frame if copies share it (or it borrows a backing buffer),
  // then returns a mutable view.
  EncodedFrame* writable_frame();
  void rebuild_transit_tail();
  std::shared_ptr<EncodedFrame> build_frame() const;
  // Installs a freshly built frame as the memo (zero-copy arm only),
  // counting a compulsory fill vs a rebuild after invalidation.
  void memoize_frame(std::shared_ptr<EncodedFrame> f) const;

  struct DecodeOffsets {
    std::size_t delivery_count = 0;
    std::size_t transit = 0;
    bool clean = false;  // parse consumed the input exactly
  };
  static util::Result<Message> decode_impl(std::string_view data,
                                           DecodeOffsets& offsets);

  std::string id_;              // assigned by the queue manager on put
  std::string correlation_id_;  // application correlation
  QueueAddress reply_to_;       // where replies should be sent
  int priority_ = kDefaultPriority;  // kMinPriority..kMaxPriority
  Persistence persistence_ = Persistence::kPersistent;
  util::TimeMs expiry_ms_ = util::kNoDeadline;  // absolute; discard after
  util::TimeMs put_time_ms_ = 0;                // stamped on put
  int delivery_count_ = 0;  // times delivered (rollbacks increment)

  PropertyBag properties_;
  Payload body_;

  // Memoized encoded frame, shared by copies of this message. mutable:
  // encode() is logically const. frame_ever_built_ distinguishes the
  // compulsory first serialization ("fill") from a re-serialization after
  // an invalidation ("miss") in the obs counters.
  mutable std::shared_ptr<EncodedFrame> frame_;
  mutable bool frame_ever_built_ = false;
};

}  // namespace cmx::mq
