// Standard message model of the reliable-messaging substrate: the role
// MQSeries/JMS messages play in the paper. A message has a header (id,
// correlation id, reply-to, priority, persistence, expiry), a free-form
// property map (used by the conditional messaging layer for its control
// information, and by selectors), and an opaque body.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::mq {

// "queue manager / queue" pair addressing a queue anywhere in the network.
struct QueueAddress {
  std::string qmgr;   // owning queue manager; empty means "local"
  std::string queue;  // queue name within that manager

  QueueAddress() = default;
  QueueAddress(std::string qmgr_name, std::string queue_name)
      : qmgr(std::move(qmgr_name)), queue(std::move(queue_name)) {}

  bool empty() const { return queue.empty(); }
  std::string to_string() const;           // "qmgr/queue" or "queue"
  static QueueAddress parse(const std::string& text);

  friend bool operator==(const QueueAddress& a, const QueueAddress& b) {
    return a.qmgr == b.qmgr && a.queue == b.queue;
  }
  friend auto operator<=>(const QueueAddress& a, const QueueAddress& b) {
    if (auto c = a.qmgr <=> b.qmgr; c != 0) return c;
    return a.queue <=> b.queue;
  }
};

enum class Persistence : std::uint8_t {
  kNonPersistent = 0,  // survives in memory only; lost on restart
  kPersistent = 1,     // logged to the queue manager's message store
};

// Typed property values, as in JMS message properties.
using PropertyValue = std::variant<bool, std::int64_t, double, std::string>;

std::string property_to_string(const PropertyValue& v);

constexpr int kMinPriority = 0;
constexpr int kMaxPriority = 9;
constexpr int kDefaultPriority = 4;

class Message {
 public:
  Message() = default;
  explicit Message(std::string body_bytes) : body(std::move(body_bytes)) {}

  // -- header ---------------------------------------------------------
  std::string id;              // assigned by the queue manager on put
  std::string correlation_id;  // application correlation
  QueueAddress reply_to;       // where replies should be sent
  int priority = kDefaultPriority;        // kMinPriority..kMaxPriority
  Persistence persistence = Persistence::kPersistent;
  util::TimeMs expiry_ms = util::kNoDeadline;  // absolute; discard after
  util::TimeMs put_time_ms = 0;                // stamped on put
  int delivery_count = 0;  // how many times delivered (rollbacks increment)

  // -- application content ---------------------------------------------
  std::map<std::string, PropertyValue> properties;
  std::string body;

  bool persistent() const { return persistence == Persistence::kPersistent; }
  bool expired(util::TimeMs now_ms) const { return now_ms >= expiry_ms; }

  // Property helpers. Setters overwrite; typed getters return nullopt when
  // the property is absent or has a different type.
  void set_property(const std::string& key, PropertyValue value);
  bool has_property(const std::string& key) const;
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;

  // Binary round-trip used by the message store and channel transport.
  std::string encode() const;
  static util::Result<Message> decode(std::string_view data);
};

}  // namespace cmx::mq
