#include "mq/selector_index.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "mq/selector_ast.hpp"

namespace cmx::mq {

namespace {

std::atomic<bool> g_selector_index_enabled{true};

// Largest magnitude at which every int64 is exactly representable as a
// double. Integer literals at or beyond this are left to the interpretive
// int64-exact comparison (see header comment).
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

void flatten_and(const detail::SelectorNode* n,
                 std::vector<const detail::SelectorNode*>& out) {
  if (n->kind() == detail::NodeKind::kAnd) {
    const auto* a = static_cast<const detail::AndNode*>(n);
    flatten_and(a->left(), out);
    flatten_and(a->right(), out);
    return;
  }
  out.push_back(n);
}

struct NumLit {
  bool is_int = false;
  std::int64_t i = 0;
  double d = 0;
  double as_double() const { return is_int ? double(i) : d; }
};

// A numeric literal, possibly wrapped in unary minus ("-5" parses as
// Neg(Literal 5)). Non-numeric literals and anything else -> nullopt.
std::optional<NumLit> numeric_literal(const detail::SelectorNode* n) {
  bool negate = false;
  if (n->kind() == detail::NodeKind::kArith) {
    const auto* a = static_cast<const detail::ArithNode*>(n);
    if (a->op() != detail::ArithOp::kNeg) return std::nullopt;
    negate = true;
    n = a->left();
  }
  if (n->kind() != detail::NodeKind::kLiteral) return std::nullopt;
  const detail::OwnedValue& v =
      static_cast<const detail::LiteralNode*>(n)->value();
  NumLit out;
  if (v.kind == detail::Value::Kind::kInt) {
    out.is_int = true;
    out.i = negate ? -v.i : v.i;
  } else if (v.kind == detail::Value::Kind::kDouble) {
    out.d = negate ? -v.d : v.d;
  } else {
    return std::nullopt;
  }
  return out;
}

using EqValue = IndexedPredicate::EqValue;

// Converts a literal to an indexable equality alternative; fails for
// integers outside the double-exact window.
std::optional<EqValue> eq_value(const detail::OwnedValue& v) {
  EqValue out;
  switch (v.kind) {
    case detail::Value::Kind::kBool:
      out.type = EqValue::Type::kBool;
      out.b = v.b;
      return out;
    case detail::Value::Kind::kInt:
      if (double(v.i) >= kMaxExactInt || double(v.i) <= -kMaxExactInt) {
        return std::nullopt;
      }
      out.type = EqValue::Type::kNumber;
      out.num = double(v.i);
      return out;
    case detail::Value::Kind::kDouble:
      // Any double is fine: the interpretive comparison is double-valued
      // for double literals too.
      out.type = EqValue::Type::kNumber;
      out.num = v.d;
      return out;
    case detail::Value::Kind::kString:
      out.type = EqValue::Type::kString;
      out.str = v.s;
      return out;
    default:
      return std::nullopt;
  }
}

bool eq_value_equal(const EqValue& a, const EqValue& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case EqValue::Type::kBool:
      return a.b == b.b;
    case EqValue::Type::kNumber:
      return a.num == b.num;
    case EqValue::Type::kString:
      return a.str == b.str;
  }
  return false;
}

// A range bound from a numeric literal; integer bounds outside the
// double-exact window are rejected (the double-keyed probe could order
// them differently than the int64-exact interpretive comparison).
std::optional<double> range_bound(const NumLit& lit) {
  if (lit.is_int &&
      (double(lit.i) >= kMaxExactInt || double(lit.i) <= -kMaxExactInt)) {
    return std::nullopt;
  }
  return lit.as_double();
}

// Tries to turn one top-level conjunct into an index-backed predicate.
std::optional<IndexedPredicate> try_extract(const detail::SelectorNode* n) {
  using detail::NodeKind;
  IndexedPredicate p;
  switch (n->kind()) {
    case NodeKind::kCmp: {
      const auto* c = static_cast<const detail::CmpNode*>(n);
      detail::CmpOp op = c->op();
      const detail::SelectorNode* ident = c->left();
      const detail::SelectorNode* lit = c->right();
      if (ident->kind() != NodeKind::kIdent) {
        // literal <op> ident: flip the operator around.
        std::swap(ident, lit);
        if (ident->kind() != NodeKind::kIdent) return std::nullopt;
        switch (op) {
          case detail::CmpOp::kLt:
            op = detail::CmpOp::kGt;
            break;
          case detail::CmpOp::kLe:
            op = detail::CmpOp::kGe;
            break;
          case detail::CmpOp::kGt:
            op = detail::CmpOp::kLt;
            break;
          case detail::CmpOp::kGe:
            op = detail::CmpOp::kLe;
            break;
          default:
            break;  // = is symmetric; <> is not indexable anyway
        }
      }
      p.key = static_cast<const detail::IdentNode*>(ident)->name();
      if (op == detail::CmpOp::kEq) {
        if (lit->kind() == NodeKind::kLiteral) {
          auto ev = eq_value(
              static_cast<const detail::LiteralNode*>(lit)->value());
          if (!ev) return std::nullopt;
          p.kind = IndexedPredicate::Kind::kEq;
          p.values.push_back(std::move(*ev));
          return p;
        }
        // "x = -5": negated numeric literal.
        auto num = numeric_literal(lit);
        if (!num) return std::nullopt;
        auto bound = range_bound(*num);
        if (!bound) return std::nullopt;
        p.kind = IndexedPredicate::Kind::kEq;
        EqValue ev;
        ev.type = EqValue::Type::kNumber;
        ev.num = *bound;
        p.values.push_back(std::move(ev));
        return p;
      }
      if (op == detail::CmpOp::kNe) return std::nullopt;
      auto num = numeric_literal(lit);
      if (!num) return std::nullopt;
      auto bound = range_bound(*num);
      if (!bound) return std::nullopt;
      p.kind = IndexedPredicate::Kind::kRange;
      switch (op) {
        case detail::CmpOp::kLt:
          p.hi = *bound;
          p.hi_strict = true;
          p.hi_unbounded = false;
          break;
        case detail::CmpOp::kLe:
          p.hi = *bound;
          p.hi_unbounded = false;
          break;
        case detail::CmpOp::kGt:
          p.lo = *bound;
          p.lo_strict = true;
          p.lo_unbounded = false;
          break;
        case detail::CmpOp::kGe:
          p.lo = *bound;
          p.lo_unbounded = false;
          break;
        default:
          return std::nullopt;
      }
      return p;
    }
    case NodeKind::kIn: {
      const auto* in = static_cast<const detail::InNode*>(n);
      if (in->negated()) return std::nullopt;
      if (in->child()->kind() != NodeKind::kIdent) return std::nullopt;
      p.key = static_cast<const detail::IdentNode*>(in->child())->name();
      p.kind = IndexedPredicate::Kind::kEq;
      for (const auto& item : in->items()) {
        auto ev = eq_value(item);
        if (!ev) return std::nullopt;
        // Deduplicate within the predicate: a message value must bump the
        // subscriber's hit counter at most once per predicate.
        bool dup = false;
        for (const auto& prev : p.values) {
          if (eq_value_equal(prev, *ev)) {
            dup = true;
            break;
          }
        }
        if (!dup) p.values.push_back(std::move(*ev));
      }
      return p;
    }
    case NodeKind::kBetween: {
      const auto* bw = static_cast<const detail::BetweenNode*>(n);
      if (bw->negated()) return std::nullopt;
      if (bw->child()->kind() != NodeKind::kIdent) return std::nullopt;
      auto lo = numeric_literal(bw->lo());
      auto hi = numeric_literal(bw->hi());
      if (!lo || !hi) return std::nullopt;
      auto lo_bound = range_bound(*lo);
      auto hi_bound = range_bound(*hi);
      if (!lo_bound || !hi_bound) return std::nullopt;
      p.key = static_cast<const detail::IdentNode*>(bw->child())->name();
      p.kind = IndexedPredicate::Kind::kRange;
      p.lo = *lo_bound;
      p.lo_unbounded = false;
      p.hi = *hi_bound;
      p.hi_unbounded = false;
      return p;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

bool selector_index_enabled() {
  return g_selector_index_enabled.load(std::memory_order_relaxed);
}
void set_selector_index_enabled(bool on) {
  g_selector_index_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// CompiledSelector
// ---------------------------------------------------------------------

CompiledSelector::CompiledSelector(
    const Selector* selector,
    std::vector<std::pair<std::string, std::string>> extra_eq) {
  for (auto& [key, val] : extra_eq) {
    IndexedPredicate p;
    p.key = std::move(key);
    p.kind = IndexedPredicate::Kind::kEq;
    EqValue ev;
    ev.type = EqValue::Type::kString;
    ev.str = std::move(val);
    p.values.push_back(std::move(ev));
    indexed_.push_back(std::move(p));
  }
  if (selector == nullptr) return;
  root_ = selector->root();
  std::vector<const detail::SelectorNode*> conjuncts;
  flatten_and(root_.get(), conjuncts);
  for (const auto* c : conjuncts) {
    if (auto p = try_extract(c)) {
      indexed_.push_back(std::move(*p));
    } else {
      residual_.push_back(c);
    }
  }
}

bool CompiledSelector::residual_matches(const Message& m) const {
  for (const auto* c : residual_) {
    if (detail::as_tri(c->eval(m)) != detail::Tri::kTrue) return false;
  }
  return true;
}

bool CompiledSelector::matches(const Message& m) const {
  if (root_ == nullptr) return true;
  return detail::as_tri(root_->eval(m)) == detail::Tri::kTrue;
}

// ---------------------------------------------------------------------
// SelectorIndex
// ---------------------------------------------------------------------

void SelectorIndex::add(
    std::uint64_t id, const Selector* selector,
    std::vector<std::pair<std::string, std::string>> extra_eq) {
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = std::uint32_t(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.id = id;
  s.live = true;
  s.hits = 0;
  s.epoch = 0;
  s.sel.emplace(selector, std::move(extra_eq));
  s.needed = std::uint32_t(s.sel->indexed().size());
  by_id_[id] = idx;
  if (s.needed == 0) {
    scan_.push_back(idx);
    return;
  }
  ++indexed_count_;
  for (const auto& p : s.sel->indexed()) {
    KeyIndex& ki = keys_[p.key];
    if (p.kind == IndexedPredicate::Kind::kEq) {
      for (const auto& v : p.values) {
        switch (v.type) {
          case EqValue::Type::kBool:
            ki.bool_eq[v.b ? 1 : 0].push_back(idx);
            break;
          case EqValue::Type::kNumber:
            ki.num_eq[v.num].push_back(idx);
            break;
          case EqValue::Type::kString:
            ki.str_eq[v.str].push_back(idx);
            break;
        }
        ++ki.entries;
      }
    } else {
      ki.ranges.push_back(RangeEntry{p.lo, p.hi, p.lo_strict, p.hi_strict,
                                     p.lo_unbounded, p.hi_unbounded, idx});
      ++ki.entries;
    }
  }
}

void SelectorIndex::unpost(std::uint32_t slot_idx,
                           const IndexedPredicate& p) {
  auto key_it = keys_.find(p.key);
  if (key_it == keys_.end()) return;
  KeyIndex& ki = key_it->second;
  const auto erase_one = [&](std::vector<std::uint32_t>& v) {
    auto it = std::find(v.begin(), v.end(), slot_idx);
    if (it != v.end()) {
      v.erase(it);
      --ki.entries;
    }
  };
  if (p.kind == IndexedPredicate::Kind::kEq) {
    for (const auto& v : p.values) {
      switch (v.type) {
        case EqValue::Type::kBool:
          erase_one(ki.bool_eq[v.b ? 1 : 0]);
          break;
        case EqValue::Type::kNumber: {
          auto it = ki.num_eq.find(v.num);
          if (it != ki.num_eq.end()) {
            erase_one(it->second);
            if (it->second.empty()) ki.num_eq.erase(it);
          }
          break;
        }
        case EqValue::Type::kString: {
          auto it = ki.str_eq.find(v.str);
          if (it != ki.str_eq.end()) {
            erase_one(it->second);
            if (it->second.empty()) ki.str_eq.erase(it);
          }
          break;
        }
      }
    }
  } else {
    for (auto it = ki.ranges.begin(); it != ki.ranges.end(); ++it) {
      if (it->slot == slot_idx && it->lo == p.lo && it->hi == p.hi &&
          it->lo_strict == p.lo_strict && it->hi_strict == p.hi_strict &&
          it->lo_unbounded == p.lo_unbounded &&
          it->hi_unbounded == p.hi_unbounded) {
        ki.ranges.erase(it);
        --ki.entries;
        break;
      }
    }
  }
  if (ki.entries == 0) keys_.erase(key_it);
}

void SelectorIndex::remove(std::uint64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  const std::uint32_t idx = it->second;
  by_id_.erase(it);
  Slot& s = slots_[idx];
  if (s.needed == 0) {
    scan_.erase(std::find(scan_.begin(), scan_.end(), idx));
  } else {
    --indexed_count_;
    for (const auto& p : s.sel->indexed()) unpost(idx, p);
  }
  s.live = false;
  s.sel.reset();
  free_slots_.push_back(idx);
}

void SelectorIndex::bump(std::uint32_t slot_idx) {
  Slot& s = slots_[slot_idx];
  if (s.epoch != epoch_) {
    s.epoch = epoch_;
    s.hits = 0;
  }
  if (++s.hits == s.needed) candidates_.push_back(slot_idx);
}

void SelectorIndex::collect_matches(const Message& m,
                                    std::vector<std::uint64_t>& out) {
  ++epoch_;
  ++stats_.probes;
  candidates_.clear();
  for (auto& [key, ki] : keys_) {
    const detail::Value v = detail::lookup_ident(m, key);
    switch (v.kind) {
      case detail::Value::Kind::kString: {
        auto it = ki.str_eq.find(v.s);
        if (it != ki.str_eq.end()) {
          for (std::uint32_t slot : it->second) bump(slot);
        }
        break;
      }
      case detail::Value::Kind::kInt:
      case detail::Value::Kind::kDouble: {
        const double d = v.as_double();
        if (std::isnan(d)) break;  // NaN never compares TRUE
        auto it = ki.num_eq.find(d);
        if (it != ki.num_eq.end()) {
          for (std::uint32_t slot : it->second) bump(slot);
        }
        for (const RangeEntry& r : ki.ranges) {
          if (!r.lo_unbounded && (r.lo_strict ? !(d > r.lo) : !(d >= r.lo))) {
            continue;
          }
          if (!r.hi_unbounded && (r.hi_strict ? !(d < r.hi) : !(d <= r.hi))) {
            continue;
          }
          bump(r.slot);
        }
        break;
      }
      case detail::Value::Kind::kBool: {
        for (std::uint32_t slot : ki.bool_eq[v.b ? 1 : 0]) bump(slot);
        break;
      }
      default:
        break;  // absent property: no posting can hit (UNKNOWN != TRUE)
    }
  }
  for (std::uint32_t idx : candidates_) {
    Slot& s = slots_[idx];
    ++stats_.residual_evals;
    if (s.sel->residual_matches(m)) {
      out.push_back(s.id);
      ++stats_.index_hits;
    }
  }
  stats_.index_skips += indexed_count_ - candidates_.size();
  for (std::uint32_t idx : scan_) {
    Slot& s = slots_[idx];
    ++stats_.fallback_evals;
    if (s.sel->matches(m)) out.push_back(s.id);
  }
}

std::vector<std::string> SelectorIndex::indexed_keys() const {
  std::vector<std::string> out;
  out.reserve(keys_.size());
  for (const auto& [key, ki] : keys_) out.push_back(key);
  return out;
}

}  // namespace cmx::mq
