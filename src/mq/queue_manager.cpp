#include "mq/queue_manager.hpp"

#include <algorithm>
#include <functional>

#include "mq/network.hpp"
#include "mq/session.hpp"
#include "obs/registry.hpp"
#include "util/id.hpp"
#include "util/logging.hpp"

namespace cmx::mq {

namespace {
std::unique_ptr<MessageStore> resolve_store(
    std::unique_ptr<MessageStore> store, const QueueManagerOptions& options) {
  if (store) return store;
  if (!options.store.empty()) {
    auto built = make_store(options.store);
    built.status().expect_ok("store spec");
    return std::move(built).value();
  }
  return std::make_unique<NullStore>();
}
}  // namespace

QueueManager::QueueManager(std::string name, util::Clock& clock,
                           std::unique_ptr<MessageStore> store,
                           QueueManagerOptions options)
    : name_(std::move(name)),
      clock_(clock),
      store_(resolve_store(std::move(store), options)),
      options_(std::move(options)) {}

QueueManager::~QueueManager() { shutdown(); }

QueueManager::Shard& QueueManager::shard_for(
    const std::string& queue_name) const {
  return shards_[std::hash<std::string>{}(queue_name) % kShardCount];
}

std::shared_ptr<Queue> QueueManager::make_queue(const std::string& queue_name,
                                                QueueOptions options) {
  // The discard callback logs the expiry-removal of persistent messages so
  // recovery does not resurrect them. It runs under the queue's own lock —
  // the store append below must therefore never need a queue lock
  // (DESIGN.md §7 lock hierarchy: queue lock → store staging lock is legal,
  // the reverse is not).
  auto on_discard = [this, queue_name](const Message& msg) {
    if (msg.persistent()) {
      store_->append(LogRecord::get(queue_name, msg.id()));
    }
  };
  return std::make_shared<Queue>(queue_name, options, clock_,
                                 std::move(on_discard));
}

util::Status QueueManager::create_queue(const std::string& queue_name,
                                        QueueOptions options) {
  {
    Shard& shard = shard_for(queue_name);
    std::lock_guard<std::mutex> lk(shard.mu);
    if (shut_down_.load(std::memory_order_acquire)) {
      return util::make_error(util::ErrorCode::kClosed, "qm is shut down");
    }
    if (shard.queues.count(queue_name) > 0) {
      return util::make_error(util::ErrorCode::kAlreadyExists,
                              "queue " + queue_name + " already exists");
    }
    shard.queues[queue_name] = make_queue(queue_name, options);
  }
  store_->append(LogRecord::queue_create(queue_name)).expect_ok("log create");
  maybe_compact();
  return util::ok_status();
}

util::Status QueueManager::ensure_queue(const std::string& queue_name,
                                        QueueOptions options) {
  auto s = create_queue(queue_name, options);
  if (!s && s.code() == util::ErrorCode::kAlreadyExists) {
    return util::ok_status();
  }
  return s;
}

util::Status QueueManager::delete_queue(const std::string& queue_name) {
  std::shared_ptr<Queue> victim;
  {
    Shard& shard = shard_for(queue_name);
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.queues.find(queue_name);
    if (it == shard.queues.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "queue " + queue_name + " not found");
    }
    victim = it->second;
    shard.queues.erase(it);
  }
  victim->close();
  store_->append(LogRecord::queue_delete(queue_name)).expect_ok("log delete");
  maybe_compact();
  return util::ok_status();
}

std::shared_ptr<Queue> QueueManager::find_queue(
    const std::string& queue_name) const {
  Shard& shard = shard_for(queue_name);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.queues.find(queue_name);
  return it == shard.queues.end() ? nullptr : it->second;
}

SelectorIndex::Stats QueueManager::selector_waiter_stats() const {
  SelectorIndex::Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [name, queue] : shard.queues) {
      const SelectorIndex::Stats s = queue->selector_waiter_stats();
      total.probes += s.probes;
      total.index_hits += s.index_hits;
      total.index_skips += s.index_skips;
      total.residual_evals += s.residual_evals;
      total.fallback_evals += s.fallback_evals;
    }
  }
  return total;
}

std::vector<std::string> QueueManager::queue_names() const {
  std::vector<std::string> names;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [name, queue] : shard.queues) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

util::Status QueueManager::put(const QueueAddress& addr, Message msg) {
  if (addr.qmgr.empty() || addr.qmgr == name_) {
    return put_local(addr.queue, std::move(msg));
  }
  Network* net = network();
  if (net == nullptr) {
    return util::make_error(
        util::ErrorCode::kFailedPrecondition,
        "no network attached; cannot reach qmgr " + addr.qmgr);
  }
  if (msg.id().empty()) msg.set_id(util::generate_id("msg"));
  msg.set_put_time_ms(clock_.now_ms());
  return net->route(*this, addr, std::move(msg));
}

util::Status QueueManager::put_all(
    std::vector<std::pair<QueueAddress, Message>> puts) {
  std::vector<std::pair<std::string, Message>> local;
  local.reserve(puts.size());
  for (auto& [addr, msg] : puts) {
    if (addr.qmgr.empty() || addr.qmgr == name_) {
      local.emplace_back(addr.queue, std::move(msg));
      continue;
    }
    Network* net = network();
    if (net == nullptr) {
      return util::make_error(
          util::ErrorCode::kFailedPrecondition,
          "no network attached; cannot reach qmgr " + addr.qmgr);
    }
    if (msg.id().empty()) msg.set_id(util::generate_id("msg"));
    msg.set_put_time_ms(clock_.now_ms());
    auto xmit = net->resolve(*this, addr, msg);
    if (!xmit) return xmit.status();
    local.emplace_back(std::move(xmit).value(), std::move(msg));
  }
  return put_local_batch(std::move(local));
}

util::Status QueueManager::put_local(const std::string& queue_name,
                                     Message msg, bool log) {
  if (!obs::enabled()) {
    return put_local_impl(queue_name, std::move(msg), log);
  }
  const std::uint64_t t0 = obs::now_us();
  auto s = put_local_impl(queue_name, std::move(msg), log);
  CMX_OBS_RECORD("mq.put_us", obs::now_us() - t0);
  CMX_OBS_COUNT("mq.put", 1);
  return s;
}

util::Status QueueManager::put_local_batch(
    std::vector<std::pair<std::string, Message>> puts, bool log) {
  if (!obs::enabled()) {
    return put_local_batch_impl(puts, log);
  }
  const std::uint64_t t0 = obs::now_us();
  const std::size_t n = puts.size();
  auto s = put_local_batch_impl(puts, log);
  CMX_OBS_RECORD("mq.put_us", obs::now_us() - t0);
  CMX_OBS_COUNT("mq.put", n);
  return s;
}

util::Status QueueManager::put_local_impl(const std::string& queue_name,
                                          Message msg, bool log) {
  auto queue = find_queue(queue_name);
  if (queue == nullptr) {
    // Arriving messages for unknown queues go to the dead-letter queue
    // (mirrors MQSeries behaviour); puts from local applications fail.
    return util::make_error(util::ErrorCode::kNotFound,
                            "queue " + queue_name + " not found on " + name_);
  }
  if (msg.id().empty()) msg.set_id(util::generate_id("msg"));
  if (msg.put_time_ms() == 0) msg.set_put_time_ms(clock_.now_ms());
  if (msg.expired(clock_.now_ms())) {
    CMX_OBS_COUNT("mq.put.expired", 1);
    return util::make_error(util::ErrorCode::kExpired,
                            "message already expired");
  }
  CMX_OBS_RECORD("mq.msg.body_bytes", msg.body_size());
  const bool log_it = log && msg.persistent();
  if (log_it) {
    // Prime the encode memo on the original BEFORE the record copies it:
    // the copy then shares the cached frame, so the store append is served
    // from the cache and the queue-resident message keeps it for later
    // re-encodes (channel hop, compaction snapshot). Pointless when
    // memoization is off (deep-copy A/B arm) — it would just double the
    // serialization work.
    if (zero_copy_enabled()) msg.encoded_frame();
    // Borrowed record: `msg` outlives the append (it moves into the queue
    // below), so the store encodes straight from it — no Message copy.
    if (auto s = store_->append(LogRecord::put_ref(queue_name, msg)); !s) {
      return s;
    }
  }
  auto s = queue->put(std::move(msg));
  if (log_it) maybe_compact();
  return s;
}

util::Status QueueManager::put_local_batch_impl(
    std::vector<std::pair<std::string, Message>>& puts, bool log) {
  // Pre-validate everything BEFORE any side effect so a failed batch leaves
  // no partial state: all queues must exist and no message may be expired.
  std::vector<std::shared_ptr<Queue>> queues;
  queues.reserve(puts.size());
  std::vector<LogRecord> records;
  for (auto& [queue_name, msg] : puts) {
    auto queue = find_queue(queue_name);
    if (queue == nullptr) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "queue " + queue_name + " not found on " + name_);
    }
    if (msg.id().empty()) msg.set_id(util::generate_id("msg"));
    if (msg.put_time_ms() == 0) msg.set_put_time_ms(clock_.now_ms());
    if (msg.expired(clock_.now_ms())) {
      CMX_OBS_COUNT("mq.put.expired", 1);
      return util::make_error(util::ErrorCode::kExpired,
                              "message " + msg.id() + " already expired");
    }
    CMX_OBS_RECORD("mq.msg.body_bytes", msg.body_size());
    queues.push_back(std::move(queue));
    if (log && msg.persistent()) {
      if (zero_copy_enabled()) msg.encoded_frame();  // prime, see above
      // Borrowed records: the messages stay in `puts` until after the
      // append below, so the store encodes them in place — one Message
      // copy (and its id-string allocation) saved per record.
      records.push_back(LogRecord::put_ref(queue_name, msg));
    }
  }
  // One append for the whole batch: the store brackets it with tx markers,
  // so recovery applies it all-or-nothing, and concurrent batches share one
  // group commit. A single record needs no markers (its frame is atomic).
  if (records.size() == 1) {
    if (auto s = store_->append(records.front()); !s) return s;
  } else if (!records.empty()) {
    if (auto s = store_->append_batch(records); !s) return s;
  }
  util::Status status = util::ok_status();
  for (std::size_t i = 0; i < puts.size(); ++i) {
    // Keep delivering after an individual failure (e.g. a queue closed by a
    // concurrent shutdown): the records are already durable, and recovery
    // semantics do not depend on the in-memory put succeeding.
    if (auto s = queues[i]->put(std::move(puts[i].second)); !s && status) {
      status = s;
    }
  }
  if (!records.empty()) maybe_compact();
  return status;
}

util::Result<Message> QueueManager::get(const std::string& queue_name,
                                        util::TimeMs timeout_ms,
                                        const Selector* selector) {
  auto queue = find_queue(queue_name);
  if (queue == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "queue " + queue_name + " not found on " + name_);
  }
  const util::TimeMs deadline =
      timeout_ms == util::kNoDeadline ? util::kNoDeadline
                                      : clock_.now_ms() + timeout_ms;
  auto got = queue->get(deadline, selector);
  if (!got) return got.status();
  Message msg = std::move(got).value().msg;
  if (msg.persistent()) {
    store_->append(LogRecord::get_ref(queue_name, msg.id()))
        .expect_ok("log get");
    maybe_compact();
  }
  CMX_OBS_COUNT("mq.get", 1);
  return msg;
}

std::vector<Message> QueueManager::get_batch(const std::string& queue_name,
                                             std::size_t max_n,
                                             const Selector* selector) {
  std::vector<Message> out;
  auto queue = find_queue(queue_name);
  if (queue == nullptr) return out;
  auto batch = queue->try_get_batch(max_n, selector);
  if (batch.empty()) return out;
  out.reserve(batch.size());
  std::vector<LogRecord> records;
  for (auto& got : batch) {
    // Move first, then borrow: the get-record's msg_id view points into
    // `out`, whose reserve above keeps elements stable through the append.
    out.push_back(std::move(got.msg));
    if (out.back().persistent()) {
      records.push_back(LogRecord::get_ref(queue_name, out.back().id()));
    }
  }
  if (records.size() == 1) {
    store_->append(records.front()).expect_ok("log batch get");
    maybe_compact();
  } else if (!records.empty()) {
    store_->append_batch(records).expect_ok("log batch get");
    maybe_compact();
  }
  CMX_OBS_COUNT("mq.get", out.size());
  return out;
}

util::Result<Message> QueueManager::remove_message(
    const std::string& queue_name, const std::string& msg_id) {
  auto queue = find_queue(queue_name);
  if (queue == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "queue " + queue_name + " not found on " + name_);
  }
  auto removed = queue->remove_by_id(msg_id);
  if (!removed.has_value()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "message " + msg_id + " not on " + queue_name);
  }
  if (removed->persistent()) {
    store_->append(LogRecord::get(queue_name, msg_id)).expect_ok("log remove");
    maybe_compact();
  }
  return std::move(*removed);
}

std::unique_ptr<Session> QueueManager::create_session(bool transacted) {
  return std::make_unique<Session>(*this, transacted);
}

void QueueManager::attach_network(Network* network) {
  std::lock_guard<std::mutex> lk(network_mu_);
  network_ = network;
}

Network* QueueManager::network() const {
  std::lock_guard<std::mutex> lk(network_mu_);
  return network_;
}

void QueueManager::apply_recovered_record(LogRecord& rec) {
  Shard& shard = shard_for(rec.queue);
  std::lock_guard<std::mutex> lk(shard.mu);
  switch (rec.type) {
    case LogRecord::Type::kQueueCreate:
      if (shard.queues.count(rec.queue) == 0) {
        shard.queues[rec.queue] = make_queue(rec.queue, QueueOptions{});
      }
      break;
    case LogRecord::Type::kQueueDelete: {
      auto it = shard.queues.find(rec.queue);
      if (it != shard.queues.end()) {
        it->second->close();
        shard.queues.erase(it);
      }
      break;
    }
    case LogRecord::Type::kPut: {
      auto it = shard.queues.find(rec.queue);
      if (it != shard.queues.end()) {
        it->second->put(std::move(rec.message)).expect_ok("recover put");
      }
      break;
    }
    case LogRecord::Type::kGet: {
      auto it = shard.queues.find(rec.queue);
      if (it != shard.queues.end()) {
        it->second->remove_by_id(rec.msg_id);
      }
      break;
    }
    case LogRecord::Type::kTxBegin:
    case LogRecord::Type::kTxCommit:
      break;  // filtered out by replay(); ignore defensively
  }
}

util::Status QueueManager::recover() {
  // Runs before the manager is shared across threads, so plain shard
  // operations suffice — no global lock needed.
  if (store_->caps().supports_chunked_replay) {
    // Chunked replay: stream the log (segment by segment for the segmented
    // engine) so recovery memory is bounded by one chunk, not the log.
    MessageStore::ReplayCursor cursor;
    while (!cursor.done) {
      auto chunk = store_->replay_chunk(cursor);
      if (!chunk) return chunk.status();
      for (auto& rec : chunk.value()) apply_recovered_record(rec);
    }
  } else {
    auto records = store_->replay();
    if (!records) return records.status();
    for (auto& rec : records.value()) apply_recovered_record(rec);
  }
  std::size_t queue_count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    queue_count += shard.queues.size();
  }
  CMX_INFO("mq.qm") << name_ << " recovered " << queue_count << " queues";
  return util::ok_status();
}

std::vector<LogRecord> QueueManager::snapshot() const {
  // Collect queue pointers shard by shard, then browse under each queue's
  // own lock. The snapshot is not a global atomic cut — but neither was the
  // seed's: puts append to the store before entering the queue, so a
  // compaction interleaving between those two steps sees the same states.
  std::vector<std::pair<std::string, std::shared_ptr<Queue>>> queues;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [queue_name, queue] : shard.queues) {
      queues.emplace_back(queue_name, queue);
    }
  }
  std::vector<LogRecord> snapshot;
  // Chunked passes instead of one unbounded browse(): each pass holds the
  // queue lock for at most kSnapshotChunk entries, so a deep queue (a
  // backed-up transmission queue during a partition, say) cannot stall
  // its putters and getters for the duration of a compaction scan.
  constexpr std::size_t kSnapshotChunk = 256;
  for (auto& [queue_name, queue] : queues) {
    snapshot.push_back(LogRecord::queue_create(queue_name));
    Queue::BrowseCursor cursor;
    while (!cursor.done) {
      for (auto& msg : queue->browse_chunk(cursor, kSnapshotChunk)) {
        if (msg.persistent()) {
          snapshot.push_back(LogRecord::put(queue_name, std::move(msg)));
        }
      }
    }
  }
  // Messages held by open transacted sessions are in no queue but must not
  // be lost by compaction: a post-crash recovery treats them as un-consumed
  // (their consuming transaction can no longer commit).
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    for (const auto& [msg_id, entry] : inflight_) {
      snapshot.push_back(LogRecord::put(entry.first, entry.second));
    }
  }
  return snapshot;
}

util::Status QueueManager::compact() {
  // Capability dispatch (DESIGN.md §11): engines that retire segments
  // themselves are never forced through the flat-log rewrite(snapshot)
  // path — no queue browse, no materialized snapshot.
  switch (store_->caps().compaction) {
    case CompactionMode::kNone:
      return util::ok_status();
    case CompactionMode::kSelfCompacting:
      return store_->compact_self();
    case CompactionMode::kSnapshotRewrite:
      break;
  }
  return store_->rewrite(snapshot());
}

void QueueManager::maybe_compact() {
  if (store_->appended_since_compaction() < options_.compaction_threshold) {
    return;
  }
  if (auto s = compact(); !s) {
    CMX_WARN("mq.qm") << name_ << " compaction failed: " << s.to_string();
  }
}

util::Status QueueManager::append_log_batch(
    const std::vector<LogRecord>& records) {
  auto s = store_->append_batch(records);
  if (s) maybe_compact();
  return s;
}

void QueueManager::register_inflight(const std::string& queue_name,
                                     const Message& msg) {
  if (!msg.persistent()) return;
  std::lock_guard<std::mutex> lk(inflight_mu_);
  inflight_[msg.id()] = {queue_name, msg};
}

void QueueManager::unregister_inflight(const std::string& msg_id) {
  std::lock_guard<std::mutex> lk(inflight_mu_);
  inflight_.erase(msg_id);
}

void QueueManager::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  attach_network(nullptr);
  std::vector<std::shared_ptr<Queue>> queues;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [name, queue] : shard.queues) queues.push_back(queue);
  }
  for (auto& queue : queues) queue->close();
}

}  // namespace cmx::mq
