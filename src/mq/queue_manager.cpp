#include "mq/queue_manager.hpp"

#include "mq/network.hpp"
#include "mq/session.hpp"
#include "obs/registry.hpp"
#include "util/id.hpp"
#include "util/logging.hpp"

namespace cmx::mq {

QueueManager::QueueManager(std::string name, util::Clock& clock,
                           std::unique_ptr<MessageStore> store,
                           QueueManagerOptions options)
    : name_(std::move(name)),
      clock_(clock),
      store_(store ? std::move(store) : std::make_unique<NullStore>()),
      options_(options) {}

QueueManager::~QueueManager() { shutdown(); }

std::shared_ptr<Queue> QueueManager::make_queue_locked(
    const std::string& queue_name, QueueOptions options) {
  // The discard callback logs the expiry-removal of persistent messages so
  // recovery does not resurrect them.
  auto on_discard = [this, queue_name](const Message& msg) {
    if (msg.persistent()) {
      store_->append(LogRecord::get(queue_name, msg.id));
    }
  };
  return std::make_shared<Queue>(queue_name, options, clock_,
                                 std::move(on_discard));
}

util::Status QueueManager::create_queue(const std::string& queue_name,
                                        QueueOptions options) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shut_down_) {
      return util::make_error(util::ErrorCode::kClosed, "qm is shut down");
    }
    if (queues_.count(queue_name) > 0) {
      return util::make_error(util::ErrorCode::kAlreadyExists,
                              "queue " + queue_name + " already exists");
    }
    queues_[queue_name] = make_queue_locked(queue_name, options);
  }
  store_->append(LogRecord::queue_create(queue_name)).expect_ok("log create");
  maybe_compact();
  return util::ok_status();
}

util::Status QueueManager::ensure_queue(const std::string& queue_name,
                                        QueueOptions options) {
  auto s = create_queue(queue_name, options);
  if (!s && s.code() == util::ErrorCode::kAlreadyExists) {
    return util::ok_status();
  }
  return s;
}

util::Status QueueManager::delete_queue(const std::string& queue_name) {
  std::shared_ptr<Queue> victim;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = queues_.find(queue_name);
    if (it == queues_.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "queue " + queue_name + " not found");
    }
    victim = it->second;
    queues_.erase(it);
  }
  victim->close();
  store_->append(LogRecord::queue_delete(queue_name)).expect_ok("log delete");
  maybe_compact();
  return util::ok_status();
}

std::shared_ptr<Queue> QueueManager::find_queue(
    const std::string& queue_name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = queues_.find(queue_name);
  return it == queues_.end() ? nullptr : it->second;
}

std::vector<std::string> QueueManager::queue_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, queue] : queues_) names.push_back(name);
  return names;
}

util::Status QueueManager::put(const QueueAddress& addr, Message msg) {
  if (addr.qmgr.empty() || addr.qmgr == name_) {
    return put_local(addr.queue, std::move(msg));
  }
  Network* net;
  {
    std::lock_guard<std::mutex> lk(mu_);
    net = network_;
  }
  if (net == nullptr) {
    return util::make_error(
        util::ErrorCode::kFailedPrecondition,
        "no network attached; cannot reach qmgr " + addr.qmgr);
  }
  if (msg.id.empty()) msg.id = util::generate_id("msg");
  msg.put_time_ms = clock_.now_ms();
  return net->route(*this, addr, std::move(msg));
}

util::Status QueueManager::put_local(const std::string& queue_name,
                                     Message msg, bool log) {
  if (!obs::enabled()) {
    return put_local_impl(queue_name, std::move(msg), log);
  }
  const std::uint64_t t0 = obs::now_us();
  auto s = put_local_impl(queue_name, std::move(msg), log);
  CMX_OBS_RECORD("mq.put_us", obs::now_us() - t0);
  CMX_OBS_COUNT("mq.put", 1);
  return s;
}

util::Status QueueManager::put_local_impl(const std::string& queue_name,
                                          Message msg, bool log) {
  auto queue = find_queue(queue_name);
  if (queue == nullptr) {
    // Arriving messages for unknown queues go to the dead-letter queue
    // (mirrors MQSeries behaviour); puts from local applications fail.
    return util::make_error(util::ErrorCode::kNotFound,
                            "queue " + queue_name + " not found on " + name_);
  }
  if (msg.id.empty()) msg.id = util::generate_id("msg");
  if (msg.put_time_ms == 0) msg.put_time_ms = clock_.now_ms();
  if (msg.expired(clock_.now_ms())) {
    CMX_OBS_COUNT("mq.put.expired", 1);
    return util::make_error(util::ErrorCode::kExpired,
                            "message already expired");
  }
  const bool log_it = log && msg.persistent();
  if (log_it) {
    if (auto s = store_->append(LogRecord::put(queue_name, msg)); !s) {
      return s;
    }
  }
  auto s = queue->put(std::move(msg));
  if (log_it) maybe_compact();
  return s;
}

util::Result<Message> QueueManager::get(const std::string& queue_name,
                                        util::TimeMs timeout_ms,
                                        const Selector* selector) {
  auto queue = find_queue(queue_name);
  if (queue == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "queue " + queue_name + " not found on " + name_);
  }
  const util::TimeMs deadline =
      timeout_ms == util::kNoDeadline ? util::kNoDeadline
                                      : clock_.now_ms() + timeout_ms;
  auto got = queue->get(deadline, selector);
  if (!got) return got.status();
  Message msg = std::move(got).value().msg;
  if (msg.persistent()) {
    store_->append(LogRecord::get(queue_name, msg.id)).expect_ok("log get");
    maybe_compact();
  }
  CMX_OBS_COUNT("mq.get", 1);
  return msg;
}

util::Result<Message> QueueManager::remove_message(
    const std::string& queue_name, const std::string& msg_id) {
  auto queue = find_queue(queue_name);
  if (queue == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "queue " + queue_name + " not found on " + name_);
  }
  auto removed = queue->remove_by_id(msg_id);
  if (!removed.has_value()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "message " + msg_id + " not on " + queue_name);
  }
  if (removed->persistent()) {
    store_->append(LogRecord::get(queue_name, msg_id)).expect_ok("log remove");
    maybe_compact();
  }
  return std::move(*removed);
}

std::unique_ptr<Session> QueueManager::create_session(bool transacted) {
  return std::make_unique<Session>(*this, transacted);
}

void QueueManager::attach_network(Network* network) {
  std::lock_guard<std::mutex> lk(mu_);
  network_ = network;
}

Network* QueueManager::network() const {
  std::lock_guard<std::mutex> lk(mu_);
  return network_;
}

util::Status QueueManager::recover() {
  auto records = store_->replay();
  if (!records) return records.status();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& rec : records.value()) {
    switch (rec.type) {
      case LogRecord::Type::kQueueCreate:
        if (queues_.count(rec.queue) == 0) {
          queues_[rec.queue] = make_queue_locked(rec.queue, QueueOptions{});
        }
        break;
      case LogRecord::Type::kQueueDelete: {
        auto it = queues_.find(rec.queue);
        if (it != queues_.end()) {
          it->second->close();
          queues_.erase(it);
        }
        break;
      }
      case LogRecord::Type::kPut: {
        auto it = queues_.find(rec.queue);
        if (it != queues_.end()) {
          it->second->put(std::move(rec.message)).expect_ok("recover put");
        }
        break;
      }
      case LogRecord::Type::kGet: {
        auto it = queues_.find(rec.queue);
        if (it != queues_.end()) {
          it->second->remove_by_id(rec.msg_id);
        }
        break;
      }
      case LogRecord::Type::kTxBegin:
      case LogRecord::Type::kTxCommit:
        break;  // filtered out by replay(); ignore defensively
    }
  }
  CMX_INFO("mq.qm") << name_ << " recovered " << queues_.size() << " queues";
  return util::ok_status();
}

std::vector<LogRecord> QueueManager::snapshot_locked() const {
  std::vector<LogRecord> snapshot;
  for (const auto& [queue_name, queue] : queues_) {
    snapshot.push_back(LogRecord::queue_create(queue_name));
    for (auto& msg : queue->browse()) {
      if (msg.persistent()) {
        snapshot.push_back(LogRecord::put(queue_name, std::move(msg)));
      }
    }
  }
  // Messages held by open transacted sessions are in no queue but must not
  // be lost by compaction: a post-crash recovery treats them as un-consumed
  // (their consuming transaction can no longer commit).
  for (const auto& [msg_id, entry] : inflight_) {
    snapshot.push_back(LogRecord::put(entry.first, entry.second));
  }
  return snapshot;
}

util::Status QueueManager::compact() {
  std::vector<LogRecord> snapshot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snapshot = snapshot_locked();
  }
  return store_->rewrite(snapshot);
}

void QueueManager::maybe_compact() {
  if (store_->appended_since_compaction() < options_.compaction_threshold) {
    return;
  }
  if (auto s = compact(); !s) {
    CMX_WARN("mq.qm") << name_ << " compaction failed: " << s.to_string();
  }
}

util::Status QueueManager::append_log_batch(
    const std::vector<LogRecord>& records) {
  auto s = store_->append_batch(records);
  if (s) maybe_compact();
  return s;
}

void QueueManager::register_inflight(const std::string& queue_name,
                                     const Message& msg) {
  if (!msg.persistent()) return;
  std::lock_guard<std::mutex> lk(mu_);
  inflight_[msg.id] = {queue_name, msg};
}

void QueueManager::unregister_inflight(const std::string& msg_id) {
  std::lock_guard<std::mutex> lk(mu_);
  inflight_.erase(msg_id);
}

void QueueManager::shutdown() {
  std::map<std::string, std::shared_ptr<Queue>> queues;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    queues = queues_;
    network_ = nullptr;
  }
  for (auto& [name, queue] : queues) queue->close();
}

}  // namespace cmx::mq
