// Process-wide metrics registry: named lock-free counters, gauges and
// latency histograms. Designed so the instrumented fast paths stay fast:
//
//   * obs::enabled() is a single relaxed atomic load — every instrument
//     site branches on it, so with metrics off the cost is load+branch.
//   * Metric lookup is mutex-guarded, but call sites cache the returned
//     reference in a function-local static, so each site pays the lookup
//     once per process; afterwards a hit is one relaxed fetch_add.
//   * Metric objects are never deallocated or moved (leaky singleton
//     holding unique_ptrs), so cached references stay valid for the
//     process lifetime; reset() zeroes values in place.
//
// Metrics default off; set CMX_OBS=1 (or "on"/"true") or call
// set_enabled(true) to start collecting.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace cmx::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Monotonic microseconds since process start; the instrumentation time
// base for in-process durations (stage latencies derived from message
// timestamps use the queue manager's Clock instead).
std::uint64_t now_us();

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Find-or-create by name. The returned references are valid for the
  // life of the process.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Zeroes every registered metric in place. Registered names survive.
  void reset();

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  // Consistent-enough view for export: names are stable, values are
  // relaxed reads of live metrics.
  Snapshot snapshot() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cmx::obs

// Instrumentation helpers. Each expansion caches its metric reference in
// a function-local static, so the steady-state enabled cost is one
// branch + one relaxed RMW, and the disabled cost is one branch.
#define CMX_OBS_COUNT(name, n)                                        \
  do {                                                                \
    if (::cmx::obs::enabled()) {                                      \
      static ::cmx::obs::Counter& cmx_obs_counter_ =                  \
          ::cmx::obs::MetricsRegistry::instance().counter(name);      \
      cmx_obs_counter_.inc(n);                                        \
    }                                                                 \
  } while (0)

#define CMX_OBS_RECORD(name, value_us)                                \
  do {                                                                \
    if (::cmx::obs::enabled()) {                                      \
      static ::cmx::obs::Histogram& cmx_obs_hist_ =                   \
          ::cmx::obs::MetricsRegistry::instance().histogram(name);    \
      cmx_obs_hist_.record(value_us);                                 \
    }                                                                 \
  } while (0)
