#include "obs/registry.hpp"

#include <cstdlib>
#include <cstring>

namespace cmx::obs {

namespace detail {

namespace {
bool env_enabled() {
  const char* env = std::getenv("CMX_OBS");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaky singleton: instrument sites cache references into this object
  // and may fire during static destruction (e.g. a channel joining its
  // mover thread), so it must never be destroyed.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

}  // namespace cmx::obs
