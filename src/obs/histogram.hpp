// Fixed-bucket, lock-free latency histogram. Buckets are log-linear
// (HDR-histogram style): each power-of-two octave is split into four
// sub-buckets, so relative bucket width — and therefore worst-case
// quantile error — is bounded by 25% across the whole range, values
// 0..7 are exact, and the top bucket absorbs everything above ~2^41
// (about 25 days in microseconds). record() is three relaxed
// fetch_adds plus two bounded CAS loops; there is no lock anywhere on
// the write path, so any number of threads can hammer one histogram.
//
// All values are unitless 64-bit integers; by convention the metrics
// subsystem records microseconds (histogram names end in "_us").
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace cmx::obs {

// Read-side view of one histogram, produced by Histogram::snapshot().
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;

  // Quantile via cumulative bucket walk with linear interpolation
  // inside the containing bucket. q in [0, 1]; returns 0 on empty.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p95() const { return quantile(0.95); }
  std::uint64_t p99() const { return quantile(0.99); }
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

class Histogram {
 public:
  // 2^kSubBits sub-buckets per octave.
  static constexpr int kSubBits = 2;
  static constexpr int kSub = 1 << kSubBits;          // 4
  static constexpr int kLinearLimit = 2 * kSub;       // values 0..7 exact
  static constexpr int kMaxOctave = 41;
  static constexpr int kBucketCount =
      kLinearLimit + (kMaxOctave - kSubBits) * kSub;  // 164

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  // Zeroes every cell in place (the object stays registered and all
  // cached references stay valid).
  void reset();

  // Bucket geometry, exposed for quantile interpolation and tests.
  static int bucket_index(std::uint64_t value) {
    if (value < kLinearLimit) return static_cast<int>(value);
    int octave = 63 - std::countl_zero(value);  // >= kSubBits + 1
    if (octave > kMaxOctave) return kBucketCount - 1;
    const int sub =
        static_cast<int>((value >> (octave - kSubBits)) & (kSub - 1));
    return kLinearLimit + (octave - kSubBits - 1) * kSub + sub;
  }
  // Smallest value mapping to bucket `index`.
  static std::uint64_t bucket_lower(int index) {
    if (index < kLinearLimit) return static_cast<std::uint64_t>(index);
    const int octave = kSubBits + 1 + (index - kLinearLimit) / kSub;
    const int sub = (index - kLinearLimit) % kSub;
    return (std::uint64_t{1} << octave) +
           (static_cast<std::uint64_t>(sub) << (octave - kSubBits));
  }
  // Exclusive upper bound of bucket `index`.
  static std::uint64_t bucket_upper(int index) {
    return index + 1 < kBucketCount ? bucket_lower(index + 1)
                                    : ~std::uint64_t{0};
  }

 private:
  void update_min(std::uint64_t value) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t value) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace cmx::obs
