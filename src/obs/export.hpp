// Snapshot/export of the metrics registry: a human-readable text dump
// (for operators, system_inspector) and a machine-readable JSON block
// (for benches writing BENCH_*.json and for scraping across PRs).
#pragma once

#include <ostream>
#include <string>

namespace cmx::obs {

// Full registry as JSON:
//   {"enabled": bool,
//    "counters": {name: value, ...},
//    "gauges": {name: value, ...},
//    "histograms": {name: {"count","sum_us","min_us","max_us",
//                          "mean_us","p50_us","p95_us","p99_us"}, ...}}
std::string export_json();

// Human-readable table: counters/gauges, then one line per histogram
// with count / mean / p50 / p95 / p99 / max.
void export_text(std::ostream& os);

}  // namespace cmx::obs
