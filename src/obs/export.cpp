#include "obs/export.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "obs/registry.hpp"

namespace cmx::obs {

namespace {

// Metric names are code-controlled identifiers ([a-z0-9._]), but escape
// defensively so the output is always valid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string export_json() {
  const auto snap = MetricsRegistry::instance().snapshot();
  std::ostringstream os;
  os << "{\"enabled\": " << (enabled() ? "true" : "false");
  os << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": " << value;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": " << value;
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": {"
       << "\"count\": " << h.count << ", \"sum_us\": " << h.sum
       << ", \"min_us\": " << h.min << ", \"max_us\": " << h.max
       << ", \"mean_us\": " << h.mean() << ", \"p50_us\": " << h.p50()
       << ", \"p95_us\": " << h.p95() << ", \"p99_us\": " << h.p99() << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void export_text(std::ostream& os) {
  const auto snap = MetricsRegistry::instance().snapshot();
  os << "-- metrics (" << (enabled() ? "enabled" : "disabled") << ") --\n";
  for (const auto& [name, value] : snap.counters) {
    os << "  " << std::left << std::setw(36) << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    os << "  " << std::left << std::setw(36) << name << ' ' << value << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    os << "  " << std::left << std::setw(36) << name << " count=" << h.count;
    if (h.count > 0) {
      os << " mean=" << static_cast<std::uint64_t>(h.mean())
         << "us p50=" << h.p50() << "us p95=" << h.p95()
         << "us p99=" << h.p99() << "us max=" << h.max << "us";
    }
    os << '\n';
  }
}

}  // namespace cmx::obs
