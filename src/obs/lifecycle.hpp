// Message-lifecycle tracer: per-stage latency histograms for the seven
// stages of the conditional send path (paper §2.3–§2.5):
//
//   send             full ConditionalMessagingService::send_message()
//                    call: fan-out planning, SLOG append, compensation
//                    staging, evaluation registration, puts
//   slog_append      the persistent sender-log write inside the send
//   channel_transit  conditional data message crossing a channel:
//                    put-on-transmission-queue -> delivered remotely
//   pickup           send timestamp -> a recipient reads the message
//                    (the quantity MsgPickUpTime constrains, §2.2)
//   processing_ack   recipient's read/commit timestamp -> the ack is
//                    applied by the sender's evaluation manager
//   evaluate         one evaluation-engine pass over a shard's dirty and
//                    deadline-lapsed states (§2.5; DESIGN.md §8)
//   outcome_dispatch verdict reached -> outcome actions + notification
//                    dispatched (compensation release / discard, §2.6)
//
// Stage histograms and counters live in the MetricsRegistry under
// "lifecycle.<stage>_us" / "lifecycle.<stage>.count", so export and
// reset() cover them uniformly. trace_stage() is the one call sites
// use; with metrics disabled it is a relaxed load and a branch.
#pragma once

#include <cstdint>

#include "obs/registry.hpp"

namespace cmx::obs {

enum class Stage {
  kSend = 0,
  kSlogAppend,
  kChannelTransit,
  kPickup,
  kProcessingAck,
  kEvaluate,
  kOutcomeDispatch,
};

inline constexpr int kStageCount = 7;

const char* stage_name(Stage stage);

class LifecycleTracer {
 public:
  static LifecycleTracer& instance();

  void record(Stage stage, std::uint64_t latency_us) {
    const int i = static_cast<int>(stage);
    counts_[i]->inc();
    hists_[i]->record(latency_us);
  }

  std::uint64_t stage_count(Stage stage) const {
    return counts_[static_cast<int>(stage)]->value();
  }
  HistogramSnapshot stage_snapshot(Stage stage) const {
    return hists_[static_cast<int>(stage)]->snapshot();
  }

 private:
  LifecycleTracer();

  Counter* counts_[kStageCount];
  Histogram* hists_[kStageCount];
};

inline void trace_stage(Stage stage, std::uint64_t latency_us) {
  if (enabled()) LifecycleTracer::instance().record(stage, latency_us);
}

// Converts a clock-ms delta (possibly negative under skew) to us.
inline std::uint64_t ms_delta_us(std::int64_t delta_ms) {
  return delta_ms <= 0 ? 0 : static_cast<std::uint64_t>(delta_ms) * 1000;
}

}  // namespace cmx::obs
