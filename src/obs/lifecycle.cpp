#include "obs/lifecycle.hpp"

#include <string>

namespace cmx::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kSend:
      return "send";
    case Stage::kSlogAppend:
      return "slog_append";
    case Stage::kChannelTransit:
      return "channel_transit";
    case Stage::kPickup:
      return "pickup";
    case Stage::kProcessingAck:
      return "processing_ack";
    case Stage::kEvaluate:
      return "evaluate";
    case Stage::kOutcomeDispatch:
      return "outcome_dispatch";
  }
  return "unknown";
}

LifecycleTracer& LifecycleTracer::instance() {
  static LifecycleTracer* tracer = new LifecycleTracer();
  return *tracer;
}

LifecycleTracer::LifecycleTracer() {
  auto& registry = MetricsRegistry::instance();
  for (int i = 0; i < kStageCount; ++i) {
    const std::string base =
        std::string("lifecycle.") + stage_name(static_cast<Stage>(i));
    counts_[i] = &registry.counter(base + ".count");
    hists_[i] = &registry.histogram(base + "_us");
  }
}

}  // namespace cmx::obs
