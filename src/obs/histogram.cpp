#include "obs/histogram.hpp"

#include <cmath>

namespace cmx::obs {

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // Derive the count from the bucket copy so the snapshot is internally
  // consistent even if records land concurrently.
  std::uint64_t total = 0;
  for (auto b : snap.buckets) total += b;
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = total == 0 ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the q-th sample, 1-based.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    if (buckets[i] == 0) continue;
    if (cum + buckets[i] >= rank) {
      const std::uint64_t lower = Histogram::bucket_lower(i);
      std::uint64_t upper = Histogram::bucket_upper(i);
      // Clamp the estimate into the observed range: the top and bottom
      // buckets are much wider than the data they hold.
      if (upper > max) upper = max;
      if (upper < lower) upper = lower;
      // 0-based offset of the ranked sample within this bucket, so frac
      // stays in [0, 1) and width-1 (linear-region) buckets are exact.
      const double frac = static_cast<double>(rank - cum - 1) / buckets[i];
      std::uint64_t v =
          lower + static_cast<std::uint64_t>(frac * (upper - lower));
      if (v < min) v = min;
      if (v > max) v = max;
      return v;
    }
    cum += buckets[i];
  }
  return max;
}

}  // namespace cmx::obs
