#include "ds/dsphere.hpp"

#include "obs/registry.hpp"
#include "util/id.hpp"
#include "util/logging.hpp"

namespace cmx::ds {

const char* dsphere_outcome_name(DSphereOutcome outcome) {
  return outcome == DSphereOutcome::kCommitted ? "committed" : "aborted";
}

DSphereService::DSphereService(cm::ConditionalMessagingService& cm_service,
                               txn::TwoPhaseCoordinator& coordinator)
    : cm_(cm_service), coordinator_(coordinator) {
  cm_.set_outcome_listener(
      [this](const cm::OutcomeRecord& record) { on_member_outcome(record); });
}

DSphereService::~DSphereService() { cm_.set_outcome_listener({}); }

std::string DSphereService::begin() {
  const std::string ds_id = util::generate_id("ds");
  std::lock_guard<std::mutex> lk(mu_);
  spheres_[ds_id] = Sphere{};
  ++stats_.begun;
  CMX_OBS_COUNT("ds.begun", 1);
  return ds_id;
}

util::Result<std::string> DSphereService::send_message(
    const std::string& ds_id, const std::string& body,
    const cm::Condition& condition, cm::SendOptions options) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = spheres_.find(ds_id);
    if (it == spheres_.end() || it->second.state != State::kActive) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "D-Sphere " + ds_id + " is not active");
    }
  }
  options.defer_outcome_actions = true;
  auto cm_id = cm_.send_message(body, condition, options);
  if (!cm_id) return cm_id;
  record_member(ds_id, cm_id.value());
  return cm_id;
}

util::Result<std::string> DSphereService::send_message(
    const std::string& ds_id, const std::string& body,
    const std::string& compensation_body, const cm::Condition& condition,
    cm::SendOptions options) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = spheres_.find(ds_id);
    if (it == spheres_.end() || it->second.state != State::kActive) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "D-Sphere " + ds_id + " is not active");
    }
  }
  options.defer_outcome_actions = true;
  auto cm_id = cm_.send_message(body, compensation_body, condition, options);
  if (!cm_id) return cm_id;
  record_member(ds_id, cm_id.value());
  return cm_id;
}

void DSphereService::record_member(const std::string& ds_id,
                                   const std::string& cm_id) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    spheres_[ds_id].members.push_back(cm_id);
    member_to_sphere_[cm_id] = ds_id;
  }
  // The member may already have been decided between the fan-out and this
  // registration (a fast receiver's ack); the outcome listener could not
  // attribute that decision to the sphere, so backfill it here.
  if (auto outcome = cm_.outcome_of(cm_id); outcome.has_value()) {
    cm::OutcomeRecord record;
    record.cm_id = cm_id;
    record.outcome = *outcome;
    on_member_outcome(record);
  }
}

util::Result<std::string> DSphereService::transaction_id(
    const std::string& ds_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = spheres_.find(ds_id);
  if (it == spheres_.end() || it->second.state != State::kActive) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "D-Sphere " + ds_id + " is not active");
  }
  if (!it->second.tx_id.has_value()) {
    it->second.tx_id = coordinator_.begin();
  }
  return *it->second.tx_id;
}

util::Status DSphereService::enlist(const std::string& ds_id,
                                    txn::TransactionalResource& resource) {
  auto tx = transaction_id(ds_id);
  if (!tx) return tx.status();
  return coordinator_.enlist(tx.value(), resource);
}

void DSphereService::on_member_outcome(const cm::OutcomeRecord& record) {
  std::lock_guard<std::mutex> lk(mu_);
  auto member_it = member_to_sphere_.find(record.cm_id);
  if (member_it == member_to_sphere_.end()) return;  // not a sphere member
  auto sphere_it = spheres_.find(member_it->second);
  if (sphere_it == spheres_.end()) return;
  sphere_it->second.decided[record.cm_id] = record.outcome;
  cv_.notify_all();
}

util::Result<DSphereResult> DSphereService::commit(const std::string& ds_id,
                                                   util::TimeMs timeout_ms) {
  return resolve(ds_id, /*force_abort=*/false, "", timeout_ms);
}

util::Result<DSphereResult> DSphereService::abort(const std::string& ds_id) {
  return resolve(ds_id, /*force_abort=*/true, "abort_DS called", 0);
}

util::Result<DSphereResult> DSphereService::resolve(
    const std::string& ds_id, bool force_abort,
    const std::string& abort_reason, util::TimeMs timeout_ms) {
  const std::uint64_t obs_t0 = obs::enabled() ? obs::now_us() : 0;
  util::Clock& clock = cm_.queue_manager().clock();
  std::vector<std::string> members;
  std::optional<std::string> tx_id;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = spheres_.find(ds_id);
    if (it == spheres_.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "unknown D-Sphere " + ds_id);
    }
    if (it->second.state != State::kActive) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "D-Sphere " + ds_id + " already resolving");
    }
    it->second.state = State::kResolving;
    members = it->second.members;
    tx_id = it->second.tx_id;

    if (!force_abort) {
      // Wait until every member is decided — or any member has already
      // failed (the sphere outcome is then determined), or timeout.
      // timeout 0 = resolve immediately with whatever is decided so far.
      const util::TimeMs deadline =
          timeout_ms == util::kNoDeadline ? util::kNoDeadline
                                          : clock.now_ms() + timeout_ms;
      auto& sphere = it->second;
      clock.wait_until(lk, cv_, deadline, [&] {
        if (sphere.decided.size() >= sphere.members.size()) return true;
        for (const auto& [cm_id, outcome] : sphere.decided) {
          if (outcome == cm::Outcome::kFailure) return true;
        }
        return false;
      });
    }
  }

  // Force-fail members still pending (timeout / abort / early failure).
  // force_decision() synchronously runs the outcome path, which calls back
  // into on_member_outcome — our lock must not be held here.
  for (const auto& cm_id : members) {
    bool pending;
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending = spheres_[ds_id].decided.count(cm_id) == 0;
    }
    if (pending) {
      cm_.force_decision(cm_id, cm::Outcome::kFailure,
                         force_abort ? abort_reason : "D-Sphere timeout");
    }
  }

  // Determine the overall outcome.
  bool all_success = !force_abort;
  std::string reason = force_abort ? abort_reason : "";
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto& sphere = spheres_[ds_id];
    for (const auto& cm_id : sphere.members) {
      auto it = sphere.decided.find(cm_id);
      if (it == sphere.decided.end() ||
          it->second == cm::Outcome::kFailure) {
        if (all_success) reason = "member " + cm_id + " failed";
        all_success = false;
      }
    }
  }

  // Transactional resources (§3.2): their votes gate the sphere, and the
  // sphere outcome drives their phase two.
  if (tx_id.has_value()) {
    if (all_success) {
      auto decision = coordinator_.commit(*tx_id);
      if (!decision || decision.value() == txn::Decision::kAborted) {
        all_success = false;
        reason = "transactional resource voted abort";
      }
    } else {
      coordinator_.rollback(*tx_id);
    }
  }

  // Release the deferred outcome actions for every member.
  for (const auto& cm_id : members) {
    if (all_success) {
      cm_.release_success_actions(cm_id);
    } else {
      cm_.release_failure_actions(cm_id);
    }
  }

  DSphereResult result;
  result.outcome =
      all_success ? DSphereOutcome::kCommitted : DSphereOutcome::kAborted;
  result.reason = reason;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto& sphere = spheres_[ds_id];
    sphere.state = all_success ? State::kCommitted : State::kAborted;
    sphere.result = result;
    for (const auto& cm_id : members) member_to_sphere_.erase(cm_id);
    if (all_success) {
      ++stats_.committed;
    } else {
      ++stats_.aborted;
    }
  }
  if (obs::enabled()) {
    CMX_OBS_RECORD("ds.resolve_us", obs::now_us() - obs_t0);
    if (all_success) {
      CMX_OBS_COUNT("ds.committed", 1);
    } else {
      CMX_OBS_COUNT("ds.aborted", 1);
    }
  }
  CMX_INFO("ds") << ds_id << " resolved "
                 << dsphere_outcome_name(result.outcome)
                 << (reason.empty() ? "" : " (" + reason + ")");
  return result;
}

std::optional<DSphereResult> DSphereService::outcome(
    const std::string& ds_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = spheres_.find(ds_id);
  if (it == spheres_.end()) return std::nullopt;
  if (it->second.state != State::kCommitted &&
      it->second.state != State::kAborted) {
    return std::nullopt;
  }
  return it->second.result;
}

std::vector<std::string> DSphereService::members(
    const std::string& ds_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = spheres_.find(ds_id);
  if (it == spheres_.end()) return {};
  return it->second.members;
}

DSphereStats DSphereService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace cmx::ds
