// Dependency-Spheres (paper §3, [14]): a global context grouping multiple
// conditional messages — and optionally transactional-object work — into
// one atomic unit-of-work.
//
// Semantics reproduced from §3.1/§3.2:
//   * Members are sent IMMEDIATELY (unlike messaging transactions); only
//     their outcome ACTIONS (success notifications / compensations) are
//     deferred until the sphere resolves.
//   * The sphere succeeds iff every member message succeeds AND every
//     enlisted transactional resource votes commit; then resources commit
//     and success actions are released for all members.
//   * If any member fails, a resource votes abort, the sphere times out,
//     or abort_DS is called, the sphere fails: resources roll back and
//     compensation is released for every member (including members that
//     individually succeeded).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cm/sender.hpp"
#include "txn/coordinator.hpp"

namespace cmx::ds {

enum class DSphereOutcome { kCommitted, kAborted };

const char* dsphere_outcome_name(DSphereOutcome outcome);

struct DSphereResult {
  DSphereOutcome outcome = DSphereOutcome::kAborted;
  std::string reason;  // why the sphere aborted (empty on commit)
};

struct DSphereStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
};

class DSphereService {
 public:
  // Installs itself as the conditional-messaging service's outcome
  // listener (the sphere needs to observe member decisions). Non-sphere
  // sends keep working normally through `cm_service`.
  DSphereService(cm::ConditionalMessagingService& cm_service,
                 txn::TwoPhaseCoordinator& coordinator);
  ~DSphereService();

  DSphereService(const DSphereService&) = delete;
  DSphereService& operator=(const DSphereService&) = delete;

  // ---- demarcation (paper: begin_DS / commit_DS / abort_DS) --------------
  std::string begin();

  // Waits (up to `timeout_ms` on the sender's clock) for every member's
  // evaluation to complete, then resolves the sphere atomically as
  // described above. Members still pending at the timeout are force-failed
  // ("D-Sphere timeout"). Errors on unknown/already-resolved spheres.
  util::Result<DSphereResult> commit(const std::string& ds_id,
                                     util::TimeMs timeout_ms);

  // Unilateral abort: rolls back resources and compensates all members
  // (pending members are force-failed first).
  util::Result<DSphereResult> abort(const std::string& ds_id);

  // ---- membership ------------------------------------------------------
  // Sends a conditional message as a member of the sphere. The message is
  // delivered immediately; its outcome actions are deferred to the sphere.
  util::Result<std::string> send_message(const std::string& ds_id,
                                         const std::string& body,
                                         const cm::Condition& condition,
                                         cm::SendOptions options = {});
  util::Result<std::string> send_message(const std::string& ds_id,
                                         const std::string& body,
                                         const std::string& compensation_body,
                                         const cm::Condition& condition,
                                         cm::SendOptions options = {});

  // Enlists a transactional resource (§3.2); the caller then performs its
  // object requests against the resource using transaction_id().
  util::Status enlist(const std::string& ds_id,
                      txn::TransactionalResource& resource);
  // The coordinator transaction bound to this sphere (begun lazily).
  util::Result<std::string> transaction_id(const std::string& ds_id);

  // ---- introspection ------------------------------------------------------
  std::optional<DSphereResult> outcome(const std::string& ds_id) const;
  std::vector<std::string> members(const std::string& ds_id) const;
  DSphereStats stats() const;

 private:
  enum class State { kActive, kResolving, kCommitted, kAborted };

  struct Sphere {
    State state = State::kActive;
    std::vector<std::string> members;           // cm ids, send order
    std::map<std::string, cm::Outcome> decided;  // member outcomes
    std::optional<std::string> tx_id;           // coordinator transaction
    DSphereResult result;
  };

  void on_member_outcome(const cm::OutcomeRecord& record);
  // Adds the member and backfills an already-decided outcome (the send /
  // decision race).
  void record_member(const std::string& ds_id, const std::string& cm_id);
  util::Result<DSphereResult> resolve(const std::string& ds_id,
                                      bool force_abort,
                                      const std::string& abort_reason,
                                      util::TimeMs timeout_ms);

  cm::ConditionalMessagingService& cm_;
  txn::TwoPhaseCoordinator& coordinator_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, Sphere> spheres_;
  std::map<std::string, std::string> member_to_sphere_;
  DSphereStats stats_;
};

}  // namespace cmx::ds
