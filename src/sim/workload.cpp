#include "sim/workload.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "mq/queue_manager.hpp"

namespace cmx::sim {

namespace {
constexpr const char* kQueue = "SIM.WORK.Q";
}  // namespace

std::string WorkloadReport::to_string() const {
  std::ostringstream out;
  out << "sent=" << sent << " ok=" << succeeded << " failed=" << failed
      << " success=" << static_cast<int>(success_rate * 100.0) << "%"
      << " latency mean=" << static_cast<long long>(mean_outcome_latency_ms)
      << "ms p50=" << p50_outcome_latency_ms
      << "ms p95=" << p95_outcome_latency_ms << "ms acks=" << acks_processed
      << " comps=" << compensations_released << " rollbacks=" << rollbacks;
  return out.str();
}

WorkloadReport run_workload(const WorkloadSpec& spec,
                            const ReceiverProfile& profile) {
  util::SystemClock clock;
  mq::QueueManager qm("QM.SIM", clock);
  qm.create_queue(kQueue).expect_ok("create workload queue");
  cm::ConditionalMessagingService service(qm);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rollbacks{0};
  std::vector<std::thread> pool;
  for (int i = 0; i < profile.count; ++i) {
    pool.emplace_back([&, i] {
      cm::ConditionalReceiver rx(qm, "sim-rx-" + std::to_string(i));
      util::Rng rng(spec.seed * 1000 + static_cast<std::uint64_t>(i));
      while (!stop.load()) {
        if (profile.transactional) {
          rx.begin_tx().expect_ok("begin");
          auto msg = rx.read_message(kQueue, 20);
          if (!msg.is_ok()) {
            rx.rollback_tx();
            continue;
          }
          clock.sleep_ms(rng.uniform(profile.service_time_min_ms,
                                     profile.service_time_max_ms));
          if (rng.chance(profile.rollback_probability)) {
            rx.rollback_tx().expect_ok("rollback");
            rollbacks.fetch_add(1);
          } else {
            rx.commit_tx().expect_ok("commit");
          }
        } else {
          auto msg = rx.read_message(kQueue, 20);
          if (!msg.is_ok()) continue;
          clock.sleep_ms(rng.uniform(profile.service_time_min_ms,
                                     profile.service_time_max_ms));
        }
      }
    });
  }

  // The per-message condition: shared queue, anonymous recipient.
  cm::DestBuilder dest(mq::QueueAddress("QM.SIM", kQueue));
  util::TimeMs decisive_deadline = spec.pick_up_deadline_ms;
  if (spec.processing_deadline_ms.has_value()) {
    dest.processing_within(*spec.processing_deadline_ms);
    decisive_deadline = *spec.processing_deadline_ms;
  } else {
    dest.pick_up_within(spec.pick_up_deadline_ms);
  }
  auto condition = dest.build();
  cm::SendOptions options;
  options.evaluation_timeout_ms = spec.evaluation_timeout_ms > 0
                                      ? spec.evaluation_timeout_ms
                                      : decisive_deadline + 10;

  util::Rng arrivals(spec.seed);
  std::vector<std::string> ids;
  std::vector<util::TimeMs> send_ts;
  ids.reserve(static_cast<std::size_t>(spec.messages));
  for (int i = 0; i < spec.messages; ++i) {
    send_ts.push_back(clock.now_ms());
    auto cm_id = service.send_message("job " + std::to_string(i), *condition,
                                      options);
    cm_id.status().expect_ok("workload send");
    ids.push_back(cm_id.value());
    clock.sleep_ms(static_cast<util::TimeMs>(
        arrivals.exponential(spec.mean_interarrival_ms)));
  }

  WorkloadReport report;
  report.sent = spec.messages;
  std::vector<util::TimeMs> latencies;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto outcome = service.await_outcome(ids[i], 120'000);
    outcome.status().expect_ok("workload outcome");
    if (outcome.value().outcome == cm::Outcome::kSuccess) {
      ++report.succeeded;
    } else {
      ++report.failed;
    }
    latencies.push_back(outcome.value().decided_ts - send_ts[i]);
  }
  stop.store(true);
  for (auto& t : pool) t.join();

  report.success_rate =
      report.sent == 0 ? 0.0
                       : static_cast<double>(report.succeeded) / report.sent;
  if (!latencies.empty()) {
    double sum = 0;
    for (auto l : latencies) sum += static_cast<double>(l);
    report.mean_outcome_latency_ms = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    report.p50_outcome_latency_ms = latencies[latencies.size() / 2];
    report.p95_outcome_latency_ms =
        latencies[std::min(latencies.size() - 1,
                           latencies.size() * 95 / 100)];
  }
  report.acks_processed = service.evaluation_manager().stats().acks_processed;
  report.compensations_released =
      service.compensation_manager().stats().released;
  report.rollbacks = rollbacks.load();
  return report;
}

}  // namespace cmx::sim
