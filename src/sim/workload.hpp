// Workload-study harness: drives the conditional messaging system with a
// configurable open workload (Poisson arrivals on a shared queue) against
// a pool of receivers with a behaviour profile (service times, rollback
// probability, read-without-processing probability), and reports outcome
// statistics. Generalizes the paper's Example 2 study; used by
// bench_workload and available to applications for capacity planning.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cm/sender.hpp"
#include "util/clock.hpp"
#include "util/random.hpp"

namespace cmx::sim {

struct ReceiverProfile {
  int count = 1;
  // Uniform per-message service time [min, max] ms.
  util::TimeMs service_time_min_ms = 5;
  util::TimeMs service_time_max_ms = 15;
  // Read transactionally (processing acks) instead of plain reads.
  bool transactional = false;
  // P(transaction rolls back after the service time) — the message is
  // redelivered; only meaningful when transactional.
  double rollback_probability = 0.0;
};

struct WorkloadSpec {
  int messages = 100;
  double mean_interarrival_ms = 20.0;  // exponential gaps
  util::TimeMs pick_up_deadline_ms = 200;
  // When set, messages demand transactional processing in this window
  // instead of mere pick-up.
  std::optional<util::TimeMs> processing_deadline_ms;
  // Evaluation timeout; defaults to the relevant deadline + 10ms.
  util::TimeMs evaluation_timeout_ms = 0;
  std::uint64_t seed = 1;
};

struct WorkloadReport {
  int sent = 0;
  int succeeded = 0;
  int failed = 0;
  double success_rate = 0.0;
  // Latency from send to decided outcome, over all messages.
  double mean_outcome_latency_ms = 0.0;
  util::TimeMs p50_outcome_latency_ms = 0;
  util::TimeMs p95_outcome_latency_ms = 0;
  // Middleware-side counters for the run.
  std::uint64_t acks_processed = 0;
  std::uint64_t compensations_released = 0;
  std::uint64_t rollbacks = 0;

  std::string to_string() const;
};

// Runs one self-contained scenario (its own queue manager, service, and
// receiver pool) on the real clock and returns the report. Deterministic
// given the seed up to OS scheduling.
WorkloadReport run_workload(const WorkloadSpec& spec,
                            const ReceiverProfile& profile);

}  // namespace cmx::sim
