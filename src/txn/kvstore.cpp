#include "txn/kvstore.hpp"

namespace cmx::txn {

TxKvStore::TxKvStore(std::string name) : name_(std::move(name)) {}

util::Status TxKvStore::lock_key(const std::string& tx_id,
                                 const std::string& key) {
  auto it = lock_owner_.find(key);
  if (it != lock_owner_.end() && it->second != tx_id) {
    return util::make_error(util::ErrorCode::kConflict,
                            "key '" + key + "' locked by " + it->second);
  }
  lock_owner_[key] = tx_id;
  return util::ok_status();
}

util::Status TxKvStore::put(const std::string& tx_id, const std::string& key,
                            const std::string& value) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& tx = open_[tx_id];
  if (tx.prepared) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "transaction already prepared");
  }
  if (auto s = lock_key(tx_id, key); !s) return s;
  tx.writes[key] = value;
  return util::ok_status();
}

util::Status TxKvStore::erase(const std::string& tx_id,
                              const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& tx = open_[tx_id];
  if (tx.prepared) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "transaction already prepared");
  }
  if (auto s = lock_key(tx_id, key); !s) return s;
  tx.writes[key] = std::nullopt;
  return util::ok_status();
}

util::Result<std::string> TxKvStore::get(const std::string& tx_id,
                                         const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto tx_it = open_.find(tx_id);
  if (tx_it != open_.end()) {
    auto w = tx_it->second.writes.find(key);
    if (w != tx_it->second.writes.end()) {
      if (!w->second.has_value()) {
        return util::make_error(util::ErrorCode::kNotFound,
                                "key '" + key + "' erased in transaction");
      }
      return *w->second;
    }
  }
  auto it = committed_.find(key);
  if (it == committed_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "key '" + key + "' not found");
  }
  return it->second;
}

std::optional<std::string> TxKvStore::read_committed(
    const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = committed_.find(key);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

std::size_t TxKvStore::committed_size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return committed_.size();
}

Vote TxKvStore::prepare(const std::string& tx_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(tx_id);
  if (it == open_.end()) {
    // A transaction with no writes here prepares trivially.
    return fail_next_prepare_ ? (fail_next_prepare_ = false, Vote::kAbort)
                              : Vote::kCommit;
  }
  if (fail_next_prepare_) {
    fail_next_prepare_ = false;
    release_locks(it->second);
    open_.erase(it);
    return Vote::kAbort;
  }
  it->second.prepared = true;
  return Vote::kCommit;
}

void TxKvStore::commit(const std::string& tx_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(tx_id);
  if (it == open_.end()) return;  // nothing written here
  for (const auto& [key, value] : it->second.writes) {
    if (value.has_value()) {
      committed_[key] = *value;
    } else {
      committed_.erase(key);
    }
  }
  release_locks(it->second);
  open_.erase(it);
}

void TxKvStore::rollback(const std::string& tx_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(tx_id);
  if (it == open_.end()) return;
  release_locks(it->second);
  open_.erase(it);
}

void TxKvStore::release_locks(const TxState& tx) {
  for (const auto& [key, value] : tx.writes) {
    lock_owner_.erase(key);
  }
}

void TxKvStore::fail_next_prepare() {
  std::lock_guard<std::mutex> lk(mu_);
  fail_next_prepare_ = true;
}

std::size_t TxKvStore::active_transactions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return open_.size();
}

}  // namespace cmx::txn
