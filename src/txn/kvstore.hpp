// TxKvStore: a lock-based transactional key-value store, standing in for
// the "calendar database" / "room reservation database" resources of the
// paper's Example 1 and for generic distributed-object state in D-Spheres.
//
// Concurrency control: strict per-key write locks acquired at write time;
// a conflicting write by another transaction fails fast with kConflict
// (no blocking, hence no deadlock). Reads see the transaction's own writes
// first, then the last committed value.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "txn/resource.hpp"
#include "util/status.hpp"

namespace cmx::txn {

class TxKvStore final : public TransactionalResource {
 public:
  explicit TxKvStore(std::string name);

  // ---- transactional operations ----------------------------------------
  util::Status put(const std::string& tx_id, const std::string& key,
                   const std::string& value);
  util::Status erase(const std::string& tx_id, const std::string& key);
  // Read-your-writes get.
  util::Result<std::string> get(const std::string& tx_id,
                                const std::string& key) const;

  // ---- non-transactional observation ------------------------------------
  std::optional<std::string> read_committed(const std::string& key) const;
  std::size_t committed_size() const;

  // ---- TransactionalResource ---------------------------------------------
  const std::string& resource_name() const override { return name_; }
  Vote prepare(const std::string& tx_id) override;
  void commit(const std::string& tx_id) override;
  void rollback(const std::string& tx_id) override;

  // ---- fault injection -----------------------------------------------------
  // Forces the next prepare() to vote kAbort (simulates a resource that
  // cannot commit, e.g. a constraint violation found at prepare time).
  void fail_next_prepare();

  // Number of transactions currently holding locks (open or prepared).
  std::size_t active_transactions() const;

 private:
  struct TxState {
    // key -> new value; nullopt value means tombstone (erase)
    std::map<std::string, std::optional<std::string>> writes;
    bool prepared = false;
  };

  util::Status lock_key(const std::string& tx_id, const std::string& key);
  void release_locks(const TxState& tx);

  const std::string name_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> committed_;
  std::map<std::string, std::string> lock_owner_;  // key -> tx_id
  std::map<std::string, TxState> open_;
  bool fail_next_prepare_ = false;
};

}  // namespace cmx::txn
