// Transactional-resource abstraction: the role CORBA OTS / JTS resources
// play in the paper's Dependency-Spheres section. Resources are enlisted
// with a coordinator and driven through the classic two-phase protocol.
#pragma once

#include <string>

namespace cmx::txn {

enum class Vote {
  kCommit,  // resource is prepared and guarantees commit on request
  kAbort,   // resource cannot commit; the transaction must roll back
};

class TransactionalResource {
 public:
  virtual ~TransactionalResource() = default;

  virtual const std::string& resource_name() const = 0;

  // Phase one. After voting kCommit the resource must be able to commit
  // `tx_id` even across a crash (we do not simulate resource crashes during
  // the window, but the contract is stated for fidelity).
  virtual Vote prepare(const std::string& tx_id) = 0;

  // Phase two.
  virtual void commit(const std::string& tx_id) = 0;
  virtual void rollback(const std::string& tx_id) = 0;
};

}  // namespace cmx::txn
