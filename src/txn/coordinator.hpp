// TwoPhaseCoordinator: a presumed-abort two-phase-commit coordinator for
// the transactional resources enlisted in a Dependency-Sphere (paper §3.2:
// "In case that a transactional object request fails, the D-Sphere as a
// whole fails. In case that the D-Sphere fails, all object requests need
// to be rolled back.").
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "txn/resource.hpp"
#include "util/status.hpp"

namespace cmx::txn {

enum class Decision { kCommitted, kAborted };

struct CoordinatorStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
};

class TwoPhaseCoordinator {
 public:
  TwoPhaseCoordinator() = default;

  TwoPhaseCoordinator(const TwoPhaseCoordinator&) = delete;
  TwoPhaseCoordinator& operator=(const TwoPhaseCoordinator&) = delete;

  // Starts a transaction and returns its id.
  std::string begin();

  // Enlists a resource (idempotent per (tx, resource)). The resource must
  // outlive the transaction.
  util::Status enlist(const std::string& tx_id, TransactionalResource& r);

  // Runs 2PC. Returns the decision: kCommitted when every resource voted
  // commit, kAborted otherwise (all resources then rolled back). Errors
  // only on unknown/finished transactions.
  util::Result<Decision> commit(const std::string& tx_id);

  // Unilateral rollback of every enlisted resource.
  util::Status rollback(const std::string& tx_id);

  // The durable decision for a finished transaction.
  std::optional<Decision> decision(const std::string& tx_id) const;

  CoordinatorStats stats() const;

 private:
  struct TxRecord {
    std::vector<TransactionalResource*> resources;
  };

  mutable std::mutex mu_;
  std::map<std::string, TxRecord> active_;
  std::map<std::string, Decision> decisions_;
  CoordinatorStats stats_;
};

}  // namespace cmx::txn
