#include "txn/coordinator.hpp"

#include <algorithm>

#include "util/id.hpp"
#include "util/logging.hpp"

namespace cmx::txn {

std::string TwoPhaseCoordinator::begin() {
  const std::string tx_id = util::generate_id("tx");
  std::lock_guard<std::mutex> lk(mu_);
  active_[tx_id] = TxRecord{};
  ++stats_.begun;
  return tx_id;
}

util::Status TwoPhaseCoordinator::enlist(const std::string& tx_id,
                                         TransactionalResource& r) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_.find(tx_id);
  if (it == active_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown transaction " + tx_id);
  }
  auto& resources = it->second.resources;
  if (std::find(resources.begin(), resources.end(), &r) == resources.end()) {
    resources.push_back(&r);
  }
  return util::ok_status();
}

util::Result<Decision> TwoPhaseCoordinator::commit(const std::string& tx_id) {
  TxRecord record;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = active_.find(tx_id);
    if (it == active_.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "unknown transaction " + tx_id);
    }
    record = std::move(it->second);
    active_.erase(it);
  }

  // Phase one: collect votes. Stop at the first abort (presumed abort:
  // later resources have nothing prepared yet and are rolled back anyway).
  bool all_commit = true;
  std::size_t prepared = 0;
  for (auto* resource : record.resources) {
    if (resource->prepare(tx_id) == Vote::kAbort) {
      all_commit = false;
      CMX_DEBUG("txn.2pc") << tx_id << " abort vote from "
                           << resource->resource_name();
      break;
    }
    ++prepared;
  }

  // Phase two.
  const Decision decision =
      all_commit ? Decision::kCommitted : Decision::kAborted;
  if (all_commit) {
    for (auto* resource : record.resources) resource->commit(tx_id);
  } else {
    // Roll back everything, including the resource that voted abort (a
    // well-behaved resource treats this as a no-op after its own abort).
    for (auto* resource : record.resources) resource->rollback(tx_id);
  }

  std::lock_guard<std::mutex> lk(mu_);
  decisions_[tx_id] = decision;
  if (decision == Decision::kCommitted) {
    ++stats_.committed;
  } else {
    ++stats_.aborted;
  }
  return decision;
}

util::Status TwoPhaseCoordinator::rollback(const std::string& tx_id) {
  TxRecord record;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = active_.find(tx_id);
    if (it == active_.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "unknown transaction " + tx_id);
    }
    record = std::move(it->second);
    active_.erase(it);
  }
  for (auto* resource : record.resources) resource->rollback(tx_id);
  std::lock_guard<std::mutex> lk(mu_);
  decisions_[tx_id] = Decision::kAborted;
  ++stats_.aborted;
  return util::ok_status();
}

std::optional<Decision> TwoPhaseCoordinator::decision(
    const std::string& tx_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = decisions_.find(tx_id);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

CoordinatorStats TwoPhaseCoordinator::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace cmx::txn
