// Coyote-style exchange (paper §4.1 related work, [2]): a
// timeout-constrained request/acknowledgment/cancellation protocol with a
// SINGLE server. The client sends a request with a response deadline; if
// the server's acknowledgment does not arrive in time the client sends a
// cancellation message. Conditional messaging generalizes this to many
// (required/optional) recipients and richer conditions; the benchmark in
// bench_baselines.cpp compares both on the single-server workload where
// Coyote is at home.
#pragma once

#include <string>

#include "mq/queue_manager.hpp"
#include "util/status.hpp"

namespace cmx::baseline {

inline constexpr const char* kCoyoteReqId = "COYOTE_REQ_ID";
inline constexpr const char* kCoyoteKind = "COYOTE_KIND";  // request|ack|cancel
inline constexpr const char* kCoyoteReplyQueue = "COYOTE_REPLY_Q";
inline constexpr const char* kCoyoteReplyQmgr = "COYOTE_REPLY_QMGR";

enum class CoyoteResult {
  kAcknowledged,  // server confirmed within the deadline
  kCancelled,     // deadline passed; cancellation was sent
};

class CoyoteClient {
 public:
  explicit CoyoteClient(mq::QueueManager& qm,
                        std::string reply_queue = "COYOTE.REPLY.Q");

  // Sends a request and blocks until the server's ack or the deadline.
  // On deadline, emits the cancellation message to the server queue and
  // reports kCancelled.
  util::Result<CoyoteResult> call(const mq::QueueAddress& server_queue,
                                  const std::string& body,
                                  util::TimeMs timeout_ms);

 private:
  mq::QueueManager& qm_;
  const std::string reply_queue_;
};

class CoyoteServer {
 public:
  explicit CoyoteServer(mq::QueueManager& qm);

  // Serves one message from `queue_name`: requests are acknowledged to the
  // client's reply queue; cancellations are surfaced to the caller so the
  // application can undo work. Returns the served message.
  util::Result<mq::Message> serve_one(const std::string& queue_name,
                                      util::TimeMs timeout_ms);

  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t cancels_seen() const { return cancels_seen_; }

 private:
  mq::QueueManager& qm_;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t cancels_seen_ = 0;
};

}  // namespace cmx::baseline
