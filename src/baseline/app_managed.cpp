#include "baseline/app_managed.hpp"

#include <algorithm>

#include "util/id.hpp"

namespace cmx::baseline {

AppManagedSender::AppManagedSender(mq::QueueManager& qm,
                                   std::string ack_queue)
    : qm_(qm), ack_queue_(std::move(ack_queue)) {
  qm_.ensure_queue(ack_queue_).expect_ok("ensure app ack queue");
}

util::Result<std::string> AppManagedSender::send_all_must_read(
    const std::string& body, const std::vector<mq::QueueAddress>& dests,
    util::TimeMs pick_up_within_ms) {
  if (dests.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "no destinations");
  }
  const std::string app_msg_id = util::generate_id("app");
  const util::TimeMs send_ts = qm_.clock().now_ms();
  {
    std::lock_guard<std::mutex> lk(mu_);
    Pending pending;
    pending.dests = dests;
    pending.send_ts = send_ts;
    pending.deadline = send_ts + pick_up_within_ms;
    pending_[app_msg_id] = std::move(pending);
  }
  for (const auto& dest : dests) {
    mq::Message msg(body);
    msg.set_property(kAppMsgId, app_msg_id);
    msg.set_property(kAppAckQueue, ack_queue_);
    msg.set_property(kAppSenderQmgr, qm_.name());
    msg.set_property(std::string("APP_DEST"), dest.to_string());
    if (auto s = qm_.put(dest, std::move(msg)); !s) return s;
  }
  return app_msg_id;
}

util::Result<AppManagedOutcome> AppManagedSender::await_outcome(
    const std::string& app_msg_id) {
  Pending pending;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = pending_.find(app_msg_id);
    if (it == pending_.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "unknown app message " + app_msg_id);
    }
    pending = it->second;
  }

  AppManagedOutcome outcome;
  // The application's hand-rolled evaluation loop: read acks off the ack
  // queue, match them by correlation property, check timestamps, stop at
  // the deadline. Acks for other in-flight messages must be re-sorted by
  // hand — exactly the bookkeeping §2.5's evaluation manager centralizes.
  while (true) {
    const util::TimeMs now = qm_.clock().now_ms();
    if (static_cast<int>(pending.acked_from.size()) ==
        static_cast<int>(pending.dests.size())) {
      outcome.success = true;
      break;
    }
    if (now > pending.deadline) {
      outcome.reason = "deadline passed with " +
                       std::to_string(pending.acked_from.size()) + "/" +
                       std::to_string(pending.dests.size()) + " acks";
      break;
    }
    auto got = qm_.get(ack_queue_, pending.deadline - now);
    if (!got) {
      if (got.code() == util::ErrorCode::kTimeout) continue;
      return got.status();
    }
    const auto& ack = got.value();
    if (ack.get_string(kAppMsgId) != app_msg_id) {
      // Ack for some other message: this naive implementation drops it on
      // the floor (a real application would need yet more bookkeeping —
      // with the middleware, DS.ACK.Q demultiplexing is built in).
      continue;
    }
    const auto read_ts = ack.get_int(kAppReadTs).value_or(0);
    const auto from = ack.get_string("APP_DEST").value_or("");
    if (read_ts <= pending.deadline &&
        std::find(pending.acked_from.begin(), pending.acked_from.end(),
                  from) == pending.acked_from.end()) {
      pending.acked_from.push_back(from);
    }
  }
  outcome.acks_received = static_cast<int>(pending.acked_from.size());

  if (!outcome.success) {
    // Hand-rolled compensation: one message per destination.
    for (const auto& dest : pending.dests) {
      mq::Message comp;
      comp.set_property(kAppMsgId, app_msg_id);
      comp.set_property(kAppCompensation, true);
      qm_.put(dest, std::move(comp));
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.erase(app_msg_id);
  }
  return outcome;
}

AppManagedReceiver::AppManagedReceiver(mq::QueueManager& qm) : qm_(qm) {}

util::Result<mq::Message> AppManagedReceiver::read_and_ack(
    const std::string& queue_name, util::TimeMs timeout_ms) {
  auto got = qm_.get(queue_name, timeout_ms);
  if (!got) return got;
  const auto& msg = got.value();
  if (msg.get_bool(kAppCompensation).value_or(false)) {
    return got;  // compensation: nothing to ack
  }
  const auto app_msg_id = msg.get_string(kAppMsgId);
  const auto ack_queue = msg.get_string(kAppAckQueue);
  const auto sender_qmgr = msg.get_string(kAppSenderQmgr);
  if (app_msg_id && ack_queue && sender_qmgr) {
    mq::Message ack;
    ack.set_property(kAppMsgId, *app_msg_id);
    ack.set_property(kAppReadTs, qm_.clock().now_ms());
    ack.set_property(std::string("APP_DEST"),
                     msg.get_string("APP_DEST").value_or(""));
    qm_.put(mq::QueueAddress(*sender_qmgr, *ack_queue), std::move(ack));
  }
  return got;
}

}  // namespace cmx::baseline
