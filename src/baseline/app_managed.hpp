// Application-managed conditions: the status quo the paper argues against
// (§1: "applications themselves are forced to implement the management of
// such conditions on messages as part of the application").
//
// This baseline implements the same observable protocol as the conditional
// messaging middleware — fan-out, receiver acknowledgments, deadline
// evaluation, compensation on failure — but entirely in "application"
// code against the raw mq:: API: the sender hand-rolls its ack queue,
// correlation bookkeeping, deadline timers, and compensation sends, and
// every receiver must remember to acknowledge explicitly with the exact
// property layout this particular sender expects. Benchmarks use it to
// show that the middleware's infrastructure messages are the ones the
// application would otherwise create itself (paper §4), while the tests
// document how much per-application machinery it takes.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mq/queue_manager.hpp"
#include "util/status.hpp"

namespace cmx::baseline {

// Property names of this application's private ack protocol. Another
// application team would invent different ones — that incompatibility is
// the point of the baseline.
inline constexpr const char* kAppMsgId = "APP_MSG_ID";
inline constexpr const char* kAppAckQueue = "APP_ACK_QUEUE";
inline constexpr const char* kAppSenderQmgr = "APP_SENDER_QMGR";
inline constexpr const char* kAppReadTs = "APP_READ_TS";
inline constexpr const char* kAppCompensation = "APP_COMPENSATION";

struct AppManagedOutcome {
  bool success = false;
  int acks_received = 0;
  std::string reason;
};

class AppManagedSender {
 public:
  explicit AppManagedSender(mq::QueueManager& qm,
                            std::string ack_queue = "APP.ACK.Q");

  // Sends `body` to every destination; the message succeeds iff every
  // destination acknowledges within `pick_up_within_ms` of the send.
  util::Result<std::string> send_all_must_read(
      const std::string& body, const std::vector<mq::QueueAddress>& dests,
      util::TimeMs pick_up_within_ms);

  // Blocks until the outcome is decided (all acks in, or deadline passed).
  // On failure, sends the application's compensation message to every
  // destination — by hand, like everything else here.
  util::Result<AppManagedOutcome> await_outcome(const std::string& app_msg_id);

 private:
  struct Pending {
    std::vector<mq::QueueAddress> dests;
    util::TimeMs send_ts = 0;
    util::TimeMs deadline = 0;
    std::vector<std::string> acked_from;  // dest addresses seen
  };

  mq::QueueManager& qm_;
  const std::string ack_queue_;
  std::mutex mu_;
  std::map<std::string, Pending> pending_;
};

class AppManagedReceiver {
 public:
  explicit AppManagedReceiver(mq::QueueManager& qm);

  // Reads a message and — as this sender's protocol demands — immediately
  // sends the acknowledgment back. Forgetting this (or using a different
  // property set) silently breaks the sender's conditions; the middleware
  // version makes that mistake impossible.
  util::Result<mq::Message> read_and_ack(const std::string& queue_name,
                                         util::TimeMs timeout_ms);

 private:
  mq::QueueManager& qm_;
};

}  // namespace cmx::baseline
