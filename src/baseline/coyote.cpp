#include "baseline/coyote.hpp"

#include "mq/selector.hpp"
#include "util/id.hpp"

namespace cmx::baseline {

CoyoteClient::CoyoteClient(mq::QueueManager& qm, std::string reply_queue)
    : qm_(qm), reply_queue_(std::move(reply_queue)) {
  qm_.ensure_queue(reply_queue_).expect_ok("ensure coyote reply queue");
}

util::Result<CoyoteResult> CoyoteClient::call(
    const mq::QueueAddress& server_queue, const std::string& body,
    util::TimeMs timeout_ms) {
  const std::string req_id = util::generate_id("coyote");
  mq::Message request(body);
  request.set_property(kCoyoteReqId, req_id);
  request.set_property(kCoyoteKind, std::string("request"));
  request.set_property(kCoyoteReplyQueue, reply_queue_);
  request.set_property(kCoyoteReplyQmgr, qm_.name());
  if (auto s = qm_.put(server_queue, std::move(request)); !s) return s;

  auto selector =
      mq::Selector::parse(std::string(kCoyoteReqId) + " = '" + req_id + "'");
  if (!selector) return selector.status();
  auto ack = qm_.get(reply_queue_, timeout_ms, &selector.value());
  if (ack) return CoyoteResult::kAcknowledged;
  if (ack.code() != util::ErrorCode::kTimeout) return ack.status();

  // Deadline passed: emit the cancellation (the Coyote "compensation").
  mq::Message cancel;
  cancel.set_property(kCoyoteReqId, req_id);
  cancel.set_property(kCoyoteKind, std::string("cancel"));
  if (auto s = qm_.put(server_queue, std::move(cancel)); !s) return s;
  return CoyoteResult::kCancelled;
}

CoyoteServer::CoyoteServer(mq::QueueManager& qm) : qm_(qm) {}

util::Result<mq::Message> CoyoteServer::serve_one(
    const std::string& queue_name, util::TimeMs timeout_ms) {
  auto got = qm_.get(queue_name, timeout_ms);
  if (!got) return got;
  const auto& msg = got.value();
  const auto kind = msg.get_string(kCoyoteKind).value_or("");
  if (kind == "cancel") {
    ++cancels_seen_;
    return got;
  }
  const auto req_id = msg.get_string(kCoyoteReqId);
  const auto reply_queue = msg.get_string(kCoyoteReplyQueue);
  const auto reply_qmgr = msg.get_string(kCoyoteReplyQmgr);
  if (req_id && reply_queue && reply_qmgr) {
    mq::Message ack;
    ack.set_property(kCoyoteReqId, *req_id);
    ack.set_property(kCoyoteKind, std::string("ack"));
    if (auto s = qm_.put(mq::QueueAddress(*reply_qmgr, *reply_queue),
                         std::move(ack));
        s) {
      ++acks_sent_;
    }
  }
  return got;
}

}  // namespace cmx::baseline
