#include "util/clock.hpp"

#include <chrono>
#include <thread>

namespace cmx::util {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

SystemClock::SystemClock() : epoch_(steady_clock::now()) {}

TimeMs SystemClock::now_ms() const {
  return std::chrono::duration_cast<milliseconds>(steady_clock::now() - epoch_)
      .count();
}

bool SystemClock::wait_until(std::unique_lock<std::mutex>& lock,
                             std::condition_variable& cv, TimeMs deadline_ms,
                             const std::function<bool()>& pred) {
  if (deadline_ms == kNoDeadline) {
    cv.wait(lock, pred);
    return true;
  }
  const auto deadline = epoch_ + milliseconds(deadline_ms);
  return cv.wait_until(lock, deadline, pred);
}

void SystemClock::sleep_ms(TimeMs ms) {
  if (ms > 0) {
    std::this_thread::sleep_for(milliseconds(ms));
  }
}

SimClock::SimClock(TimeMs start_ms) : now_(start_ms) {}

SimClock::~SimClock() = default;

TimeMs SimClock::now_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return now_;
}

bool SimClock::wait_until(std::unique_lock<std::mutex>& lock,
                          std::condition_variable& cv, TimeMs deadline_ms,
                          const std::function<bool()>& pred) {
  // Register the caller's cv so advance_ms() can wake it. The caller holds
  // its own lock; we briefly take ours for bookkeeping. advance_ms() never
  // takes a caller lock, so there is no ordering cycle.
  {
    std::lock_guard<std::mutex> lk(mu_);
    waiters_.insert(&cv);
    ++waiter_count_;
    waiter_cv_.notify_all();
  }
  const auto deadline_reached = [&] {
    std::lock_guard<std::mutex> lk(mu_);
    return now_ >= deadline_ms;
  };
  // advance_ms() notifies registered cvs, but cannot hold the caller's
  // mutex, so a notification can race with this thread's decision to block.
  // The bounded wait_for below is the backstop that makes a lost wakeup a
  // short real-time delay instead of a hang.
  //
  // pred may have side effects (e.g. a destructive queue match), so it is
  // evaluated exactly once per iteration and its last value is returned.
  bool result = false;
  while (!(result = pred()) && !deadline_reached()) {
    cv.wait_for(lock, std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    waiters_.erase(waiters_.find(&cv));
    --waiter_count_;
    waiter_cv_.notify_all();
  }
  return result;
}

void SimClock::sleep_ms(TimeMs ms) {
  std::mutex local_mu;
  std::condition_variable local_cv;
  std::unique_lock<std::mutex> lk(local_mu);
  const TimeMs wake_at = now_ms() + ms;
  wait_until(lk, local_cv, wake_at, [] { return false; });
}

void SimClock::advance_ms(TimeMs delta_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  now_ += delta_ms;
  for (auto* cv : waiters_) {
    cv->notify_all();
  }
}

void SimClock::set_ms(TimeMs now_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  now_ = now_ms;
  for (auto* cv : waiters_) {
    cv->notify_all();
  }
}

int SimClock::waiter_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return waiter_count_;
}

bool SimClock::await_waiters(int n, TimeMs real_timeout_ms) const {
  std::unique_lock<std::mutex> lk(mu_);
  return waiter_cv_.wait_for(lk, std::chrono::milliseconds(real_timeout_ms),
                             [&] { return waiter_count_ >= n; });
}

}  // namespace cmx::util
