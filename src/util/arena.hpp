// Freelist arenas for the small-message fast path (DESIGN.md §9).
//
// Two building blocks sit behind one process-wide toggle:
//
//  * PoolAllocator<T> — a C++17 allocator whose single-element allocations
//    come from a per-type freelist of fixed-size blocks. It backs node
//    containers on hot paths (queue entry maps, shared_ptr control blocks)
//    so a put_all/get_batch round recycles its nodes instead of hitting
//    operator new per message. Every block carries a one-word origin tag,
//    so allocate/deallocate stay paired even when the toggle flips between
//    them.
//  * ObjectPool<T> — recycles fully *constructed* objects. Used for
//    Message encode frames: a recycled frame keeps its std::string
//    capacity, so re-encoding into it is allocation-free. The caller owns
//    resetting object state on reuse.
//
// Both are layered on FreeList<Tag>: an unsynchronized per-thread cache in
// front of a mutex-protected central list, moving kTransferBatch pointers
// per lock acquisition. Thread caches flush to the central list on thread
// exit; the central lists themselves are leaky singletons (reachable at
// process exit, so LSan stays quiet and static-destruction order cannot
// bite the late thread-exit flush).
//
// A/B switch: set_arena_enabled(false) restores plain heap behaviour
// (fresh allocation per acquire, free on release) — the deep-baseline arm
// bench_msg_path measures the fast path against, mirroring
// mq::set_zero_copy_enabled. Flip it only from quiescent harness code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

namespace cmx::util {

// Process-wide A/B flag (default: arenas on). Read with relaxed ordering
// on every acquire/release.
bool arena_enabled();
void set_arena_enabled(bool on);

struct ArenaStats {
  std::uint64_t hits = 0;      // acquisitions served from a freelist
  std::uint64_t misses = 0;    // acquisitions that had to allocate
  std::uint64_t recycled = 0;  // releases shelved for reuse
};
// Aggregate across every pool in the process (relaxed counters).
ArenaStats arena_stats();
void reset_arena_stats();

namespace arena_detail {

void note_hit();
void note_miss();
void note_recycled();

struct CentralList {
  std::mutex mu;
  std::vector<void*> items;
};

// Pointer freelist, one instantiation per Tag type. All members are
// static: the central list is shared, the cache is thread-local.
template <typename Tag>
class FreeList {
 public:
  static constexpr std::size_t kTransferBatch = 32;
  static constexpr std::size_t kCacheCap = 2 * kTransferBatch;

  // Pops a recycled pointer, refilling the thread cache from the central
  // list when empty. nullptr when both are dry.
  static void* try_get() {
    Cache& c = cache();
    if (c.items.empty()) {
      CentralList& g = central();
      std::lock_guard<std::mutex> lk(g.mu);
      const std::size_t n = std::min(kTransferBatch, g.items.size());
      if (n == 0) return nullptr;
      c.items.insert(c.items.end(), g.items.end() - n, g.items.end());
      g.items.resize(g.items.size() - n);
    }
    void* p = c.items.back();
    c.items.pop_back();
    return p;
  }

  // Shelves a pointer, spilling half the thread cache to the central list
  // when it overflows.
  static void put(void* p) {
    Cache& c = cache();
    c.items.push_back(p);
    if (c.items.size() > kCacheCap) {
      CentralList& g = central();
      std::lock_guard<std::mutex> lk(g.mu);
      g.items.insert(g.items.end(), c.items.end() - kTransferBatch,
                     c.items.end());
      c.items.resize(c.items.size() - kTransferBatch);
    }
  }

 private:
  struct Cache {
    std::vector<void*> items;
    ~Cache() {
      if (items.empty()) return;
      CentralList& g = central();
      std::lock_guard<std::mutex> lk(g.mu);
      g.items.insert(g.items.end(), items.begin(), items.end());
    }
  };

  static CentralList& central() {
    // Leaky: outlives every thread-exit flush, keeps shelved blocks
    // reachable at process exit.
    static CentralList* g = new CentralList;
    return *g;
  }
  static Cache& cache() {
    static thread_local Cache c;
    return c;
  }
};

}  // namespace arena_detail

// Allocator over per-type freelists of tagged fixed-size blocks. Only
// n == 1 allocations are pooled (the node-container case); bulk
// allocations pass through to operator new. Stateless: all instances
// compare equal.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  // Origin tag ahead of the block, sized to preserve T's alignment.
  static constexpr std::size_t kHeader =
      alignof(T) > sizeof(std::uintptr_t) ? alignof(T)
                                          : sizeof(std::uintptr_t);
  static constexpr std::uintptr_t kPoolable = 1;

  T* allocate(std::size_t n) {
    void* raw = nullptr;
    std::uintptr_t tag = 0;
    if (n == 1) {
      tag = kPoolable;
      if (arena_enabled()) {
        raw = arena_detail::FreeList<PoolAllocator<T>>::try_get();
        if (raw != nullptr) {
          arena_detail::note_hit();
        } else {
          arena_detail::note_miss();
        }
      }
    }
    if (raw == nullptr) {
      raw = ::operator new(kHeader + n * sizeof(T));
    }
    *static_cast<std::uintptr_t*>(raw) = tag;
    return reinterpret_cast<T*>(static_cast<char*>(raw) + kHeader);
  }

  void deallocate(T* p, std::size_t /*n*/) noexcept {
    void* raw = reinterpret_cast<char*>(p) - kHeader;
    if (*static_cast<std::uintptr_t*>(raw) == kPoolable && arena_enabled()) {
      arena_detail::note_recycled();
      arena_detail::FreeList<PoolAllocator<T>>::put(raw);
      return;
    }
    ::operator delete(raw);
  }

  template <typename U>
  friend bool operator==(const PoolAllocator&, const PoolAllocator<U>&) {
    return true;
  }
};

// Recycles fully constructed objects. get() hands back a previously
// released instance (state is whatever the releaser left; callers reset
// what they need) or default-constructs one; put() shelves it for reuse.
// With the arena disabled both degrade to plain new/delete.
template <typename T>
class ObjectPool {
 public:
  static T* get(bool* recycled = nullptr) {
    if (arena_enabled()) {
      if (void* raw = arena_detail::FreeList<ObjectPool<T>>::try_get()) {
        arena_detail::note_hit();
        if (recycled != nullptr) *recycled = true;
        return static_cast<T*>(raw);
      }
      arena_detail::note_miss();
    }
    if (recycled != nullptr) *recycled = false;
    return new T();
  }

  static void put(T* obj) {
    if (arena_enabled()) {
      arena_detail::note_recycled();
      arena_detail::FreeList<ObjectPool<T>>::put(obj);
      return;
    }
    delete obj;
  }
};

}  // namespace cmx::util
