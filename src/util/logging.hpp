// Leveled, thread-safe diagnostic logging to stderr. Off by default above
// WARN so tests and benchmarks stay quiet; set_level() or the CMX_LOG env
// var ("debug", "info", "warn", "error", "off") changes it globally.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace cmx::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// Parses a CMX_LOG-style level string ("debug", "info", "warn", "error",
// "off"); nullopt for anything else. Case-sensitive, like the env var.
std::optional<LogLevel> parse_log_level(std::string_view text);

// Emits one formatted line: "LEVEL [component] message". Thread-safe.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cmx::util

#define CMX_LOG(level, component)                                      \
  if (::cmx::util::log_level() <= (level))                             \
  ::cmx::util::detail::LogStream((level), (component))

#define CMX_DEBUG(component) CMX_LOG(::cmx::util::LogLevel::kDebug, component)
#define CMX_INFO(component) CMX_LOG(::cmx::util::LogLevel::kInfo, component)
#define CMX_WARN(component) CMX_LOG(::cmx::util::LogLevel::kWarn, component)
#define CMX_ERROR(component) CMX_LOG(::cmx::util::LogLevel::kError, component)
