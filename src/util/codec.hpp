// Minimal binary encoding used for the persistent message store, for
// channel transport between queue managers, and for condition / ack / log
// record serialization. Fixed-width little-endian integers plus
// length-prefixed strings; a leading field-type tag is NOT used — each
// record type owns its layout and versions it with a leading u32.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace cmx::util {

class BinaryWriter {
 public:
  BinaryWriter() : buf_(&owned_) {}
  // Appends into `external` in place (no take() round-trip), so encoders
  // can serialize straight into a recycled buffer and keep its capacity.
  explicit BinaryWriter(std::string& external) : buf_(&external) {}

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_bool(bool v);
  void put_string(std::string_view v);

  // Pre-sizes the buffer; encoders that can estimate their output call
  // this once so the append loop never reallocates.
  void reserve(std::size_t n) { buf_->reserve(buf_->size() + n); }

  const std::string& data() const& { return *buf_; }
  std::string take() { return std::move(*buf_); }
  std::size_t size() const { return buf_->size(); }

 private:
  std::string* buf_;
  std::string owned_;
};

// Reader over a borrowed buffer. All getters return kIoError status-wrapped
// results on truncated input rather than throwing, because truncation is an
// expected outcome when recovering a torn log tail.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<std::uint8_t> get_u8();
  Result<std::uint32_t> get_u32();
  Result<std::uint64_t> get_u64();
  Result<std::int64_t> get_i64();
  Result<double> get_f64();
  Result<bool> get_bool();
  Result<std::string> get_string();
  // Zero-copy sibling of get_string: a view into the reader's buffer,
  // valid only while the underlying bytes outlive the caller's use.
  Result<std::string_view> get_view();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  // Current read offset from the start of the buffer. Lets decoders that
  // also retain the raw frame (Message::decode) record field offsets for
  // later in-place patching.
  std::size_t position() const { return pos_; }

 private:
  Status need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace cmx::util
