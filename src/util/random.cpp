#include "util/random.hpp"

#include <algorithm>

namespace cmx::util {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / std::max(mean, 1e-9));
  return dist(engine_);
}

}  // namespace cmx::util
