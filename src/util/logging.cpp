#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace cmx::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("CMX_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (auto level = parse_log_level(env)) return *level;
  // Runs once (static init of g_level), so this warns exactly once.
  std::fprintf(stderr,
               "WARN  [util.log] unrecognized CMX_LOG value '%s' "
               "(expected debug|info|warn|error|off); defaulting to warn\n",
               env);
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_io_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (log_level() > level) return;
  std::lock_guard<std::mutex> lk(g_io_mu);
  std::fprintf(stderr, "%s [%s] %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace cmx::util
