#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace cmx::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("CMX_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_io_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (log_level() > level) return;
  std::lock_guard<std::mutex> lk(g_io_mu);
  std::fprintf(stderr, "%s [%s] %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace cmx::util
