// Seedable pseudo-random source for workload generators and fault
// injection. Deterministic given a seed, so every benchmark scenario is
// reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace cmx::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // True with probability p (clamped to [0,1]).
  bool chance(double p);

  // Exponentially distributed inter-arrival gap with the given mean.
  double exponential(double mean);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cmx::util
