// Process-unique identifier generation for messages, conditional messages,
// transactions, and Dependency-Spheres.
#pragma once

#include <cstdint>
#include <string>

namespace cmx::util {

// Returns an id of the form "<prefix>-<random64hex>-<seq>", unique within
// the process and unlikely to collide across processes (random component is
// seeded from the system entropy source once per process).
std::string generate_id(const std::string& prefix);

// Monotonic per-process sequence number (starts at 1).
std::uint64_t next_sequence();

}  // namespace cmx::util
