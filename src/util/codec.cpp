#include "util/codec.hpp"

#include <cstring>

namespace cmx::util {

namespace {
template <typename T>
void append_raw(std::string& buf, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf.append(bytes, sizeof(T));
}
}  // namespace

void BinaryWriter::put_u8(std::uint8_t v) { append_raw(*buf_, v); }
void BinaryWriter::put_u32(std::uint32_t v) { append_raw(*buf_, v); }
void BinaryWriter::put_u64(std::uint64_t v) { append_raw(*buf_, v); }
void BinaryWriter::put_i64(std::int64_t v) { append_raw(*buf_, v); }
void BinaryWriter::put_f64(double v) { append_raw(*buf_, v); }
void BinaryWriter::put_bool(bool v) { put_u8(v ? 1 : 0); }

void BinaryWriter::put_string(std::string_view v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  buf_->append(v.data(), v.size());
}

Status BinaryReader::need(std::size_t n) {
  if (data_.size() - pos_ < n) {
    return make_error(ErrorCode::kIoError, "truncated record");
  }
  return ok_status();
}

namespace {
template <typename T>
Result<T> read_raw(std::string_view data, std::size_t& pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}
}  // namespace

Result<std::uint8_t> BinaryReader::get_u8() {
  if (auto s = need(1); !s) return s;
  return read_raw<std::uint8_t>(data_, pos_);
}
Result<std::uint32_t> BinaryReader::get_u32() {
  if (auto s = need(4); !s) return s;
  return read_raw<std::uint32_t>(data_, pos_);
}
Result<std::uint64_t> BinaryReader::get_u64() {
  if (auto s = need(8); !s) return s;
  return read_raw<std::uint64_t>(data_, pos_);
}
Result<std::int64_t> BinaryReader::get_i64() {
  if (auto s = need(8); !s) return s;
  return read_raw<std::int64_t>(data_, pos_);
}
Result<double> BinaryReader::get_f64() {
  if (auto s = need(8); !s) return s;
  return read_raw<double>(data_, pos_);
}
Result<bool> BinaryReader::get_bool() {
  auto v = get_u8();
  if (!v) return v.status();
  return v.value() != 0;
}

Result<std::string> BinaryReader::get_string() {
  auto len = get_u32();
  if (!len) return len.status();
  if (auto s = need(len.value()); !s) return s;
  std::string out(data_.substr(pos_, len.value()));
  pos_ += len.value();
  return out;
}

Result<std::string_view> BinaryReader::get_view() {
  auto len = get_u32();
  if (!len) return len.status();
  if (auto s = need(len.value()); !s) return s;
  std::string_view out = data_.substr(pos_, len.value());
  pos_ += len.value();
  return out;
}

}  // namespace cmx::util
