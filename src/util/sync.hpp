// Small concurrency helpers shared across modules.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace cmx::util {

// Unbounded multi-producer multi-consumer queue with shutdown support.
// Used for in-process handoff (e.g. between a channel mover and a queue
// manager); the durable message queues in src/mq are a separate, richer
// structure.
template <typename T>
class MpmcQueue {
 public:
  void push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;  // drop on closed queue; receiver is gone
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or the queue is closed.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cmx::util
