// Time source abstraction. Every deadline in the system (MsgPickUpTime,
// MsgProcessingTime, evaluation timeouts, channel delays) is computed
// through a Clock so tests can run on a deterministic virtual clock.
//
// The tricky part of a virtual clock is interaction with blocking waits:
// components wait on their own condition variables for "a message arrived OR
// the deadline passed". Clock::wait_until() therefore takes the caller's
// lock/cv pair; SimClock registers the cv so that advance() can wake timed
// waiters, while SystemClock simply maps the deadline to steady_clock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>

namespace cmx::util {

// Milliseconds since an arbitrary epoch (process start for SystemClock,
// zero for SimClock).
using TimeMs = std::int64_t;

constexpr TimeMs kNoDeadline = INT64_MAX;

class Clock {
 public:
  virtual ~Clock() = default;

  virtual TimeMs now_ms() const = 0;

  // Blocks until pred() is true (returns true) or now_ms() >= deadline_ms
  // (returns pred() at that moment). The caller must hold `lock`, and pred
  // is evaluated under it. `cv` is the caller's condition variable; anyone
  // changing pred's inputs must notify it.
  virtual bool wait_until(std::unique_lock<std::mutex>& lock,
                          std::condition_variable& cv, TimeMs deadline_ms,
                          const std::function<bool()>& pred) = 0;

  // Blocks the calling thread for `ms` milliseconds of this clock's time.
  virtual void sleep_ms(TimeMs ms) = 0;
};

// Real time, anchored at process start.
class SystemClock final : public Clock {
 public:
  SystemClock();
  TimeMs now_ms() const override;
  bool wait_until(std::unique_lock<std::mutex>& lock,
                  std::condition_variable& cv, TimeMs deadline_ms,
                  const std::function<bool()>& pred) override;
  void sleep_ms(TimeMs ms) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

// Deterministic virtual time. now_ms() only moves when advance()/set() is
// called. Threads blocked in wait_until() are woken on every advance so
// their deadline re-check happens at each virtual time step.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeMs start_ms = 0);
  ~SimClock() override;

  TimeMs now_ms() const override;
  bool wait_until(std::unique_lock<std::mutex>& lock,
                  std::condition_variable& cv, TimeMs deadline_ms,
                  const std::function<bool()>& pred) override;
  void sleep_ms(TimeMs ms) override;

  // Moves virtual time forward and wakes all timed waiters.
  void advance_ms(TimeMs delta_ms);
  void set_ms(TimeMs now_ms);

  // Number of threads currently blocked in wait_until/sleep_ms. Tests use
  // this to advance time only once the system has quiesced.
  int waiter_count() const;

  // Blocks (in real time) until at least `n` threads are waiting on this
  // clock. Returns false if `real_timeout_ms` elapses first.
  bool await_waiters(int n, TimeMs real_timeout_ms = 5000) const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable waiter_cv_;  // signaled when waiter set changes
  TimeMs now_;
  std::multiset<std::condition_variable*> waiters_;
  int waiter_count_ = 0;
};

}  // namespace cmx::util
