#include "util/id.hpp"

#include <atomic>
#include <cstdio>
#include <random>

namespace cmx::util {

namespace {

std::uint64_t process_random() {
  static const std::uint64_t value = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  return value;
}

std::atomic<std::uint64_t> g_sequence{0};

}  // namespace

std::uint64_t next_sequence() {
  return g_sequence.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string generate_id(const std::string& prefix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "-%016llx-%llu",
                static_cast<unsigned long long>(process_random()),
                static_cast<unsigned long long>(next_sequence()));
  return prefix + buf;
}

}  // namespace cmx::util
