#include "util/id.hpp"

#include <array>
#include <atomic>
#include <random>

namespace cmx::util {

namespace {

std::uint64_t process_random() {
  static const std::uint64_t value = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  return value;
}

std::atomic<std::uint64_t> g_sequence{0};

}  // namespace

std::uint64_t next_sequence() {
  return g_sequence.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string generate_id(const std::string& prefix) {
  // "<prefix>-tttttt-s..": a 31-bit per-process token plus the process
  // sequence, both base36. The sequence makes ids unique within a process,
  // the token separates processes. Kept deliberately short: "msg-"-prefixed
  // ids fit std::string's 15-char small-string buffer, and ids are copied
  // into a log record on every persistent hop.
  static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  static const std::array<char, 8> token = [] {
    std::array<char, 8> t{};
    t[0] = '-';
    std::uint64_t v = process_random();
    for (int i = 1; i <= 6; ++i) {
      t[i] = kDigits[v % 36];
      v /= 36;
    }
    t[7] = '-';
    return t;
  }();
  char digits[16];
  int n = 0;
  std::uint64_t seq = next_sequence();
  do {
    digits[n++] = kDigits[seq % 36];
    seq /= 36;
  } while (seq != 0);
  std::string id;
  id.reserve(prefix.size() + token.size() + static_cast<std::size_t>(n));
  id.append(prefix);
  id.append(token.data(), token.size());
  for (int i = n - 1; i >= 0; --i) id.push_back(digits[i]);
  return id;
}

}  // namespace cmx::util
