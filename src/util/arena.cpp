#include "util/arena.hpp"

#include <atomic>

namespace cmx::util {

namespace {
std::atomic<bool> g_arena{true};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_recycled{0};
}  // namespace

bool arena_enabled() { return g_arena.load(std::memory_order_relaxed); }

void set_arena_enabled(bool on) {
  g_arena.store(on, std::memory_order_relaxed);
}

ArenaStats arena_stats() {
  ArenaStats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.recycled = g_recycled.load(std::memory_order_relaxed);
  return s;
}

void reset_arena_stats() {
  g_hits.store(0, std::memory_order_relaxed);
  g_misses.store(0, std::memory_order_relaxed);
  g_recycled.store(0, std::memory_order_relaxed);
}

namespace arena_detail {

void note_hit() { g_hits.fetch_add(1, std::memory_order_relaxed); }
void note_miss() { g_misses.fetch_add(1, std::memory_order_relaxed); }
void note_recycled() { g_recycled.fetch_add(1, std::memory_order_relaxed); }

}  // namespace arena_detail

}  // namespace cmx::util
