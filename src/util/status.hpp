// Status / Result: lightweight expected-style error propagation for outcomes
// that are part of normal operation (timeouts, missing queues, conflicts).
// Programmer errors (precondition violations) throw std::logic_error instead.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace cmx::util {

enum class ErrorCode {
  kOk = 0,
  kTimeout,          // a timed wait elapsed without the awaited event
  kNotFound,         // named entity (queue, key, id) does not exist
  kAlreadyExists,    // attempt to create an entity that already exists
  kInvalidArgument,  // caller-supplied data failed validation
  kFailedPrecondition,  // operation not legal in the current state
  kConflict,            // transactional conflict (lock or version)
  kAborted,             // operation was rolled back / voted abort
  kClosed,              // target component has been shut down
  kExpired,             // message or deadline already expired
  kIoError,             // persistent store failure
  kUnavailable,         // transient failure (injected fault, channel down)
};

const char* error_code_name(ErrorCode code);

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" form.
  std::string to_string() const;

  // Throws std::runtime_error if not ok. For call sites where failure is
  // a bug rather than an expected outcome.
  void expect_ok(const char* context = "") const;

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status ok_status() { return Status::ok(); }

inline Status make_error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

// A value or an error. Modeled after std::expected (not available on the
// target toolchain's libstdc++ for C++20).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }
  ErrorCode code() const {
    return is_ok() ? ErrorCode::kOk : status_.code();
  }

  T& value() & {
    require_value();
    return *value_;
  }
  const T& value() const& {
    require_value();
    return *value_;
  }
  T&& value() && {
    require_value();
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  void require_value() const {
    if (!value_.has_value()) {
      throw std::runtime_error("Result::value() on error: " +
                               status_.to_string());
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace cmx::util
