#include "util/status.hpp"

namespace cmx::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kConflict:
      return "CONFLICT";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kClosed:
      return "CLOSED";
    case ErrorCode::kExpired:
      return "EXPIRED";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::expect_ok(const char* context) const {
  if (!is_ok()) {
    std::string what = to_string();
    if (context != nullptr && context[0] != '\0') {
      what = std::string(context) + ": " + what;
    }
    throw std::runtime_error(what);
  }
}

}  // namespace cmx::util
