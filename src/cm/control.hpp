// Control information the conditional messaging system attaches to the
// standard messages it generates (paper §2.3: "The generated standard
// messages ... are attributed by the conditional messaging system with
// control information required for purposes of monitoring and evaluating
// the conditional message"), plus the record types flowing through the
// system queues:
//
//   DS.SLOG.Q    sender log      (SenderLogEntry, persistent)
//   DS.ACK.Q     acknowledgments (AckRecord)
//   DS.COMP.Q    compensations   (staged compensation messages)
//   DS.OUTCOME.Q outcomes        (OutcomeRecord)
//   DS.RLOG.Q    receiver log    (ReceiverLogEntry, persistent)
#pragma once

#include <string>
#include <vector>

#include "cm/condition.hpp"
#include "mq/message.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::cm {

// ---- system queue names (paper §2.7, Figure 9) --------------------------
inline constexpr const char* kSenderLogQueue = "DS.SLOG.Q";
inline constexpr const char* kAckQueue = "DS.ACK.Q";
inline constexpr const char* kCompensationQueue = "DS.COMP.Q";
inline constexpr const char* kOutcomeQueue = "DS.OUTCOME.Q";
inline constexpr const char* kReceiverLogQueue = "DS.RLOG.Q";
// Pending-outcome-action markers: guarantee that compensation / success
// actions survive a sender crash between decision and completion (the
// queuing patterns of the paper's reference [16]). A marker is written
// before the actions run and removed after; recovery re-drives actions
// for any marker still present (at-least-once).
inline constexpr const char* kPendingActionQueue = "DS.PEND.Q";

// ---- control property keys ------------------------------------------------
namespace prop {
inline constexpr const char* kKind = "CMX_KIND";
inline constexpr const char* kCmId = "CMX_CM_ID";
inline constexpr const char* kProcessingRequired = "CMX_PROCESSING_REQUIRED";
inline constexpr const char* kSenderQmgr = "CMX_SENDER_QMGR";
inline constexpr const char* kAckQueue = "CMX_ACK_QUEUE";
inline constexpr const char* kRecipient = "CMX_RECIPIENT";
inline constexpr const char* kSendTs = "CMX_SEND_TS";
inline constexpr const char* kAckType = "CMX_ACK_TYPE";
inline constexpr const char* kQueue = "CMX_QUEUE";
inline constexpr const char* kReadTs = "CMX_READ_TS";
inline constexpr const char* kCommitTs = "CMX_COMMIT_TS";
inline constexpr const char* kOriginalMsgId = "CMX_ORIGINAL_MSG_ID";
inline constexpr const char* kCompType = "CMX_COMP_TYPE";
inline constexpr const char* kDest = "CMX_DEST";
inline constexpr const char* kOutcome = "CMX_OUTCOME";
inline constexpr const char* kReason = "CMX_REASON";
inline constexpr const char* kDecidedTs = "CMX_DECIDED_TS";
}  // namespace prop

// ---- message kinds ---------------------------------------------------------
enum class MessageKind {
  kData,          // application payload of a conditional message
  kAck,           // internal acknowledgment (read or processing)
  kCompensation,  // compensation released after a failure outcome
  kSuccess,       // success notification released after a success outcome
  kOutcome,       // outcome notification on DS.OUTCOME.Q
};

const char* message_kind_name(MessageKind kind);
// Kind of a received standard message; kData for plain messages without a
// CMX_KIND property (the paper's "unconditional" messages never carry it,
// and such messages are handed to the application unchanged).
MessageKind classify(const mq::Message& msg);
bool is_conditional(const mq::Message& msg);

// ---- acknowledgments (§2.4) ---------------------------------------------
enum class AckType {
  kRead,        // successful non-transactional read
  kProcessing,  // successful transactional read == successful processing
};

struct AckRecord {
  std::string cm_id;
  AckType type = AckType::kRead;
  mq::QueueAddress queue;    // destination queue the message was read from
  std::string recipient_id;  // reading recipient ("" = anonymous)
  util::TimeMs read_ts = 0;    // sender-clock-relative; see note below
  util::TimeMs commit_ts = 0;  // only meaningful for kProcessing

  // NOTE on clocks: the paper interprets all times "relative to the
  // sender's time clock". Our receivers therefore compute read/commit
  // timestamps as (local now - message put time) + message send time, i.e.
  // elapsed-time-since-send re-anchored at the sender's send timestamp.
  // With the shared Clock used in-process this is exact; across real
  // machines it would inherit clock skew, as the paper's system does.

  mq::Message to_message() const;
  static util::Result<AckRecord> from_message(const mq::Message& msg);
};

// ---- outcomes (§2.5) ------------------------------------------------------
enum class Outcome { kSuccess, kFailure };

const char* outcome_name(Outcome outcome);

struct OutcomeRecord {
  std::string cm_id;
  Outcome outcome = Outcome::kFailure;
  std::string reason;  // human-readable cause, e.g. the violated condition
  util::TimeMs decided_ts = 0;

  mq::Message to_message() const;
  static util::Result<OutcomeRecord> from_message(const mq::Message& msg);
};

// ---- sender log entries (§2.3) ---------------------------------------------
// One entry per conditional message; carries everything the evaluation
// manager needs to rebuild its state after a sender restart.
struct SenderLogEntry {
  std::string cm_id;
  util::TimeMs send_ts = 0;
  util::TimeMs evaluation_timeout_ms = 0;  // relative; 0 = none
  ConditionPtr condition;
  bool has_compensation_data = false;
  // (queue address, generated standard-message id) per fan-out message
  std::vector<std::pair<mq::QueueAddress, std::string>> deliveries;

  mq::Message to_message() const;
  static util::Result<SenderLogEntry> from_message(const mq::Message& msg);
};

// ---- pending-action markers (guaranteed compensation) ----------------------
// Everything needed to re-run the outcome actions of one decided message.
struct PendingActionMarker {
  std::string cm_id;
  Outcome outcome = Outcome::kFailure;
  std::string reason;
  bool success_notifications = false;
  std::vector<std::pair<mq::QueueAddress, std::string>> deliveries;

  mq::Message to_message() const;
  static util::Result<PendingActionMarker> from_message(
      const mq::Message& msg);
};

// ---- receiver log entries (§2.4) ------------------------------------------
struct ReceiverLogEntry {
  std::string cm_id;
  std::string original_msg_id;
  std::string queue;  // local queue the message was consumed from
  std::string recipient_id;
  util::TimeMs read_ts = 0;

  mq::Message to_message() const;
  static util::Result<ReceiverLogEntry> from_message(const mq::Message& msg);
};

}  // namespace cmx::cm
