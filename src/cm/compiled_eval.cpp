#include "cm/compiled_eval.hpp"

#include <algorithm>
#include <atomic>

namespace cmx::cm {

namespace {
std::atomic<bool> g_compiled_eval_enabled{true};
}  // namespace

const char* tri_state_name(TriState s) {
  switch (s) {
    case TriState::kPending:
      return "pending";
    case TriState::kSatisfied:
      return "satisfied";
    case TriState::kViolated:
      return "violated";
  }
  return "?";
}

bool compiled_eval_enabled() {
  return g_compiled_eval_enabled.load(std::memory_order_relaxed);
}

void set_compiled_eval_enabled(bool enabled) {
  g_compiled_eval_enabled.store(enabled, std::memory_order_relaxed);
}

CompiledEval::CompiledEval(const Condition* root, util::TimeMs send_ts,
                           const std::vector<const Destination*>& leaves)
    : send_ts_(send_ts) {
  routes_.resize(leaves.size());
  std::vector<std::uint32_t> pickup_stack;
  std::vector<std::uint32_t> processing_stack;
  build(root, -1, pickup_stack, processing_stack, leaves);
  // Nodes whose every part was satisfied at construction (MinNr* == 0, or
  // no time conditions and no children) resolve bottom-up: children sit
  // after their parent in pre-order, so a reverse scan sees each child
  // before the parent whose `remaining` it decrements.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    CNode& n = nodes_[i];
    if (!n.satisfied && n.remaining == 0) {
      n.satisfied = true;
      if (n.parent >= 0) --nodes_[static_cast<std::size_t>(n.parent)].remaining;
    }
  }
  std::sort(events_.begin(), events_.end());
}

std::uint32_t CompiledEval::make_part(Part::Kind kind, std::uint32_t node,
                                      int needed, int max_count,
                                      util::TimeMs rel_time) {
  const auto idx = static_cast<std::uint32_t>(parts_.size());
  Part p;
  p.kind = kind;
  p.node = node;
  p.needed = needed;
  p.max_count = max_count;
  p.rel_time = rel_time;
  p.deadline = send_ts_ + rel_time;
  if (needed <= 0) {
    // Trivially satisfied (a MaxNr*-only part still counts for its bound).
    p.satisfied = true;
  } else {
    ++nodes_[node].remaining;
    events_.emplace_back(p.deadline + 1, idx);
  }
  parts_.push_back(std::move(p));
  return idx;
}

void CompiledEval::build(const Condition* node, std::int32_t parent,
                         std::vector<std::uint32_t>& pickup_stack,
                         std::vector<std::uint32_t>& processing_stack,
                         const std::vector<const Destination*>& leaves) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(CNode{node, parent, 0, 0, 0, false});
  nodes_[id].parts_begin = static_cast<std::uint32_t>(parts_.size());

  std::size_t pushed_pickup = 0;
  std::size_t pushed_processing = 0;
  if (const auto* dest = node->as_destination()) {
    if (auto t = dest->msg_pick_up_time()) {
      make_part(Part::Kind::kPickUp, id, 1, -1, *t);
    }
    if (auto t = dest->msg_processing_time()) {
      make_part(Part::Kind::kProcessing, id, 1, -1, *t);
    }
  } else if (const auto* set = node->as_destination_set()) {
    const auto subtree = node->leaves();
    const int subtree_count = static_cast<int>(subtree.size());
    if (auto t = set->msg_pick_up_time()) {
      pickup_stack.push_back(
          make_part(Part::Kind::kPickUp, id,
                    set->min_nr_pick_up().value_or(subtree_count),
                    set->max_nr_pick_up().value_or(-1), *t));
      pushed_pickup = 1;
      // Anonymous counts share the pick-up window (and, like the
      // interpretive walker, are ignored without one).
      if (set->min_nr_anonymous().has_value() ||
          set->max_nr_anonymous().has_value()) {
        AnonScope scope;
        scope.part = make_part(Part::Kind::kAnon, id,
                               set->min_nr_anonymous().value_or(0),
                               set->max_nr_anonymous().value_or(-1), *t);
        for (const auto* leaf : subtree) {
          scope.queues.insert(leaf->address());
          if (!leaf->recipient_id().empty()) {
            scope.named.insert(leaf->recipient_id());
          }
        }
        anon_scopes_.push_back(std::move(scope));
      }
    }
    if (auto t = set->msg_processing_time()) {
      processing_stack.push_back(
          make_part(Part::Kind::kProcessing, id,
                    set->min_nr_processing().value_or(subtree_count),
                    set->max_nr_processing().value_or(-1), *t));
      pushed_processing = 1;
    }
  }
  nodes_[id].parts_end = static_cast<std::uint32_t>(parts_.size());

  if (const auto* dest = node->as_destination()) {
    // Route: the leaf's own parts plus every enclosing set window.
    std::size_t leaf_idx = 0;
    while (leaf_idx < leaves.size() && leaves[leaf_idx] != dest) ++leaf_idx;
    LeafRoute& route = routes_[leaf_idx];
    for (std::uint32_t pi = nodes_[id].parts_begin; pi < nodes_[id].parts_end;
         ++pi) {
      (parts_[pi].kind == Part::Kind::kPickUp ? route.pickup
                                              : route.processing)
          .push_back(pi);
    }
    route.pickup.insert(route.pickup.end(), pickup_stack.begin(),
                        pickup_stack.end());
    route.processing.insert(route.processing.end(), processing_stack.begin(),
                            processing_stack.end());
    route.pickup_counted.assign(route.pickup.size(), 0);
    route.processing_counted.assign(route.processing.size(), 0);
  } else {
    std::uint32_t child_count = 0;
    for (const auto& child : node->children()) {
      build(child.get(), static_cast<std::int32_t>(id), pickup_stack,
            processing_stack, leaves);
      ++child_count;
    }
    nodes_[id].remaining += child_count;
  }

  while (pushed_pickup-- > 0) pickup_stack.pop_back();
  while (pushed_processing-- > 0) processing_stack.pop_back();
}

void CompiledEval::on_read(std::size_t leaf_idx, util::TimeMs min_read_ts) {
  LeafRoute& route = routes_[leaf_idx];
  for (std::size_t k = 0; k < route.pickup.size(); ++k) {
    if (route.pickup_counted[k] != 0) continue;
    if (min_read_ts > parts_[route.pickup[k]].deadline) continue;
    route.pickup_counted[k] = 1;
    bump(route.pickup[k]);
  }
}

void CompiledEval::on_processing(std::size_t leaf_idx,
                                 util::TimeMs min_processing_ts) {
  LeafRoute& route = routes_[leaf_idx];
  for (std::size_t k = 0; k < route.processing.size(); ++k) {
    if (route.processing_counted[k] != 0) continue;
    if (min_processing_ts > parts_[route.processing[k]].deadline) continue;
    route.processing_counted[k] = 1;
    bump(route.processing[k]);
  }
}

void CompiledEval::on_unassigned(const AckRecord& ack) {
  for (AnonScope& scope : anon_scopes_) {
    const Part& p = parts_[scope.part];
    if (ack.read_ts > p.deadline) continue;
    if (scope.queues.count(ack.queue) == 0) continue;
    if (ack.recipient_id.empty()) {
      // Unassigned anonymous reads are each counted.
      bump(scope.part);
    } else if (scope.named.count(ack.recipient_id) == 0 &&
               scope.strangers.insert(ack.recipient_id).second) {
      // Named strangers are counted once per distinct recipient.
      bump(scope.part);
    }
  }
}

void CompiledEval::bump(std::uint32_t part_idx) {
  Part& p = parts_[part_idx];
  ++p.count;
  if (p.max_count >= 0 && p.count > p.max_count && !max_violated_) {
    max_violated_ = true;
    max_violated_reason_ = max_reason(p);
  }
  if (!p.satisfied && p.count >= p.needed) satisfy(part_idx);
}

void CompiledEval::satisfy(std::uint32_t part_idx) {
  Part& p = parts_[part_idx];
  p.satisfied = true;
  if (p.missed) {
    p.missed = false;
    --missed_count_;
  }
  // Residual propagation: only the path to the root can change.
  std::int32_t node = static_cast<std::int32_t>(p.node);
  while (node >= 0) {
    CNode& n = nodes_[static_cast<std::size_t>(node)];
    if (--n.remaining > 0) break;
    n.satisfied = true;
    node = n.parent;
  }
}

CompiledEval::Status CompiledEval::status(util::TimeMs now) {
  while (cursor_ < events_.size() && events_[cursor_].first <= now) {
    Part& p = parts_[events_[cursor_].second];
    if (!p.satisfied && !p.missed) {
      p.missed = true;
      ++missed_count_;
    }
    ++cursor_;
  }
  if (max_violated_) return {TriState::kViolated, max_violated_reason_};
  if (missed_count_ > 0) {
    if (missed_reason_part_ == UINT32_MAX ||
        !parts_[missed_reason_part_].missed) {
      for (std::uint32_t i = 0; i < parts_.size(); ++i) {
        if (parts_[i].missed) {
          missed_reason_part_ = i;
          missed_reason_ = part_reason(parts_[i]);
          break;
        }
      }
    }
    return {TriState::kViolated, missed_reason_};
  }
  if (nodes_[0].satisfied) return {TriState::kSatisfied, ""};
  return {TriState::kPending, ""};
}

std::string CompiledEval::part_reason(const Part& p) const {
  const CNode& n = nodes_[p.node];
  const Destination* dest = n.cond->as_destination();
  switch (p.kind) {
    case Part::Kind::kPickUp:
      if (dest != nullptr) {
        return "pick-up deadline missed: " + dest->describe();
      }
      return "pick-up subset not reached: " + std::to_string(p.count) + "/" +
             std::to_string(p.needed) + " within " +
             std::to_string(p.rel_time) + "ms";
    case Part::Kind::kProcessing:
      if (dest != nullptr) {
        return "processing deadline missed: " + dest->describe();
      }
      return "processing subset not reached: " + std::to_string(p.count) +
             "/" + std::to_string(p.needed) + " within " +
             std::to_string(p.rel_time) + "ms";
    case Part::Kind::kAnon:
      return "MinNrAnonymous not reached: " + std::to_string(p.count) + "/" +
             std::to_string(p.needed);
  }
  return "internal: unknown part kind";
}

std::string CompiledEval::max_reason(const Part& p) const {
  switch (p.kind) {
    case Part::Kind::kPickUp:
      return "MaxNrPickUp exceeded (" + std::to_string(p.count) + " > " +
             std::to_string(p.max_count) + ")";
    case Part::Kind::kProcessing:
      return "MaxNrProcessing exceeded (" + std::to_string(p.count) + " > " +
             std::to_string(p.max_count) + ")";
    case Part::Kind::kAnon:
      return "MaxNrAnonymous exceeded (" + std::to_string(p.count) + ")";
  }
  return "internal: unknown part kind";
}

void CompiledEval::describe(std::ostream& os) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CNode& n = nodes_[i];
    os << "    node " << i << (n.cond->is_leaf() ? " leaf" : " set ")
       << " parent=" << n.parent << " residual=" << n.remaining
       << (n.satisfied ? " satisfied" : "");
    for (std::uint32_t pi = n.parts_begin; pi < n.parts_end; ++pi) {
      const Part& p = parts_[pi];
      const char* kind = p.kind == Part::Kind::kPickUp ? "pick-up"
                         : p.kind == Part::Kind::kProcessing ? "processing"
                                                             : "anonymous";
      os << " [" << kind << " " << p.count << "/" << p.needed;
      if (p.max_count >= 0) os << " max=" << p.max_count;
      os << " by " << p.rel_time << "ms"
         << (p.satisfied ? " ok" : (p.missed ? " missed" : " open")) << "]";
    }
    os << "\n";
  }
}

}  // namespace cmx::cm
