// OutcomeDispatcher: a convenience consumer of DS.OUTCOME.Q. The paper's
// model has the application read outcome notifications from the queue
// (§2.3); most applications want callbacks instead. The dispatcher runs
// one background thread, demultiplexes outcome notifications by
// conditional-message id, and invokes registered handlers (or a catch-all
// for unclaimed outcomes).
//
// Ownership note: the dispatcher destructively consumes DS.OUTCOME.Q; do
// not combine it with direct await_outcome()/next_outcome() calls on the
// same queue manager.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "cm/control.hpp"
#include "mq/queue_manager.hpp"

namespace cmx::cm {

class OutcomeDispatcher {
 public:
  using Handler = std::function<void(const OutcomeRecord&)>;

  // `fallback` (may be empty) receives outcomes with no registered
  // handler. Starts the consumer thread immediately.
  explicit OutcomeDispatcher(mq::QueueManager& qm, Handler fallback = {});
  ~OutcomeDispatcher();

  OutcomeDispatcher(const OutcomeDispatcher&) = delete;
  OutcomeDispatcher& operator=(const OutcomeDispatcher&) = delete;

  // Registers a one-shot handler for `cm_id` (replaces any previous one).
  // Handlers run on the dispatcher thread and are removed after firing.
  void on_outcome(const std::string& cm_id, Handler handler);

  // Blocks (bounded by real time `cap_ms`) until `n` outcomes have been
  // dispatched in total. Test/synchronization helper.
  bool await_dispatched(std::size_t n, util::TimeMs cap_ms = 5000) const;

  std::size_t dispatched() const;
  void stop();

 private:
  void loop();

  mq::QueueManager& qm_;
  Handler fallback_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, Handler> handlers_;
  std::size_t dispatched_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace cmx::cm
