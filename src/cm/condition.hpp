// The paper's condition object model (§2.2, Figure 3): conditions are
// represented as a Composite of Destination leaves under DestinationSet
// composites, rooted at any Condition node.
//
//   Condition        — base: time conditions + pass-through MOM properties
//   Destination      — leaf: one queue, optional named final recipient
//   DestinationSet   — composite: cardinality (min/max) subsets and
//                      anonymous-recipient counts over its subtree
//
// Semantics implemented here and in eval_state.cpp:
//   * Times are milliseconds RELATIVE to the sender's send timestamp
//     (paper: "interpreted relative to the sender's time clock and the
//     timestamp of sending the message").
//   * A Destination with its own MsgPickUpTime/MsgProcessingTime is a
//     REQUIRED destination; a Destination covered only by an ancestor
//     set's times is OPTIONAL (it may stay silent if enough other members
//     of the set respond).
//   * A set's time conditions apply to every leaf destination in its
//     subtree, unless MinNr*/MaxNr* narrow them to a subset cardinality.
//   * MinNrAnonymous/MaxNrAnonymous count distinct anonymous recipients
//     (recipients not named by any leaf) reading from the subtree's queues
//     within the set's MsgPickUpTime.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mq/message.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace cmx::cm {

class Condition;
using ConditionPtr = std::shared_ptr<Condition>;

class Destination;
class DestinationSet;

class Condition : public std::enable_shared_from_this<Condition> {
 public:
  virtual ~Condition() = default;

  // ---- time conditions (ms, relative to send time) -----------------------
  std::optional<util::TimeMs> msg_pick_up_time() const { return pick_up_; }
  void set_msg_pick_up_time(util::TimeMs relative_ms) {
    pick_up_ = relative_ms;
  }
  void clear_msg_pick_up_time() { pick_up_.reset(); }

  std::optional<util::TimeMs> msg_processing_time() const {
    return processing_;
  }
  void set_msg_processing_time(util::TimeMs relative_ms) {
    processing_ = relative_ms;
  }
  void clear_msg_processing_time() { processing_.reset(); }

  // ---- pass-through MOM properties ---------------------------------------
  // (paper: "common properties of standard messaging middleware")
  std::optional<util::TimeMs> msg_expiry() const { return expiry_; }
  void set_msg_expiry(util::TimeMs relative_ms) { expiry_ = relative_ms; }

  std::optional<mq::Persistence> msg_persistence() const {
    return persistence_;
  }
  void set_msg_persistence(mq::Persistence p) { persistence_ = p; }

  std::optional<int> msg_priority() const { return priority_; }
  void set_msg_priority(int priority) { priority_ = priority; }

  // ---- Composite interface -------------------------------------------------
  virtual bool is_leaf() const = 0;
  // Throws std::logic_error on leaves (GoF "transparent" composite).
  virtual void add(ConditionPtr child);
  virtual void remove(const ConditionPtr& child);
  virtual const std::vector<ConditionPtr>& children() const;

  virtual ConditionPtr clone() const = 0;

  // Structural + semantic validation of the subtree rooted here (see the
  // rule list in validate_tree's implementation). OK for a valid tree.
  util::Status validate() const;

  // All Destination leaves in this subtree, in left-to-right order.
  std::vector<const Destination*> leaves() const;

  // Narrowing accessors (nullptr when the node is of the other kind).
  virtual const Destination* as_destination() const { return nullptr; }
  virtual const DestinationSet* as_destination_set() const { return nullptr; }

  // ---- serialization ---------------------------------------------------
  // Round-trip used by the sender log so evaluation state can be rebuilt
  // during recovery.
  std::string encode() const;
  static util::Result<ConditionPtr> decode(std::string_view data);

  // Human-readable one-line rendering (tests, logs, examples).
  virtual std::string describe() const = 0;

 protected:
  Condition() = default;
  Condition(const Condition&) = default;

  void copy_base_to(Condition& other) const;
  virtual util::Status validate_node() const = 0;

 private:
  util::Status validate_tree(std::vector<const Condition*>& path) const;

  std::optional<util::TimeMs> pick_up_;
  std::optional<util::TimeMs> processing_;
  std::optional<util::TimeMs> expiry_;
  std::optional<mq::Persistence> persistence_;
  std::optional<int> priority_;

  friend class ConditionCodec;
};

// Leaf: a particular queue, optionally bound to a named final recipient.
class Destination final : public Condition {
 public:
  static std::shared_ptr<Destination> make(mq::QueueAddress address,
                                           std::string recipient_id = "");

  const mq::QueueAddress& address() const { return address_; }
  void set_address(mq::QueueAddress address) {
    address_ = std::move(address);
  }

  // Identification string for a final recipient ("a defined name such as a
  // userid in a namespace"); empty means any/anonymous recipient.
  const std::string& recipient_id() const { return recipient_id_; }
  void set_recipient_id(std::string id) { recipient_id_ = std::move(id); }

  // Required destination: has its own time condition (paper §2.2).
  bool required() const {
    return msg_pick_up_time().has_value() ||
           msg_processing_time().has_value();
  }
  // Processing (not just receipt) is demanded from this destination.
  bool processing_required() const {
    return msg_processing_time().has_value();
  }

  bool is_leaf() const override { return true; }
  ConditionPtr clone() const override;
  const Destination* as_destination() const override { return this; }
  std::string describe() const override;

 protected:
  util::Status validate_node() const override;

 private:
  Destination() = default;

  mq::QueueAddress address_;
  std::string recipient_id_;

  friend class ConditionCodec;
};

// Composite: conditions over a set (or hierarchy of sets) of destinations.
class DestinationSet final : public Condition {
 public:
  static std::shared_ptr<DestinationSet> make();

  void add(ConditionPtr child) override;
  void remove(const ConditionPtr& child) override;
  const std::vector<ConditionPtr>& children() const override {
    return children_;
  }

  // Subset cardinalities. When unset, the set's time conditions apply to
  // ALL leaf destinations of the subtree.
  std::optional<int> min_nr_pick_up() const { return min_pick_up_; }
  void set_min_nr_pick_up(int n) { min_pick_up_ = n; }
  std::optional<int> max_nr_pick_up() const { return max_pick_up_; }
  void set_max_nr_pick_up(int n) { max_pick_up_ = n; }

  std::optional<int> min_nr_processing() const { return min_processing_; }
  void set_min_nr_processing(int n) { min_processing_ = n; }
  std::optional<int> max_nr_processing() const { return max_processing_; }
  void set_max_nr_processing(int n) { max_processing_ = n; }

  // Anonymous-recipient cardinalities (distinct unnamed recipients reading
  // from subtree queues within the set's MsgPickUpTime).
  std::optional<int> min_nr_anonymous() const { return min_anonymous_; }
  void set_min_nr_anonymous(int n) { min_anonymous_ = n; }
  std::optional<int> max_nr_anonymous() const { return max_anonymous_; }
  void set_max_nr_anonymous(int n) { max_anonymous_ = n; }

  bool is_leaf() const override { return false; }
  ConditionPtr clone() const override;
  const DestinationSet* as_destination_set() const override { return this; }
  std::string describe() const override;

 protected:
  util::Status validate_node() const override;

 private:
  DestinationSet() = default;

  std::vector<ConditionPtr> children_;
  std::optional<int> min_pick_up_;
  std::optional<int> max_pick_up_;
  std::optional<int> min_processing_;
  std::optional<int> max_processing_;
  std::optional<int> min_anonymous_;
  std::optional<int> max_anonymous_;

  friend class ConditionCodec;
};

}  // namespace cmx::cm
