#include "cm/control.hpp"

#include "util/codec.hpp"

namespace cmx::cm {

namespace {

util::Status missing(const char* what) {
  return util::make_error(util::ErrorCode::kIoError,
                          std::string("message lacks ") + what);
}

}  // namespace

const char* message_kind_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kData:
      return "data";
    case MessageKind::kAck:
      return "ack";
    case MessageKind::kCompensation:
      return "compensation";
    case MessageKind::kSuccess:
      return "success";
    case MessageKind::kOutcome:
      return "outcome";
  }
  return "?";
}

MessageKind classify(const mq::Message& msg) {
  const auto kind = msg.get_string(prop::kKind);
  if (!kind.has_value()) return MessageKind::kData;
  if (*kind == "ack") return MessageKind::kAck;
  if (*kind == "compensation") return MessageKind::kCompensation;
  if (*kind == "success") return MessageKind::kSuccess;
  if (*kind == "outcome") return MessageKind::kOutcome;
  return MessageKind::kData;
}

bool is_conditional(const mq::Message& msg) {
  return msg.has_property(prop::kCmId);
}

// ---------------------------------------------------------------------
// AckRecord
// ---------------------------------------------------------------------

mq::Message AckRecord::to_message() const {
  mq::Message msg;
  msg.set_property(prop::kKind, std::string("ack"));
  msg.set_property(prop::kCmId, cm_id);
  msg.set_property(prop::kAckType, std::string(type == AckType::kRead
                                                   ? "read"
                                                   : "processing"));
  msg.set_property(prop::kQueue, queue.to_string());
  msg.set_property(prop::kRecipient, recipient_id);
  msg.set_property(prop::kReadTs, read_ts);
  msg.set_property(prop::kCommitTs, commit_ts);
  msg.set_persistence(mq::Persistence::kPersistent);
  return msg;
}

util::Result<AckRecord> AckRecord::from_message(const mq::Message& msg) {
  AckRecord ack;
  auto cm_id = msg.get_string(prop::kCmId);
  if (!cm_id) return missing(prop::kCmId);
  ack.cm_id = *cm_id;
  auto type = msg.get_string(prop::kAckType);
  if (!type) return missing(prop::kAckType);
  ack.type = (*type == "processing") ? AckType::kProcessing : AckType::kRead;
  auto queue = msg.get_string(prop::kQueue);
  if (!queue) return missing(prop::kQueue);
  ack.queue = mq::QueueAddress::parse(*queue);
  ack.recipient_id = msg.get_string(prop::kRecipient).value_or("");
  auto read_ts = msg.get_int(prop::kReadTs);
  if (!read_ts) return missing(prop::kReadTs);
  ack.read_ts = *read_ts;
  ack.commit_ts = msg.get_int(prop::kCommitTs).value_or(0);
  return ack;
}

// ---------------------------------------------------------------------
// OutcomeRecord
// ---------------------------------------------------------------------

const char* outcome_name(Outcome outcome) {
  return outcome == Outcome::kSuccess ? "success" : "failure";
}

mq::Message OutcomeRecord::to_message() const {
  mq::Message msg;
  msg.set_property(prop::kKind, std::string("outcome"));
  msg.set_property(prop::kCmId, cm_id);
  msg.set_property(prop::kOutcome, std::string(outcome_name(outcome)));
  msg.set_property(prop::kReason, reason);
  msg.set_property(prop::kDecidedTs, decided_ts);
  msg.set_persistence(mq::Persistence::kPersistent);
  return msg;
}

util::Result<OutcomeRecord> OutcomeRecord::from_message(
    const mq::Message& msg) {
  OutcomeRecord record;
  auto cm_id = msg.get_string(prop::kCmId);
  if (!cm_id) return missing(prop::kCmId);
  record.cm_id = *cm_id;
  auto outcome = msg.get_string(prop::kOutcome);
  if (!outcome) return missing(prop::kOutcome);
  record.outcome =
      (*outcome == "success") ? Outcome::kSuccess : Outcome::kFailure;
  record.reason = msg.get_string(prop::kReason).value_or("");
  record.decided_ts = msg.get_int(prop::kDecidedTs).value_or(0);
  return record;
}

// ---------------------------------------------------------------------
// SenderLogEntry
// ---------------------------------------------------------------------

mq::Message SenderLogEntry::to_message() const {
  util::BinaryWriter w;
  w.put_string(cm_id);
  w.put_i64(send_ts);
  w.put_i64(evaluation_timeout_ms);
  w.put_bool(has_compensation_data);
  w.put_string(condition != nullptr ? condition->encode() : "");
  w.put_u32(static_cast<std::uint32_t>(deliveries.size()));
  for (const auto& [addr, msg_id] : deliveries) {
    w.put_string(addr.qmgr);
    w.put_string(addr.queue);
    w.put_string(msg_id);
  }
  mq::Message msg(w.take());
  msg.set_property(prop::kCmId, cm_id);
  msg.set_persistence(mq::Persistence::kPersistent);
  return msg;
}

util::Result<SenderLogEntry> SenderLogEntry::from_message(
    const mq::Message& msg) {
  util::BinaryReader r(msg.body());
  SenderLogEntry entry;
  auto cm_id = r.get_string();
  if (!cm_id) return cm_id.status();
  entry.cm_id = std::move(cm_id).value();
  auto send_ts = r.get_i64();
  if (!send_ts) return send_ts.status();
  entry.send_ts = send_ts.value();
  auto timeout = r.get_i64();
  if (!timeout) return timeout.status();
  entry.evaluation_timeout_ms = timeout.value();
  auto has_comp = r.get_bool();
  if (!has_comp) return has_comp.status();
  entry.has_compensation_data = has_comp.value();
  auto condition_bytes = r.get_string();
  if (!condition_bytes) return condition_bytes.status();
  if (!condition_bytes.value().empty()) {
    auto condition = Condition::decode(condition_bytes.value());
    if (!condition) return condition.status();
    entry.condition = std::move(condition).value();
  }
  auto count = r.get_u32();
  if (!count) return count.status();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto qmgr = r.get_string();
    if (!qmgr) return qmgr.status();
    auto queue = r.get_string();
    if (!queue) return queue.status();
    auto msg_id = r.get_string();
    if (!msg_id) return msg_id.status();
    entry.deliveries.emplace_back(
        mq::QueueAddress(std::move(qmgr).value(), std::move(queue).value()),
        std::move(msg_id).value());
  }
  return entry;
}

// ---------------------------------------------------------------------
// PendingActionMarker
// ---------------------------------------------------------------------

mq::Message PendingActionMarker::to_message() const {
  util::BinaryWriter w;
  w.put_bool(success_notifications);
  w.put_u32(static_cast<std::uint32_t>(deliveries.size()));
  for (const auto& [addr, msg_id] : deliveries) {
    w.put_string(addr.qmgr);
    w.put_string(addr.queue);
    w.put_string(msg_id);
  }
  mq::Message msg(w.take());
  msg.set_property(prop::kCmId, cm_id);
  msg.set_property(prop::kOutcome, std::string(outcome_name(outcome)));
  msg.set_property(prop::kReason, reason);
  msg.set_persistence(mq::Persistence::kPersistent);
  return msg;
}

util::Result<PendingActionMarker> PendingActionMarker::from_message(
    const mq::Message& msg) {
  PendingActionMarker marker;
  auto cm_id = msg.get_string(prop::kCmId);
  if (!cm_id) return missing(prop::kCmId);
  marker.cm_id = *cm_id;
  auto outcome = msg.get_string(prop::kOutcome);
  if (!outcome) return missing(prop::kOutcome);
  marker.outcome =
      (*outcome == "success") ? Outcome::kSuccess : Outcome::kFailure;
  marker.reason = msg.get_string(prop::kReason).value_or("");
  util::BinaryReader r(msg.body());
  auto notify = r.get_bool();
  if (!notify) return notify.status();
  marker.success_notifications = notify.value();
  auto count = r.get_u32();
  if (!count) return count.status();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto qmgr = r.get_string();
    if (!qmgr) return qmgr.status();
    auto queue = r.get_string();
    if (!queue) return queue.status();
    auto msg_id = r.get_string();
    if (!msg_id) return msg_id.status();
    marker.deliveries.emplace_back(
        mq::QueueAddress(std::move(qmgr).value(), std::move(queue).value()),
        std::move(msg_id).value());
  }
  return marker;
}

// ---------------------------------------------------------------------
// ReceiverLogEntry
// ---------------------------------------------------------------------

mq::Message ReceiverLogEntry::to_message() const {
  mq::Message msg;
  msg.set_property(prop::kCmId, cm_id);
  msg.set_property(prop::kOriginalMsgId, original_msg_id);
  msg.set_property(prop::kQueue, queue);
  msg.set_property(prop::kRecipient, recipient_id);
  msg.set_property(prop::kReadTs, read_ts);
  msg.set_persistence(mq::Persistence::kPersistent);
  return msg;
}

util::Result<ReceiverLogEntry> ReceiverLogEntry::from_message(
    const mq::Message& msg) {
  ReceiverLogEntry entry;
  auto cm_id = msg.get_string(prop::kCmId);
  if (!cm_id) return missing(prop::kCmId);
  entry.cm_id = *cm_id;
  auto original = msg.get_string(prop::kOriginalMsgId);
  if (!original) return missing(prop::kOriginalMsgId);
  entry.original_msg_id = *original;
  entry.queue = msg.get_string(prop::kQueue).value_or("");
  entry.recipient_id = msg.get_string(prop::kRecipient).value_or("");
  entry.read_ts = msg.get_int(prop::kReadTs).value_or(0);
  return entry;
}

}  // namespace cmx::cm
